//! Differential harness: the timer-wheel [`EventQueue`] against the
//! binary-heap [`HeapEventQueue`] oracle.
//!
//! The heap's `(time, sequence)` ordering is correct by inspection, so
//! it is the trusted side. Every test drives both queues with the same
//! operation sequence and demands identical observable behavior: pop
//! results, peek times, cancel return values, live counts. The
//! property sweeps cover randomized push/cancel/pop interleavings,
//! same-instant bursts, beyond-horizon times (the wheel's overflow
//! path), and the cancel-heavy tombstone-compaction regime from PR 5.
//!
//! The final tests arm each seeded [`QueueMutation`] defect and assert
//! the harness *detects* it — a differential suite that cannot fail on
//! a broken wheel proves nothing.

// Case-count-heavy property sweeps are a poor fit for Miri's
// interpreter; everything here is safe Rust anyway.
#![cfg(not(miri))]

use ampnet_sim::{EventQueue, HeapEventQueue, QueueMutation, SimTime};
use proptest::prelude::*;

/// Wheel horizon: events at or past `64^6` ns take the overflow path.
const HORIZON: u64 = 1 << 36;

/// One scripted operation applied to both queues.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at an absolute time.
    Schedule(u64),
    /// Cancel the id minted by the `i % ids.len()`-th schedule.
    Cancel(usize),
    /// Pop one event.
    Pop,
    /// Peek the next event time.
    Peek,
}

/// Drive both queues through `ops`, asserting equal observables at
/// every step. Returns the popped `(time, payload)` sequence.
fn run_differential(ops: &[Op]) -> Vec<(SimTime, u64)> {
    run_with_mutation(ops, QueueMutation::None).expect("oracle divergence")
}

/// Like [`run_differential`], but with a seeded defect armed on the
/// wheel. Returns `Err(step)` at the first divergence instead of
/// panicking, so mutation tests can assert a defect *is* detected.
fn run_with_mutation(
    ops: &[Op],
    mutation: QueueMutation,
) -> Result<Vec<(SimTime, u64)>, String> {
    let mut wheel = EventQueue::new();
    wheel.set_mutation_for_tests(mutation);
    let mut heap = HeapEventQueue::new();
    let mut ids = Vec::new();
    let mut popped = Vec::new();
    let mut payload = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Schedule(at) => {
                let w = wheel.schedule(SimTime(at), payload);
                let h = heap.schedule(SimTime(at), payload);
                if w != h {
                    return Err(format!("step {step}: id mismatch {w:?} vs {h:?}"));
                }
                ids.push(w);
                payload += 1;
            }
            Op::Cancel(i) => {
                if ids.is_empty() {
                    continue;
                }
                let id = ids[i % ids.len()];
                let w = wheel.cancel(id);
                let h = heap.cancel(id);
                if w != h {
                    return Err(format!("step {step}: cancel({id:?}) {w} vs {h}"));
                }
            }
            Op::Pop => {
                let w = wheel.pop();
                let h = heap.pop();
                if w != h {
                    return Err(format!("step {step}: pop {w:?} vs {h:?}"));
                }
                if let Some(p) = w {
                    popped.push(p);
                }
            }
            Op::Peek => {
                let w = wheel.peek_time();
                let h = heap.peek_time();
                if w != h {
                    return Err(format!("step {step}: peek {w:?} vs {h:?}"));
                }
            }
        }
        if wheel.len() != heap.len() {
            return Err(format!(
                "step {step}: len {} vs {}",
                wheel.len(),
                heap.len()
            ));
        }
    }
    // Drain both to the end — any latent misfiling must surface.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        if w != h {
            return Err(format!("drain: pop {w:?} vs {h:?}"));
        }
        match w {
            Some(p) => popped.push(p),
            None => break,
        }
    }
    Ok(popped)
}

/// Strategy for one operation. Times mix three scales so buckets at
/// every wheel level — and the overflow heap — see traffic: near
/// (level 0–1), mid (levels 2–4), and far/beyond-horizon.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..5_000).prop_map(Op::Schedule),
        (0u64..50_000_000).prop_map(Op::Schedule),
        (HORIZON - 1_000..HORIZON + 1_000_000).prop_map(Op::Schedule),
        Just(Op::Schedule(u64::MAX)),
        (0usize..4096).prop_map(Op::Cancel),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Peek),
    ]
}

proptest! {
    /// Randomized interleavings: the wheel is observationally
    /// equivalent to the heap. (Pops need not be globally sorted —
    /// the raw queue permits scheduling before the last popped
    /// instant; `Sim::schedule_at` enforces monotonicity a layer up.)
    #[test]
    fn wheel_matches_heap_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        run_differential(&ops);
    }

    /// Same-instant bursts: many events at few distinct times, so
    /// level-0 buckets hold long runs that must drain in FIFO order.
    #[test]
    fn same_instant_bursts_stay_fifo(
        times in proptest::collection::vec((0u64..8).prop_map(|t| t * 1_000), 2..150),
        pops in 0usize..64,
    ) {
        let mut ops: Vec<Op> = times.iter().map(|&t| Op::Schedule(t)).collect();
        for _ in 0..pops {
            ops.push(Op::Pop);
        }
        let popped = run_differential(&ops);
        // FIFO within a timestamp: payloads (schedule order) ascend.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated: {w:?}");
            }
        }
    }

    /// The PR-5 tombstone regime: cancel-heavy churn keeps the two
    /// queues in lockstep through compactions, and the wheel honors
    /// the same storage bound the heap pinned in PR 5.
    #[test]
    fn tombstone_compaction_regime_matches(
        churn in proptest::collection::vec(
            ((0u64..100_000), (0usize..4096)), 64..300
        ),
    ) {
        let mut ops = Vec::new();
        // Standing population, then cancel/reschedule churn with
        // occasional pops.
        for i in 0..48u64 {
            ops.push(Op::Schedule(1_000 + i));
        }
        for (k, &(at, victim)) in churn.iter().enumerate() {
            ops.push(Op::Cancel(victim));
            ops.push(Op::Schedule(at));
            if k % 9 == 0 {
                ops.push(Op::Pop);
            }
        }
        run_differential(&ops);

        // Replay on a wheel alone to check the compaction bound.
        let mut wheel = EventQueue::new();
        let mut ids = Vec::new();
        for op in &ops {
            match *op {
                Op::Schedule(at) => ids.push(wheel.schedule(SimTime(at), 0u64)),
                Op::Cancel(i) => {
                    wheel.cancel(ids[i % ids.len()]);
                }
                Op::Pop => {
                    wheel.pop();
                }
                Op::Peek => {}
            }
            prop_assert!(
                wheel.heap_len() <= 2 * wheel.len().max(64),
                "stored {} for {} live", wheel.heap_len(), wheel.len()
            );
        }
    }
}

proptest! {
    /// `pop_instant_into` — the batch pop `Sim::pop_batch` rides on —
    /// equals popping the heap oracle one event at a time while its
    /// peek time stays at the same instant, under cancels, tombstone
    /// skips, overflow migration, and deadline cutoffs alike.
    #[test]
    fn batch_pop_matches_heap_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut ids = Vec::new();
        let mut payload = 0u64;
        let mut buf: Vec<(SimTime, u64)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Schedule(at) => {
                    ids.push(wheel.schedule(SimTime(at), payload));
                    heap.schedule(SimTime(at), payload);
                    payload += 1;
                }
                Op::Cancel(i) => {
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[i % ids.len()];
                    prop_assert_eq!(wheel.cancel(id), heap.cancel(id));
                }
                Op::Pop | Op::Peek => {
                    // A deadline before the front instant must leave
                    // the wheel untouched and return nothing...
                    if let Some(SimTime(t)) = heap.peek_time() {
                        if t > 0 {
                            prop_assert_eq!(
                                wheel.pop_instant_into(SimTime(t - 1), &mut buf),
                                None
                            );
                            prop_assert!(buf.is_empty());
                        }
                    }
                    // ...then an open deadline drains exactly the run
                    // of oracle pops sharing the front instant.
                    let got = wheel.pop_instant_into(SimTime::MAX, &mut buf);
                    prop_assert_eq!(got, heap.peek_time());
                    if let Some(at) = got {
                        let mut expect = Vec::new();
                        while heap.peek_time() == Some(at) {
                            expect.push(heap.pop().expect("peeked Some"));
                        }
                        prop_assert_eq!(&buf, &expect);
                    }
                    prop_assert_eq!(wheel.len(), heap.len());
                    buf.clear();
                }
            }
        }
        // Drain the remainder batch-by-batch; every instant must match.
        loop {
            let got = wheel.pop_instant_into(SimTime::MAX, &mut buf);
            prop_assert_eq!(got, heap.peek_time());
            let Some(at) = got else { break };
            let mut expect = Vec::new();
            while heap.peek_time() == Some(at) {
                expect.push(heap.pop().expect("peeked Some"));
            }
            prop_assert_eq!(&buf, &expect);
            buf.clear();
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }
}

// ---- seeded-defect detection -------------------------------------------
//
// Each QueueMutation models a real implementation mistake. The harness
// must catch every one, otherwise "wheel == heap" is vacuous.

/// `UnsortedDrain` bites when a level-0 bucket holds entries out of
/// sequence order. That happens when an overflow entry migrates into a
/// bucket *after* a direct schedule already landed there: schedule two
/// beyond-horizon events, pop the earlier one (the cursor jumps into
/// their top-level span), schedule a same-instant rival directly into
/// the wheel, then drain — migration appends the older event after it.
#[test]
fn unsorted_drain_mutation_is_detected() {
    let ops = [
        Op::Schedule(HORIZON + 10), // seq 0: overflow
        Op::Schedule(HORIZON + 5),  // seq 1: overflow, earlier
        Op::Pop,                    // cursor jumps to HORIZON+5
        Op::Schedule(HORIZON + 10), // seq 2: now lands in the wheel
        Op::Pop,
        Op::Pop,
    ];
    assert_eq!(
        run_differential(&ops),
        vec![
            (SimTime(HORIZON + 5), 1),
            (SimTime(HORIZON + 10), 0),
            (SimTime(HORIZON + 10), 2),
        ],
        "sanity: the healthy wheel agrees with the heap on this script"
    );
    let err = run_with_mutation(&ops, QueueMutation::UnsortedDrain)
        .expect_err("harness must detect the dropped seq sort");
    assert!(err.contains("pop"), "divergence should be a pop: {err}");
}

/// `EagerOverflow` bites as soon as a beyond-horizon event coexists
/// with a nearer wheel event: the defect stages the far event as due,
/// so it pops first.
#[test]
fn eager_overflow_mutation_is_detected() {
    let ops = [
        Op::Schedule(HORIZON + 100), // far: must wait in overflow
        Op::Schedule(1_000),         // near: must pop first
        Op::Pop,
    ];
    let err = run_with_mutation(&ops, QueueMutation::EagerOverflow)
        .expect_err("harness must detect the skipped overflow parking");
    assert!(err.contains("pop"), "divergence should be a pop: {err}");
}

/// `ResurrectCancelled` bites when an event is cancelled after it was
/// already staged as due (same-instant run partially popped): the
/// defect pops the tombstone the heap correctly skips.
#[test]
fn resurrect_cancelled_mutation_is_detected() {
    let ops = [
        Op::Schedule(10), // seq 0
        Op::Schedule(10), // seq 1
        Op::Pop,          // pops seq 0; seq 1 is now staged due
        Op::Cancel(1),    // tombstone seq 1 in place
        Op::Schedule(20), // seq 2: the correct next pop
        Op::Pop,
    ];
    let err = run_with_mutation(&ops, QueueMutation::ResurrectCancelled)
        .expect_err("harness must detect resurrected tombstones");
    assert!(err.contains("pop") || err.contains("peek") || err.contains("len"));
}

/// And the sweeps themselves must flag mutations, not just the
/// hand-built scripts: run the randomized differential against each
/// defect and require at least one divergence across the case budget.
#[test]
fn property_sweep_detects_every_mutation() {
    use proptest::test_runner::TestRng;
    for mutation in [
        QueueMutation::UnsortedDrain,
        QueueMutation::EagerOverflow,
        QueueMutation::ResurrectCancelled,
    ] {
        let mut rng = TestRng::for_test("queue_differential::sweep_mutations");
        let mut detected = false;
        'cases: for _ in 0..1_000 {
            let mut ops = Vec::new();
            for _ in 0..160 {
                let r = rng.next_u64();
                // Times are quantized to a handful of distinct instants
                // so same-instant collisions (where ordering defects
                // live) are common, including across the horizon; pops
                // dominate so the cursor keeps jumping between spans.
                ops.push(match r % 8 {
                    0 => Op::Schedule((rng.next_u64() % 8) * 700),
                    1 => Op::Schedule((rng.next_u64() % 4) * 10_000_000),
                    // Not slot-aligned: instants inside a level-0 slot
                    // exercise the bucket-drain sort, not just the
                    // (always-sorted) due-insert path.
                    2 | 3 => Op::Schedule(HORIZON + 5 + (rng.next_u64() % 2) * 5),
                    4 => Op::Cancel((rng.next_u64() % 64) as usize),
                    _ => Op::Pop,
                });
            }
            if run_with_mutation(&ops, mutation).is_err() {
                detected = true;
                break 'cases;
            }
        }
        assert!(detected, "sweep never caught {mutation:?}");
    }
}
