//! FNV-64 folding — the workspace's shared fingerprint primitive.
//!
//! One hash, three users: the [`Trace`](crate::Trace) replay digest,
//! the chaos engine's run fingerprints, and `ampnet-check`'s
//! explicit-state dedup. Keeping them on the same function means a
//! state hash printed by the model checker can be compared against a
//! trace digest dump without a translation table.

/// Incremental FNV-1a (64-bit) hasher.
///
/// ```
/// use ampnet_sim::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.fold(b"explore");
/// h.fold_u64(7);
/// assert_eq!(h.finish(), Fnv64::new().fold(b"explore").fold_u64(7).finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Resume folding from a previously obtained digest.
    pub fn from_state(state: u64) -> Self {
        Fnv64 { state }
    }

    /// Fold raw bytes.
    pub fn fold(&mut self, bytes: &[u8]) -> &mut Self {
        for b in bytes {
            self.state ^= *b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold one `u64` (little-endian).
    pub fn fold_u64(&mut self, v: u64) -> &mut Self {
        self.fold(&v.to_le_bytes())
    }

    /// Fold one byte.
    pub fn fold_u8(&mut self, v: u8) -> &mut Self {
        self.fold(&[v])
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    Fnv64::new().fold(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.fold(b"foo").fold(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn resume_from_state() {
        let first = Fnv64::new().fold(b"foo").finish();
        let resumed = Fnv64::from_state(first).fold(b"bar").finish();
        assert_eq!(resumed, fnv64(b"foobar"));
    }
}
