//! Deterministic random numbers for simulations.
//!
//! Every stochastic choice in an AmpNet simulation draws from a
//! [`SimRng`], a ChaCha8 stream seeded from a user seed plus a stream
//! label. Distinct labels give statistically independent streams, so
//! adding randomness to one subsystem never perturbs another — a
//! standard variance-reduction discipline for discrete-event models.

use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A labelled, reproducible random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create the root stream for `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream for a named subsystem.
    ///
    /// The derivation hashes the parent's seed identity together with
    /// the label, so `derive("ring")` and `derive("workload")` never
    /// share state, and nested derivations stay distinct. Deriving does
    /// not consume randomness from the parent: it depends only on the
    /// parent's seed, not on how far the parent stream has advanced.
    pub fn derive(&self, label: &str) -> SimRng {
        let parent = self.inner.get_seed();
        // FNV-1a over (parent seed || label), then four counter-mixed
        // words to fill the child seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in parent.iter().copied().chain(label.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut seed_bytes = [0u8; 32];
        for (i, chunk) in seed_bytes.chunks_exact_mut(8).enumerate() {
            let w = splitmix64(h.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        SimRng {
            inner: ChaCha8Rng::from_seed(seed_bytes),
        }
    }

    /// Uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.random_range(0..n)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range(lo..hi)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.random_range(0.0..1.0)
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival processes).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Choose one element uniformly, `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Sample `k` distinct indices from `0..n` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

/// SplitMix64 finalizer, used to whiten derived seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn derived_streams_are_independent_of_parent_use() {
        let root = SimRng::new(99);
        let mut d1 = root.derive("ring");
        // Using the root must not change what derive produces.
        let mut root2 = SimRng::new(99);
        root2.next_u64();
        let mut d2 = root2.derive("ring");
        for _ in 0..32 {
            assert_eq!(d1.next_u64(), d2.next_u64());
        }
    }

    #[test]
    fn derived_labels_differ() {
        let root = SimRng::new(5);
        let mut a = root.derive("alpha");
        let mut b = root.derive("beta");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(250.0)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 250.0).abs() < 15.0,
            "sample mean {mean} too far from 250"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(4);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SimRng::new(8);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::new(1);
        let empty: &[u8] = &[];
        assert!(r.choose(empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(2);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
