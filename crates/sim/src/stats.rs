//! Measurement primitives shared by every experiment.
//!
//! The harness reports latency distributions (rostering time, failover
//! time, semaphore acquire latency), throughput counters and fairness
//! indices. The core scalar instruments — [`Counter`] and the
//! log-linear [`Histogram`] — are re-homed in `ampnet-telemetry` so
//! the whole stack can record into one `MetricsRegistry`; they are
//! re-exported here so existing call sites keep working.

use crate::time::SimDuration;

pub use ampnet_telemetry::{Counter, Histogram};

/// Jain's fairness index for a set of per-flow throughputs.
///
/// 1.0 means perfectly fair; 1/n means one flow got everything.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 { // lint: allow(nondeterminism): exact-zero guard against 0/0, not a tolerance compare
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

/// Arithmetic mean of a slice, 0.0 when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation, 0.0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Throughput accumulator: bytes moved over a measured window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Throughput {
    /// Total bytes accumulated.
    pub bytes: u64,
}

impl Throughput {
    /// Accumulate bytes.
    #[inline]
    pub fn add(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Megabytes per second over `window`.
    pub fn mbps(&self, window: SimDuration) -> f64 {
        if window.as_nanos() == 0 {
            return 0.0;
        }
        self.bytes as f64 / window.as_secs_f64() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_extremes() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skew = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn mean_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        let sd = stddev(&xs);
        assert!((sd - 2.138).abs() < 0.01, "stddev {sd}");
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn throughput_mbps() {
        let mut t = Throughput::default();
        t.add(100_000_000);
        let w = SimDuration::from_secs(1);
        assert!((t.mbps(w) - 100.0).abs() < 1e-9);
        assert_eq!(t.mbps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn rehomed_histogram_records_duration_nanos() {
        // `Histogram` lives in ampnet-telemetry now; durations are
        // recorded as `d.as_nanos()` at the call site.
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(1).as_nanos());
        assert!(h.min() <= 1000 && h.max() >= 1000);
    }
}
