//! The legacy binary-heap future-event queue, kept as a reference
//! implementation.
//!
//! This was the shipping [`EventQueue`](crate::EventQueue) through
//! PR 5. The timer-wheel queue replaced it on the hot path, but the
//! heap stays in-tree for two jobs:
//!
//! * **Differential oracle** — `crates/sim/tests/queue_differential.rs`
//!   property-tests that the wheel and this heap produce identical pop
//!   sequences under randomized push/cancel/reschedule/same-instant
//!   workloads. The heap's `(time, sequence)` ordering is trivially
//!   correct by inspection, which makes it the trusted side.
//! * **Perf baseline** — `figures --bench-scale` runs the same synthetic
//!   timer workload through both queues and records heap-vs-wheel
//!   events/s, so the wheel's advantage is measured, not assumed.
//!
//! Semantics are identical to the wheel: pops come out in `(time,
//! sequence)` order (FIFO within a timestamp), cancellation is lazy
//! with tombstone compaction once tombstones outnumber live entries.

use crate::queue::EventId;
use crate::seqhash::SeqHashBuilder;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
// Membership-only (insert/remove/contains) — never iterated, so hash
// order cannot leak into the schedule. Hashed with the same fixed-key
// mixer as the wheel so the microbench comparison isolates the data
// structures, not the hash function.
use std::collections::HashSet; // lint: allow(nondeterminism): membership-only set behind a fixed-key SeqHashBuilder, never iterated

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Ordering: earliest time first, then FIFO within a timestamp.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Binary-heap future-event list with deterministic tie-breaking and
/// O(1) lazy cancellation — the pre-wheel [`crate::EventQueue`],
/// retained as differential-test oracle and bench baseline.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Sequence numbers of events that are scheduled and not yet fired
    /// or cancelled. Entries in the heap whose seq is absent here are
    /// tombstones left behind by `cancel`.
    pending: HashSet<u64, SeqHashBuilder>, // lint: allow(nondeterminism): membership-only set behind a fixed-key SeqHashBuilder, never iterated
    next_seq: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::default(), // lint: allow(nondeterminism): membership-only set behind a fixed-key SeqHashBuilder, never iterated
            next_seq: 0,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
        self.pending.insert(seq);
        EventId::from_seq(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending (i.e. not yet fired or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let removed = self.pending.remove(&id.seq());
        if removed {
            self.maybe_compact();
        }
        removed
    }

    /// Rebuild the heap without tombstones when they dominate it.
    ///
    /// Amortised O(1) per cancel: compaction costs O(n) but only runs
    /// after Ω(n) cancellations have accumulated since the last one.
    fn maybe_compact(&mut self) {
        const COMPACT_MIN: usize = 64;
        let tombstones = self.heap.len() - self.pending.len();
        if self.heap.len() < COMPACT_MIN || tombstones <= self.pending.len() {
            return;
        }
        let pending = &self.pending;
        let heap = std::mem::take(&mut self.heap);
        self.heap = heap
            .into_iter()
            .filter(|Reverse(e)| pending.contains(&e.seq))
            .collect();
    }

    /// Heap entries currently held, including tombstones.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Remove and return the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(entry) = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        Some((entry.at, entry.event))
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(top)) = self.heap.peek() {
            if self.pending.contains(&top.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}
