//! Deterministic future-event queue.
//!
//! The queue is a binary heap keyed on `(time, sequence)`. The sequence
//! number makes the pop order of same-timestamp events equal to their
//! scheduling order, which keeps every simulation bit-reproducible for a
//! given seed regardless of heap internals.
//!
//! Timers can be cancelled; cancellation is lazy (the entry stays in the
//! heap and is skipped on pop), which keeps `cancel` O(1).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
// The pending set is membership-only (insert/remove/contains) — it is
// never iterated, so hash order cannot leak into the schedule, and a
// warmed-up HashSet does zero allocations on the hot path where a
// BTreeSet churns tree nodes on every event.
use std::collections::HashSet; // lint: allow(HashSet): membership-only, never iterated

/// Handle identifying one scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Ordering: earliest time first, then FIFO within a timestamp.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A future-event list with deterministic tie-breaking and O(1) lazy
/// cancellation.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Sequence numbers of events that are scheduled and not yet fired
    /// or cancelled. Entries in the heap whose seq is absent here are
    /// tombstones left behind by `cancel`.
    pending: HashSet<u64>, // lint: allow(HashSet): membership-only, never iterated
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(), // lint: allow(HashSet): membership-only, never iterated
            next_seq: 0,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending (i.e. not yet fired or cancelled).
    ///
    /// Cancellation is lazy, but tombstones are not allowed to pile up
    /// forever: once they outnumber live entries the heap is compacted,
    /// so cancel-heavy timer churn (roster misses, pacing reschedules)
    /// keeps the heap within 2× the live-event count instead of growing
    /// unbounded at 256-node scale.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let removed = self.pending.remove(&id.0);
        if removed {
            self.maybe_compact();
        }
        removed
    }

    /// Rebuild the heap without tombstones when they dominate it.
    ///
    /// Amortised O(1) per cancel: compaction costs O(n) but only runs
    /// after Ω(n) cancellations have accumulated since the last one.
    /// Pop order is unaffected — `(at, seq)` is a total order, so the
    /// rebuilt heap yields the surviving entries in the same sequence.
    fn maybe_compact(&mut self) {
        const COMPACT_MIN: usize = 64;
        let tombstones = self.heap.len() - self.pending.len();
        if self.heap.len() < COMPACT_MIN || tombstones <= self.pending.len() {
            return;
        }
        let pending = &self.pending;
        let heap = std::mem::take(&mut self.heap);
        self.heap = heap
            .into_iter()
            .filter(|Reverse(e)| pending.contains(&e.seq))
            .collect();
    }

    /// Heap entries currently held, including tombstones. Exposed so
    /// tests can assert the compaction bound.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Remove and return the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(entry) = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        Some((entry.at, entry.event))
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(top)) = self.heap.peek() {
            if self.pending.contains(&top.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn cancel_pending() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime(2), "b")));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), 1);
        q.schedule(SimTime(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.pop(), Some((SimTime(2), 2)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime(1), 1);
        q.schedule(SimTime(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_removes_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 1);
        q.schedule(SimTime(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_heavy_churn_keeps_heap_bounded() {
        // Regression: lazy cancellation used to leave tombstones in the
        // heap forever, so a cancel/reschedule loop (timer churn) grew
        // the heap without bound. With compaction the heap stays within
        // a small multiple of the live-event count.
        let mut q = EventQueue::new();
        let mut live: Vec<EventId> = (0..32)
            .map(|i| q.schedule(SimTime(1_000 + i), i))
            .collect();
        for round in 0..10_000u64 {
            let slot = (round % 32) as usize;
            assert!(q.cancel(live[slot]));
            live[slot] = q.schedule(SimTime(2_000 + round), round);
            assert_eq!(q.len(), 32);
            assert!(
                q.heap_len() <= 2 * q.len().max(64),
                "round {round}: heap {} for {} live events",
                q.heap_len(),
                q.len()
            );
        }
        // The queue still pops everything, in time order.
        let mut last = SimTime(0);
        let mut popped = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
            popped += 1;
        }
        assert_eq!(popped, 32);
    }

    #[test]
    fn compaction_preserves_pop_order() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..512u64 {
            let id = q.schedule(SimTime(10_000 - i * 10), i);
            if i % 7 == 0 {
                keep.push((SimTime(10_000 - i * 10), i));
            } else {
                q.cancel(id); // triggers compaction along the way
            }
        }
        keep.sort();
        for expected in keep {
            assert_eq!(q.pop(), Some(expected));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(10), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        q.schedule(SimTime(10), 3);
        // 2 was scheduled before 3, same timestamp.
        assert_eq!(q.pop(), Some((SimTime(10), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 3)));
    }
}
