//! Deterministic future-event queue — hierarchical timer wheel.
//!
//! Through PR 5 this was a binary heap keyed on `(time, sequence)`
//! (now [`crate::HeapEventQueue`], kept as the differential-test
//! oracle). The heap capped serial throughput at ~2.1M events/s in the
//! scale bench: every schedule/pop pays an O(log n) sift through a
//! pointer-chasing heap. The wheel replaces both operations with O(1)
//! bucket pushes and amortized-O(1) cursor advancement:
//!
//! * **Near wheel** — [`LEVELS`] levels of [`SLOTS`] slots each. Level
//!   `k` slots are `64^k` ns wide, so level 0 resolves single
//!   nanoseconds and the whole wheel spans `64^6` ns (~69 s) past the
//!   cursor. An entry lands in the level of its highest time-digit
//!   that differs from the cursor — one `leading_zeros` and a shift.
//! * **Overflow** — events beyond the wheel horizon (long timers,
//!   `SimTime::MAX` "never" sentinels) wait in a small `(time, seq)`
//!   min-heap and migrate into the wheel as the cursor's window
//!   reaches them.
//! * **Due batch** — the cursor advances slot-by-slot (per-level
//!   occupancy bitmaps make "next occupied slot" a couple of bit ops);
//!   higher-level slots *cascade* their entries down a level until the
//!   level-0 bucket for one exact timestamp is reached. That bucket is
//!   drained into the `due` staging queue **sorted by sequence
//!   number**, which restores global `(time, sequence)` order no
//!   matter how schedules and cascades interleaved — same-instant
//!   events pop in scheduling order, bit-identical to the heap. The
//!   differential harness (`tests/queue_differential.rs`) holds the
//!   wheel to that.
//!
//! Timers can be cancelled; cancellation is lazy (the entry stays in
//! its bucket and is skipped when drained), which keeps `cancel` O(1).
//! As in the heap, tombstones are compacted once they outnumber live
//! entries, so cancel-heavy churn keeps total storage within 2× the
//! live count.

use crate::seqset::SeqWindow;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
// The pending set is membership-only (insert/remove/contains) — it is
// never iterated, so its internals cannot leak into the schedule. It
// is hit 3–5 times per simulated event, so it is a sliding-window
// bitmap over the monotone sequence counter ([`crate::seqset`])
// rather than any flavour of hash set.


/// Handle identifying one scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Build a handle from a raw sequence number (crate-internal: the
    /// heap oracle mints ids the same way the wheel does).
    pub(crate) fn from_seq(seq: u64) -> Self {
        EventId(seq)
    }

    /// The raw sequence number (crate-internal).
    pub(crate) fn seq(self) -> u64 {
        self.0
    }
}

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel depth. Six levels span `64^6` ns ≈ 69 s past the cursor;
/// anything further waits in the overflow heap.
const LEVELS: usize = 6;

/// Initial capacity of every bucket, reserved at construction so the
/// run-phase hot path stays allocation-free (the telemetry-overhead
/// bench asserts the whole simulator's allocs/packet budget): buckets
/// never surrender their capacity (drains are in-place or swap it
/// back), so only a bucket's *first* growth past this ever allocates.
const BUCKET_PREALLOC: usize = 8;

/// Width in nanoseconds of one slot at `level`.
#[inline]
const fn slot_width(level: usize) -> u64 {
    1u64 << (LEVEL_BITS * level as u32)
}

/// The cursor's slot index at `level`.
#[inline]
const fn slot_index(t: u64, level: usize) -> usize {
    ((t >> (LEVEL_BITS * level as u32)) as usize) & (SLOTS - 1)
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Ordering for the overflow heap: earliest time first, then FIFO
// within a timestamp.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Seeded defects for validating the differential harness — see
/// `tests/queue_differential.rs`, which must *detect* each of these.
/// Never enabled outside tests.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueMutation {
    /// The shipping queue: no defect.
    #[default]
    None,
    /// Skip the sequence-number sort when a level-0 bucket is drained,
    /// so same-instant events pop in cascade order instead of schedule
    /// order (the FIFO-tie-break bug the sort exists to prevent).
    UnsortedDrain,
    /// Stage beyond-horizon events as immediately due instead of
    /// parking them in the overflow heap — long timers cut ahead of
    /// nearer events still in the wheel.
    EagerOverflow,
    /// Ignore the pending-set check when settling the due queue, so
    /// lazily-cancelled events are popped instead of skipped (the
    /// wheel analog of a dropped generation bump).
    ResurrectCancelled,
}

/// A future-event list with deterministic tie-breaking and O(1) lazy
/// cancellation, implemented as a hierarchical timer wheel.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Bucket `k * SLOTS + slot` holds entries whose time digit `k`
    /// equals `slot` and whose digits above `k` equal the cursor's.
    /// Flattened to one contiguous allocation so the 384 bucket
    /// headers share a few cache lines instead of chasing two
    /// pointer levels per filing.
    buckets: Vec<Vec<Entry<E>>>,
    /// Per-level occupancy bitmap (bit `s` ⇔ bucket `k * SLOTS + s` nonempty).
    occupied: [u64; LEVELS],
    /// The wheel cursor: the timestamp of the most recently drained
    /// level-0 bucket. Entries still in the wheel all fire at or after
    /// it; entries at or before it live in `due`.
    cur: u64,
    /// Staging queue of entries ready to pop, sorted by `(at, seq)`.
    due: VecDeque<Entry<E>>,
    /// Events beyond the wheel horizon, earliest first.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Sequence numbers of events that are scheduled and not yet fired
    /// or cancelled. Stored entries whose seq is absent here are
    /// tombstones left behind by `cancel`.
    pending: SeqWindow,
    /// Tombstones still stored in a bucket, `due` or the overflow.
    dead: usize,
    /// Scratch buffer reused across cascades (keeps the steady state
    /// allocation-free).
    spill: Vec<Entry<E>>,
    next_seq: u64,
    mutation: QueueMutation,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..LEVELS * SLOTS)
                .map(|_| Vec::with_capacity(BUCKET_PREALLOC))
                .collect(),
            occupied: [0; LEVELS],
            cur: 0,
            due: VecDeque::with_capacity(SLOTS),
            overflow: BinaryHeap::with_capacity(16),
            pending: SeqWindow::new(),
            dead: 0,
            spill: Vec::with_capacity(BUCKET_PREALLOC),
            next_seq: 0,
            mutation: QueueMutation::None,
        }
    }

    /// Arm a seeded defect. Test-only: exists so the differential
    /// harness can prove it bites on a broken wheel.
    #[doc(hidden)]
    pub fn set_mutation_for_tests(&mut self, m: QueueMutation) {
        self.mutation = m;
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Entries currently stored, including tombstones. Exposed so
    /// tests can assert the compaction bound.
    pub fn heap_len(&self) -> usize {
        self.pending.len() + self.dead
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.place(Entry { at, seq, event });
        EventId(seq)
    }

    /// File an entry into `due`, the wheel, or the overflow, relative
    /// to the current cursor.
    fn place(&mut self, e: Entry<E>) {
        let t = e.at.0;
        let x = self.cur ^ t;
        if t <= self.cur || x == 0 {
            // At or before the cursor (the heap would pop it next, in
            // (at, seq) order): merge into the sorted due queue. The
            // common case — an L0 drain or a same-instant follow-up —
            // appends at the back.
            let key = (e.at, e.seq);
            match self.due.back() {
                Some(b) if (b.at, b.seq) < key => self.due.push_back(e),
                None => self.due.push_back(e),
                _ => {
                    let pos = self
                        .due
                        .binary_search_by(|p| (p.at, p.seq).cmp(&key))
                        .unwrap_err();
                    self.due.insert(pos, e);
                }
            }
            return;
        }
        let level = ((63 - x.leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            if self.mutation == QueueMutation::EagerOverflow {
                // Seeded defect: stage it as due right now — it will
                // pop ahead of nearer events still in the wheel.
                let key = (e.at, e.seq);
                let pos = self
                    .due
                    .binary_search_by(|p| (p.at, p.seq).cmp(&key))
                    .unwrap_err();
                self.due.insert(pos, e);
                return;
            }
            self.overflow.push(Reverse(e));
            return;
        }
        let slot = slot_index(t, level);
        self.buckets[level * SLOTS + slot].push(e);
        self.occupied[level] |= 1 << slot;
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending (i.e. not yet fired or cancelled).
    ///
    /// Cancellation is lazy, but tombstones are not allowed to pile up
    /// forever: once they outnumber live entries the buckets are
    /// compacted, so cancel-heavy timer churn (roster misses, pacing
    /// reschedules) keeps storage within 2× the live-event count
    /// instead of growing unbounded at 256-node scale.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let removed = self.pending.remove(id.0);
        if removed {
            self.dead += 1;
            self.maybe_compact();
        }
        removed
    }

    /// Sweep tombstones out of every bucket when they dominate.
    ///
    /// Amortised O(1) per cancel: compaction costs O(n) but only runs
    /// after Ω(n) cancellations have accumulated since the last one.
    /// Pop order is unaffected — surviving entries keep their buckets.
    fn maybe_compact(&mut self) {
        const COMPACT_MIN: usize = 64;
        let live = self.pending.len();
        if live + self.dead < COMPACT_MIN || self.dead <= live {
            return;
        }
        let pending = &self.pending;
        for (i, bucket) in self.buckets.iter_mut().enumerate() {
            bucket.retain(|e| pending.contains(e.seq));
            if bucket.is_empty() {
                self.occupied[i / SLOTS] &= !(1 << (i % SLOTS));
            }
        }
        self.due.retain(|e| pending.contains(e.seq));
        if self.overflow.iter().any(|Reverse(e)| !pending.contains(e.seq)) {
            let heap = std::mem::take(&mut self.overflow);
            self.overflow = heap
                .into_iter()
                .filter(|Reverse(e)| pending.contains(e.seq))
                .collect();
        }
        self.dead = 0;
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle_due();
        self.due.front().map(|e| e.at)
    }

    /// Remove and return the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.settle_due();
        let e = self.due.pop_front()?;
        self.pending.remove(e.seq);
        Some((e.at, e.event))
    }

    /// Pop every live event at the earliest pending instant, provided
    /// that instant is at or before `deadline`; append them to `out`
    /// in sequence order and return the instant. Equivalent to popping
    /// one at a time while `peek_time()` stays equal — the per-instant
    /// batch dispatch `Sim::pop_batch` is built on — but settles the
    /// due queue once per *instant* instead of twice per *event*.
    /// Same-instant completeness needs no wheel re-scan: every stored
    /// entry at or before the cursor is already in `due`, and the
    /// wheel/overflow only hold strictly later times.
    pub fn pop_instant_into(
        &mut self,
        deadline: SimTime,
        out: &mut Vec<(SimTime, E)>,
    ) -> Option<SimTime> {
        self.settle_due();
        let at = match self.due.front() {
            Some(f) if f.at <= deadline => f.at,
            _ => return None,
        };
        loop {
            let e = self.due.pop_front().expect("settled front vanished"); // lint: allow(panic-freedom): due was observed non-empty under the same borrow
            self.pending.remove(e.seq);
            out.push((e.at, e.event));
            // Skip tombstones to reach the next live entry (mirrors
            // `settle_due`, including the seeded-defect behavior).
            while let Some(f) = self.due.front() {
                if self.pending.contains(f.seq)
                    || self.mutation == QueueMutation::ResurrectCancelled
                {
                    break;
                }
                self.due.pop_front();
                self.dead -= 1;
            }
            match self.due.front() {
                Some(f) if f.at == at => {}
                _ => break,
            }
        }
        Some(at)
    }

    /// Ensure the front of `due` is the earliest *live* entry, pulling
    /// from the wheel and overflow as needed.
    fn settle_due(&mut self) {
        loop {
            // Skip tombstones at the front.
            while let Some(front) = self.due.front() {
                if self.pending.contains(front.seq)
                    || self.mutation == QueueMutation::ResurrectCancelled
                {
                    return;
                }
                self.due.pop_front();
                self.dead -= 1;
            }
            if !self.advance_wheel() {
                return;
            }
        }
    }

    /// Advance the cursor one step: migrate matured overflow entries,
    /// then either drain the next level-0 bucket into `due` or cascade
    /// the next occupied higher-level slot down. Returns `false` when
    /// nothing is stored anywhere.
    fn advance_wheel(&mut self) -> bool {
        // Overflow entries whose time fell inside the top-level window
        // (the cursor advanced since they were parked) re-enter the
        // wheel so they interleave correctly with near events.
        let span = slot_width(LEVELS - 1) << LEVEL_BITS; // 64^LEVELS
        // Inclusive last instant of the cursor's top-level window —
        // saturating, so events at u64::MAX migrate once the cursor's
        // window reaches them instead of being stranded by overflow.
        let window_last = (self.cur & !(span - 1)).saturating_add(span - 1);
        while let Some(Reverse(top)) = self.overflow.peek() {
            if top.at.0 > window_last {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked entry vanished"); // lint: allow(panic-freedom): pop follows a successful peek under the same borrow
            self.place(e);
        }
        if !self.due.is_empty() {
            return true;
        }
        // Find the earliest occupied slot, lowest level first. Slots
        // behind the cursor's digit are always empty (already drained
        // or cascaded), so a masked trailing_zeros finds the next one.
        for level in 0..LEVELS {
            let from = slot_index(self.cur, level);
            let bits = self.occupied[level] & (!0u64 << from);
            if bits == 0 {
                continue;
            }
            let slot = bits.trailing_zeros() as usize;
            self.occupied[level] &= !(1 << slot);
            if level == 0 {
                // One exact timestamp: drain to due in seq order. The
                // drain is in place (disjoint fields), so the bucket
                // keeps its capacity.
                self.cur = (self.cur & !(SLOTS as u64 - 1)) | slot as u64;
                let cur = self.cur;
                let pending = &self.pending;
                let mut dead = 0;
                for e in self.buckets[slot].drain(..) {
                    if pending.contains(e.seq) {
                        debug_assert_eq!(e.at.0, cur);
                        self.due.push_back(e);
                    } else {
                        dead += 1;
                    }
                }
                self.dead -= dead;
                // Singleton drains (the sparse-timestamp common case)
                // are trivially sorted; skip the contiguity shuffle.
                if self.due.len() > 1 && self.mutation != QueueMutation::UnsortedDrain {
                    self.due.make_contiguous().sort_unstable_by_key(|e| e.seq);
                }
            } else if self.buckets[level * SLOTS + slot].len() == 1 {
                // Singleton fast path — the sparse-timestamp common
                // case. This entry is the earliest stored event
                // anywhere: lower levels held nothing at or ahead of
                // the cursor, other slots and higher levels start
                // strictly later, the overflow was migrated down to
                // strictly beyond the top-level window, and `due` is
                // empty. Jump the cursor straight to its instant and
                // stage it, skipping the level-by-level re-filing.
                let e = self.buckets[level * SLOTS + slot].pop().expect("occupied slot was empty"); // lint: allow(panic-freedom): len() == 1 was just observed under the same borrow
                if self.pending.contains(e.seq) {
                    self.cur = e.at.0;
                    self.due.push_back(e);
                } else {
                    self.dead -= 1;
                }
            } else {
                // Cascade: move the cursor to the slot's start and
                // re-file its entries one level (or more) down. The
                // re-filing needs `place` (&mut self), so the bucket
                // is swapped out through the spill buffer — and its
                // own capacity is swapped back afterwards (`place`
                // never targets this slot again: every cascaded
                // entry's differing digit now sits below `level`).
                let level_span = slot_width(level) << LEVEL_BITS;
                self.cur =
                    (self.cur & !(level_span - 1)) + (slot as u64) * slot_width(level);
                let mut bucket = std::mem::take(&mut self.spill);
                std::mem::swap(&mut bucket, &mut self.buckets[level * SLOTS + slot]);
                for e in bucket.drain(..) {
                    if self.pending.contains(e.seq) {
                        self.place(e);
                    } else {
                        self.dead -= 1;
                    }
                }
                std::mem::swap(&mut bucket, &mut self.buckets[level * SLOTS + slot]);
                self.spill = bucket;
            }
            return true;
        }
        // Wheel empty: jump the cursor to the earliest overflow entry.
        // Drain EVERY entry at that instant, not just the top — the
        // invariant "overflow holds only times strictly after the
        // cursor" is what stops a later same-instant schedule (which
        // goes straight to `due`) from cutting ahead of an older event
        // still parked here.
        let jump_to = match self.overflow.peek() {
            Some(Reverse(top)) => top.at.0,
            None => return false,
        };
        self.cur = jump_to;
        while let Some(Reverse(top)) = self.overflow.peek() {
            if top.at.0 != self.cur {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked entry vanished"); // lint: allow(panic-freedom): pop follows a successful peek under the same borrow
            if self.pending.contains(e.seq) {
                self.place(e); // lands in due (at == cur), seq-ascending
            } else {
                self.dead -= 1;
            }
        }
        true
    }

    /// Drop every pending event. The cursor is retained, so the queue
    /// keeps accepting schedules relative to the owning simulator's
    /// clock.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.occupied = [0; LEVELS];
        self.due.clear();
        self.overflow.clear();
        self.pending.clear();
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn cancel_pending() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime(2), "b")));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), 1);
        q.schedule(SimTime(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.pop(), Some((SimTime(2), 2)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime(1), 1);
        q.schedule(SimTime(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_removes_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 1);
        q.schedule(SimTime(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_heavy_churn_keeps_heap_bounded() {
        // Regression: lazy cancellation used to leave tombstones in the
        // heap forever, so a cancel/reschedule loop (timer churn) grew
        // storage without bound. With compaction it stays within a
        // small multiple of the live-event count.
        let mut q = EventQueue::new();
        let mut live: Vec<EventId> = (0..32)
            .map(|i| q.schedule(SimTime(1_000 + i), i))
            .collect();
        // Miri interprets ~100x slower; a few hundred rounds still
        // crosses several compaction cycles.
        let rounds: u64 = if cfg!(miri) { 256 } else { 10_000 };
        for round in 0..rounds {
            let slot = (round % 32) as usize;
            assert!(q.cancel(live[slot]));
            live[slot] = q.schedule(SimTime(2_000 + round), round);
            assert_eq!(q.len(), 32);
            assert!(
                q.heap_len() <= 2 * q.len().max(64),
                "round {round}: stored {} for {} live events",
                q.heap_len(),
                q.len()
            );
        }
        // The queue still pops everything, in time order.
        let mut last = SimTime(0);
        let mut popped = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
            popped += 1;
        }
        assert_eq!(popped, 32);
    }

    #[test]
    fn compaction_preserves_pop_order() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..512u64 {
            let id = q.schedule(SimTime(10_000 - i * 10), i);
            if i % 7 == 0 {
                keep.push((SimTime(10_000 - i * 10), i));
            } else {
                q.cancel(id); // triggers compaction along the way
            }
        }
        keep.sort();
        for expected in keep {
            assert_eq!(q.pop(), Some(expected));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(10), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        q.schedule(SimTime(10), 3);
        // 2 was scheduled before 3, same timestamp.
        assert_eq!(q.pop(), Some((SimTime(10), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 3)));
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        // Beyond 64^6 ns the wheel parks events in the overflow heap;
        // they must still pop in global order, including a "never"
        // timer at SimTime::MAX.
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "never");
        q.schedule(SimTime(90_000_000_000), "90s");
        q.schedule(SimTime(5), "soon");
        q.schedule(SimTime(70_000_000_000), "70s");
        assert_eq!(q.pop(), Some((SimTime(5), "soon")));
        assert_eq!(q.pop(), Some((SimTime(70_000_000_000), "70s")));
        assert_eq!(q.pop(), Some((SimTime(90_000_000_000), "90s")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "never")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_ties_survive_overflow_jump() {
        // Regression (found by the differential harness): two events at
        // the same beyond-horizon instant, one drained by a cursor
        // jump, plus a later direct schedule at that instant. The one
        // still in overflow must not be overtaken.
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, 0);
        q.schedule(SimTime::MAX, 1);
        assert_eq!(q.pop(), Some((SimTime::MAX, 0)));
        q.schedule(SimTime::MAX, 2);
        assert_eq!(q.pop(), Some((SimTime::MAX, 1)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cascade_preserves_fifo_ties() {
        // Two events at the same far instant, scheduled at different
        // cursor positions: one cascades in from a high level, the
        // other is filed after pops advanced the cursor. Seq order
        // must survive.
        let mut q = EventQueue::new();
        q.schedule(SimTime(100_000), 1); // far: lands in a high level
        q.schedule(SimTime(10), 0);
        assert_eq!(q.pop(), Some((SimTime(10), 0)));
        q.schedule(SimTime(100_000), 2); // nearer cursor now
        q.schedule(SimTime(100_000), 3);
        assert_eq!(q.pop(), Some((SimTime(100_000), 1)));
        assert_eq!(q.pop(), Some((SimTime(100_000), 2)));
        assert_eq!(q.pop(), Some((SimTime(100_000), 3)));
    }

    #[test]
    fn schedule_at_cursor_after_pop() {
        // An event scheduled exactly at the cursor (a same-instant
        // follow-up) pops after everything already due at that instant.
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), "a");
        q.schedule(SimTime(50), "b");
        assert_eq!(q.pop(), Some((SimTime(50), "a")));
        q.schedule(SimTime(50), "c");
        assert_eq!(q.pop(), Some((SimTime(50), "b")));
        assert_eq!(q.pop(), Some((SimTime(50), "c")));
    }

    #[test]
    fn peek_is_stable_and_nondestructive() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), 7);
        q.schedule(SimTime(3), 3);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime(3), 3)));
        assert_eq!(q.peek_time(), Some(SimTime(7)));
    }
}
