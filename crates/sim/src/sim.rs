//! The simulation executor.
//!
//! [`Sim`] owns the clock, the future-event queue and the root random
//! stream. The owner (e.g. `ampnet-core`'s `Cluster`) drives the loop:
//!
//! ```
//! use ampnet_sim::{Sim, SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim: Sim<Ev> = Sim::new(42);
//! sim.schedule_in(SimDuration::from_micros(5), Ev::Ping(1));
//! let mut seen = vec![];
//! while let Some((t, ev)) = sim.pop_next(SimTime::MAX) {
//!     match ev { Ev::Ping(n) => seen.push((t, n)) }
//! }
//! assert_eq!(seen, vec![(SimTime(5_000), 1)]);
//! ```
//!
//! `pop_next` advances `now` to the event's timestamp, so handlers can
//! schedule follow-up events relative to the current instant.

use crate::queue::{EventId, EventQueue};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Deterministic discrete-event simulator core.
#[derive(Debug)]
pub struct Sim<E> {
    queue: EventQueue<E>,
    now: SimTime,
    rng: SimRng,
    processed: u64,
    seed: u64,
}

impl<E> Sim<E> {
    /// Create a simulator whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            processed: 0,
            seed,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The root random stream (derive labelled sub-streams from this).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedule an event at an absolute instant. Scheduling in the past
    /// panics: that is always a model bug.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Schedule an event `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancel a pending event; `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Time of the next pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pop the next event at or before `deadline`, advancing the clock
    /// to its timestamp. Returns `None` when the queue is empty or the
    /// next event lies beyond the deadline (the clock then advances to
    /// the deadline itself, so repeated calls are monotonic).
    pub fn pop_next(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => {
                let (at, ev) = self.queue.pop().expect("peeked event vanished"); // lint: allow(panic-freedom): pop follows a successful peek in the same critical section
                debug_assert!(at >= self.now, "event queue yielded a past event");
                self.now = at;
                self.processed += 1;
                Some((at, ev))
            }
            _ => {
                if deadline > self.now && deadline != SimTime::MAX {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Drain the whole batch of events sharing the earliest pending
    /// timestamp at or before `deadline` into `out`, advancing the
    /// clock to that instant. Returns how many events were drained
    /// (0 behaves exactly like [`Sim::pop_next`] returning `None`).
    ///
    /// Order is identical to repeated `pop_next` calls: the queue
    /// breaks timestamp ties by schedule order, and anything a handler
    /// schedules *for the current instant* gets a later sequence
    /// number, so it lands in the *next* batch — exactly where
    /// one-at-a-time popping would place it. Batch dispatch is
    /// therefore bit-for-bit equivalent while touching the heap once
    /// per instant instead of once per event.
    pub fn pop_batch(&mut self, deadline: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let before = out.len();
        match self.queue.pop_instant_into(deadline, out) {
            Some(at) => {
                self.now = at;
                let n = out.len() - before;
                self.processed += n as u64;
                n
            }
            None => {
                if deadline > self.now && deadline != SimTime::MAX {
                    self.now = deadline;
                }
                0
            }
        }
    }

    /// Drop all pending events (used when tearing a scenario down).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim: Sim<Ev> = Sim::new(1);
        sim.schedule_in(SimDuration::from_nanos(10), Ev::A);
        sim.schedule_in(SimDuration::from_nanos(20), Ev::B);
        let (t1, e1) = sim.pop_next(SimTime::MAX).unwrap();
        assert_eq!((t1, e1), (SimTime(10), Ev::A));
        assert_eq!(sim.now(), SimTime(10));
        let (t2, _) = sim.pop_next(SimTime::MAX).unwrap();
        assert_eq!(t2, SimTime(20));
        assert!(sim.pop_next(SimTime::MAX).is_none());
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn deadline_stops_and_advances_clock() {
        let mut sim: Sim<Ev> = Sim::new(1);
        sim.schedule_at(SimTime(100), Ev::A);
        assert!(sim.pop_next(SimTime(50)).is_none());
        assert_eq!(sim.now(), SimTime(50), "clock advances to deadline");
        assert!(sim.pop_next(SimTime(100)).is_some());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<Ev> = Sim::new(1);
        sim.schedule_at(SimTime(10), Ev::A);
        sim.pop_next(SimTime::MAX);
        sim.schedule_at(SimTime(5), Ev::B);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim: Sim<Ev> = Sim::new(1);
        let id = sim.schedule_at(SimTime(10), Ev::A);
        sim.schedule_at(SimTime(20), Ev::B);
        assert!(sim.cancel(id));
        let (t, ev) = sim.pop_next(SimTime::MAX).unwrap();
        assert_eq!((t, ev), (SimTime(20), Ev::B));
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule_at(SimTime(1), 0);
        let mut fired = vec![];
        while let Some((_, n)) = sim.pop_next(SimTime::MAX) {
            fired.push(n);
            if n < 4 {
                sim.schedule_in(SimDuration::from_nanos(1), n + 1);
            }
        }
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.now(), SimTime(5));
    }

    #[test]
    fn pop_batch_matches_pop_next_order() {
        fn seeded(seed: u64) -> Sim<u32> {
            let mut sim: Sim<u32> = Sim::new(seed);
            for i in 0..50 {
                let d = sim.rng().below(8); // dense timestamp ties
                sim.schedule_in(SimDuration::from_nanos(d), i);
            }
            sim
        }
        let mut one = seeded(9);
        let mut serial = vec![];
        while let Some((t, n)) = one.pop_next(SimTime::MAX) {
            serial.push((t, n));
            if n < 60 {
                one.schedule_in(SimDuration::ZERO, n + 100); // same-instant followup
            }
        }
        let mut batched_sim = seeded(9);
        let mut batched = vec![];
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if batched_sim.pop_batch(SimTime::MAX, &mut buf) == 0 {
                break;
            }
            for &(t, n) in &buf {
                batched.push((t, n));
                if n < 60 {
                    batched_sim.schedule_in(SimDuration::ZERO, n + 100);
                }
            }
        }
        assert_eq!(serial, batched, "batch dispatch preserves global order");
        assert_eq!(one.processed(), batched_sim.processed());
    }

    #[test]
    fn pop_batch_respects_deadline() {
        let mut sim: Sim<Ev> = Sim::new(1);
        sim.schedule_at(SimTime(100), Ev::A);
        sim.schedule_at(SimTime(100), Ev::B);
        let mut buf = Vec::new();
        assert_eq!(sim.pop_batch(SimTime(50), &mut buf), 0);
        assert_eq!(sim.now(), SimTime(50), "clock advances to deadline");
        assert_eq!(sim.pop_batch(SimTime(100), &mut buf), 2);
        assert_eq!(sim.now(), SimTime(100));
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim: Sim<u8> = Sim::new(seed);
            let mut out = vec![];
            for _ in 0..10 {
                let d = sim.rng().below(100);
                sim.schedule_in(SimDuration::from_nanos(d), 0);
            }
            while let Some((t, _)) = sim.pop_next(SimTime::MAX) {
                out.push(t.as_nanos());
            }
            out
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
