//! # ampnet-sim — deterministic discrete-event simulation kernel
//!
//! The AmpNet reproduction measures protocol-level time (rostering
//! completes in two ring-tour times; failover takes milliseconds), so
//! the whole network runs inside a deterministic discrete-event
//! simulation. This crate is the kernel every other crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution clock.
//! * [`EventQueue`] — deterministic future-event list with FIFO
//!   tie-breaking and O(1) timer cancellation.
//! * [`Sim`] — executor: clock + queue + seeded randomness.
//! * [`SimRng`] — labelled ChaCha8 streams; independent randomness per
//!   subsystem so experiments are reproducible and comparable.
//! * [`Histogram`], [`Counter`], [`jain_fairness`] — the measurement
//!   primitives the benchmark harness reports.
//! * [`Trace`] — bounded milestone log for debugging scenarios.
//!
//! Determinism contract: for a fixed seed and identical inputs, every
//! simulation in this workspace produces bit-identical results. Nothing
//! in this crate reads wall-clock time or global state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod digest;
mod queue;
mod queue_heap;
mod rng;
mod seqhash;
mod seqset;
#[allow(clippy::module_inception)]
mod sim;
mod stats;
mod time;
mod trace;

pub use digest::{fnv64, Fnv64};
pub use queue::{EventId, EventQueue};
#[doc(hidden)]
pub use queue::QueueMutation;
pub use queue_heap::HeapEventQueue;
pub use rng::SimRng;
pub use seqhash::{SeqHashBuilder, SeqHasher};
pub use sim::Sim;
pub use stats::{jain_fairness, mean, stddev, Counter, Histogram, Throughput};
pub use time::{SimDuration, SimTime};
pub use trace::{Level, Trace, TraceEntry};

// Shard-confinement contract for the parallel multi-segment engine:
// every kernel type is `Send`, so a whole simulator (and the `Cluster`
// built on it) can be moved to — and advanced by — a worker thread.
// None of them is shared between threads (`Sync` is not required); each
// shard's kernel is owned by exactly one worker per time slice. These
// compile-time assertions keep a stray `Rc`/`RefCell` from silently
// re-entering the kernel and breaking the threaded engine.
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<Sim<u64>>();
const _: () = _assert_send::<EventQueue<u64>>();
const _: () = _assert_send::<HeapEventQueue<u64>>();
const _: () = _assert_send::<SimRng>();
const _: () = _assert_send::<Trace>();
