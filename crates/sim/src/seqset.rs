//! Sliding-window liveness set for monotonically issued sequence
//! numbers.
//!
//! The timer wheel tags every scheduled event with a strictly
//! increasing `seq` and needs a membership set for lazy cancellation:
//! insert on schedule, remove on pop/cancel, contains on tombstone
//! checks. A hash set answers those in ~tens of ns; but because seqs
//! are issued densely in order and almost all events die young, the
//! live ids at any instant sit inside a narrow moving window. This
//! set stores exactly that window as a bitmap — one `u64` block per
//! 64 seqs — so every operation is a shift and a mask.
//!
//! Storage is O(newest seq − oldest live seq), not O(live): a single
//! long-lived event pins the window open while later seqs are issued.
//! For event-queue workloads that span is bounded by (longest event
//! lifetime × schedule rate); fully drained windows reset to nothing.
//! Iteration order is never exposed, so swapping this in for a hash
//! set cannot perturb any observable schedule.

use std::collections::VecDeque;

/// Membership set over `u64` sequence numbers that are inserted in
/// strictly increasing order (removal and lookup are unrestricted).
#[derive(Debug, Default)]
pub(crate) struct SeqWindow {
    /// Bitmap blocks; block `k` covers seqs
    /// `[(first_block + k) * 64, (first_block + k + 1) * 64)`.
    blocks: VecDeque<u64>,
    /// Block index of `blocks[0]`.
    first_block: u64,
    /// Live-bit count.
    live: usize,
}

impl SeqWindow {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert `seq`. Seqs must arrive in strictly increasing order
    /// (the wheel's `next_seq` counter guarantees it).
    pub(crate) fn insert(&mut self, seq: u64) {
        let block = seq >> 6;
        if self.blocks.is_empty() {
            // Fully drained: realign the window instead of paving the
            // idle gap with zero blocks.
            self.first_block = block;
            self.blocks.push_back(0);
        } else {
            debug_assert!(block >= self.first_block, "seq issued out of order");
            while self.first_block + self.blocks.len() as u64 <= block {
                self.blocks.push_back(0);
            }
        }
        let idx = (block - self.first_block) as usize;
        let mask = 1u64 << (seq & 63);
        debug_assert_eq!(self.blocks[idx] & mask, 0, "seq inserted twice");
        self.blocks[idx] |= mask;
        self.live += 1;
    }

    /// Remove `seq`; `true` if it was present. The window's front
    /// advances past blocks that drain to zero, keeping storage
    /// proportional to the live span.
    pub(crate) fn remove(&mut self, seq: u64) -> bool {
        let block = seq >> 6;
        if block < self.first_block {
            return false;
        }
        let idx = (block - self.first_block) as usize;
        if idx >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << (seq & 63);
        if self.blocks[idx] & mask == 0 {
            return false;
        }
        self.blocks[idx] &= !mask;
        self.live -= 1;
        while self.blocks.front() == Some(&0) {
            self.blocks.pop_front();
            self.first_block += 1;
        }
        true
    }

    pub(crate) fn contains(&self, seq: u64) -> bool {
        let block = seq >> 6;
        if block < self.first_block {
            return false;
        }
        let idx = (block - self.first_block) as usize;
        idx < self.blocks.len() && self.blocks[idx] & (1u64 << (seq & 63)) != 0
    }

    pub(crate) fn clear(&mut self) {
        self.blocks.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet; // lint: allow(nondeterminism): test-only membership oracle, never iterated

    #[test]
    fn basic_membership() {
        let mut s = SeqWindow::new();
        for seq in 0..200 {
            s.insert(seq);
        }
        assert_eq!(s.len(), 200);
        assert!(s.contains(0) && s.contains(199));
        assert!(!s.contains(200));
        assert!(s.remove(5));
        assert!(!s.remove(5), "double remove is false");
        assert!(!s.contains(5));
        assert_eq!(s.len(), 199);
    }

    #[test]
    fn window_advances_and_realigns() {
        let mut s = SeqWindow::new();
        for seq in 0..1000 {
            s.insert(seq);
        }
        for seq in 0..1000 {
            assert!(s.remove(seq));
        }
        assert!(s.is_empty());
        assert!(s.blocks.is_empty(), "drained window frees its blocks");
        // Re-insert far ahead: the window realigns, no gap paving.
        s.insert(1 << 40);
        assert_eq!(s.blocks.len(), 1);
        assert!(s.contains(1 << 40));
        assert!(!s.contains(999), "pre-gap seqs read as dead");
        assert!(!s.remove(999));
    }

    #[test]
    fn storage_tracks_live_span_not_history() {
        let mut s = SeqWindow::new();
        // FIFO churn: insert k+64, remove k — span stays ~64.
        for seq in 0..64u64 {
            s.insert(seq);
        }
        let top: u64 = if cfg!(miri) { 2_000 } else { 100_000 };
        for seq in 64..top {
            s.insert(seq);
            assert!(s.remove(seq - 64));
        }
        assert!(s.blocks.len() <= 3, "span-bounded: {} blocks", s.blocks.len());
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn matches_hash_set_under_churn() {
        let mut s = SeqWindow::new();
        let mut oracle: HashSet<u64> = HashSet::new(); // lint: allow(nondeterminism): membership-only test oracle, never iterated
        let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
        let n: u64 = if cfg!(miri) { 500 } else { 10_000 };
        for seq in 0..n {
            s.insert(seq);
            oracle.insert(seq);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Remove a pseudorandom recent seq (maybe already gone).
            let victim = seq.saturating_sub(x >> 56);
            assert_eq!(s.remove(victim), oracle.remove(&victim), "seq {victim}");
            let probe = seq.saturating_sub((x >> 48) & 0xFF);
            assert_eq!(s.contains(probe), oracle.contains(&probe), "seq {probe}");
            assert_eq!(s.len(), oracle.len());
        }
    }
}
