//! Lightweight event tracing.
//!
//! Subsystems log milestone events (roster phase changes, failover
//! decisions) into a bounded ring buffer. Tracing is off by default and
//! costs one branch when disabled, so it can stay compiled into release
//! simulations.

use crate::digest::Fnv64;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Severity of a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained protocol events.
    Debug,
    /// Milestones (roster phases, failover decisions).
    Info,
    /// Anomalies (drops, disparity errors, timeouts).
    Warn,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Debug => write!(f, "DEBUG"),
            Level::Info => write!(f, "INFO"),
            Level::Warn => write!(f, "WARN"),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (static label, e.g. "roster").
    pub subsystem: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:5} {:<8} {}",
            self.at.to_string(),
            self.level,
            self.subsystem,
            self.message
        )
    }
}

/// Bounded trace ring buffer.
#[derive(Debug)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    min_level: Option<Level>,
    dropped: u64,
    digest: u64,
    accepted: u64,
}

impl Trace {
    /// A disabled trace: all `log` calls are no-ops.
    pub fn disabled() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: 0,
            min_level: None,
            dropped: 0,
            digest: Fnv64::new().finish(),
            accepted: 0,
        }
    }

    /// An enabled trace retaining the most recent `capacity` entries at
    /// or above `min_level`.
    pub fn enabled(capacity: usize, min_level: Level) -> Self {
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            min_level: Some(min_level),
            dropped: 0,
            digest: Fnv64::new().finish(),
            accepted: 0,
        }
    }

    /// Whether entries at `level` would be recorded.
    #[inline]
    pub fn wants(&self, level: Level) -> bool {
        matches!(self.min_level, Some(min) if level >= min)
    }

    /// Record an entry. Callers on hot paths should guard with
    /// [`Trace::wants`] to avoid building the message string.
    pub fn log(&mut self, at: SimTime, level: Level, subsystem: &'static str, message: String) {
        if !self.wants(level) {
            return;
        }
        // Fold into the running digest before any capacity eviction so
        // the digest covers every accepted entry, not just the retained
        // window.
        let mut h = Fnv64::from_state(self.digest);
        h.fold_u64(at.0)
            .fold_u8(level as u8)
            .fold(subsystem.as_bytes())
            .fold(message.as_bytes());
        self.digest = h.finish();
        self.accepted += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            level,
            subsystem,
            message,
        });
    }

    /// FNV-64 digest over every accepted entry (time, level, subsystem,
    /// message), in log order. Independent of the capacity bound — two
    /// traces that accepted the same entry stream have the same digest
    /// even if one evicted more aggressively. Used by the chaos engine
    /// as a deterministic replay fingerprint.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Total entries accepted (including ones since evicted).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Render all retained entries, one per line (oldest first).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("{e}\n"));
        }
        out
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of entries evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.log(SimTime(1), Level::Warn, "ring", "x".into());
        assert!(t.is_empty());
        assert!(!t.wants(Level::Warn));
    }

    #[test]
    fn level_filtering() {
        let mut t = Trace::enabled(10, Level::Info);
        t.log(SimTime(1), Level::Debug, "ring", "nope".into());
        t.log(SimTime(2), Level::Info, "ring", "yes".into());
        t.log(SimTime(3), Level::Warn, "ring", "also".into());
        assert_eq!(t.len(), 2);
        assert!(t.wants(Level::Warn));
        assert!(!t.wants(Level::Debug));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::enabled(3, Level::Debug);
        for i in 0..5u64 {
            t.log(SimTime(i), Level::Info, "x", format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.entries().next().unwrap();
        assert_eq!(first.message, "m2");
    }

    #[test]
    fn digest_is_eviction_independent() {
        let mut small = Trace::enabled(2, Level::Debug);
        let mut large = Trace::enabled(100, Level::Debug);
        for i in 0..10u64 {
            small.log(SimTime(i), Level::Info, "x", format!("m{i}"));
            large.log(SimTime(i), Level::Info, "x", format!("m{i}"));
        }
        assert!(small.dropped() > 0);
        assert_eq!(large.dropped(), 0);
        assert_eq!(small.digest(), large.digest());
        assert_eq!(small.accepted(), 10);
    }

    #[test]
    fn digest_sensitive_to_content() {
        let mut a = Trace::enabled(10, Level::Debug);
        let mut b = Trace::enabled(10, Level::Debug);
        a.log(SimTime(1), Level::Info, "x", "one".into());
        b.log(SimTime(1), Level::Info, "x", "two".into());
        assert_ne!(a.digest(), b.digest());

        let mut c = Trace::enabled(10, Level::Debug);
        let mut d = Trace::enabled(10, Level::Debug);
        c.log(SimTime(1), Level::Info, "x", "one".into());
        d.log(SimTime(2), Level::Info, "x", "one".into());
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn dump_renders_lines() {
        let mut t = Trace::enabled(10, Level::Debug);
        t.log(SimTime(1), Level::Info, "ring", "hello".into());
        t.log(SimTime(2), Level::Warn, "ring", "world".into());
        let s = t.dump();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("hello"));
    }

    #[test]
    fn display_formats() {
        let e = TraceEntry {
            at: SimTime(1500),
            level: Level::Warn,
            subsystem: "roster",
            message: "link down".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("WARN"));
        assert!(s.contains("roster"));
        assert!(s.contains("link down"));
    }
}
