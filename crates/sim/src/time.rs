//! Simulated time.
//!
//! All AmpNet simulations run on a single monotonically increasing clock
//! with nanosecond resolution. Nanoseconds are fine-grained enough to
//! express single 8b/10b word times on a 1.0625 Gbaud link (~37.6 ns)
//! while a `u64` still covers ~584 years of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Span in whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// This duration expressed as a multiple of `unit` (e.g. a recovery
    /// time in ring-tour units). Returns `f64::INFINITY` for a zero unit.
    pub fn in_units_of(self, unit: SimDuration) -> f64 {
        if unit.0 == 0 {
            f64::INFINITY
        } else {
            self.0 as f64 / unit.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        let t2 = t + SimDuration::from_nanos(500);
        assert_eq!((t2 - t).as_nanos(), 500);
        assert_eq!(t2 - SimDuration::from_nanos(500), t);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime(100);
        let late = SimTime(400);
        assert_eq!(late.saturating_since(early).as_nanos(), 300);
        assert_eq!(early.saturating_since(late).as_nanos(), 0);
    }

    #[test]
    fn in_units_of() {
        let d = SimDuration::from_micros(30);
        let unit = SimDuration::from_micros(15);
        assert!((d.in_units_of(unit) - 2.0).abs() < 1e-12);
        assert!(d.in_units_of(SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimDuration::from_nanos(7)), "7ns");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn conversions_f64() {
        let d = SimDuration::from_millis(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
        assert!((d.as_micros_f64() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_nanos(12);
        assert_eq!((d * 3).as_nanos(), 36);
        assert_eq!((d / 4).as_nanos(), 3);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)).is_none());
        assert_eq!(
            SimTime(5).checked_add(SimDuration::from_nanos(5)),
            Some(SimTime(10))
        );
    }
}
