//! A fixed-key hasher for the event queues' pending-sequence sets.
//!
//! The queues track live sequence numbers in a membership-only
//! `HashSet<u64>` (never iterated, so hash order cannot influence the
//! schedule). `std`'s default SipHash is overkill for that: with 3–5
//! set operations per simulated event it showed up as the single
//! largest leaf in the serial scale-bench profile. Sequence numbers
//! are dense counters, so a single SplitMix64 finalizer gives full
//! avalanche at a fraction of the cost — and, being unkeyed, it also
//! makes the set's internal layout identical across processes, which
//! SipHash's per-process random key deliberately is not. HashDoS
//! resistance is irrelevant here: the keys come from our own counter.

use std::hash::{BuildHasher, Hasher};

/// `BuildHasher` producing [`SeqHasher`]s. Zero-sized and stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqHashBuilder;

impl BuildHasher for SeqHashBuilder {
    type Hasher = SeqHasher;

    fn build_hasher(&self) -> SeqHasher {
        SeqHasher { state: 0 }
    }
}

/// SplitMix64-finalizer hasher; one multiply-xorshift round per `u64`.
#[derive(Debug, Clone, Copy)]
pub struct SeqHasher {
    state: u64,
}

/// SplitMix64 finalizer (Vigna): full avalanche on 64 bits.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Hasher for SeqHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (unused by the u64 pending sets, but required
        // for a complete Hasher): fold 8-byte chunks through the mixer.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = mix(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = mix(self.state ^ n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet; // lint: allow(nondeterminism): test-only membership oracle, never iterated

    #[test]
    fn u64_roundtrip_membership() {
        let mut s: HashSet<u64, SeqHashBuilder> = HashSet::default(); // lint: allow(nondeterminism): membership-only test set behind the fixed-key hasher under test
        let n: u64 = if cfg!(miri) { 512 } else { 10_000 };
        for i in 0..n {
            assert!(s.insert(i));
        }
        for i in 0..n {
            assert!(s.contains(&i), "{i}");
            assert!(s.remove(&i));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn dense_counters_spread() {
        // Consecutive counters must not collide in the low bits the
        // table actually indexes with.
        let mut low7 = HashSet::new(); // lint: allow(nondeterminism): counts distinct values only; iteration order never observed
        for i in 0..128u64 {
            let mut h = SeqHashBuilder.build_hasher();
            h.write_u64(i);
            low7.insert(h.finish() & 0x7F);
        }
        // A random function maps 128 inputs onto ~81 of 128 buckets
        // (birthday bound: 128·(1−(127/128)^128)); a funneling
        // finalizer collapses far below that.
        assert!(low7.len() > 70, "only {} distinct low bits", low7.len());
    }

    #[test]
    fn write_matches_write_u64_for_8_bytes() {
        let mut a = SeqHashBuilder.build_hasher();
        a.write_u64(0xDEAD_BEEF_1234_5678);
        let mut b = SeqHashBuilder.build_hasher();
        b.write(&0xDEAD_BEEF_1234_5678u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
