//! Failure detection (slides 16, 18): "network failures detected by
//! hardware", "algorithm starts automatically whenever a failure is
//! detected".
//!
//! The ring is a chain of circuits through the switches. When a
//! component dies, the receivers downstream of every broken hop lose
//! light and report within the hardware detection window. Failures of
//! *spare* components (a fiber not carrying the current ring) do not
//! dim any ring light; they are caught by the slower background
//! diagnostic sweep and do not trigger emergency rostering.

use crate::params::RosterParams;
use ampnet_sim::SimDuration;
use ampnet_topo::montecarlo::Component;
use ampnet_topo::{LogicalRing, NodeId, Topology};

/// How a failure was (or would be) noticed.
#[derive(Debug, Clone, PartialEq)]
pub enum Detection {
    /// One or more ring hops went dark; these alive nodes saw their
    /// receivers lose light within `delay`.
    LossOfLight {
        /// Alive nodes whose upstream hop broke, ascending id.
        detectors: Vec<NodeId>,
        /// Hardware detection latency.
        delay: SimDuration,
    },
    /// The ring still passes light but the node stopped participating
    /// (e.g. it is marked dead without a fiber fault); caught by
    /// missed heartbeats.
    Heartbeat {
        /// Nodes that notice the silence (everyone else on the ring).
        detectors: Vec<NodeId>,
        /// Heartbeat timeout latency.
        delay: SimDuration,
    },
    /// The failed component is not on the current ring: no light dims,
    /// no urgency; the background sweep will log it.
    SpareOnly,
}

/// Determine how the current `ring` notices `failed` (which has
/// already been applied to `topo`).
pub fn detect(
    topo: &Topology,
    ring: &LogicalRing,
    failed: Component,
    params: &RosterParams,
) -> Detection {
    if ring.is_empty() {
        return Detection::SpareOnly;
    }
    let n = ring.order.len();
    let mut detectors: Vec<NodeId> = vec![];
    for i in 0..n {
        let u = ring.order[i];
        let v = ring.order[(i + 1) % n];
        let s = ring.hops[i];
        // The hop u →(s)→ v is dark if u cannot drive it or the path
        // is severed. The downstream receiver v detects, if alive.
        let broken = !topo.node_alive(u)
            || !topo.switch_alive(s)
            || !topo.link(u, s).map(|l| l.up).unwrap_or(false)
            || !topo.link(v, s).map(|l| l.up).unwrap_or(false);
        if broken && topo.node_alive(v) && !detectors.contains(&v) {
            detectors.push(v);
        }
    }
    if !detectors.is_empty() {
        detectors.sort();
        return Detection::LossOfLight {
            detectors,
            delay: params.detect_loss_of_light,
        };
    }
    // No dark hop was seen by a live receiver. If the ring is
    // nevertheless no longer valid (a member died with its lasers
    // still lit, or the ring's last member died so nobody was left
    // downstream to see the dark), surviving connectable nodes notice
    // the silence of the periodic ring heartbeats and start rostering.
    let _ = failed;
    if ring.validate(topo).is_err() {
        let detectors: Vec<NodeId> = topo
            .node_ids()
            .filter(|&n| topo.node_alive(n) && topo.switch_mask(n) != 0)
            .collect();
        if !detectors.is_empty() {
            return Detection::Heartbeat {
                detectors,
                delay: params.heartbeat_detect(),
            };
        }
    }
    Detection::SpareOnly
}

/// The roster master: the lowest-id alive detector (flooded tokens
/// from concurrent detectors merge in favour of the lowest id).
pub fn elect_master(detection: &Detection) -> Option<NodeId> {
    match detection {
        Detection::LossOfLight { detectors, .. } | Detection::Heartbeat { detectors, .. } => {
            detectors.iter().copied().min()
        }
        Detection::SpareOnly => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampnet_topo::{largest_ring, SwitchId};

    fn setup(n: usize) -> (Topology, LogicalRing, RosterParams) {
        let topo = Topology::quad(n, 100.0);
        let ring = largest_ring(&topo);
        (topo, ring, RosterParams::default())
    }

    #[test]
    fn dead_node_detected_by_downstream_neighbor() {
        let (mut topo, ring, params) = setup(6);
        // Kill the node at ring position 2; its lasers go dark, so the
        // receiver of hop 2→3 (ring.order[3]) detects.
        let dead = ring.order[2];
        let downstream = ring.order[3];
        topo.fail_node(dead);
        match detect(&topo, &ring, Component::Node(dead), &params) {
            Detection::LossOfLight { detectors, delay } => {
                assert_eq!(detectors, vec![downstream]);
                assert_eq!(delay, params.detect_loss_of_light);
            }
            other => panic!("expected loss of light, got {other:?}"),
        }
    }

    #[test]
    fn dead_switch_detected_by_all_hops_through_it() {
        let (mut topo, ring, params) = setup(6);
        // All hops in a healthy quad plant go through switch 0.
        topo.fail_switch(SwitchId(0));
        match detect(&topo, &ring, Component::Switch(SwitchId(0)), &params) {
            Detection::LossOfLight { detectors, .. } => {
                assert_eq!(detectors.len(), 6, "every hop broke");
            }
            other => panic!("expected loss of light, got {other:?}"),
        }
    }

    #[test]
    fn ring_link_cut_detected_by_both_direction_receivers() {
        let (mut topo, ring, params) = setup(4);
        // The node–switch link is a bidirectional fiber pair: cutting
        // it darkens u's outgoing hop (detected downstream at v) AND
        // u's incoming hop (u itself loses receive light).
        let u = ring.order[0];
        let s = ring.hops[0];
        let v = ring.order[1];
        topo.fail_link(u, s);
        match detect(&topo, &ring, Component::Link(u, s), &params) {
            Detection::LossOfLight { detectors, .. } => {
                let mut expect = vec![u, v];
                expect.sort();
                assert_eq!(detectors, expect);
            }
            other => panic!("expected loss of light, got {other:?}"),
        }
    }

    #[test]
    fn spare_link_cut_is_not_urgent() {
        let (mut topo, ring, params) = setup(4);
        // In a healthy quad plant the ring uses switch 0 only; a fiber
        // to switch 3 is spare.
        let u = ring.order[0];
        topo.fail_link(u, SwitchId(3));
        assert_eq!(
            detect(&topo, &ring, Component::Link(u, SwitchId(3)), &params),
            Detection::SpareOnly
        );
    }

    #[test]
    fn master_is_lowest_id_detector() {
        let d = Detection::LossOfLight {
            detectors: vec![NodeId(4), NodeId(2), NodeId(7)]
                .into_iter()
                .collect(),
            delay: SimDuration::from_micros(10),
        };
        assert_eq!(elect_master(&d), Some(NodeId(2)));
        assert_eq!(elect_master(&Detection::SpareOnly), None);
    }

    #[test]
    fn empty_ring_cannot_detect() {
        let (mut topo, _, params) = setup(2);
        topo.fail_node(NodeId(0));
        topo.fail_node(NodeId(1));
        let empty = LogicalRing::empty();
        assert_eq!(
            detect(&topo, &empty, Component::Node(NodeId(0)), &params),
            Detection::SpareOnly
        );
    }
}
