//! Failure detection (slides 16, 18): "network failures detected by
//! hardware", "algorithm starts automatically whenever a failure is
//! detected".
//!
//! The ring is a chain of circuits through the switches. When a
//! component dies, the receivers downstream of every broken hop lose
//! light and report within the hardware detection window. Failures of
//! *spare* components (a fiber not carrying the current ring) do not
//! dim any ring light; they are caught by the slower background
//! diagnostic sweep and do not trigger emergency rostering.

use crate::params::RosterParams;
use ampnet_sim::SimDuration;
use ampnet_topo::montecarlo::Component;
use ampnet_topo::{NodeId, Plant, PlantRing};

/// How a failure was (or would be) noticed.
#[derive(Debug, Clone, PartialEq)]
pub enum Detection {
    /// One or more ring hops went dark; these alive nodes saw their
    /// receivers lose light within `delay`.
    LossOfLight {
        /// Alive nodes whose upstream hop broke, ascending id.
        detectors: Vec<NodeId>,
        /// Hardware detection latency.
        delay: SimDuration,
    },
    /// The ring still passes light but the node stopped participating
    /// (e.g. it is marked dead without a fiber fault); caught by
    /// missed heartbeats.
    Heartbeat {
        /// Nodes that notice the silence (everyone else on the ring).
        detectors: Vec<NodeId>,
        /// Heartbeat timeout latency.
        delay: SimDuration,
    },
    /// The failed component is not on the current ring: no light dims,
    /// no urgency; the background sweep will log it.
    SpareOnly,
}

/// Determine how the current `ring` notices `failed` (which has
/// already been applied to `plant`).
pub fn detect(
    plant: &Plant,
    ring: &PlantRing,
    failed: Component,
    params: &RosterParams,
) -> Detection {
    if ring.is_empty() {
        return Detection::SpareOnly;
    }
    let n = ring.order.len();
    let mut detectors: Vec<NodeId> = vec![];
    for i in 0..n {
        let u = ring.order[i];
        let v = ring.order[(i + 1) % n];
        // The hop u → v is dark if u cannot drive it or the route is
        // severed. The downstream receiver v detects, if alive.
        let broken = !plant.hop_usable(u, v, &ring.hops[i]);
        if broken && plant.node_alive(v) && !detectors.contains(&v) {
            detectors.push(v);
        }
    }
    if !detectors.is_empty() {
        detectors.sort();
        return Detection::LossOfLight {
            detectors,
            delay: params.detect_loss_of_light,
        };
    }
    // No dark hop was seen by a live receiver. If the ring is
    // nevertheless no longer valid (a member died with its lasers
    // still lit, or the ring's last member died so nobody was left
    // downstream to see the dark), surviving connectable nodes notice
    // the silence of the periodic ring heartbeats and start rostering.
    let _ = failed;
    if ring.validate(plant).is_err() {
        let detectors: Vec<NodeId> = plant
            .node_ids()
            .filter(|&n| plant.connectable(n))
            .collect();
        if !detectors.is_empty() {
            return Detection::Heartbeat {
                detectors,
                delay: params.heartbeat_detect(),
            };
        }
    }
    Detection::SpareOnly
}

/// The roster master: the lowest-id alive detector (flooded tokens
/// from concurrent detectors merge in favour of the lowest id).
pub fn elect_master(detection: &Detection) -> Option<NodeId> {
    match detection {
        Detection::LossOfLight { detectors, .. } | Detection::Heartbeat { detectors, .. } => {
            detectors.iter().copied().min()
        }
        Detection::SpareOnly => None,
    }
}

/// The master the flooding merge actually produces: the lowest-id
/// detector that is still *connectable*. A detector whose every
/// attachment died (impossible to arrange with one cut on a redundant
/// crossbar, but routine on families with single-attached nodes, e.g.
/// a folded Clos leaf fiber) notices the dark receive fiber yet cannot
/// launch a token, so it can never win the merge. On any scenario
/// where every detector keeps a live port this coincides with
/// [`elect_master`].
pub fn elect_flooding_master(plant: &Plant, detection: &Detection) -> Option<NodeId> {
    match detection {
        Detection::LossOfLight { detectors, .. } | Detection::Heartbeat { detectors, .. } => {
            detectors
                .iter()
                .copied()
                .filter(|&d| plant.connectable(d))
                .min()
        }
        Detection::SpareOnly => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampnet_topo::SwitchId;

    fn setup(n: usize) -> (Plant, PlantRing, RosterParams) {
        let plant = Plant::crossbar(n, 4, 100.0);
        let ring = plant.largest_ring();
        (plant, ring, RosterParams::default())
    }

    #[test]
    fn dead_node_detected_by_downstream_neighbor() {
        let (mut topo, ring, params) = setup(6);
        // Kill the node at ring position 2; its lasers go dark, so the
        // receiver of hop 2→3 (ring.order[3]) detects.
        let dead = ring.order[2];
        let downstream = ring.order[3];
        topo.apply(Component::Node(dead));
        match detect(&topo, &ring, Component::Node(dead), &params) {
            Detection::LossOfLight { detectors, delay } => {
                assert_eq!(detectors, vec![downstream]);
                assert_eq!(delay, params.detect_loss_of_light);
            }
            other => panic!("expected loss of light, got {other:?}"),
        }
    }

    #[test]
    fn dead_switch_detected_by_all_hops_through_it() {
        let (mut topo, ring, params) = setup(6);
        // All hops in a healthy quad plant go through switch 0.
        topo.apply(Component::Switch(SwitchId(0)));
        match detect(&topo, &ring, Component::Switch(SwitchId(0)), &params) {
            Detection::LossOfLight { detectors, .. } => {
                assert_eq!(detectors.len(), 6, "every hop broke");
            }
            other => panic!("expected loss of light, got {other:?}"),
        }
    }

    #[test]
    fn ring_link_cut_detected_by_both_direction_receivers() {
        let (mut topo, ring, params) = setup(4);
        // The node–switch link is a bidirectional fiber pair: cutting
        // it darkens u's outgoing hop (detected downstream at v) AND
        // u's incoming hop (u itself loses receive light).
        let u = ring.order[0];
        let s = ring.hops[0].via[0];
        let v = ring.order[1];
        topo.apply(Component::Link(u, s));
        match detect(&topo, &ring, Component::Link(u, s), &params) {
            Detection::LossOfLight { detectors, .. } => {
                let mut expect = vec![u, v];
                expect.sort();
                assert_eq!(detectors, expect);
            }
            other => panic!("expected loss of light, got {other:?}"),
        }
    }

    #[test]
    fn spare_link_cut_is_not_urgent() {
        let (mut topo, ring, params) = setup(4);
        // In a healthy quad plant the ring uses switch 0 only; a fiber
        // to switch 3 is spare.
        let u = ring.order[0];
        topo.apply(Component::Link(u, SwitchId(3)));
        assert_eq!(
            detect(&topo, &ring, Component::Link(u, SwitchId(3)), &params),
            Detection::SpareOnly
        );
    }

    #[test]
    fn master_is_lowest_id_detector() {
        let d = Detection::LossOfLight {
            detectors: vec![NodeId(4), NodeId(2), NodeId(7)]
                .into_iter()
                .collect(),
            delay: SimDuration::from_micros(10),
        };
        assert_eq!(elect_master(&d), Some(NodeId(2)));
        assert_eq!(elect_master(&Detection::SpareOnly), None);
    }

    #[test]
    fn disconnected_detector_cannot_become_flooding_master() {
        // Clos nodes hang off exactly one leaf: cutting node 0's only
        // fiber makes it a detector (its receive hop goes dark) that
        // can never flood. The merge winner is the lowest detector
        // that still has a live attachment.
        let plant = Plant::folded_clos(4, 2, 2, 100.0);
        let ring = plant.largest_ring();
        let params = RosterParams::default();
        let mut damaged = plant;
        damaged.apply(Component::Link(NodeId(0), SwitchId(0)));
        let detection = detect(&damaged, &ring, Component::Link(NodeId(0), SwitchId(0)), &params);
        let all = elect_master(&detection).expect("detectors exist");
        assert_eq!(all, NodeId(0), "node 0 does notice the dark fiber");
        let master = elect_flooding_master(&damaged, &detection).expect("survivors flood");
        assert_ne!(master, NodeId(0), "node 0 cannot launch a token");
        assert!(damaged.connectable(master));
    }

    #[test]
    fn empty_ring_cannot_detect() {
        let (mut topo, _, params) = setup(2);
        topo.apply(Component::Node(NodeId(0)));
        topo.apply(Component::Node(NodeId(1)));
        let empty = PlantRing::empty();
        assert_eq!(
            detect(&topo, &empty, Component::Node(NodeId(0)), &params),
            Detection::SpareOnly
        );
    }

    #[test]
    fn torus_trunk_cut_detected_downstream() {
        let plant = Plant::torus3d([4, 1, 1], 100.0);
        let ring = plant.largest_ring();
        assert_eq!(ring.len(), 4);
        let params = RosterParams::default();
        let u = ring.order[0];
        let v = ring.order[1];
        let mut damaged = plant;
        let cut = if u <= v {
            Component::Trunk(u, v)
        } else {
            Component::Trunk(v, u)
        };
        damaged.apply(cut);
        match detect(&damaged, &ring, cut, &params) {
            Detection::LossOfLight { detectors, .. } => {
                // On a 4-ring the trunk carries exactly one directed
                // hop, so only its downstream receiver loses light.
                assert_eq!(detectors, vec![v]);
            }
            other => panic!("expected loss of light, got {other:?}"),
        }
    }

    #[test]
    fn clos_spine_death_is_spare_when_rerouted_rings_hold() {
        // A clos ring threads leaf-spine-leaf routes; killing a spine
        // that carries hops must be detected.
        let plant = Plant::folded_clos(4, 2, 2, 100.0);
        let ring = plant.largest_ring();
        let params = RosterParams::default();
        let spine = ring
            .hops
            .iter()
            .flat_map(|h| h.via.iter())
            .copied()
            .find(|s| s.0 >= 2)
            .expect("some hop crosses a spine");
        let mut damaged = plant;
        damaged.apply(Component::Switch(spine));
        match detect(&damaged, &ring, Component::Switch(spine), &params) {
            Detection::LossOfLight { detectors, .. } => {
                assert!(!detectors.is_empty());
            }
            other => panic!("expected loss of light, got {other:?}"),
        }
    }
}
