//! # ampnet-roster — the self-healing rostering algorithm
//!
//! Slides 13, 16, 18: when hardware detects a failure, a "modified
//! flooding algorithm explores the network for available paths and
//! allows the creation of the largest possible logical ring",
//! completing "in two ring-tour times — 1 to 2 milliseconds, depending
//! on the number of nodes and the length of the fiber".
//!
//! * [`RosterParams`] — the calibrated timing model (ColdFire
//!   processing, loss-of-light window, probe timeouts, heartbeats).
//! * [`detect`]/[`Detection`] — hardware loss-of-light and heartbeat
//!   failure detection against the live ring.
//! * [`run_rostering`]/[`RosterOutcome`] — the two-tour protocol with
//!   full microsecond accounting; [`initial_rostering`] boots a plant.
//!
//! The committed ring is provably maximal: the master's computation is
//! the exact solver from [`ampnet_topo`], and `RosterOutcome::ring`
//! always validates against the post-failure topology.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod detect;
mod params;
mod protocol;

pub use detect::{detect, elect_flooding_master, elect_master, Detection};
pub use params::RosterParams;
pub use protocol::{initial_rostering, run_rostering, RosterOutcome, RosterSkip};
