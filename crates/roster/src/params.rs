//! Rostering timing parameters.
//!
//! The slide-16 claim — "rostering completes in two ring-tour times,
//! 1 to 2 milliseconds, depending on the number of nodes and the
//! length of the fiber" — is dominated by per-node software processing
//! of roster packets on the NIC's ColdFire microprocessor (slide 11).
//! A *ring-tour time* here is therefore a tour at roster-packet speed:
//! per hop, serialization + fiber propagation + ColdFire processing.
//! (A hardware data tour is ~250× faster; it cannot be what the paper
//! normalizes by, since 1–2 ms at 16–64 nodes only adds up with
//! software in the loop.)

use ampnet_phy::LinkParams;
use ampnet_sim::SimDuration;

/// Tunable constants of the rostering protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RosterParams {
    /// Serial link model (rate + per-fiber length comes from the
    /// topology; `link.length_m` is unused here).
    pub link: LinkParams,
    /// ColdFire software processing per roster packet per node.
    pub proc_delay: SimDuration,
    /// Hardware loss-of-light detection window.
    pub detect_loss_of_light: SimDuration,
    /// Cost of one failed neighbour probe (request + timeout).
    pub probe_timeout: SimDuration,
    /// Background heartbeat interval on the ring (liveness of nodes
    /// whose failure does not dim any light, e.g. hung firmware).
    pub heartbeat_interval: SimDuration,
    /// Missed heartbeats before declaring a node dead.
    pub heartbeat_misses: u32,
}

impl Default for RosterParams {
    fn default() -> Self {
        RosterParams {
            link: LinkParams::default(),
            proc_delay: SimDuration::from_micros(16),
            detect_loss_of_light: SimDuration::from_micros(10),
            probe_timeout: SimDuration::from_micros(5),
            heartbeat_interval: SimDuration::from_micros(100),
            heartbeat_misses: 3,
        }
    }
}

impl RosterParams {
    /// Heartbeat-based detection latency (worst case).
    pub fn heartbeat_detect(&self) -> SimDuration {
        self.heartbeat_interval
            .saturating_mul(self.heartbeat_misses as u64)
    }

    /// Cost of one roster hop over `fiber_m` metres of fiber carrying
    /// `wire_bytes` of packet: serialize + propagate + process.
    pub fn hop_cost(&self, fiber_m: f64, wire_bytes: usize) -> SimDuration {
        let prop = SimDuration::from_nanos(
            (fiber_m / ampnet_phy::FIBER_M_PER_S * 1e9).round() as u64,
        );
        self.link.serialize_time(wire_bytes) + prop + self.proc_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = RosterParams::default();
        assert_eq!(p.heartbeat_detect(), SimDuration::from_micros(300));
        assert!(p.proc_delay > p.detect_loss_of_light);
    }

    #[test]
    fn hop_cost_scales_with_fiber() {
        let p = RosterParams::default();
        let short = p.hop_cost(10.0, 20);
        let long = p.hop_cost(10_000.0, 20);
        assert!(long > short);
        // 10 km ≈ 49 µs of propagation.
        let diff = long - short;
        assert!((45_000..55_000).contains(&diff.as_nanos()), "{diff}");
    }

    #[test]
    fn hop_cost_dominated_by_processing_on_short_fiber() {
        let p = RosterParams::default();
        let hop = p.hop_cost(100.0, 20);
        // 16 µs processing + ~0.2 µs serialize + ~0.5 µs propagation.
        assert!((16_000..18_000).contains(&hop.as_nanos()), "{hop}");
    }
}
