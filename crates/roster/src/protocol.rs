//! The rostering protocol (slides 13, 16, 18).
//!
//! > A modified flooding algorithm that explores the network for
//! > available paths and allows the creation of the largest possible
//! > logical ring. Rostering completes in two ring-tour times.
//!
//! The protocol runs in two token tours after detection:
//!
//! 1. **Explore tour.** The roster master launches an EXPLORE token.
//!    At each step the holder searches for its next live neighbour:
//!    candidates are tried in ascending-id order through the holder's
//!    live switch ports; each dead candidate costs one probe timeout
//!    (this is the "explores the network for available paths" part —
//!    flooding probes, merged into a deterministic token walk). The
//!    token accumulates every reachable node's switch mask and returns
//!    to the master.
//! 2. **Commit tour.** The master computes the *largest possible
//!    logical ring* from the gathered masks (the exact solver from
//!    `ampnet-topo` — this is firmware computing over its topology
//!    database) and circulates a COMMIT carrying the new roster; each
//!    member installs it; when the token returns, the ring is live and
//!    the built-in diagnostics certify the configuration.
//!
//! The walk is sequential, so simulated time is accumulated directly
//! along the token path — no event queue needed, yet every
//! microsecond is accounted: detection, per-hop serialization, fiber
//! propagation, ColdFire processing, and failed-probe timeouts.

use crate::detect::{detect, elect_flooding_master, Detection};
use crate::params::RosterParams;
use ampnet_sim::{SimDuration, SimTime};
use ampnet_topo::montecarlo::Component;
use ampnet_topo::{NodeId, Plant, PlantRing};

/// Wire size of an EXPLORE/PROBE roster packet (one fixed cell).
const EXPLORE_WIRE: usize = 20;

/// Full accounting of one rostering episode.
#[derive(Debug, Clone)]
pub struct RosterOutcome {
    /// Roster epoch after recovery.
    pub epoch: u64,
    /// The committed logical ring.
    pub ring: PlantRing,
    /// The node that ran the algorithm.
    pub master: NodeId,
    /// Failure instant.
    pub failed_at: SimTime,
    /// Instant the ring was live again.
    pub completed_at: SimTime,
    /// Failure → detection.
    pub detect_time: SimDuration,
    /// Explore tour duration.
    pub explore_time: SimDuration,
    /// Commit tour duration.
    pub commit_time: SimDuration,
    /// Failed neighbour probes during exploration.
    pub failed_probes: u64,
    /// One quiet roster-speed tour of the *new* ring — the unit the
    /// paper's "two ring-tour times" is measured in.
    pub ring_tour: SimDuration,
}

impl RosterOutcome {
    /// Total recovery time (detection + both tours).
    pub fn recovery_time(&self) -> SimDuration {
        self.completed_at - self.failed_at
    }

    /// Recovery expressed in ring tours (paper: ≤ ~2 plus detection).
    pub fn recovery_in_tours(&self) -> f64 {
        self.recovery_time().in_units_of(self.ring_tour)
    }
}

/// Why rostering did not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RosterSkip {
    /// The failed component was not on the ring: nothing to heal.
    SpareComponent,
    /// No live node remains to run the algorithm.
    NoSurvivors,
}

/// Size of a COMMIT roster message for `n` members, in wire bytes:
/// one fixed cell per 4 roster entries (2 bytes each), minimum one.
fn commit_wire(n: usize) -> usize {
    20 * n.div_ceil(4).max(1)
}

/// Run one rostering episode: `failed` has just been applied to
/// `plant`; `current` is the ring that was live. Returns the outcome
/// or the reason no episode was needed.
pub fn run_rostering(
    plant: &Plant,
    current: &PlantRing,
    failed: Component,
    failed_at: SimTime,
    epoch: u64,
    params: &RosterParams,
) -> Result<RosterOutcome, RosterSkip> {
    let detection = detect(plant, current, failed, params);
    let (master, detect_time) = match (elect_flooding_master(plant, &detection), &detection) {
        (Some(m), Detection::LossOfLight { delay, .. })
        | (Some(m), Detection::Heartbeat { delay, .. }) => (m, *delay),
        (None, Detection::LossOfLight { .. }) => {
            // Every loss-of-light detector lost its own last
            // attachment along with the ring hop: nobody who saw the
            // dark fiber can flood a token. Connectable survivors (if
            // any) notice the heartbeat silence instead and the lowest
            // of them runs the algorithm.
            match plant.node_ids().find(|&n| plant.connectable(n)) {
                Some(m) => (m, params.heartbeat_detect()),
                None => return Err(RosterSkip::NoSurvivors),
            }
        }
        _ => {
            // No detector at all. Either the failed component was a
            // true spare (the ring still works) or nobody remains who
            // could run the algorithm.
            return if current.validate(plant).is_ok() {
                Err(RosterSkip::SpareComponent)
            } else {
                Err(RosterSkip::NoSurvivors)
            };
        }
    };

    // The ring the algorithm will discover and commit.
    let new_ring = plant.largest_ring();

    // Rotate so the tour starts at the master. The master is alive
    // and connectable, but off-crossbar the maximal ring may still
    // exclude it (a torus minus one vertex has no Hamiltonian cycle
    // through every survivor); `rotate_to` then leaves the ring as-is.
    let ring = rotate_to(&new_ring, master);

    // ----- Tour 1: explore -----
    let mut explore_time = SimDuration::ZERO;
    let mut failed_probes = 0u64;
    let n = ring.order.len();
    for i in 0..n {
        let u = ring.order[i];
        let v = ring.order[(i + 1) % n];
        // Probe candidates with ids cyclically between u and v that
        // are not ring members reachable later — each dead/unreachable
        // candidate burns one probe timeout. This models the flooding
        // search for available paths.
        let dead_between = dead_candidates_between(plant, u, v);
        failed_probes += dead_between;
        explore_time += params.probe_timeout.saturating_mul(dead_between);
        // The successful hop.
        let fiber = plant.hop_fiber_m(u, v, &ring.hops[i]);
        explore_time += params.hop_cost(fiber, EXPLORE_WIRE);
    }

    // ----- Tour 2: commit -----
    let wire = commit_wire(n);
    let mut commit_time = SimDuration::ZERO;
    for i in 0..n {
        let u = ring.order[i];
        let v = ring.order[(i + 1) % n];
        let fiber = plant.hop_fiber_m(u, v, &ring.hops[i]);
        commit_time += params.hop_cost(fiber, wire);
    }

    // Normalizer: a quiet roster-speed tour (explore-size packets).
    let mut ring_tour = SimDuration::ZERO;
    for i in 0..n {
        let u = ring.order[i];
        let v = ring.order[(i + 1) % n];
        ring_tour += params.hop_cost(plant.hop_fiber_m(u, v, &ring.hops[i]), EXPLORE_WIRE);
    }

    let completed_at = failed_at + detect_time + explore_time + commit_time;
    Ok(RosterOutcome {
        epoch: epoch + 1,
        ring,
        master,
        failed_at,
        completed_at,
        detect_time,
        explore_time,
        commit_time,
        failed_probes,
        ring_tour,
    })
}

/// Bring-up rostering: boot the whole plant with no prior ring.
/// The master is the lowest-id alive node.
pub fn initial_rostering(
    plant: &Plant,
    params: &RosterParams,
) -> Result<RosterOutcome, RosterSkip> {
    let alive = plant.alive_nodes();
    let Some(&master) = alive.first() else {
        return Err(RosterSkip::NoSurvivors);
    };
    let ring = rotate_to(&plant.largest_ring(), master);
    let n = ring.order.len();
    let mut explore_time = SimDuration::ZERO;
    let mut failed_probes = 0;
    let mut ring_tour = SimDuration::ZERO;
    for i in 0..n {
        let u = ring.order[i];
        let v = ring.order[(i + 1) % n];
        let dead = dead_candidates_between(plant, u, v);
        failed_probes += dead;
        explore_time += params.probe_timeout.saturating_mul(dead);
        let fiber = plant.hop_fiber_m(u, v, &ring.hops[i]);
        explore_time += params.hop_cost(fiber, EXPLORE_WIRE);
        ring_tour += params.hop_cost(fiber, EXPLORE_WIRE);
    }
    let wire = commit_wire(n);
    let mut commit_time = SimDuration::ZERO;
    for i in 0..n {
        let u = ring.order[i];
        let v = ring.order[(i + 1) % n];
        commit_time += params.hop_cost(plant.hop_fiber_m(u, v, &ring.hops[i]), wire);
    }
    Ok(RosterOutcome {
        epoch: 1,
        ring,
        master,
        failed_at: SimTime::ZERO,
        completed_at: SimTime::ZERO + explore_time + commit_time,
        detect_time: SimDuration::ZERO,
        explore_time,
        commit_time,
        failed_probes,
        ring_tour,
    })
}

fn rotate_to(ring: &PlantRing, start: NodeId) -> PlantRing {
    let Some(pos) = ring.order.iter().position(|&n| n == start) else {
        return ring.clone();
    };
    let mut order = ring.order.clone();
    let mut hops = ring.hops.clone();
    order.rotate_left(pos);
    hops.rotate_left(pos);
    PlantRing { order, hops }
}

/// Nodes with ids cyclically strictly between `u` and `v` that are not
/// alive-and-connected — the candidates the explorer wastes probes on.
fn dead_candidates_between(plant: &Plant, u: NodeId, v: NodeId) -> u64 {
    let total = plant.n_nodes() as u8;
    let mut count = 0u64;
    let mut id = (u.0 + 1) % total;
    while id != v.0 {
        if id != u.0 && !plant.connectable(NodeId(id)) {
            count += 1;
        }
        id = (id + 1) % total;
        if id == u.0 {
            break;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampnet_topo::SwitchId;

    fn quad(n: usize, fiber: f64) -> (Plant, PlantRing) {
        let plant = Plant::crossbar(n, 4, fiber);
        let ring = plant.largest_ring();
        (plant, ring)
    }

    #[test]
    fn single_node_failure_heals_to_n_minus_1() {
        let (mut topo, ring) = quad(8, 100.0);
        let dead = ring.order[3];
        topo.apply(Component::Node(dead));
        let out = run_rostering(
            &topo,
            &ring,
            Component::Node(dead),
            SimTime(1_000_000),
            1,
            &RosterParams::default(),
        )
        .unwrap();
        assert_eq!(out.ring.len(), 7);
        assert!(!out.ring.order.contains(&dead));
        assert_eq!(out.epoch, 2);
        out.ring.validate(&topo).unwrap();
        // Master is the downstream neighbour of the dead node.
        assert!(out.ring.order.contains(&out.master));
        assert_eq!(out.ring.order[0], out.master, "tour starts at master");
    }

    #[test]
    fn recovery_close_to_two_ring_tours() {
        let (mut topo, ring) = quad(16, 100.0);
        let dead = ring.order[5];
        topo.apply(Component::Node(dead));
        let out = run_rostering(
            &topo,
            &ring,
            Component::Node(dead),
            SimTime::ZERO,
            0,
            &RosterParams::default(),
        )
        .unwrap();
        let tours = out.recovery_in_tours();
        // Two tours + detection + one probe + larger commit packets.
        assert!(
            (2.0..3.2).contains(&tours),
            "recovery took {tours:.2} ring tours"
        );
    }

    #[test]
    fn slide_16_band_for_default_plants() {
        // 32–64 nodes, 100 m fiber: recovery must land in 1–2 ms-ish.
        for n in [32usize, 48] {
            let (mut topo, ring) = quad(n, 100.0);
            let dead = ring.order[1];
            topo.apply(Component::Node(dead));
            let out = run_rostering(
                &topo,
                &ring,
                Component::Node(dead),
                SimTime::ZERO,
                0,
                &RosterParams::default(),
            )
            .unwrap();
            let ms = out.recovery_time().as_millis_f64();
            assert!(
                (0.8..2.6).contains(&ms),
                "{n} nodes recovered in {ms:.2} ms"
            );
        }
    }

    #[test]
    fn switch_failure_reroutes_everyone() {
        let (mut topo, ring) = quad(6, 100.0);
        topo.apply(Component::Switch(SwitchId(0)));
        let out = run_rostering(
            &topo,
            &ring,
            Component::Switch(SwitchId(0)),
            SimTime::ZERO,
            4,
            &RosterParams::default(),
        )
        .unwrap();
        assert_eq!(out.ring.len(), 6, "all nodes survive on spare switches");
        assert!(out
            .ring
            .hops
            .iter()
            .all(|h| !h.via.contains(&SwitchId(0))));
        out.ring.validate(&topo).unwrap();
    }

    #[test]
    fn spare_failure_skips_rostering() {
        let (mut topo, ring) = quad(4, 100.0);
        let u = ring.order[0];
        topo.apply(Component::Link(u, SwitchId(2))); // spare fiber
        let r = run_rostering(
            &topo,
            &ring,
            Component::Link(u, SwitchId(2)),
            SimTime::ZERO,
            0,
            &RosterParams::default(),
        );
        assert_eq!(r.unwrap_err(), RosterSkip::SpareComponent);
    }

    #[test]
    fn total_loss_reports_no_survivors() {
        let (mut topo, ring) = quad(2, 100.0);
        topo.apply(Component::Node(NodeId(0)));
        topo.apply(Component::Node(NodeId(1)));
        let r = run_rostering(
            &topo,
            &ring,
            Component::Node(NodeId(1)),
            SimTime::ZERO,
            0,
            &RosterParams::default(),
        );
        assert_eq!(r.unwrap_err(), RosterSkip::NoSurvivors);
    }

    #[test]
    fn fiber_length_stretches_recovery() {
        let params = RosterParams::default();
        let mut times = vec![];
        for fiber in [10.0, 10_000.0] {
            let (mut topo, ring) = quad(16, fiber);
            let dead = ring.order[2];
            topo.apply(Component::Node(dead));
            let out = run_rostering(
                &topo,
                &ring,
                Component::Node(dead),
                SimTime::ZERO,
                0,
                &params,
            )
            .unwrap();
            times.push(out.recovery_time());
        }
        assert!(
            times[1] > times[0],
            "longer fiber must slow rostering: {times:?}"
        );
    }

    #[test]
    fn probes_accounted_for_dead_neighbours() {
        let (mut topo, ring) = quad(8, 100.0);
        // Kill two adjacent nodes: the explorer burns probes skipping
        // them.
        let d1 = ring.order[2];
        let d2 = ring.order[3];
        topo.apply(Component::Node(d1));
        topo.apply(Component::Node(d2));
        let out = run_rostering(
            &topo,
            &ring,
            Component::Node(d1),
            SimTime::ZERO,
            0,
            &RosterParams::default(),
        )
        .unwrap();
        assert_eq!(out.ring.len(), 6);
        assert!(out.failed_probes >= 2, "both dead nodes probed");
    }

    #[test]
    fn initial_rostering_builds_full_ring() {
        let topo = Plant::crossbar(10, 4, 100.0);
        let out = initial_rostering(&topo, &RosterParams::default()).unwrap();
        assert_eq!(out.ring.len(), 10);
        assert_eq!(out.master, NodeId(0));
        assert_eq!(out.epoch, 1);
        assert_eq!(out.detect_time, SimDuration::ZERO);
        out.ring.validate(&topo).unwrap();
    }

    #[test]
    fn heartbeat_detection_for_silent_death() {
        // A node marked dead while its hop into it still passes light:
        // only possible if it is not the transmitter of any ring hop —
        // not the case on a ring, so loss-of-light normally wins. Test
        // the heartbeat path via a 1-ring where the dead node has no
        // outgoing hop... on a ring every member transmits, so instead
        // verify detect() chooses heartbeat only when no hop breaks:
        // simulate by restoring the dead node's links conceptually —
        // covered in detect.rs; here assert loss-of-light dominates.
        let (mut topo, ring) = quad(4, 100.0);
        let dead = ring.order[1];
        topo.apply(Component::Node(dead));
        let out = run_rostering(
            &topo,
            &ring,
            Component::Node(dead),
            SimTime::ZERO,
            0,
            &RosterParams::default(),
        )
        .unwrap();
        assert_eq!(
            out.detect_time,
            RosterParams::default().detect_loss_of_light
        );
    }

    #[test]
    fn epoch_increments() {
        let (mut topo, ring) = quad(4, 100.0);
        topo.apply(Component::Node(ring.order[0]));
        let out = run_rostering(
            &topo,
            &ring,
            Component::Node(ring.order[0]),
            SimTime::ZERO,
            41,
            &RosterParams::default(),
        )
        .unwrap();
        assert_eq!(out.epoch, 42);
    }

    #[test]
    fn torus_node_failure_heals() {
        let plant = Plant::torus3d([2, 2, 2], 100.0);
        let boot = initial_rostering(&plant, &RosterParams::default()).unwrap();
        assert_eq!(boot.ring.len(), 8);
        let mut damaged = plant;
        let dead = boot.ring.order[3];
        damaged.apply(Component::Node(dead));
        let out = run_rostering(
            &damaged,
            &boot.ring,
            Component::Node(dead),
            SimTime::ZERO,
            1,
            &RosterParams::default(),
        )
        .unwrap();
        assert!(!out.ring.order.contains(&dead));
        assert!(out.ring.len() >= 6);
        out.ring.validate(&damaged).unwrap();
        // Unlike a crossbar, the torus's maximal ring may exclude the
        // master itself (Q3 minus a vertex has a 6-cycle over 7
        // survivors); the tour only starts at the master when the
        // master made the roster.
        if out.ring.order.contains(&out.master) {
            assert_eq!(out.ring.order[0], out.master);
        }
    }

    #[test]
    fn clos_spine_failure_heals_full_ring() {
        let plant = Plant::folded_clos(6, 2, 2, 100.0);
        let boot = initial_rostering(&plant, &RosterParams::default()).unwrap();
        assert_eq!(boot.ring.len(), 6);
        let mut damaged = plant;
        damaged.apply(Component::Switch(SwitchId(2)));
        match run_rostering(
            &damaged,
            &boot.ring,
            Component::Switch(SwitchId(2)),
            SimTime::ZERO,
            1,
            &RosterParams::default(),
        ) {
            // If the boot ring only crossed spine 3, spine 2 is spare;
            // otherwise rostering must rebuild the full ring over the
            // surviving spine.
            Ok(out) => {
                assert_eq!(out.ring.len(), 6);
                out.ring.validate(&damaged).unwrap();
            }
            Err(e) => assert_eq!(e, RosterSkip::SpareComponent),
        }
    }
}
