//! Property tests: rostering always rebuilds the *largest possible*
//! logical ring (equal to the exact solver), validates against the
//! damaged plant, and its cost accounting is internally consistent.

use ampnet_roster::{initial_rostering, run_rostering, RosterParams, RosterSkip};
use ampnet_sim::SimTime;
use ampnet_topo::montecarlo::{apply, components, Component, FailureDomain};
use ampnet_topo::{largest_ring, Topology};
use proptest::prelude::*;

fn arb_plant() -> impl Strategy<Value = (Topology, Vec<u16>)> {
    (
        2usize..=10,
        prop_oneof![Just(2usize), Just(4usize)],
        10.0f64..5_000.0,
        proptest::collection::vec(any::<u16>(), 0..6),
    )
        .prop_map(|(n, s, fiber, pre)| (Topology::redundant(n, s, fiber), pre))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any pre-damage plus one more failure, if rostering runs it
    /// commits a ring that (a) validates and (b) is exactly maximal.
    #[test]
    fn rostering_is_maximal_and_valid(
        (mut topo, pre) in arb_plant(),
        last in any::<u16>(),
    ) {
        // Apply pre-existing damage, then compute the live ring.
        let comps = components(&topo, FailureDomain::Everything);
        for f in &pre {
            apply(&mut topo, comps[*f as usize % comps.len()]);
        }
        let current = largest_ring(&topo);
        // One more failure triggers the episode.
        let failed = comps[last as usize % comps.len()];
        apply(&mut topo, failed);
        match run_rostering(&topo, &current, failed, SimTime::ZERO, 7, &RosterParams::default()) {
            Ok(out) => {
                prop_assert!(out.ring.validate(&topo).is_ok());
                let exact = largest_ring(&topo);
                prop_assert_eq!(out.ring.len(), exact.len(),
                    "committed ring not maximal");
                prop_assert_eq!(out.epoch, 8);
                // Time accounting adds up.
                let total = out.detect_time + out.explore_time + out.commit_time;
                prop_assert_eq!(out.completed_at - out.failed_at, total);
                // Explore is at least one ring tour (it IS a tour plus
                // probes), commit at least one tour of commit packets.
                prop_assert!(out.explore_time >= out.ring_tour);
            }
            Err(RosterSkip::SpareComponent) => {
                // Then the old ring must still be valid as-is.
                prop_assert!(current.validate(&topo).is_ok());
            }
            Err(RosterSkip::NoSurvivors) => {
                prop_assert!(largest_ring(&topo).is_empty()
                    || topo.alive_nodes().is_empty());
            }
        }
    }

    /// Initial rostering always builds the maximal ring of the plant.
    #[test]
    fn initial_builds_maximal((mut topo, pre) in arb_plant()) {
        let comps = components(&topo, FailureDomain::Everything);
        for f in &pre {
            apply(&mut topo, comps[*f as usize % comps.len()]);
        }
        match initial_rostering(&topo, &RosterParams::default()) {
            Ok(out) => {
                prop_assert!(out.ring.validate(&topo).is_ok());
                prop_assert_eq!(out.ring.len(), largest_ring(&topo).len());
            }
            Err(RosterSkip::NoSurvivors) => {
                prop_assert!(topo.alive_nodes().is_empty());
            }
            Err(e) => prop_assert!(false, "unexpected skip {:?}", e),
        }
    }

    /// Recovery time grows monotonically-ish with node count: a plant
    /// twice as large must not recover faster.
    #[test]
    fn recovery_scales_with_nodes(seed_fiber in 50.0f64..500.0) {
        let params = RosterParams::default();
        let mut prev = None;
        for n in [4usize, 8, 16, 32] {
            let mut topo = Topology::quad(n, seed_fiber);
            let ring = largest_ring(&topo);
            let dead = ring.order[1];
            topo.fail_node(dead);
            let out = run_rostering(
                &topo, &ring, Component::Node(dead), SimTime::ZERO, 0, &params,
            ).unwrap();
            if let Some(p) = prev {
                prop_assert!(out.recovery_time() > p,
                    "recovery at n={} not longer than smaller plant", n);
            }
            prev = Some(out.recovery_time());
        }
    }
}

/// Promoted from `prop_roster.proptest-regressions`: the shrunk
/// counterexample `(Topology::redundant(3, 2, 10.0), pre = [10678,
/// 21230, 5623, 30044], last = 13760)` that once broke
/// `rostering_is_maximal_and_valid`. Replayed here as a plain,
/// deterministic test so the case survives any change to the
/// property-test framework's seeding or shrinking.
#[test]
fn regression_redundant3x2_predamaged_then_failed() {
    let mut topo = Topology::redundant(3, 2, 10.0);
    let comps = components(&topo, FailureDomain::Everything);
    let pre: [u16; 4] = [10678, 21230, 5623, 30044];
    for f in pre {
        apply(&mut topo, comps[f as usize % comps.len()]);
    }
    let current = largest_ring(&topo);
    let failed = comps[13760usize % comps.len()];
    apply(&mut topo, failed);
    match run_rostering(&topo, &current, failed, SimTime::ZERO, 7, &RosterParams::default()) {
        Ok(out) => {
            assert!(out.ring.validate(&topo).is_ok());
            let exact = largest_ring(&topo);
            assert_eq!(out.ring.len(), exact.len(), "committed ring not maximal");
            assert_eq!(out.epoch, 8);
            let total = out.detect_time + out.explore_time + out.commit_time;
            assert_eq!(out.completed_at - out.failed_at, total);
            assert!(out.explore_time >= out.ring_tour);
        }
        Err(RosterSkip::SpareComponent) => {
            assert!(current.validate(&topo).is_ok());
        }
        Err(RosterSkip::NoSurvivors) => {
            assert!(largest_ring(&topo).is_empty() || topo.alive_nodes().is_empty());
        }
    }
}
