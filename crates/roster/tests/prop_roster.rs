//! Property tests: rostering always rebuilds the *largest possible*
//! logical ring (equal to the exact solver), validates against the
//! damaged plant, and its cost accounting is internally consistent —
//! on every plant family (crossbar, 3D torus, folded Clos).

use ampnet_roster::{initial_rostering, run_rostering, RosterParams, RosterSkip};
use ampnet_sim::SimTime;
use ampnet_topo::montecarlo::{Component, FailureDomain};
use ampnet_topo::Plant;
use proptest::prelude::*;

fn arb_plant() -> impl Strategy<Value = (Plant, Vec<u16>)> {
    let crossbar = (
        2usize..=10,
        prop_oneof![Just(2usize), Just(4usize)],
        10.0f64..5_000.0,
    )
        .prop_map(|(n, s, fiber)| Plant::crossbar(n, s, fiber));
    // x >= 2 keeps every generated torus at >= 2 nodes.
    let torus = (2usize..=3, 1usize..=3, 1usize..=2, 10.0f64..5_000.0)
        .prop_map(|(x, y, z, fiber)| Plant::torus3d([x, y, z], fiber));
    let clos = (2usize..=8, 1usize..=3, 1usize..=2, 10.0f64..5_000.0)
        .prop_map(|(n, l, s, fiber)| Plant::folded_clos(n, l, s, fiber));
    (
        prop_oneof![crossbar, torus, clos],
        proptest::collection::vec(any::<u16>(), 0..6),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any pre-damage plus one more failure, if rostering runs it
    /// commits a ring that (a) validates and (b) is exactly maximal
    /// (all generated plants are within the exact-solver threshold).
    #[test]
    fn rostering_is_maximal_and_valid(
        (mut plant, pre) in arb_plant(),
        last in any::<u16>(),
    ) {
        // Apply pre-existing damage, then compute the live ring.
        let comps = plant.components(FailureDomain::Everything);
        for f in &pre {
            plant.apply(comps[*f as usize % comps.len()]);
        }
        let current = plant.largest_ring();
        // One more failure triggers the episode.
        let failed = comps[last as usize % comps.len()];
        plant.apply(failed);
        match run_rostering(&plant, &current, failed, SimTime::ZERO, 7, &RosterParams::default()) {
            Ok(out) => {
                prop_assert!(out.ring.validate(&plant).is_ok());
                let exact = plant.largest_ring();
                prop_assert_eq!(out.ring.len(), exact.len(),
                    "committed ring not maximal");
                prop_assert_eq!(out.epoch, 8);
                // Time accounting adds up.
                let total = out.detect_time + out.explore_time + out.commit_time;
                prop_assert_eq!(out.completed_at - out.failed_at, total);
                // Explore is at least one ring tour (it IS a tour plus
                // probes), commit at least one tour of commit packets.
                prop_assert!(out.explore_time >= out.ring_tour);
            }
            Err(RosterSkip::SpareComponent) => {
                // Then the old ring must still be valid as-is.
                prop_assert!(current.validate(&plant).is_ok());
            }
            Err(RosterSkip::NoSurvivors) => {
                prop_assert!(plant.largest_ring().is_empty()
                    || plant.alive_nodes().is_empty());
            }
        }
    }

    /// Initial rostering always builds the maximal ring of the plant.
    #[test]
    fn initial_builds_maximal((mut plant, pre) in arb_plant()) {
        let comps = plant.components(FailureDomain::Everything);
        for f in &pre {
            plant.apply(comps[*f as usize % comps.len()]);
        }
        match initial_rostering(&plant, &RosterParams::default()) {
            Ok(out) => {
                prop_assert!(out.ring.validate(&plant).is_ok());
                prop_assert_eq!(out.ring.len(), plant.largest_ring().len());
            }
            Err(RosterSkip::NoSurvivors) => {
                prop_assert!(plant.alive_nodes().is_empty());
            }
            Err(e) => prop_assert!(false, "unexpected skip {:?}", e),
        }
    }

    /// Recovery time grows monotonically-ish with node count: a plant
    /// twice as large must not recover faster.
    #[test]
    fn recovery_scales_with_nodes(seed_fiber in 50.0f64..500.0) {
        let params = RosterParams::default();
        let mut prev = None;
        for n in [4usize, 8, 16, 32] {
            let mut plant = Plant::crossbar(n, 4, seed_fiber);
            let ring = plant.largest_ring();
            let dead = ring.order[1];
            plant.apply(Component::Node(dead));
            let out = run_rostering(
                &plant, &ring, Component::Node(dead), SimTime::ZERO, 0, &params,
            ).unwrap();
            if let Some(p) = prev {
                prop_assert!(out.recovery_time() > p,
                    "recovery at n={} not longer than smaller plant", n);
            }
            prev = Some(out.recovery_time());
        }
    }
}

/// Promoted from `prop_roster.proptest-regressions`: the shrunk
/// counterexample `(Topology::redundant(3, 2, 10.0), pre = [10678,
/// 21230, 5623, 30044], last = 13760)` that once broke
/// `rostering_is_maximal_and_valid`. Replayed here as a plain,
/// deterministic test so the case survives any change to the
/// property-test framework's seeding or shrinking.
#[test]
fn regression_redundant3x2_predamaged_then_failed() {
    let mut plant = Plant::crossbar(3, 2, 10.0);
    let comps = plant.components(FailureDomain::Everything);
    let pre: [u16; 4] = [10678, 21230, 5623, 30044];
    for f in pre {
        plant.apply(comps[f as usize % comps.len()]);
    }
    let current = plant.largest_ring();
    let failed = comps[13760usize % comps.len()];
    plant.apply(failed);
    match run_rostering(&plant, &current, failed, SimTime::ZERO, 7, &RosterParams::default()) {
        Ok(out) => {
            assert!(out.ring.validate(&plant).is_ok());
            let exact = plant.largest_ring();
            assert_eq!(out.ring.len(), exact.len(), "committed ring not maximal");
            assert_eq!(out.epoch, 8);
            let total = out.detect_time + out.explore_time + out.commit_time;
            assert_eq!(out.completed_at - out.failed_at, total);
            assert!(out.explore_time >= out.ring_tour);
        }
        Err(RosterSkip::SpareComponent) => {
            assert!(current.validate(&plant).is_ok());
        }
        Err(RosterSkip::NoSurvivors) => {
            assert!(plant.largest_ring().is_empty() || plant.alive_nodes().is_empty());
        }
    }
}
