//! Property tests for the register-insertion ring MAC:
//! conservation (no loss, no duplication), per-stream FIFO at the
//! receiver, and the structural no-drop bound — under arbitrary
//! workloads.

use ampnet_ring::{
    ArrivalProcess, DstPattern, PacingMode, PacketKind, Segment, SegmentParams, StreamWorkload,
    MAX_PACKET_WIRE,
};
use ampnet_phy::LinkParams;
use ampnet_sim::SimDuration;
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = StreamWorkload> {
    (
        0u8..3,
        prop_oneof![
            Just(PacketKind::Message),
            (1u16..=64).prop_map(PacketKind::File)
        ],
        prop_oneof![
            Just(DstPattern::Broadcast),
            (0u8..6).prop_map(DstPattern::Fixed),
            Just(DstPattern::RoundRobin)
        ],
        prop_oneof![
            (1u64..30).prop_map(ArrivalProcess::Burst),
            (200u64..5_000)
                .prop_map(|ns| ArrivalProcess::Poisson(SimDuration::from_nanos(ns)))
        ],
    )
        .prop_map(|(stream, kind, dst, arrivals)| StreamWorkload {
            stream,
            kind,
            dst,
            arrivals,
        })
}

fn segment_params(n: usize, greedy: bool) -> SegmentParams {
    let mut p = SegmentParams {
        n_nodes: n,
        link: LinkParams::gigabit(20.0),
        ..Default::default()
    };
    if greedy {
        p.node.pacing = PacingMode::Greedy;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No packet is ever dropped and the insertion buffer never
    /// exceeds its structural bound, for any workload mix, with or
    /// without the adaptive governor.
    #[test]
    fn never_drops(
        n in 2usize..7,
        greedy in any::<bool>(),
        wls in proptest::collection::vec((0usize..7, arb_workload()), 1..6),
        seed in any::<u64>(),
    ) {
        let mut seg = Segment::new(segment_params(n, greedy), seed);
        for (node, w) in wls {
            let mut w = w;
            if let DstPattern::Fixed(d) = w.dst {
                w.dst = DstPattern::Fixed(d % n as u8);
            }
            seg.add_workload(node % n, w);
        }
        let r = seg.run_for(SimDuration::from_millis(1));
        prop_assert_eq!(r.drops, 0);
        prop_assert!(r.max_transit_occupancy <= 2 * MAX_PACKET_WIRE);
    }

    /// Broadcast conservation: every broadcast from a burst workload is
    /// delivered exactly once to every other node (run long enough to
    /// drain).
    #[test]
    fn broadcast_exactly_once_each(
        n in 2usize..6,
        count in 1u64..20,
        src in 0usize..6,
        seed in any::<u64>(),
    ) {
        let src = src % n;
        let mut seg = Segment::new(segment_params(n, false), seed);
        seg.collect_deliveries();
        seg.add_workload(src, StreamWorkload {
            stream: 0,
            kind: PacketKind::Message,
            dst: DstPattern::Broadcast,
            arrivals: ArrivalProcess::Burst(count),
        });
        let r = seg.run_for(SimDuration::from_millis(10));
        prop_assert_eq!(r.delivered_packets, count * (n as u64 - 1));
        // Exactly-once: group by (receiver, payload id).
        let mut seen = std::collections::HashSet::new();
        for (rcv, pkt) in seg.deliveries() {
            let key = (*rcv, *pkt.fixed_payload());
            prop_assert!(seen.insert(key), "duplicate delivery {:?}", key);
        }
    }

    /// Per-stream FIFO: a receiver sees one source's stream packets in
    /// insertion order (payload carries a global sequence number).
    #[test]
    fn receiver_sees_fifo_per_stream(
        n in 3usize..6,
        count in 2u64..25,
        seed in any::<u64>(),
    ) {
        let mut seg = Segment::new(segment_params(n, false), seed);
        seg.collect_deliveries();
        seg.add_workload(0, StreamWorkload {
            stream: 0,
            kind: PacketKind::Message,
            dst: DstPattern::Fixed(2),
            arrivals: ArrivalProcess::Burst(count),
        });
        seg.run_for(SimDuration::from_millis(10));
        let mut last = 0u64;
        let mut seen = 0;
        for (rcv, pkt) in seg.deliveries() {
            prop_assert_eq!(*rcv, 2usize);
            let seq = u64::from_be_bytes(*pkt.fixed_payload());
            prop_assert!(seq > last, "out of order: {} after {}", seq, last);
            last = seq;
            seen += 1;
        }
        prop_assert_eq!(seen, count);
    }

    /// Unicast packets never reach third parties.
    #[test]
    fn unicast_is_private(
        n in 3usize..7,
        count in 1u64..15,
        seed in any::<u64>(),
    ) {
        let dst = n - 1;
        let mut seg = Segment::new(segment_params(n, false), seed);
        seg.collect_deliveries();
        seg.add_workload(0, StreamWorkload {
            stream: 0,
            kind: PacketKind::File(32),
            dst: DstPattern::Fixed(dst as u8),
            arrivals: ArrivalProcess::Burst(count),
        });
        seg.run_for(SimDuration::from_millis(10));
        for (rcv, _) in seg.deliveries() {
            prop_assert_eq!(*rcv, dst);
        }
    }
}
