//! Multi-stream insertion scheduling (slide 7).
//!
//! "AmpNet can insert multiple data streams onto a segment at each
//! node": a node concurrently carries, e.g., a file transfer (DMA
//! MicroPackets) and a message stream (Data MicroPackets). The NIC
//! arbitrates between its local streams with deficit round robin, so
//! each stream gets line share proportional to its weight regardless of
//! packet size mix.

use ampnet_packet::MicroPacket;
use std::collections::VecDeque;

/// Anything with a wire footprint the DRR scheduler can meter:
/// whole [`MicroPacket`] values or pooled
/// [`WireFrame`](crate::WireFrame) descriptors.
pub trait WireSized {
    /// Total line bytes including SOF/EOF framing.
    fn wire_bytes(&self) -> usize;
}

impl WireSized for MicroPacket {
    fn wire_bytes(&self) -> usize {
        MicroPacket::wire_bytes(self)
    }
}

/// One local transmit stream.
#[derive(Debug)]
struct Stream<T> {
    queue: VecDeque<T>,
    /// DRR weight: quantum bytes added per round.
    weight: u32,
    deficit: i64,
    /// Total bytes ever enqueued/dequeued, for accounting.
    enqueued_bytes: u64,
    sent_bytes: u64,
    sent_packets: u64,
}

/// Deficit-round-robin scheduler over a node's transmit streams.
///
/// Generic over the queued item: the legacy packet-valued API uses
/// `StreamSet<MicroPacket>` (the default), the zero-copy MAC plane
/// queues [`WireFrame`](crate::WireFrame) descriptors.
#[derive(Debug)]
pub struct StreamSet<T: WireSized = MicroPacket> {
    streams: Vec<Stream<T>>,
    /// Round-robin cursor.
    cursor: usize,
    /// Quantum granted per weight unit per round, in bytes.
    quantum: u32,
    queued_packets: usize,
}

/// Identifier of a stream within one node (also the MicroPacket tag).
pub type StreamId = u8;

impl<T: WireSized> StreamSet<T> {
    /// A scheduler with `n` streams of equal weight.
    pub fn new(n: usize) -> Self {
        Self::with_weights(&vec![1; n]) // lint: allow(hot-path-alloc): constructor: the equal-weights buffer is built once
    }

    /// A scheduler with the given per-stream weights (must be ≥ 1).
    pub fn with_weights(weights: &[u32]) -> Self {
        assert!(!weights.is_empty(), "at least one stream");
        assert!(weights.iter().all(|&w| w >= 1), "weights must be >= 1");
        StreamSet {
            streams: weights
                .iter()
                .map(|&w| Stream {
                    queue: VecDeque::new(),
                    weight: w,
                    deficit: 0,
                    enqueued_bytes: 0,
                    sent_bytes: 0,
                    sent_packets: 0,
                })
                .collect(),
            cursor: 0,
            quantum: 128, // ≥ the largest MicroPacket, so progress is guaranteed
            queued_packets: 0,
        }
    }

    /// Number of streams.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Packets waiting across all streams.
    pub fn queued_packets(&self) -> usize {
        self.queued_packets
    }

    /// Packets waiting on one stream.
    pub fn queued_in(&self, stream: StreamId) -> usize {
        self.streams[stream as usize].queue.len()
    }

    /// Whether any stream has traffic waiting.
    pub fn has_traffic(&self) -> bool {
        self.queued_packets > 0
    }

    /// Enqueue a packet on a stream.
    pub fn enqueue(&mut self, stream: StreamId, pkt: T) {
        let s = &mut self.streams[stream as usize];
        s.enqueued_bytes += pkt.wire_bytes() as u64;
        s.queue.push_back(pkt);
        self.queued_packets += 1;
    }

    /// Pick the next packet to insert, honouring DRR fairness.
    pub fn dequeue(&mut self) -> Option<(StreamId, T)> {
        if self.queued_packets == 0 {
            return None;
        }
        // At most two full rounds are needed: one to refill deficits,
        // one to find a sendable head (quantum ≥ max packet).
        for _ in 0..self.streams.len() * 2 {
            let i = self.cursor;
            let quantum = self.quantum;
            let s = &mut self.streams[i];
            if let Some(head) = s.queue.front() {
                let need = head.wire_bytes() as i64;
                if s.deficit >= need {
                    s.deficit -= need;
                    let pkt = s.queue.pop_front().expect("head exists"); // lint: allow(panic-freedom): the scheduler checked non-empty before popping this head
                    s.sent_bytes += pkt.wire_bytes() as u64;
                    s.sent_packets += 1;
                    self.queued_packets -= 1;
                    // Keep the cursor: a stream may send several
                    // packets per round while its deficit lasts.
                    return Some((i as StreamId, pkt));
                }
                // Not enough deficit: grant a quantum and move on.
                s.deficit += (s.weight * quantum) as i64;
                self.cursor = (i + 1) % self.streams.len();
            } else {
                // Idle streams must not bank deficit.
                s.deficit = 0;
                self.cursor = (i + 1) % self.streams.len();
            }
        }
        unreachable!("quantum >= max packet guarantees progress within two rounds"); // lint: allow(panic-freedom): quantum >= max packet size guarantees a backlogged stream sends within two rounds
    }

    /// Bytes sent so far per stream (for fairness metrics).
    pub fn sent_bytes(&self) -> Vec<u64> {
        self.streams.iter().map(|s| s.sent_bytes).collect()
    }

    /// Packets sent so far per stream.
    pub fn sent_packets(&self) -> Vec<u64> {
        self.streams.iter().map(|s| s.sent_packets).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampnet_packet::build;
    use ampnet_packet::DmaCtrl;

    fn data_pkt() -> MicroPacket {
        build::data(0, 1, 0, [0; 8]) // 20 wire bytes
    }

    fn dma_pkt() -> MicroPacket {
        build::dma(
            0,
            1,
            1,
            DmaCtrl {
                channel: 0,
                region: 0,
                offset: 0,
                len: 0,
            },
            &[0u8; 64],
        )
        .unwrap() // 84 wire bytes
    }

    #[test]
    fn empty_dequeues_none() {
        let mut s: StreamSet = StreamSet::new(2);
        assert!(s.dequeue().is_none());
        assert!(!s.has_traffic());
    }

    #[test]
    fn single_stream_fifo() {
        let mut s = StreamSet::new(1);
        for i in 0..5u8 {
            s.enqueue(0, build::data(0, 1, i, [i; 8]));
        }
        for i in 0..5u8 {
            let (_, p) = s.dequeue().unwrap();
            assert_eq!(p.ctrl.tag, i, "FIFO order within a stream");
        }
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn equal_weights_share_bytes_fairly() {
        // Stream 0 sends small Data packets, stream 1 large DMA ones.
        let mut s = StreamSet::new(2);
        for _ in 0..400 {
            s.enqueue(0, data_pkt());
        }
        for _ in 0..100 {
            s.enqueue(1, dma_pkt());
        }
        // Drain ~half the total bytes, then compare per-stream bytes.
        let mut drained = 0u64;
        while drained < 4000 {
            let (_, p) = s.dequeue().unwrap();
            drained += p.wire_bytes() as u64;
        }
        let sent = s.sent_bytes();
        let ratio = sent[0] as f64 / sent[1].max(1) as f64;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "byte shares should be near-equal, got {sent:?}"
        );
    }

    #[test]
    fn weighted_streams_get_proportional_share() {
        let mut s = StreamSet::with_weights(&[3, 1]);
        for _ in 0..1000 {
            s.enqueue(0, data_pkt());
            s.enqueue(1, data_pkt());
        }
        let mut drained = 0;
        while drained < 400 {
            s.dequeue().unwrap();
            drained += 1;
        }
        let sent = s.sent_packets();
        let ratio = sent[0] as f64 / sent[1].max(1) as f64;
        assert!(
            (2.2..=3.8).contains(&ratio),
            "3:1 weights should give ~3x packets, got {sent:?}"
        );
    }

    #[test]
    fn idle_stream_does_not_bank_credit() {
        let mut s = StreamSet::new(2);
        // Stream 1 idle for a long time while stream 0 sends.
        for _ in 0..100 {
            s.enqueue(0, data_pkt());
        }
        for _ in 0..100 {
            s.dequeue().unwrap();
        }
        // Now both have traffic; stream 1 must not burst ahead.
        for _ in 0..50 {
            s.enqueue(0, data_pkt());
            s.enqueue(1, data_pkt());
        }
        let before = s.sent_packets();
        for _ in 0..20 {
            s.dequeue().unwrap();
        }
        let after = s.sent_packets();
        let d0 = after[0] - before[0];
        let d1 = after[1] - before[1];
        assert!(
            d0.abs_diff(d1) <= 12,
            "no large burst from banked deficit: {d0} vs {d1}"
        );
    }

    #[test]
    fn counts_track() {
        let mut s = StreamSet::new(2);
        s.enqueue(0, data_pkt());
        s.enqueue(1, dma_pkt());
        assert_eq!(s.queued_packets(), 2);
        s.dequeue().unwrap();
        assert_eq!(s.queued_packets(), 1);
        s.dequeue().unwrap();
        assert_eq!(s.queued_packets(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _: StreamSet = StreamSet::with_weights(&[]);
    }
}
