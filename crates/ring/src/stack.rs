//! The layered node data-plane: `PhyPort → InsertionMac → DeliveryPlane`.
//!
//! The paper's NIU (slides 7–8) is one pipeline: the serial PHY
//! recovers 8b/10b groups off the fiber, the register-insertion MAC
//! decides *forward / deliver / strip*, and delivered frames DMA into
//! the network cache or host queues. [`NodeStack`] models that
//! pipeline once, as three plane traits with the paper's behavior as
//! the default implementations; the standalone [`Segment`]
//! (crate::Segment) simulator and `ampnet-core`'s `Cluster` both drive
//! it, instead of each carrying its own MAC/delivery copy.
//!
//! Zero-copy buffer lifecycle: a packet is serialized **once** at its
//! source (`MicroPacket::encode_into` into a
//! [`FrameArena`](ampnet_packet::FrameArena) slot); every hop moves
//! the 16-byte [`WireFrame`] descriptor; the payload is re-read only
//! at the delivery boundary (borrowing
//! [`FrameView`](ampnet_packet::FrameView)) and the slot is recycled
//! when the frame leaves the ring (unicast delivery or source strip).
//! Fault injection addresses a plane, not a node blob: an error burst
//! is a [`PlaneFault::Phy`] assessed by the [`PhyPort`]'s 8b/10b
//! checker.

use crate::mac::{InsertionMac, MacAction, MacTx, RegisterMac, RingNodeStats, WireFrame};
use crate::stream::StreamId;
use ampnet_packet::{FrameArena, FrameRef, FrameView, MicroPacket};
use ampnet_phy::LinkParams;
use ampnet_sim::{SimDuration, SimTime};
use ampnet_telemetry::{
    defs, CounterHandle, FlightEvent, FlightKind, GaugeHandle, Plane, Telemetry,
};
use std::collections::VecDeque;

/// The PHY plane: serialization timing and the 8b/10b line interface.
pub trait PhyPort {
    /// Time to clock `wire_bytes` through the serializer.
    fn serialize_time(&self, wire_bytes: usize) -> SimDuration;

    /// Full hop latency for a frame: serialization + propagation +
    /// downstream re-timing.
    fn hop_latency(&self, wire_bytes: usize) -> SimDuration;

    /// A frame is put on the wire. The default zero-copy path is a
    /// no-op (the frame is already serialized in the arena); legacy
    /// implementations may re-serialize per hop here.
    fn transmit(&mut self, arena: &FrameArena, frame: &WireFrame);

    /// Assess a bit-error burst against the 8b/10b checker: corrupt a
    /// window of line groups (replayable from `seed`) and return how
    /// many code/disparity violations the deserializer flags.
    fn assess_burst(&mut self, seed: u64, errors: u32) -> u32;
}

/// The paper's serial PHY: one fiber at a fixed line rate, plus the
/// per-node elasticity/re-timing latency.
#[derive(Debug, Clone)]
pub struct SerialPhy {
    /// Fiber parameters of the outgoing hop.
    pub link: LinkParams,
    /// Register-insertion transit latency added at the downstream node
    /// (elasticity buffer + one word re-timing).
    pub node_latency: SimDuration,
    /// Legacy mode for the before/after allocation bench: serialize
    /// the packet afresh on **every** hop (decode + heap re-encode,
    /// the cost the deprecated `MicroPacket::to_vec` path paid), the
    /// way the pre-arena data-plane paid for forwarding.
    pub heap_serialize: bool,
    /// Frames clocked out by this port.
    pub tx_frames: u64,
}

impl SerialPhy {
    /// A port over `link` with the given downstream re-timing latency.
    pub fn new(link: LinkParams, node_latency: SimDuration) -> Self {
        SerialPhy {
            link,
            node_latency,
            heap_serialize: false,
            tx_frames: 0,
        }
    }
}

impl PhyPort for SerialPhy {
    fn serialize_time(&self, wire_bytes: usize) -> SimDuration {
        self.link.serialize_time(wire_bytes)
    }

    fn hop_latency(&self, wire_bytes: usize) -> SimDuration {
        self.link.serialize_time(wire_bytes) + self.link.propagation() + self.node_latency
    }

    fn transmit(&mut self, arena: &FrameArena, frame: &WireFrame) {
        self.tx_frames += 1;
        if self.heap_serialize {
            // The pre-refactor cost model: materialize the packet and
            // heap-serialize it for this hop, then throw both away.
            #[allow(deprecated)]
            let bytes = arena.decode(frame.frame).to_vec(); // lint: allow(hot-path-alloc): deprecated heap-serialize A/B leg — the cost model the bench measures against, never the shipping path
            std::hint::black_box(&bytes);
        }
    }

    fn assess_burst(&mut self, seed: u64, errors: u32) -> u32 {
        use ampnet_phy::{Decoder, Encoder, ErrorBurst, Symbol};
        // The deserializer sees a window of inter-frame fill while the
        // burst is active; corrupt it and count violations the way the
        // NIU's 8b/10b checker does. A disparity slip may surface a few
        // groups late — scanning the whole window models that.
        let mut burst = ErrorBurst::new(seed, errors);
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let mut detected = 0u32;
        let window = (errors as usize).max(1) * 4;
        for i in 0..window {
            let byte = (i % 251) as u8;
            let clean = enc.encode(Symbol::Data(byte)).expect("data encodes"); // lint: allow(panic-freedom): 8b/10b encode is total over data bytes
            let wire = if i % 4 == 0 {
                burst.corrupt_group(clean)
            } else {
                clean
            };
            match dec.decode(wire) {
                Ok(sym) if sym == Symbol::Data(byte) => {}
                _ => detected += 1,
            }
        }
        detected
    }
}

/// The delivery plane: where frames addressed to this node leave the
/// ring pipeline and enter the host.
pub trait DeliveryPlane {
    /// A frame for this node arrived (unicast, or a broadcast copy).
    /// `view` borrows the pooled frame body; decode only what the host
    /// actually needs.
    fn deliver(&mut self, now: SimTime, frame: &WireFrame, view: FrameView<'_>);
}

/// Default delivery plane: per-source accounting plus an optional
/// decoded-packet queue for hosts that consume payloads.
#[derive(Debug, Default)]
pub struct HostQueues {
    /// Payload bytes delivered here, per source node (sized lazily).
    pub delivered_from: Vec<u64>,
    /// Decoded packets awaiting the host, oldest first. Populated only
    /// when [`HostQueues::retain_packets`] is on.
    pub pending: VecDeque<MicroPacket>,
    /// Decode and queue every delivered packet (hosts that dispatch
    /// payloads); off = accounting only, the payload is never decoded.
    pub retain_packets: bool,
    /// Frames delivered in total.
    pub delivered: u64,
}

impl HostQueues {
    /// Accounting over `n_sources` possible senders.
    pub fn new(n_sources: usize) -> Self {
        HostQueues {
            delivered_from: vec![0; n_sources], // lint: allow(hot-path-alloc): constructor: per-source accounting allocated once at boot
            ..Default::default()
        }
    }

    /// A delivery plane that decodes and queues packets for the host.
    pub fn retaining(n_sources: usize) -> Self {
        let mut h = Self::new(n_sources);
        h.retain_packets = true;
        h
    }
}

impl DeliveryPlane for HostQueues {
    fn deliver(&mut self, _now: SimTime, frame: &WireFrame, view: FrameView<'_>) {
        self.delivered += 1;
        if let Some(slot) = self.delivered_from.get_mut(frame.ctrl.src as usize) {
            *slot += frame.payload_bytes as u64;
        }
        if self.retain_packets {
            self.pending.push_back(view.to_packet());
        }
    }
}

/// A fault injected at a specific plane boundary (the chaos engine's
/// hook into the data-plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneFault {
    /// PHY plane: a bit-error burst on the receive fiber, replayable
    /// from `seed`.
    Phy {
        /// Replay seed of the corruption pattern.
        seed: u64,
        /// Single-bit corruptions injected into the serial stream.
        errors: u32,
    },
}

/// Per-node handles into a shared [`Telemetry`] registry, one per
/// plane metric of this stack. Constructed disabled by default; the
/// owning `Segment`/`Cluster` calls [`NodeStack::instrument`] to make
/// the stack record.
///
/// Recording through these handles is zero-alloc: registration (here,
/// at setup time) is the only allocating step.
#[derive(Debug, Clone)]
pub struct StackTelemetry {
    tel: Telemetry,
    node: u8,
    phy_tx: CounterHandle,
    bursts: CounterHandle,
    bit_errors: CounterHandle,
    violations: CounterHandle,
    inserted: CounterHandle,
    forwarded: CounterHandle,
    stripped: CounterHandle,
    would_drop: GaugeHandle,
    transit_hw: GaugeHandle,
    backoffs: GaugeHandle,
    dl_frames: CounterHandle,
    dl_bytes: CounterHandle,
}

impl Default for StackTelemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl StackTelemetry {
    /// Inert handles: every record call is a no-op.
    pub fn disabled() -> Self {
        StackTelemetry {
            tel: Telemetry::disabled(),
            node: 0,
            phy_tx: CounterHandle::NONE,
            bursts: CounterHandle::NONE,
            bit_errors: CounterHandle::NONE,
            violations: CounterHandle::NONE,
            inserted: CounterHandle::NONE,
            forwarded: CounterHandle::NONE,
            stripped: CounterHandle::NONE,
            would_drop: GaugeHandle::NONE,
            transit_hw: GaugeHandle::NONE,
            backoffs: GaugeHandle::NONE,
            dl_frames: CounterHandle::NONE,
            dl_bytes: CounterHandle::NONE,
        }
    }

    /// Register this node's plane instruments in `tel`.
    pub fn new(tel: &Telemetry, node: u8) -> Self {
        StackTelemetry {
            tel: tel.clone(), // lint: allow(hot-path-alloc): constructor: cloning the Telemetry handle is registration-time
            node,
            phy_tx: tel.counter(&defs::PHY_TX_FRAMES, node),
            bursts: tel.counter(&defs::PHY_BURSTS_INJECTED, node),
            bit_errors: tel.counter(&defs::PHY_BURST_BIT_ERRORS, node),
            violations: tel.counter(&defs::PHY_BURST_VIOLATIONS, node),
            inserted: tel.counter(&defs::MAC_INSERTED, node),
            forwarded: tel.counter(&defs::MAC_FORWARDED, node),
            stripped: tel.counter(&defs::MAC_STRIPPED, node),
            would_drop: tel.gauge(&defs::MAC_WOULD_DROP, node),
            transit_hw: tel.gauge(&defs::MAC_TRANSIT_HIGHWATER, node),
            backoffs: tel.gauge(&defs::MAC_BACKOFFS, node),
            dl_frames: tel.counter(&defs::DELIVERY_FRAMES, node),
            dl_bytes: tel.counter(&defs::DELIVERY_PAYLOAD_BYTES, node),
        }
    }

    /// Sync the MAC gauges from the MAC's own counters (called before
    /// a snapshot; gauges are sampled, not pushed).
    pub fn publish_mac_gauges(&self, stats: &RingNodeStats) {
        self.tel.set(self.would_drop, stats.would_drop as i64);
        self.tel.set(self.transit_hw, stats.transit_highwater as i64);
    }

    /// Publish the pacing governor's backoff count (lives outside the
    /// [`InsertionMac`] trait, so the owner samples it explicitly).
    pub fn set_backoffs(&self, backoffs: u64) {
        self.tel.set(self.backoffs, backoffs as i64);
    }

    #[inline]
    fn delivered(&self, now: SimTime, wf: &WireFrame) {
        self.tel.inc(self.dl_frames);
        self.tel.add(self.dl_bytes, wf.payload_bytes as u64);
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node: self.node,
            plane: Plane::Delivery,
            kind: FlightKind::MacDeliver,
            a: wf.ctrl.src as u64,
            b: wf.payload_bytes as u64,
        });
    }
}

/// What happened to a frame that arrived off the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOutcome {
    /// Unicast to this node: consumed (frame released).
    Delivered,
    /// Broadcast: delivered here and still circulating.
    DeliveredAndForwarded,
    /// Own frame back after a full tour (frame released).
    Stripped,
    /// Transit: queued for the output port.
    Forwarded,
}

/// One node's layered data-plane: `phy` (serialization, 8b/10b),
/// `mac` (insertion register + pacing), `delivery` (host queues).
///
/// # Example
///
/// A two-node hop: node 0 inserts a unicast packet, node 1 delivers it
/// and the pooled frame is recycled.
///
/// ```
/// use ampnet_packet::{build, FrameArena};
/// use ampnet_ring::{NodeStack, PacingMode, RingNodeParams, StackOutcome};
/// use ampnet_phy::LinkParams;
/// use ampnet_sim::{SimDuration, SimTime};
///
/// let mut arena = FrameArena::new();
/// let params = RingNodeParams { pacing: PacingMode::Greedy, ..Default::default() };
/// let mk = |id| NodeStack::with_defaults(
///     id, params, LinkParams::default(),
///     SimDuration::from_nanos(60), 2,
/// );
/// let (mut tx, mut rx) = (mk(0), mk(1));
///
/// tx.enqueue_packet(&mut arena, 0, &build::data(0, 1, 0, [7; 8]));
/// let sent = tx.next_tx(SimTime(0), &arena).expect("eligible to insert");
/// let outcome = rx.on_wire_arrival(SimTime(100), &mut arena, sent.frame.frame);
/// assert_eq!(outcome, StackOutcome::Delivered);
/// assert_eq!(arena.live(), 0, "delivery recycled the frame slot");
/// ```
#[derive(Debug)]
pub struct NodeStack<P: PhyPort = SerialPhy, M: InsertionMac = RegisterMac, D: DeliveryPlane = HostQueues>
{
    /// The PHY plane.
    pub phy: P,
    /// The insertion-MAC plane.
    pub mac: M,
    /// The delivery plane.
    pub delivery: D,
    /// Per-plane metric handles (inert until [`NodeStack::instrument`]).
    pub telemetry: StackTelemetry,
}

impl<P: PhyPort, M: InsertionMac, D: DeliveryPlane> NodeStack<P, M, D> {
    /// Assemble a stack from its planes.
    pub fn new(phy: P, mac: M, delivery: D) -> Self {
        NodeStack { phy, mac, delivery, telemetry: StackTelemetry::disabled() }
    }

    /// Attach this stack to a shared registry: registers its per-plane
    /// instruments under the MAC's node id. Idempotent per registry.
    pub fn instrument(&mut self, tel: &Telemetry) {
        self.telemetry = StackTelemetry::new(tel, self.mac.id());
    }

    /// Sample the MAC-plane gauges (`mac_would_drop`,
    /// `mac_transit_highwater_bytes`) into the registry. Call before
    /// taking a snapshot.
    pub fn publish_metrics(&self) {
        self.telemetry.publish_mac_gauges(self.mac.stats());
    }

    /// A frame's last byte arrived from upstream: classify it, hand
    /// deliverable copies to the delivery plane, and recycle frames
    /// that leave the ring here.
    pub fn on_wire_arrival(
        &mut self,
        now: SimTime,
        arena: &mut FrameArena,
        frame: FrameRef,
    ) -> StackOutcome {
        let wf = WireFrame::of(arena, frame);
        match self.mac.on_arrival(now, wf) {
            MacAction::Deliver(wf) => {
                self.telemetry.delivered(now, &wf);
                self.delivery.deliver(now, &wf, arena.view(wf.frame));
                arena.release(wf.frame);
                StackOutcome::Delivered
            }
            MacAction::DeliverAndForward(wf) => {
                self.telemetry.delivered(now, &wf);
                self.delivery.deliver(now, &wf, arena.view(wf.frame));
                StackOutcome::DeliveredAndForwarded
            }
            MacAction::Strip(wf) => {
                self.telemetry.tel.inc(self.telemetry.stripped);
                self.telemetry.tel.flight(FlightEvent {
                    at_ns: now.0,
                    node: self.telemetry.node,
                    plane: Plane::Mac,
                    kind: FlightKind::MacStrip,
                    a: wf.wire_bytes as u64,
                    b: 0,
                });
                arena.release(wf.frame);
                StackOutcome::Stripped
            }
            MacAction::Forward => StackOutcome::Forwarded,
        }
    }

    /// Serialize an own packet into the arena (its single encode) and
    /// queue it on `stream`.
    pub fn enqueue_packet(&mut self, arena: &mut FrameArena, stream: StreamId, pkt: &MicroPacket) {
        let wf = WireFrame::insert(arena, pkt);
        self.mac.enqueue_own(stream, wf);
    }

    /// Serialize an urgent own packet and queue it ahead of the stream
    /// scheduler.
    pub fn enqueue_urgent_packet(&mut self, arena: &mut FrameArena, pkt: &MicroPacket) {
        let wf = WireFrame::insert(arena, pkt);
        self.mac.enqueue_urgent(wf);
    }

    /// Pick the next frame for a free output port and clock it through
    /// the PHY. `None` when nothing is eligible right now.
    pub fn next_tx(&mut self, now: SimTime, arena: &FrameArena) -> Option<MacTx> {
        let tx = self.mac.next_tx(now)?;
        self.phy.transmit(arena, &tx.frame);
        self.telemetry.tel.inc(self.telemetry.phy_tx);
        if tx.own {
            self.telemetry.tel.inc(self.telemetry.inserted);
            self.telemetry.tel.flight(FlightEvent {
                at_ns: now.0,
                node: self.telemetry.node,
                plane: Plane::Mac,
                kind: FlightKind::MacInsert,
                a: tx.frame.ctrl.dst as u64,
                b: tx.frame.wire_bytes as u64,
            });
        } else {
            self.telemetry.tel.inc(self.telemetry.forwarded);
        }
        Some(tx)
    }

    /// Inject a fault at its plane boundary. Returns the plane's
    /// detection verdict (e.g. 8b/10b violations flagged for a PHY
    /// burst) so the control plane can decide whether to escalate.
    pub fn inject_fault(&mut self, fault: PlaneFault) -> u32 {
        self.inject_fault_at(SimTime(0), fault)
    }

    /// [`NodeStack::inject_fault`], stamped with the simulated time so
    /// the burst lands on the flight-recorder timeline.
    pub fn inject_fault_at(&mut self, now: SimTime, fault: PlaneFault) -> u32 {
        match fault {
            PlaneFault::Phy { seed, errors } => {
                let detected = self.phy.assess_burst(seed, errors);
                self.telemetry.tel.inc(self.telemetry.bursts);
                self.telemetry.tel.add(self.telemetry.bit_errors, errors as u64);
                self.telemetry.tel.add(self.telemetry.violations, detected as u64);
                self.telemetry.tel.flight(FlightEvent {
                    at_ns: now.0,
                    node: self.telemetry.node,
                    plane: Plane::Phy,
                    kind: FlightKind::PhyBurst,
                    a: errors as u64,
                    b: detected as u64,
                });
                detected
            }
        }
    }
}

impl NodeStack<SerialPhy, RegisterMac, HostQueues> {
    /// The default stack: serial PHY, register-insertion MAC, host
    /// queues with per-source accounting.
    pub fn with_defaults(
        id: u8,
        params: crate::mac::RingNodeParams,
        link: LinkParams,
        node_latency: SimDuration,
        n_sources: usize,
    ) -> Self {
        NodeStack {
            phy: SerialPhy::new(link, node_latency),
            mac: RegisterMac::new(id, params),
            delivery: HostQueues::new(n_sources),
            telemetry: StackTelemetry::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::RingNodeParams;
    use crate::pacing::PacingMode;
    use ampnet_packet::build;

    fn stack(id: u8, n: usize) -> NodeStack {
        NodeStack::with_defaults(
            id,
            RingNodeParams {
                pacing: PacingMode::Greedy,
                ..Default::default()
            },
            LinkParams::default(),
            SimDuration::from_nanos(60),
            n,
        )
    }

    #[test]
    fn unicast_frame_is_delivered_and_recycled() {
        let mut arena = FrameArena::new();
        let mut s = stack(2, 4);
        s.delivery.retain_packets = true;
        let pkt = build::data(0, 2, 1, [9; 8]);
        let f = arena.insert(&pkt);
        assert_eq!(
            s.on_wire_arrival(SimTime(0), &mut arena, f),
            StackOutcome::Delivered
        );
        assert_eq!(s.delivery.pending.pop_front(), Some(pkt));
        assert_eq!(s.delivery.delivered_from[0], 8);
        assert_eq!(arena.live(), 0, "frame recycled at delivery");
    }

    #[test]
    fn broadcast_tour_releases_frame_at_source() {
        let mut arena = FrameArena::new();
        let mut stacks: Vec<NodeStack> = (0..3).map(|i| stack(i, 3)).collect();
        let pkt = build::data_broadcast(0, 0, [5; 8]);
        // Source inserts once; the frame then tours 1 → 2 → 0.
        stacks[0].enqueue_packet(&mut arena, 0, &pkt);
        let tx = stacks[0].next_tx(SimTime(0), &arena).unwrap();
        assert!(tx.own);
        let mut f = tx.frame.frame;
        for hop in [1usize, 2] {
            assert_eq!(
                stacks[hop].on_wire_arrival(SimTime(0), &mut arena, f),
                StackOutcome::DeliveredAndForwarded
            );
            let fwd = stacks[hop].next_tx(SimTime(0), &arena).unwrap();
            assert!(!fwd.own);
            assert_eq!(fwd.frame.frame, f, "same pooled frame all the way round");
            f = fwd.frame.frame;
        }
        assert_eq!(
            stacks[0].on_wire_arrival(SimTime(0), &mut arena, f),
            StackOutcome::Stripped
        );
        assert_eq!(arena.live(), 0, "strip recycles the slot");
        assert_eq!(arena.stats().acquired, 1, "one encode for the whole tour");
    }

    #[test]
    fn phy_burst_assessment_is_deterministic() {
        let mut s = stack(0, 1);
        let a = s.inject_fault(PlaneFault::Phy { seed: 77, errors: 9 });
        let b = s.inject_fault(PlaneFault::Phy { seed: 77, errors: 9 });
        assert_eq!(a, b, "same seed, same verdict");
        assert!(a > 0, "a 9-error burst must trip the 8b/10b checker");
        assert_eq!(s.inject_fault(PlaneFault::Phy { seed: 1, errors: 0 }), 0);
    }
}
