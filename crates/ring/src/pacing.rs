//! Adaptive insertion flow control (slide 8).
//!
//! "Each node monitors its local view of the network and can increase
//! or decrease its contribution to the total flow accordingly."
//!
//! The *no-drop* property of the register-insertion MAC is structural
//! (a node only inserts when its insertion buffer is empty, and the
//! buffer is sized for the worst case — see [`crate::node`]). What the
//! adaptive governor adds is *fairness and bounded transit latency*:
//! a node whose insertion buffer keeps filling up is a node on a
//! congested segment, so it multiplicatively backs off its insertion
//! rate; when the buffer stays empty it additively recovers. This is
//! AIMD on the inter-insertion gap.

use ampnet_sim::{SimDuration, SimTime};

/// Insertion pacing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacingMode {
    /// Insert whenever the MAC rules allow (ablation A1 baseline).
    Greedy,
    /// AIMD governor on the insertion gap.
    Adaptive(AimdParams),
}

/// AIMD parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdParams {
    /// Smallest enforced gap between own insertions (full speed).
    pub min_gap: SimDuration,
    /// Largest enforced gap (maximum back-off).
    pub max_gap: SimDuration,
    /// Additive decrease of the gap applied per uncongested insertion.
    pub recover_step: SimDuration,
    /// Multiplicative increase of the gap on congestion (e.g. 2 = double).
    pub backoff_factor: u32,
    /// Transit-buffer occupancy (bytes) at or above which the node
    /// considers its local view congested.
    pub congestion_bytes: usize,
}

impl Default for AimdParams {
    fn default() -> Self {
        AimdParams {
            min_gap: SimDuration::ZERO,
            max_gap: SimDuration::from_micros(20),
            recover_step: SimDuration::from_nanos(100),
            backoff_factor: 2,
            // Congestion means a *backlog*: more than one max-size frame
            // queued in the insertion buffer at once. A single frame in
            // normal transit passage (up to MAX_PACKET_WIRE = 84 bytes)
            // must not count, or any sustained broadcast load pins every
            // node at max_gap and own insertion collapses to a trickle
            // while the links sit mostly idle.
            congestion_bytes: crate::mac::MAX_PACKET_WIRE + 1,
        }
    }
}

/// Per-node insertion governor.
#[derive(Debug, Clone)]
pub struct InsertionGovernor {
    mode: PacingMode,
    gap: SimDuration,
    next_allowed: SimTime,
    backoffs: u64,
}

/// One multiplicative back-off step, clamped into `[min_gap, max_gap]`.
///
/// This used to be duplicated inline in `on_insert` and `on_congestion`
/// (which also skipped the `min_gap` floor), so the two paths could
/// drift — and with a huge `backoff_factor` the saturating multiply
/// lands on `SimDuration::MAX` and *must* be clamped on both. The
/// `recover_step` floor bootstraps the gap off zero, where a
/// multiplicative step alone would be stuck.
fn backed_off_gap(gap: SimDuration, p: &AimdParams) -> SimDuration {
    gap.saturating_mul(p.backoff_factor as u64)
        .max(p.recover_step)
        .clamp(p.min_gap, p.max_gap)
}

impl InsertionGovernor {
    /// New governor in the given mode.
    pub fn new(mode: PacingMode) -> Self {
        let gap = match mode {
            PacingMode::Greedy => SimDuration::ZERO,
            PacingMode::Adaptive(p) => p.min_gap,
        };
        InsertionGovernor {
            mode,
            gap,
            next_allowed: SimTime::ZERO,
            backoffs: 0,
        }
    }

    /// May the node insert its own packet now?
    pub fn may_insert(&self, now: SimTime) -> bool {
        now >= self.next_allowed
    }

    /// Earliest instant insertion will be allowed.
    pub fn next_allowed(&self) -> SimTime {
        self.next_allowed
    }

    /// Current enforced gap.
    pub fn gap(&self) -> SimDuration {
        self.gap
    }

    /// Times the governor backed off.
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// Record an insertion that just started at `now`, with the current
    /// transit-buffer occupancy as the congestion signal.
    pub fn on_insert(&mut self, now: SimTime, transit_bytes: usize) {
        if let PacingMode::Adaptive(p) = self.mode {
            if transit_bytes >= p.congestion_bytes {
                // Congested: multiplicative back-off.
                self.gap = backed_off_gap(self.gap, &p);
                self.backoffs += 1;
            } else {
                // Clear: additive recovery.
                self.gap = self
                    .gap
                    .saturating_sub(p.recover_step)
                    .clamp(p.min_gap, p.max_gap);
            }
            self.next_allowed = now + self.gap;
        }
    }

    /// Congestion observed without an insertion (transit packet passed
    /// through a backed-up buffer): also backs off under AIMD.
    pub fn on_congestion(&mut self, now: SimTime) {
        if let PacingMode::Adaptive(p) = self.mode {
            self.gap = backed_off_gap(self.gap, &p);
            self.backoffs += 1;
            if self.next_allowed < now + self.gap {
                self.next_allowed = now + self.gap;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_always_allows() {
        let mut g = InsertionGovernor::new(PacingMode::Greedy);
        assert!(g.may_insert(SimTime::ZERO));
        g.on_insert(SimTime(100), 10_000);
        assert!(g.may_insert(SimTime(100)));
        assert_eq!(g.backoffs(), 0);
    }

    #[test]
    fn adaptive_backs_off_on_congestion() {
        let p = AimdParams::default();
        let mut g = InsertionGovernor::new(PacingMode::Adaptive(p));
        assert!(g.may_insert(SimTime(0)));
        g.on_insert(SimTime(0), p.congestion_bytes); // congested
        assert!(g.backoffs() == 1);
        assert!(!g.may_insert(SimTime(0)));
        let gap1 = g.gap();
        g.on_insert(g.next_allowed(), p.congestion_bytes);
        assert!(g.gap() > gap1, "gap grows multiplicatively");
    }

    #[test]
    fn adaptive_recovers_when_clear() {
        let p = AimdParams::default();
        let mut g = InsertionGovernor::new(PacingMode::Adaptive(p));
        // Drive the gap up.
        for _ in 0..8 {
            g.on_insert(g.next_allowed(), p.congestion_bytes);
        }
        let congested_gap = g.gap();
        assert!(congested_gap > SimDuration::ZERO);
        // Now a long run of clear insertions recovers to min_gap.
        for _ in 0..1000 {
            g.on_insert(g.next_allowed(), 0);
        }
        assert_eq!(g.gap(), p.min_gap);
    }

    #[test]
    fn gap_clamped_to_max() {
        let p = AimdParams {
            max_gap: SimDuration::from_nanos(500),
            ..AimdParams::default()
        };
        let mut g = InsertionGovernor::new(PacingMode::Adaptive(p));
        for _ in 0..64 {
            g.on_congestion(SimTime(0));
        }
        assert_eq!(g.gap(), SimDuration::from_nanos(500));
    }

    #[test]
    fn gap_stays_in_bounds_under_any_interleaving() {
        // The clamp invariant must hold after *any* interleaving of
        // backoff and recovery steps, on both backoff entry points.
        let p = AimdParams {
            min_gap: SimDuration::from_nanos(50),
            max_gap: SimDuration::from_nanos(700),
            ..AimdParams::default()
        };
        let in_bounds = |g: &InsertionGovernor| p.min_gap <= g.gap() && g.gap() <= p.max_gap;
        // Exhaust every 8-step interleaving of the three transitions.
        for pattern in 0..3u32.pow(8) {
            let mut g = InsertionGovernor::new(PacingMode::Adaptive(p));
            assert!(in_bounds(&g), "initial gap out of bounds");
            let mut code = pattern;
            for step in 0..8 {
                let now = g.next_allowed();
                match code % 3 {
                    0 => g.on_insert(now, p.congestion_bytes), // backoff
                    1 => g.on_insert(now, 0),                  // recover
                    _ => g.on_congestion(now),                 // backoff, no insert
                }
                code /= 3;
                assert!(
                    in_bounds(&g),
                    "pattern {pattern} step {step}: gap {:?} outside [{:?}, {:?}]",
                    g.gap(),
                    p.min_gap,
                    p.max_gap
                );
            }
        }
    }

    #[test]
    fn backoff_factor_overflow_saturates_then_clamps() {
        // A pathological factor drives the saturating multiply to
        // SimDuration::MAX; the unified clamp must still bound the gap
        // (the old on_congestion path applied max_gap but skipped
        // min_gap; both paths now share one helper).
        let p = AimdParams {
            min_gap: SimDuration::from_nanos(10),
            max_gap: SimDuration::from_micros(5),
            backoff_factor: u32::MAX,
            ..AimdParams::default()
        };
        let mut g = InsertionGovernor::new(PacingMode::Adaptive(p));
        for _ in 0..4 {
            g.on_congestion(SimTime(0));
            assert_eq!(g.gap(), p.max_gap, "saturated backoff must clamp to max_gap");
        }
        g.on_insert(SimTime(0), p.congestion_bytes);
        assert_eq!(g.gap(), p.max_gap);
        // And recovery from the clamped gap still respects the floor.
        for _ in 0..10_000 {
            g.on_insert(g.next_allowed(), 0);
        }
        assert_eq!(g.gap(), p.min_gap);
    }

    #[test]
    fn single_transit_frame_is_not_congestion() {
        // Regression: the default threshold used to be 21 bytes, so a
        // lone 84-byte DMA frame passing through the insertion buffer
        // counted as congestion. Under any sustained broadcast load
        // (e.g. the workload engine's pub/sub + thread-spawn mix) every
        // node backed off to max_gap and own insertion collapsed to one
        // frame per 20 µs — semaphore responses queued for hundreds of
        // microseconds and tripped their 500 µs retransmission timers
        // on an otherwise idle ring. One max-size frame in passage is
        // normal operation; only a multi-frame backlog may back off.
        let p = AimdParams::default();
        let mut g = InsertionGovernor::new(PacingMode::Adaptive(p));
        for _ in 0..100 {
            g.on_insert(g.next_allowed(), crate::mac::MAX_PACKET_WIRE);
        }
        assert_eq!(g.backoffs(), 0, "one frame in transit must not back off");
        assert_eq!(g.gap(), p.min_gap);
        // Two queued max-size frames are a real backlog: still backs off.
        g.on_insert(g.next_allowed(), 2 * crate::mac::MAX_PACKET_WIRE);
        assert_eq!(g.backoffs(), 1);
    }

    #[test]
    fn on_congestion_defers_next_allowed() {
        let p = AimdParams::default();
        let mut g = InsertionGovernor::new(PacingMode::Adaptive(p));
        g.on_congestion(SimTime(1_000));
        assert!(g.next_allowed() > SimTime(1_000));
    }
}
