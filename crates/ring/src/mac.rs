//! The insertion-MAC plane: register-insertion logic over pooled
//! wire frames.
//!
//! Classic register insertion (slide 8, "a variant of a register
//! insertion ring") with AmpNet's adaptations:
//!
//! * **Transit priority.** Packets in flight around the ring are never
//!   blocked by local traffic: the output port always serves the
//!   insertion (transit) buffer first.
//! * **Insert-when-empty rule.** A node may start inserting its own
//!   packet only while its insertion buffer is empty. While the
//!   insertion is on the wire, at most one maximum-size packet can
//!   finish arriving from upstream plus one more already in flight, so
//!   an insertion buffer of `2 × MAX_PACKET` bytes structurally cannot
//!   overflow — this is the "guaranteed not to drop packets even under
//!   all-to-all broadcast" property. The node still counts hypothetical
//!   overflows (`would_drop`) so experiments can assert the guarantee.
//! * **Source stripping.** Broadcast packets circulate one full tour
//!   and are removed by their source; unicast packets are removed by
//!   their destination (spatial reuse).
//! * **Adaptive contribution** (see [`crate::pacing`]): the node
//!   watches its own insertion-buffer high-water mark and modulates its
//!   insertion rate.
//!
//! The MAC never touches packet payloads: it operates on [`WireFrame`]
//! descriptors — a decoded control word, cached sizes, and a
//! [`FrameRef`] into the serialized frame pool — so forwarding a
//! packet moves 16 bytes and zero heap.

use crate::pacing::{InsertionGovernor, PacingMode};
use crate::stream::{StreamId, StreamSet, WireSized};
use ampnet_packet::{ControlWord, Flags, FrameArena, FrameRef, MicroPacket};
use ampnet_sim::SimTime;
use std::collections::VecDeque;

/// Largest MicroPacket on the wire (full DMA cell), bytes.
pub const MAX_PACKET_WIRE: usize = 84;

/// Configuration of one ring MAC.
#[derive(Debug, Clone, Copy)]
pub struct RingNodeParams {
    /// Insertion (transit) buffer capacity in bytes. The structural
    /// no-drop bound is `2 × MAX_PACKET_WIRE`; the default adds slack
    /// for measurement.
    pub transit_capacity: usize,
    /// Insertion pacing policy.
    pub pacing: PacingMode,
    /// Number of local transmit streams.
    pub n_streams: usize,
}

impl Default for RingNodeParams {
    fn default() -> Self {
        RingNodeParams {
            transit_capacity: 2 * MAX_PACKET_WIRE,
            pacing: PacingMode::Adaptive(Default::default()),
            n_streams: 4,
        }
    }
}

/// MAC counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingNodeStats {
    /// Own packets inserted onto the segment.
    pub inserted: u64,
    /// Transit packets forwarded.
    pub forwarded: u64,
    /// Packets delivered to this node (unicast + broadcast copies).
    pub delivered: u64,
    /// Own packets stripped after a full tour.
    pub stripped: u64,
    /// Times the insertion buffer would have overflowed. The paper's
    /// guarantee is that this is always zero.
    pub would_drop: u64,
    /// Peak insertion-buffer occupancy in bytes.
    pub transit_highwater: usize,
    /// Delivered payload bytes.
    pub delivered_payload_bytes: u64,
}

/// Descriptor of one serialized packet in flight: the decoded control
/// word, the sizes every MAC decision needs, and a handle to the
/// pooled frame body. This is what transit buffers, stream queues and
/// arrival events carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFrame {
    /// Word 0, decoded once at the source.
    pub ctrl: ControlWord,
    /// Total line bytes including SOF/EOF (serialization cost).
    pub wire_bytes: u16,
    /// Application payload bytes carried (delivery accounting).
    pub payload_bytes: u16,
    /// The serialized frame body in the segment's [`FrameArena`].
    pub frame: FrameRef,
}

impl WireFrame {
    /// Serialize `pkt` into `arena` — the *single* encode of a
    /// packet's life, at its source — and describe it.
    pub fn insert(arena: &mut FrameArena, pkt: &MicroPacket) -> WireFrame {
        WireFrame {
            ctrl: pkt.ctrl,
            wire_bytes: pkt.wire_bytes() as u16,
            payload_bytes: pkt.payload_bytes() as u16,
            frame: arena.insert(pkt),
        }
    }

    /// Describe an already-pooled frame.
    pub fn of(arena: &FrameArena, frame: FrameRef) -> WireFrame {
        let v = arena.view(frame);
        WireFrame {
            ctrl: v.ctrl,
            wire_bytes: v.wire_bytes() as u16,
            payload_bytes: v.payload_bytes() as u16,
            frame,
        }
    }
}

impl WireSized for WireFrame {
    fn wire_bytes(&self) -> usize {
        self.wire_bytes as usize
    }
}

/// What the MAC decided about an arriving frame.
///
/// Frame ownership: `Deliver` and `Strip` hand the frame back to the
/// caller (release it after use); `DeliverAndForward` keeps the frame
/// queued in the transit buffer — the descriptor is a loan for the
/// delivery copy; `Forward` keeps it queued with no local action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacAction {
    /// Unicast to this node: consumed, not forwarded.
    Deliver(WireFrame),
    /// Broadcast: a copy is delivered here and the packet continues.
    DeliverAndForward(WireFrame),
    /// Own packet back after a full tour: stripped off the ring.
    Strip(WireFrame),
    /// In transit: forwarded downstream unchanged.
    Forward,
}

/// Pure arrival classification, independent of MAC bookkeeping.
///
/// This is the ownership-relevant core of [`RegisterMac::on_arrival`]:
/// given only the node's ring address and the frame's control word it
/// says who ends up owning the frame. Factored out so the model
/// checker (`ampnet-check`) can drive the exact decision procedure the
/// MAC uses without constructing a full `RegisterMac`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// Own packet back after a full tour: stripped, caller releases it.
    Strip,
    /// Broadcast: delivered locally while the frame stays in transit
    /// (the delivery descriptor is a loan).
    DeliverAndForward,
    /// Unicast to this node: consumed, caller releases it.
    Deliver,
    /// In transit: forwarded downstream unchanged.
    Forward,
}

/// Classify a frame arriving at ring address `id` (see [`FrameClass`]).
pub fn classify(id: u8, ctrl: &ControlWord) -> FrameClass {
    if ctrl.src == id {
        FrameClass::Strip
    } else if ctrl.is_broadcast() {
        FrameClass::DeliverAndForward
    } else if ctrl.dst == id {
        FrameClass::Deliver
    } else {
        FrameClass::Forward
    }
}

/// What the output port should send next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacTx {
    /// The frame to put on the wire.
    pub frame: WireFrame,
    /// True when this is locally sourced traffic (an insertion).
    pub own: bool,
    /// Source stream for own traffic.
    pub stream: Option<StreamId>,
}

/// The insertion-MAC plane interface: arrival classification, transmit
/// selection, and local enqueueing, all in terms of [`WireFrame`]s.
///
/// [`RegisterMac`] is the paper's register-insertion behavior; the
/// trait exists so experiments (and faults) can interpose at the plane
/// boundary.
pub trait InsertionMac {
    /// This node's ring address.
    fn id(&self) -> u8;

    /// Handle a frame arriving from the upstream link.
    fn on_arrival(&mut self, now: SimTime, frame: WireFrame) -> MacAction;

    /// Choose the next frame for a free output port, or `None` if
    /// nothing is eligible right now. `now` drives the pacing governor.
    fn next_tx(&mut self, now: SimTime) -> Option<MacTx>;

    /// Queue a normal own frame on `stream`.
    fn enqueue_own(&mut self, stream: StreamId, frame: WireFrame);

    /// Queue an urgent (Rostering / Interrupt) frame; bypasses the
    /// stream scheduler and the pacing governor.
    fn enqueue_urgent(&mut self, frame: WireFrame);

    /// Earliest time a governed insertion may occur (for scheduling a
    /// retry when `next_tx` returned `None` but streams have traffic).
    fn next_insert_allowed(&self) -> SimTime;

    /// Whether any local stream has traffic waiting.
    fn has_pending_streams(&self) -> bool;

    /// Whether the node has anything to send at all.
    fn has_backlog(&self) -> bool;

    /// Current transit (insertion) buffer occupancy in bytes.
    fn transit_bytes(&self) -> usize;

    /// Counters.
    fn stats(&self) -> &RingNodeStats;
}

/// The per-node register-insertion MAC (the paper's behavior; the
/// default [`InsertionMac`] implementation).
#[derive(Debug)]
pub struct RegisterMac {
    id: u8,
    params: RingNodeParams,
    transit: VecDeque<WireFrame>,
    transit_bytes: usize,
    urgent: VecDeque<WireFrame>,
    streams: StreamSet<WireFrame>,
    governor: InsertionGovernor,
    /// High-water mark of the transit buffer since the last insertion —
    /// the node's "local view of the network" congestion signal.
    highwater_since_insert: usize,
    stats: RingNodeStats,
}

impl RegisterMac {
    /// New MAC for node `id`.
    pub fn new(id: u8, params: RingNodeParams) -> Self {
        RegisterMac {
            id,
            params,
            transit: VecDeque::new(),
            transit_bytes: 0,
            urgent: VecDeque::new(),
            streams: StreamSet::new(params.n_streams),
            governor: InsertionGovernor::new(params.pacing),
            highwater_since_insert: 0,
            stats: RingNodeStats::default(),
        }
    }

    /// Immutable view of stream accounting.
    pub fn streams_ref(&self) -> &StreamSet<WireFrame> {
        &self.streams
    }

    /// Governor back-off count (ablation metric).
    pub fn backoffs(&self) -> u64 {
        self.governor.backoffs()
    }

    /// This node's ring address.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Counters.
    pub fn stats(&self) -> &RingNodeStats {
        &self.stats
    }

    /// Current transit (insertion) buffer occupancy in bytes.
    pub fn transit_bytes(&self) -> usize {
        self.transit_bytes
    }

    fn push_transit(&mut self, frame: WireFrame) {
        let sz = frame.wire_bytes as usize;
        if self.transit_bytes + sz > self.params.transit_capacity {
            // The structural guarantee says this cannot happen; count
            // it rather than dropping so experiments can assert == 0
            // while the simulation stays live.
            self.stats.would_drop += 1;
        }
        self.transit_bytes += sz;
        self.highwater_since_insert = self.highwater_since_insert.max(self.transit_bytes);
        self.stats.transit_highwater = self.stats.transit_highwater.max(self.transit_bytes);
        self.transit.push_back(frame);
    }
}

impl RegisterMac {
    /// Handle a frame arriving from the upstream link (see
    /// [`InsertionMac::on_arrival`]).
    pub fn on_arrival(&mut self, _now: SimTime, frame: WireFrame) -> MacAction {
        match classify(self.id, &frame.ctrl) {
            FrameClass::Strip => {
                // Our own packet completed its tour.
                self.stats.stripped += 1;
                MacAction::Strip(frame)
            }
            FrameClass::DeliverAndForward => {
                self.stats.delivered += 1;
                self.stats.delivered_payload_bytes += frame.payload_bytes as u64;
                self.push_transit(frame);
                MacAction::DeliverAndForward(frame)
            }
            FrameClass::Deliver => {
                self.stats.delivered += 1;
                self.stats.delivered_payload_bytes += frame.payload_bytes as u64;
                MacAction::Deliver(frame)
            }
            FrameClass::Forward => {
                self.push_transit(frame);
                MacAction::Forward
            }
        }
    }

    /// Choose the next frame for a free output port (see
    /// [`InsertionMac::next_tx`]).
    pub fn next_tx(&mut self, now: SimTime) -> Option<MacTx> {
        // 1. Transit traffic has absolute priority.
        if let Some(frame) = self.transit.pop_front() {
            self.transit_bytes -= frame.wire_bytes as usize;
            self.stats.forwarded += 1;
            return Some(MacTx {
                frame,
                own: false,
                stream: None,
            });
        }
        // 2. Urgent own traffic (rostering, interrupts): insertion
        //    buffer is empty here by rule 1.
        if let Some(frame) = self.urgent.pop_front() {
            self.stats.inserted += 1;
            return Some(MacTx {
                frame,
                own: true,
                stream: None,
            });
        }
        // 3. Normal own traffic, governed.
        if !self.governor.may_insert(now) {
            return None;
        }
        let (stream, frame) = self.streams.dequeue()?;
        self.stats.inserted += 1;
        self.governor.on_insert(now, self.highwater_since_insert);
        self.highwater_since_insert = 0;
        Some(MacTx {
            frame,
            own: true,
            stream: Some(stream),
        })
    }

    /// Queue a normal own frame on `stream`.
    pub fn enqueue_own(&mut self, stream: StreamId, frame: WireFrame) {
        self.streams.enqueue(stream, frame);
    }

    /// Queue an urgent frame ahead of the stream scheduler.
    pub fn enqueue_urgent(&mut self, frame: WireFrame) {
        debug_assert!(frame.ctrl.flags.contains(Flags::URGENT));
        self.urgent.push_back(frame);
    }

    /// Earliest time a governed insertion may occur.
    pub fn next_insert_allowed(&self) -> SimTime {
        self.governor.next_allowed()
    }

    /// Whether any local stream has traffic waiting.
    pub fn has_pending_streams(&self) -> bool {
        self.streams.has_traffic()
    }

    /// Whether the node has anything to send at all.
    pub fn has_backlog(&self) -> bool {
        !self.transit.is_empty() || !self.urgent.is_empty() || self.streams.has_traffic()
    }
}

impl InsertionMac for RegisterMac {
    fn id(&self) -> u8 {
        RegisterMac::id(self)
    }

    fn on_arrival(&mut self, now: SimTime, frame: WireFrame) -> MacAction {
        RegisterMac::on_arrival(self, now, frame)
    }

    fn next_tx(&mut self, now: SimTime) -> Option<MacTx> {
        RegisterMac::next_tx(self, now)
    }

    fn enqueue_own(&mut self, stream: StreamId, frame: WireFrame) {
        RegisterMac::enqueue_own(self, stream, frame);
    }

    fn enqueue_urgent(&mut self, frame: WireFrame) {
        RegisterMac::enqueue_urgent(self, frame);
    }

    fn next_insert_allowed(&self) -> SimTime {
        RegisterMac::next_insert_allowed(self)
    }

    fn has_pending_streams(&self) -> bool {
        RegisterMac::has_pending_streams(self)
    }

    fn has_backlog(&self) -> bool {
        RegisterMac::has_backlog(self)
    }

    fn transit_bytes(&self) -> usize {
        RegisterMac::transit_bytes(self)
    }

    fn stats(&self) -> &RingNodeStats {
        RegisterMac::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampnet_packet::build;

    #[test]
    fn wireframe_descriptor_matches_packet() {
        let mut arena = FrameArena::new();
        let pkt = build::data(1, 5, 7, [3; 8]);
        let wf = WireFrame::insert(&mut arena, &pkt);
        assert_eq!(wf.ctrl, pkt.ctrl);
        assert_eq!(wf.wire_bytes as usize, pkt.wire_bytes());
        assert_eq!(wf.payload_bytes as usize, pkt.payload_bytes());
        // `of` reconstructs the same descriptor from the pooled frame.
        assert_eq!(WireFrame::of(&arena, wf.frame), wf);
    }

    #[test]
    fn forwarding_keeps_the_same_frame_ref() {
        let mut arena = FrameArena::new();
        let mut mac = RegisterMac::new(
            2,
            RingNodeParams {
                pacing: PacingMode::Greedy,
                ..Default::default()
            },
        );
        let pkt = build::data_broadcast(0, 0, [7; 8]);
        let wf = WireFrame::insert(&mut arena, &pkt);
        match mac.on_arrival(SimTime(0), wf) {
            MacAction::DeliverAndForward(copy) => assert_eq!(copy.frame, wf.frame),
            other => panic!("expected DeliverAndForward, got {other:?}"),
        }
        let tx = mac.next_tx(SimTime(0)).unwrap();
        assert_eq!(tx.frame.frame, wf.frame, "no copy on the forwarding path");
        assert_eq!(arena.stats().acquired, 1, "one encode for the whole hop");
    }
}
