//! # ampnet-ring — register-insertion ring MAC
//!
//! The AmpNet data link (slides 7–8): a register-insertion ring where
//! every node can insert multiple concurrent streams, transit traffic
//! has absolute priority, sources strip their broadcasts after a full
//! tour, and an adaptive governor modulates each node's contribution
//! from its local view of the segment. The headline property — *a
//! simultaneous all-to-all broadcast never drops a packet* — is
//! structural here and asserted by experiment E4.
//!
//! * [`RingNode`] — sans-IO MAC state machine (arrival handling,
//!   transmit selection, insertion rules, counters).
//! * [`StreamSet`] — deficit-round-robin multi-stream scheduler
//!   (slide 7).
//! * [`InsertionGovernor`]/[`PacingMode`] — AIMD flow control
//!   (slide 8); ablation A1 toggles it.
//! * [`Segment`] — standalone discrete-event driver with the paper's
//!   workloads and measurement (goodput, fairness, tour latency).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod node;
mod pacing;
mod segment;
mod stream;

pub use node::{ArrivalAction, RingNode, RingNodeParams, RingNodeStats, TxChoice, MAX_PACKET_WIRE};
pub use pacing::{AimdParams, InsertionGovernor, PacingMode};
pub use segment::{
    ArrivalProcess, DstPattern, PacketKind, Segment, SegmentParams, SegmentReport, StreamWorkload,
};
pub use stream::{StreamId, StreamSet};
