//! # ampnet-ring — register-insertion ring MAC
//!
//! The AmpNet data link (slides 7–8): a register-insertion ring where
//! every node can insert multiple concurrent streams, transit traffic
//! has absolute priority, sources strip their broadcasts after a full
//! tour, and an adaptive governor modulates each node's contribution
//! from its local view of the segment. The headline property — *a
//! simultaneous all-to-all broadcast never drops a packet* — is
//! structural here and asserted by experiment E4.
//!
//! The node data-plane is layered into three planes, each a trait with
//! one canonical implementation (see `DESIGN.md` §9):
//!
//! * [`PhyPort`]/[`SerialPhy`] — serialization timing and the 8b/10b
//!   line-error model.
//! * [`InsertionMac`]/[`RegisterMac`] — the register-insertion state
//!   machine itself (arrival handling, transmit selection, insertion
//!   rules, counters), operating on pooled [`WireFrame`]s.
//! * [`DeliveryPlane`]/[`HostQueues`] — what happens to packets
//!   addressed to this node.
//!
//! [`NodeStack`] composes the three; [`RingNode`] is a packet-valued
//! adapter over [`RegisterMac`] for sans-IO unit-level use.
//!
//! * [`StreamSet`] — deficit-round-robin multi-stream scheduler
//!   (slide 7).
//! * [`InsertionGovernor`]/[`PacingMode`] — AIMD flow control
//!   (slide 8); ablation A1 toggles it.
//! * [`Segment`] — standalone discrete-event driver with the paper's
//!   workloads and measurement (goodput, fairness, tour latency).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod mac;
mod node;
mod pacing;
mod segment;
mod stack;
mod stream;

pub use mac::{
    classify, FrameClass, InsertionMac, MacAction, MacTx, RegisterMac, RingNodeParams,
    RingNodeStats, WireFrame, MAX_PACKET_WIRE,
};
pub use node::{ArrivalAction, RingNode, TxChoice};
pub use pacing::{AimdParams, InsertionGovernor, PacingMode};
pub use segment::{
    ArrivalProcess, DstPattern, PacketKind, Segment, SegmentParams, SegmentReport, StreamWorkload,
};
pub use stack::{
    DeliveryPlane, HostQueues, NodeStack, PhyPort, PlaneFault, SerialPhy, StackOutcome,
    StackTelemetry,
};
pub use stream::{StreamId, StreamSet, WireSized};
