//! Packet-valued adapter over the register-insertion MAC plane.
//!
//! The MAC logic itself lives in [`crate::mac`] and operates on pooled
//! [`WireFrame`](crate::WireFrame)s (see [`crate::stack`] for the full
//! layered data-plane). [`RingNode`] wraps a [`RegisterMac`] plus a
//! private [`FrameArena`] behind the original by-value
//! `MicroPacket` API — handy for unit tests and sans-IO callers that
//! want the slide-8 state machine without managing a frame pool. There
//! is exactly one MAC implementation; this adapter encodes each packet
//! on arrival and decodes on the way out.

use crate::mac::{MacAction, MacTx, RegisterMac, WireFrame};
use crate::stream::{StreamId, StreamSet};
use ampnet_packet::{FrameArena, MicroPacket};
use ampnet_sim::SimTime;

pub use crate::mac::{RingNodeParams, RingNodeStats};

/// What happened to an arriving packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalAction {
    /// Unicast to this node: consumed, not forwarded.
    Deliver(MicroPacket),
    /// Broadcast: a copy is delivered here and the packet continues.
    DeliverAndForward(MicroPacket),
    /// Own packet back after a full tour: stripped off the ring.
    Strip,
    /// In transit: forwarded downstream unchanged.
    Forward,
}

/// What the output port should send next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxChoice {
    /// The packet to serialize.
    pub packet: MicroPacket,
    /// True when this is locally sourced traffic (an insertion).
    pub own: bool,
    /// Source stream for own traffic.
    pub stream: Option<StreamId>,
}

/// The per-node register-insertion MAC, packet-valued facade.
#[derive(Debug)]
pub struct RingNode {
    mac: RegisterMac,
    arena: FrameArena,
}

impl RingNode {
    /// New MAC for node `id`.
    pub fn new(id: u8, params: RingNodeParams) -> Self {
        RingNode {
            mac: RegisterMac::new(id, params),
            arena: FrameArena::new(),
        }
    }

    /// This node's ring address.
    pub fn id(&self) -> u8 {
        self.mac.id()
    }

    /// Counters.
    pub fn stats(&self) -> &RingNodeStats {
        self.mac.stats()
    }

    /// Immutable view of stream accounting.
    pub fn streams_ref(&self) -> &StreamSet<WireFrame> {
        self.mac.streams_ref()
    }

    /// Queue an urgent (Rostering / Interrupt) packet; bypasses the
    /// stream scheduler and the pacing governor.
    pub fn enqueue_urgent(&mut self, pkt: MicroPacket) {
        let wf = WireFrame::insert(&mut self.arena, &pkt);
        self.mac.enqueue_urgent(wf);
    }

    /// Queue a normal own packet on `stream`.
    pub fn enqueue_own(&mut self, stream: StreamId, pkt: MicroPacket) {
        let wf = WireFrame::insert(&mut self.arena, &pkt);
        self.mac.enqueue_own(stream, wf);
    }

    /// Current transit (insertion) buffer occupancy in bytes.
    pub fn transit_bytes(&self) -> usize {
        self.mac.transit_bytes()
    }

    /// Whether the node has anything to send.
    pub fn has_backlog(&self) -> bool {
        self.mac.has_backlog()
    }

    /// Handle a packet arriving from the upstream link.
    pub fn on_arrival(&mut self, now: SimTime, pkt: MicroPacket) -> ArrivalAction {
        let wf = WireFrame::insert(&mut self.arena, &pkt);
        match self.mac.on_arrival(now, wf) {
            MacAction::Deliver(wf) => {
                let p = self.arena.decode(wf.frame);
                self.arena.release(wf.frame);
                ArrivalAction::Deliver(p)
            }
            MacAction::DeliverAndForward(wf) => {
                // Frame stays queued in transit; the delivery copy is
                // decoded from the pooled body.
                ArrivalAction::DeliverAndForward(self.arena.decode(wf.frame))
            }
            MacAction::Strip(wf) => {
                self.arena.release(wf.frame);
                ArrivalAction::Strip
            }
            MacAction::Forward => ArrivalAction::Forward,
        }
    }

    /// Choose the next packet for a free output port, or `None` if
    /// nothing is eligible right now. `now` drives the pacing governor.
    pub fn next_tx(&mut self, now: SimTime) -> Option<TxChoice> {
        let MacTx { frame, own, stream } = self.mac.next_tx(now)?;
        let packet = self.arena.decode(frame.frame);
        self.arena.release(frame.frame);
        Some(TxChoice { packet, own, stream })
    }

    /// Earliest time a governed insertion may occur (for scheduling a
    /// retry when `next_tx` returned `None` but streams have traffic).
    pub fn next_insert_allowed(&self) -> SimTime {
        self.mac.next_insert_allowed()
    }

    /// Governor back-off count (ablation metric).
    pub fn backoffs(&self) -> u64 {
        self.mac.backoffs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pacing::PacingMode;
    use ampnet_packet::build;

    fn node(id: u8) -> RingNode {
        RingNode::new(
            id,
            RingNodeParams {
                pacing: PacingMode::Greedy,
                ..Default::default()
            },
        )
    }

    #[test]
    fn unicast_delivered_and_removed() {
        let mut n = node(2);
        let pkt = build::data(0, 2, 0, [1; 8]);
        match n.on_arrival(SimTime(0), pkt.clone()) {
            ArrivalAction::Deliver(p) => assert_eq!(p, pkt),
            other => panic!("expected Deliver, got {other:?}"),
        }
        assert_eq!(n.stats().delivered, 1);
        assert!(n.next_tx(SimTime(0)).is_none(), "not forwarded");
    }

    #[test]
    fn unicast_in_transit_forwarded() {
        let mut n = node(2);
        let pkt = build::data(0, 5, 0, [1; 8]);
        assert_eq!(n.on_arrival(SimTime(0), pkt.clone()), ArrivalAction::Forward);
        let tx = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(tx.packet, pkt);
        assert!(!tx.own);
        assert_eq!(n.stats().forwarded, 1);
    }

    #[test]
    fn broadcast_copied_and_forwarded() {
        let mut n = node(2);
        let pkt = build::data_broadcast(0, 0, [7; 8]);
        match n.on_arrival(SimTime(0), pkt.clone()) {
            ArrivalAction::DeliverAndForward(p) => assert_eq!(p, pkt),
            other => panic!("expected DeliverAndForward, got {other:?}"),
        }
        let tx = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(tx.packet, pkt);
    }

    #[test]
    fn own_packet_stripped_after_tour() {
        let mut n = node(3);
        let pkt = build::data_broadcast(3, 0, [0; 8]);
        assert_eq!(n.on_arrival(SimTime(0), pkt), ArrivalAction::Strip);
        assert_eq!(n.stats().stripped, 1);
        assert!(n.next_tx(SimTime(0)).is_none());
    }

    #[test]
    fn transit_beats_own_traffic() {
        let mut n = node(1);
        n.enqueue_own(0, build::data(1, 5, 0, [1; 8]));
        let transit = build::data(0, 5, 0, [2; 8]);
        n.on_arrival(SimTime(0), transit.clone());
        let first = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(first.packet, transit, "transit must go first");
        let second = n.next_tx(SimTime(0)).unwrap();
        assert!(second.own);
    }

    #[test]
    fn own_insert_requires_empty_transit() {
        let mut n = node(1);
        n.enqueue_own(0, build::data(1, 5, 0, [1; 8]));
        n.on_arrival(SimTime(0), build::data(0, 5, 0, [2; 8]));
        n.on_arrival(SimTime(0), build::data(0, 6, 0, [3; 8]));
        // Drain: transit, transit, then own.
        assert!(!n.next_tx(SimTime(0)).unwrap().own);
        assert!(!n.next_tx(SimTime(0)).unwrap().own);
        assert!(n.next_tx(SimTime(0)).unwrap().own);
    }

    #[test]
    fn urgent_bypasses_governor_but_not_transit() {
        let params = RingNodeParams {
            pacing: PacingMode::Adaptive(Default::default()),
            ..Default::default()
        };
        let mut n = RingNode::new(1, params);
        // Make the governor refuse normal insertions for a while.
        for _ in 0..4 {
            n.on_arrival(SimTime(0), build::data(0, 5, 0, [9; 8]));
        }
        while n.next_tx(SimTime(0)).is_some() {}
        let roster = build::rostering(1, 0, [0; 8]);
        n.enqueue_urgent(roster.clone());
        let transit = build::data(0, 5, 0, [2; 8]);
        n.on_arrival(SimTime(0), transit.clone());
        let first = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(first.packet, transit);
        let second = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(second.packet, roster);
    }

    #[test]
    fn highwater_and_would_drop_accounting() {
        let mut n = RingNode::new(
            1,
            RingNodeParams {
                transit_capacity: 40,
                pacing: PacingMode::Greedy,
                n_streams: 1,
            },
        );
        // 3 × 20-byte packets into a 40-byte buffer: third would drop.
        for i in 0..3 {
            n.on_arrival(SimTime(0), build::data(0, 5, i, [i; 8]));
        }
        assert_eq!(n.stats().would_drop, 1);
        assert_eq!(n.stats().transit_highwater, 60);
        assert_eq!(n.transit_bytes(), 60);
    }

    #[test]
    fn structural_capacity_never_trips_with_default_params() {
        // Worst case modelled by the insert-when-empty rule: the node
        // inserts one max packet; during that time one max packet
        // finishes arriving and one more is in flight.
        let mut n = RingNode::new(1, RingNodeParams::default());
        n.on_arrival(SimTime(0), build::data(0, 5, 0, [0; 8]));
        let full = build::dma(
            0,
            5,
            0,
            ampnet_packet::DmaCtrl {
                channel: 0,
                region: 0,
                offset: 0,
                len: 0,
            },
            &[0; 64],
        )
        .unwrap();
        n.on_arrival(SimTime(0), full);
        assert_eq!(n.stats().would_drop, 0);
    }

    #[test]
    fn adapter_recycles_frames_in_steady_state() {
        // A long unicast transit flow through the adapter must reuse a
        // handful of arena slots, not grow without bound.
        let mut n = node(1);
        for i in 0..200u8 {
            n.on_arrival(SimTime(0), build::data(0, 5, i, [i; 8]));
            let tx = n.next_tx(SimTime(0)).unwrap();
            assert!(!tx.own);
        }
        assert!(
            n.arena.capacity() <= 2,
            "steady state must recycle slots, grew to {}",
            n.arena.capacity()
        );
    }
}
