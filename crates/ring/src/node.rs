//! Register-insertion ring MAC — per-node state machine.
//!
//! Classic register insertion (slide 8, "a variant of a register
//! insertion ring") with AmpNet's adaptations:
//!
//! * **Transit priority.** Packets in flight around the ring are never
//!   blocked by local traffic: the output port always serves the
//!   insertion (transit) buffer first.
//! * **Insert-when-empty rule.** A node may start inserting its own
//!   packet only while its insertion buffer is empty. While the
//!   insertion is on the wire, at most one maximum-size packet can
//!   finish arriving from upstream plus one more already in flight, so
//!   an insertion buffer of `2 × MAX_PACKET` bytes structurally cannot
//!   overflow — this is the "guaranteed not to drop packets even under
//!   all-to-all broadcast" property. The node still counts hypothetical
//!   overflows (`would_drop`) so experiments can assert the guarantee.
//! * **Source stripping.** Broadcast packets circulate one full tour
//!   and are removed by their source; unicast packets are removed by
//!   their destination (spatial reuse).
//! * **Adaptive contribution** (see [`crate::pacing`]): the node
//!   watches its own insertion-buffer high-water mark and modulates its
//!   insertion rate.

use crate::pacing::{InsertionGovernor, PacingMode};
use crate::stream::{StreamId, StreamSet};
use ampnet_packet::{Flags, MicroPacket};
use ampnet_sim::SimTime;
use std::collections::VecDeque;

/// Largest MicroPacket on the wire (full DMA cell), bytes.
pub const MAX_PACKET_WIRE: usize = 84;

/// Configuration of one ring MAC.
#[derive(Debug, Clone, Copy)]
pub struct RingNodeParams {
    /// Insertion (transit) buffer capacity in bytes. The structural
    /// no-drop bound is `2 × MAX_PACKET_WIRE`; the default adds slack
    /// for measurement.
    pub transit_capacity: usize,
    /// Insertion pacing policy.
    pub pacing: PacingMode,
    /// Number of local transmit streams.
    pub n_streams: usize,
}

impl Default for RingNodeParams {
    fn default() -> Self {
        RingNodeParams {
            transit_capacity: 2 * MAX_PACKET_WIRE,
            pacing: PacingMode::Adaptive(Default::default()),
            n_streams: 4,
        }
    }
}

/// What happened to an arriving packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalAction {
    /// Unicast to this node: consumed, not forwarded.
    Deliver(MicroPacket),
    /// Broadcast: a copy is delivered here and the packet continues.
    DeliverAndForward(MicroPacket),
    /// Own packet back after a full tour: stripped off the ring.
    Strip,
    /// In transit: forwarded downstream unchanged.
    Forward,
}

/// What the output port should send next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxChoice {
    /// The packet to serialize.
    pub packet: MicroPacket,
    /// True when this is locally sourced traffic (an insertion).
    pub own: bool,
    /// Source stream for own traffic.
    pub stream: Option<StreamId>,
}

/// MAC counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingNodeStats {
    /// Own packets inserted onto the segment.
    pub inserted: u64,
    /// Transit packets forwarded.
    pub forwarded: u64,
    /// Packets delivered to this node (unicast + broadcast copies).
    pub delivered: u64,
    /// Own packets stripped after a full tour.
    pub stripped: u64,
    /// Times the insertion buffer would have overflowed. The paper's
    /// guarantee is that this is always zero.
    pub would_drop: u64,
    /// Peak insertion-buffer occupancy in bytes.
    pub transit_highwater: usize,
    /// Delivered payload bytes.
    pub delivered_payload_bytes: u64,
}

/// The per-node register-insertion MAC.
#[derive(Debug)]
pub struct RingNode {
    id: u8,
    params: RingNodeParams,
    transit: VecDeque<MicroPacket>,
    transit_bytes: usize,
    urgent: VecDeque<MicroPacket>,
    streams: StreamSet,
    governor: InsertionGovernor,
    /// High-water mark of the transit buffer since the last insertion —
    /// the node's "local view of the network" congestion signal.
    highwater_since_insert: usize,
    stats: RingNodeStats,
}

impl RingNode {
    /// New MAC for node `id`.
    pub fn new(id: u8, params: RingNodeParams) -> Self {
        RingNode {
            id,
            params,
            transit: VecDeque::new(),
            transit_bytes: 0,
            urgent: VecDeque::new(),
            streams: StreamSet::new(params.n_streams),
            governor: InsertionGovernor::new(params.pacing),
            highwater_since_insert: 0,
            stats: RingNodeStats::default(),
        }
    }

    /// This node's ring address.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Counters.
    pub fn stats(&self) -> &RingNodeStats {
        self.stats_ref()
    }

    fn stats_ref(&self) -> &RingNodeStats {
        &self.stats
    }

    /// Mutable access to the local transmit streams (for enqueueing).
    pub fn streams(&mut self) -> &mut StreamSet {
        &mut self.streams
    }

    /// Immutable view of stream accounting.
    pub fn streams_ref(&self) -> &StreamSet {
        &self.streams
    }

    /// Queue an urgent (Rostering / Interrupt) packet; bypasses the
    /// stream scheduler and the pacing governor.
    pub fn enqueue_urgent(&mut self, pkt: MicroPacket) {
        debug_assert!(pkt.ctrl.flags.contains(Flags::URGENT));
        self.urgent.push_back(pkt);
    }

    /// Queue a normal own packet on `stream`.
    pub fn enqueue_own(&mut self, stream: StreamId, pkt: MicroPacket) {
        self.streams.enqueue(stream, pkt);
    }

    /// Current transit (insertion) buffer occupancy in bytes.
    pub fn transit_bytes(&self) -> usize {
        self.transit_bytes
    }

    /// Whether the node has anything to send.
    pub fn has_backlog(&self) -> bool {
        !self.transit.is_empty() || !self.urgent.is_empty() || self.streams.has_traffic()
    }

    /// Handle a packet arriving from the upstream link.
    pub fn on_arrival(&mut self, _now: SimTime, pkt: MicroPacket) -> ArrivalAction {
        if pkt.ctrl.src == self.id {
            // Our own packet completed its tour.
            self.stats.stripped += 1;
            return ArrivalAction::Strip;
        }
        if pkt.ctrl.is_broadcast() {
            self.stats.delivered += 1;
            self.stats.delivered_payload_bytes += pkt.payload_bytes() as u64;
            self.push_transit(pkt.clone());
            return ArrivalAction::DeliverAndForward(pkt);
        }
        if pkt.ctrl.dst == self.id {
            self.stats.delivered += 1;
            self.stats.delivered_payload_bytes += pkt.payload_bytes() as u64;
            return ArrivalAction::Deliver(pkt);
        }
        self.push_transit(pkt);
        ArrivalAction::Forward
    }

    fn push_transit(&mut self, pkt: MicroPacket) {
        let sz = pkt.wire_bytes();
        if self.transit_bytes + sz > self.params.transit_capacity {
            // The structural guarantee says this cannot happen; count
            // it rather than dropping so experiments can assert == 0
            // while the simulation stays live.
            self.stats.would_drop += 1;
        }
        self.transit_bytes += sz;
        self.highwater_since_insert = self.highwater_since_insert.max(self.transit_bytes);
        self.stats.transit_highwater = self.stats.transit_highwater.max(self.transit_bytes);
        self.transit.push_back(pkt);
    }

    /// Choose the next packet for a free output port, or `None` if
    /// nothing is eligible right now. `now` drives the pacing governor.
    pub fn next_tx(&mut self, now: SimTime) -> Option<TxChoice> {
        // 1. Transit traffic has absolute priority.
        if let Some(pkt) = self.transit.pop_front() {
            self.transit_bytes -= pkt.wire_bytes();
            self.stats.forwarded += 1;
            return Some(TxChoice {
                packet: pkt,
                own: false,
                stream: None,
            });
        }
        // 2. Urgent own traffic (rostering, interrupts): insertion
        //    buffer is empty here by rule 1.
        if let Some(pkt) = self.urgent.pop_front() {
            self.stats.inserted += 1;
            return Some(TxChoice {
                packet: pkt,
                own: true,
                stream: None,
            });
        }
        // 3. Normal own traffic, governed.
        if !self.governor.may_insert(now) {
            return None;
        }
        let (stream, pkt) = self.streams.dequeue()?;
        self.stats.inserted += 1;
        self.governor.on_insert(now, self.highwater_since_insert);
        self.highwater_since_insert = 0;
        Some(TxChoice {
            packet: pkt,
            own: true,
            stream: Some(stream),
        })
    }

    /// Earliest time a governed insertion may occur (for scheduling a
    /// retry when `next_tx` returned `None` but streams have traffic).
    pub fn next_insert_allowed(&self) -> SimTime {
        self.governor.next_allowed()
    }

    /// Governor back-off count (ablation metric).
    pub fn backoffs(&self) -> u64 {
        self.governor.backoffs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampnet_packet::build;

    fn node(id: u8) -> RingNode {
        RingNode::new(
            id,
            RingNodeParams {
                pacing: PacingMode::Greedy,
                ..Default::default()
            },
        )
    }

    #[test]
    fn unicast_delivered_and_removed() {
        let mut n = node(2);
        let pkt = build::data(0, 2, 0, [1; 8]);
        match n.on_arrival(SimTime(0), pkt.clone()) {
            ArrivalAction::Deliver(p) => assert_eq!(p, pkt),
            other => panic!("expected Deliver, got {other:?}"),
        }
        assert_eq!(n.stats().delivered, 1);
        assert!(n.next_tx(SimTime(0)).is_none(), "not forwarded");
    }

    #[test]
    fn unicast_in_transit_forwarded() {
        let mut n = node(2);
        let pkt = build::data(0, 5, 0, [1; 8]);
        assert_eq!(n.on_arrival(SimTime(0), pkt.clone()), ArrivalAction::Forward);
        let tx = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(tx.packet, pkt);
        assert!(!tx.own);
        assert_eq!(n.stats().forwarded, 1);
    }

    #[test]
    fn broadcast_copied_and_forwarded() {
        let mut n = node(2);
        let pkt = build::data_broadcast(0, 0, [7; 8]);
        match n.on_arrival(SimTime(0), pkt.clone()) {
            ArrivalAction::DeliverAndForward(p) => assert_eq!(p, pkt),
            other => panic!("expected DeliverAndForward, got {other:?}"),
        }
        let tx = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(tx.packet, pkt);
    }

    #[test]
    fn own_packet_stripped_after_tour() {
        let mut n = node(3);
        let pkt = build::data_broadcast(3, 0, [0; 8]);
        assert_eq!(n.on_arrival(SimTime(0), pkt), ArrivalAction::Strip);
        assert_eq!(n.stats().stripped, 1);
        assert!(n.next_tx(SimTime(0)).is_none());
    }

    #[test]
    fn transit_beats_own_traffic() {
        let mut n = node(1);
        n.enqueue_own(0, build::data(1, 5, 0, [1; 8]));
        let transit = build::data(0, 5, 0, [2; 8]);
        n.on_arrival(SimTime(0), transit.clone());
        let first = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(first.packet, transit, "transit must go first");
        let second = n.next_tx(SimTime(0)).unwrap();
        assert!(second.own);
    }

    #[test]
    fn own_insert_requires_empty_transit() {
        let mut n = node(1);
        n.enqueue_own(0, build::data(1, 5, 0, [1; 8]));
        n.on_arrival(SimTime(0), build::data(0, 5, 0, [2; 8]));
        n.on_arrival(SimTime(0), build::data(0, 6, 0, [3; 8]));
        // Drain: transit, transit, then own.
        assert!(!n.next_tx(SimTime(0)).unwrap().own);
        assert!(!n.next_tx(SimTime(0)).unwrap().own);
        assert!(n.next_tx(SimTime(0)).unwrap().own);
    }

    #[test]
    fn urgent_bypasses_governor_but_not_transit() {
        let params = RingNodeParams {
            pacing: PacingMode::Adaptive(Default::default()),
            ..Default::default()
        };
        let mut n = RingNode::new(1, params);
        // Make the governor refuse normal insertions for a while.
        for _ in 0..4 {
            n.on_arrival(SimTime(0), build::data(0, 5, 0, [9; 8]));
        }
        while n.next_tx(SimTime(0)).is_some() {}
        let roster = build::rostering(1, 0, [0; 8]);
        n.enqueue_urgent(roster.clone());
        let transit = build::data(0, 5, 0, [2; 8]);
        n.on_arrival(SimTime(0), transit.clone());
        let first = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(first.packet, transit);
        let second = n.next_tx(SimTime(0)).unwrap();
        assert_eq!(second.packet, roster);
    }

    #[test]
    fn highwater_and_would_drop_accounting() {
        let mut n = RingNode::new(
            1,
            RingNodeParams {
                transit_capacity: 40,
                pacing: PacingMode::Greedy,
                n_streams: 1,
            },
        );
        // 3 × 20-byte packets into a 40-byte buffer: third would drop.
        for i in 0..3 {
            n.on_arrival(SimTime(0), build::data(0, 5, i, [i; 8]));
        }
        assert_eq!(n.stats().would_drop, 1);
        assert_eq!(n.stats().transit_highwater, 60);
        assert_eq!(n.transit_bytes(), 60);
    }

    #[test]
    fn structural_capacity_never_trips_with_default_params() {
        // Worst case modelled by the insert-when-empty rule: the node
        // inserts one max packet; during that time one max packet
        // finishes arriving and one more is in flight.
        let mut n = RingNode::new(1, RingNodeParams::default());
        n.on_arrival(SimTime(0), build::data(0, 5, 0, [0; 8]));
        let full = build::dma(
            0,
            5,
            0,
            ampnet_packet::DmaCtrl {
                channel: 0,
                region: 0,
                offset: 0,
                len: 0,
            },
            &[0; 64],
        )
        .unwrap();
        n.on_arrival(SimTime(0), full.clone());
        assert_eq!(n.stats().would_drop, 0);
    }
}
