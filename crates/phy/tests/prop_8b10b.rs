//! Property tests for the 8b/10b codec and framing.

use ampnet_phy::{
    crc32, cumulative_disparity, max_run_length, Decoder, Disparity, Encoder, OrderedSet, Symbol,
};
use proptest::prelude::*;

proptest! {
    /// Any byte stream roundtrips through encode/decode.
    #[test]
    fn stream_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for &b in &bytes {
            let g = enc.encode(Symbol::Data(b)).unwrap();
            prop_assert_eq!(dec.decode(g).unwrap(), Symbol::Data(b));
        }
        prop_assert_eq!(enc.disparity(), dec.disparity());
    }

    /// The cumulative group-disparity sum stays in {0, +2} for any
    /// input (running disparity is always ±1): the line is DC balanced.
    #[test]
    fn disparity_bounded(bytes in proptest::collection::vec(any::<u8>(), 1..512)) {
        let mut enc = Encoder::new();
        let mut groups = Vec::with_capacity(bytes.len());
        for &b in &bytes {
            groups.push(enc.encode(Symbol::Data(b)).unwrap());
        }
        let d = cumulative_disparity(&groups);
        prop_assert!((0..=2).contains(&d), "cumulative disparity {} for {} bytes", d, bytes.len());
    }

    /// Run length never exceeds 5 line bits for any data stream mixed
    /// with ordered sets.
    #[test]
    fn run_length_bound(
        bytes in proptest::collection::vec(any::<u8>(), 1..256),
        idles in 0usize..8,
    ) {
        let mut enc = Encoder::new();
        let mut groups = vec![];
        for _ in 0..idles {
            groups.extend(OrderedSet::Idle.encode(&mut enc));
        }
        for &b in &bytes {
            groups.push(enc.encode(Symbol::Data(b)).unwrap());
        }
        for _ in 0..idles {
            groups.extend(OrderedSet::Eof.encode(&mut enc));
        }
        prop_assert!(max_run_length(&groups) <= 5);
    }

    /// Every emitted group is exactly 10 bits and decodes from either
    /// fresh decoder state when disparity matches.
    #[test]
    fn groups_are_10_bits(b in any::<u8>(), start_pos in any::<bool>()) {
        let rd = if start_pos { Disparity::Positive } else { Disparity::Negative };
        let mut enc = Encoder::new();
        if start_pos {
            // Walk the encoder to RD+ deterministically: D.00 flips RD.
            enc.encode(Symbol::Data(0x00)).unwrap();
        }
        prop_assume!(enc.disparity() == rd);
        let g = enc.encode(Symbol::Data(b)).unwrap();
        prop_assert!(g < 1024);
    }

    /// CRC-32 differs for any two distinct short strings (no trivial
    /// collisions in the small).
    #[test]
    fn crc_distinguishes_prefix_flips(
        bytes in proptest::collection::vec(any::<u8>(), 1..64),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let i = idx.index(bytes.len());
        let mut flipped = bytes.clone();
        flipped[i] ^= 1 << bit;
        prop_assert_ne!(crc32(&bytes), crc32(&flipped));
    }

    /// Ordered sets survive an arbitrary preceding data stream (framing
    /// is self-synchronizing given group alignment).
    #[test]
    fn ordered_sets_after_traffic(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        which in 0usize..5,
    ) {
        let os = OrderedSet::ALL[which];
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for &b in &bytes {
            let g = enc.encode(Symbol::Data(b)).unwrap();
            dec.decode(g).unwrap();
        }
        let groups = os.encode(&mut enc);
        prop_assert_eq!(OrderedSet::decode(groups, &mut dec), Some(os));
    }
}
