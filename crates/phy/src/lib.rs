//! # ampnet-phy — FC-0/FC-1 physical layer
//!
//! AmpNet's MicroPacket network sits directly on the Fibre Channel
//! physical layers (paper, slide 3): FC-0 provides the gigabit serial
//! medium, FC-1 the 8b/10b encode/decode. This crate reproduces both:
//!
//! * [`Encoder`]/[`Decoder`] — complete table-driven 8b/10b with
//!   running-disparity selection and checking, comma (K28.5) support,
//!   and the A7 alternate substitution.
//! * [`OrderedSet`] — K28.5-based framing words (IDLE, SOF fixed/
//!   variable, EOF, EOF-abort).
//! * [`Crc32`] — frame check sequence used by MicroPackets and the
//!   post-rostering diagnostics sweep.
//! * [`WordAligner`] — receiver word alignment: comma hunting in the
//!   raw bit stream, loss-of-lock detection and re-acquisition.
//! * [`LinkParams`]/[`CarrierMonitor`] — the timing model (1.0625
//!   Gbaud serialization, fiber propagation) and the hardware
//!   loss-of-light detector that triggers rostering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod align;
mod crc;
mod enc8b10b;
mod error;
mod link;
mod ordered;

pub use align::{groups_to_bits, AlignEvent, WordAligner};
pub use crc::{crc32, Crc32};
pub use enc8b10b::{
    cumulative_disparity, max_run_length, CodeError, Decoder, Disparity, Encoder, Symbol, K23_7,
    K27_7, K28_1, K28_5, K29_7, K30_7, VALID_K,
};
pub use error::ErrorBurst;
pub use link::{CarrierMonitor, LinkParams, LinkState, FC_GIGABIT_BAUD, FIBER_M_PER_S};
pub use ordered::OrderedSet;
