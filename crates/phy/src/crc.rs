//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! MicroPackets carry a CRC over their control and payload words so
//! that the diagnostics layer can certify a reconfigured network
//! (slide 18, "built-in diagnostics certify new configuration").

const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold bytes into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Final CRC value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"the network is also a computer";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_any_single_byte_change() {
        let base = b"micropacket payload words".to_vec();
        let orig = crc32(&base);
        for i in 0..base.len() {
            let mut m = base.clone();
            m[i] ^= 0x01;
            assert_ne!(crc32(&m), orig, "change at byte {i} undetected");
        }
    }

    #[test]
    fn detects_transposition() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
