//! Injectable bit-error bursts.
//!
//! Chaos testing needs a way to model a fiber segment going marginal —
//! a burst of bit errors on the serial stream, as opposed to a clean
//! loss of light. [`ErrorBurst`] is a deterministic generator of bit
//! flips: seeded once, it dispenses a bounded number of single-bit
//! corruptions, each at a pseudo-random position. On real AmpNet
//! hardware such errors surface as 8b/10b code violations or CRC
//! failures; the receiving NIU treats a sustained burst exactly like a
//! carrier loss and triggers rostering (paper, slides 16–17). The
//! cluster layer reuses that path: a burst-corrupted frame is detected
//! (never silently accepted) and escalates to a link failure.
//!
//! The generator is self-contained (SplitMix64) so bursts replay
//! identically for a given seed regardless of what else the simulation
//! RNG was used for.

/// A bounded, deterministic stream of single-bit corruptions.
#[derive(Debug, Clone)]
pub struct ErrorBurst {
    state: u64,
    remaining: u32,
}

impl ErrorBurst {
    /// A burst of `n_errors` bit flips, replayable from `seed`.
    pub fn new(seed: u64, n_errors: u32) -> Self {
        ErrorBurst { state: seed ^ 0x9e37_79b9_7f4a_7c15, remaining: n_errors }
    }

    /// Bit flips not yet dispensed.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Whether the burst has dispensed all its errors.
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Corrupt one bit of a 10-bit transmission group. Returns the
    /// corrupted group, or the group unchanged if the burst is spent.
    pub fn corrupt_group(&mut self, group: u16) -> u16 {
        debug_assert!(group < 1024);
        if self.remaining == 0 {
            return group;
        }
        self.remaining -= 1;
        let bit = (self.next() % 10) as u16;
        group ^ (1 << bit)
    }

    /// Corrupt up to one bit of `data` (a frame payload). Returns the
    /// number of flips applied (0 if the burst is spent or the frame is
    /// empty, 1 otherwise).
    pub fn corrupt_bytes(&mut self, data: &mut [u8]) -> u32 {
        if self.remaining == 0 || data.is_empty() {
            return 0;
        }
        self.remaining -= 1;
        let r = self.next();
        let idx = (r % data.len() as u64) as usize;
        let bit = ((r >> 32) % 8) as u8;
        data[idx] ^= 1 << bit;
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc32;
    use crate::{Decoder, Encoder, Symbol};

    #[test]
    fn deterministic_per_seed() {
        let mut a = ErrorBurst::new(7, 16);
        let mut b = ErrorBurst::new(7, 16);
        let mut c = ErrorBurst::new(8, 16);
        let mut da = [0xAAu8; 32];
        let mut db = [0xAAu8; 32];
        let mut dc = [0xAAu8; 32];
        for _ in 0..16 {
            a.corrupt_bytes(&mut da);
            b.corrupt_bytes(&mut db);
            c.corrupt_bytes(&mut dc);
        }
        assert_eq!(da, db);
        assert_ne!(da, dc);
        assert!(a.is_exhausted() && b.is_exhausted());
    }

    #[test]
    fn exhausted_burst_is_inert() {
        let mut burst = ErrorBurst::new(1, 1);
        let mut data = [0u8; 8];
        assert_eq!(burst.corrupt_bytes(&mut data), 1);
        assert_eq!(burst.corrupt_bytes(&mut data), 0);
        let before = data;
        assert_eq!(burst.corrupt_bytes(&mut data), 0);
        assert_eq!(data, before);
        assert_eq!(burst.corrupt_group(0x155), 0x155);
    }

    #[test]
    fn crc_detects_every_burst_flip() {
        // CRC-32 detects all single-bit errors, so a burst-corrupted
        // frame can never pass the FCS check.
        for seed in 0..50u64 {
            let mut burst = ErrorBurst::new(seed, 1);
            let data: Vec<u8> = (0..64u8).collect();
            let mut hit = data.clone();
            assert_eq!(burst.corrupt_bytes(&mut hit), 1);
            assert_ne!(crc32(&data), crc32(&hit), "seed {seed}");
        }
    }

    #[test]
    fn corrupted_group_never_silently_decodes_same_byte() {
        // A single-bit flip in a 10-bit group either breaks decode
        // (code violation / disparity error) or yields a different
        // byte; it is never silently the original data.
        for seed in 0..100u64 {
            let mut enc = Encoder::new();
            let byte = (seed as u8).wrapping_mul(37).wrapping_add(11);
            let group = enc.encode(Symbol::Data(byte)).unwrap();
            let mut burst = ErrorBurst::new(seed, 1);
            let bad = burst.corrupt_group(group);
            assert_ne!(bad, group);
            let mut dec = Decoder::new();
            match dec.decode(bad) {
                Err(_) => {}
                Ok(sym) => assert_ne!(sym, Symbol::Data(byte), "seed {seed}"),
            }
        }
    }
}
