//! IBM 8b/10b line coding (FC-1), table-driven with running disparity.
//!
//! AmpNet rides on the Fibre Channel FC-0/FC-1 layers (slide 3). FC-1
//! is the classic Widmer–Franaszek 8b/10b code: each byte becomes a
//! 10-bit *code group* via a 5b/6b sub-block (low five bits, `EDCBA`)
//! and a 3b/4b sub-block (high three bits, `HGF`). Each sub-block has a
//! disparity-negative and a disparity-positive encoding; the encoder
//! picks the column that keeps the *running disparity* (RD) bounded,
//! which gives the line DC balance and guaranteed transition density.
//!
//! Code groups are stored as `u16` with transmission order
//! `abcdei fghj` from bit 9 down to bit 0 (bit 9 = `a`, first on the
//! wire).
//!
//! Control (K) code groups carry framing: AmpNet ordered sets (SOF/EOF/
//! IDLE, see [`crate::ordered`]) start with K28.5, the comma character.

/// Running disparity: the sign of the cumulative ones-minus-zeros
/// balance at a sub-block boundary. 8b/10b keeps it at exactly ±1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disparity {
    /// RD−: more zeros than ones seen so far.
    Negative,
    /// RD+: more ones than zeros seen so far.
    Positive,
}

/// A symbol presented to the encoder: an ordinary data octet or one of
/// the twelve valid control (K) characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// Data octet Dx.y.
    Data(u8),
    /// Control character Kx.y, by octet value (e.g. K28.5 = 0xBC).
    Ctrl(u8),
}

/// K28.5 — the comma character, start of every ordered set.
pub const K28_5: u8 = 0xBC;
/// K28.1 — alternate comma, used by AmpNet diagnostics.
pub const K28_1: u8 = 0x3C;
/// K27.7 — used in SOF ordered sets.
pub const K27_7: u8 = 0xFB;
/// K29.7 — used in EOF ordered sets.
pub const K29_7: u8 = 0xFD;
/// K30.7 — error propagation character.
pub const K30_7: u8 = 0xFE;
/// K23.7 — ARB/fill character.
pub const K23_7: u8 = 0xF7;

/// The twelve control characters defined by 8b/10b.
pub const VALID_K: [u8; 12] = [
    0x1C, 0x3C, 0x5C, 0x7C, 0x9C, 0xBC, 0xDC, 0xFC, // K28.0..K28.7
    0xF7, 0xFB, 0xFD, 0xFE, // K23.7 K27.7 K29.7 K30.7
];

/// Errors reported by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeError {
    /// The 10-bit pattern is not a valid code group in either column.
    InvalidGroup(u16),
    /// The group is valid but illegal for the current running
    /// disparity (a single-bit line error usually shows up this way).
    DisparityError(u16),
    /// Attempted to encode an invalid K octet.
    InvalidControl(u8),
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::InvalidGroup(g) => write!(f, "invalid 10b code group {g:#05x}"),
            CodeError::DisparityError(g) => {
                write!(f, "running disparity violation at group {g:#05x}")
            }
            CodeError::InvalidControl(k) => write!(f, "invalid control octet {k:#04x}"),
        }
    }
}

impl std::error::Error for CodeError {}

// 5b/6b table: indexed by the low five bits (EDCBA). Column 0 is the
// encoding chosen when current RD is negative, column 1 when positive.
// Bits are `abcdei` with `a` as bit 5.
const FIVE_SIX: [[u8; 2]; 32] = [
    [0b100111, 0b011000], // D.00
    [0b011101, 0b100010], // D.01
    [0b101101, 0b010010], // D.02
    [0b110001, 0b110001], // D.03
    [0b110101, 0b001010], // D.04
    [0b101001, 0b101001], // D.05
    [0b011001, 0b011001], // D.06
    [0b111000, 0b000111], // D.07
    [0b111001, 0b000110], // D.08
    [0b100101, 0b100101], // D.09
    [0b010101, 0b010101], // D.10
    [0b110100, 0b110100], // D.11
    [0b001101, 0b001101], // D.12
    [0b101100, 0b101100], // D.13
    [0b011100, 0b011100], // D.14
    [0b010111, 0b101000], // D.15
    [0b011011, 0b100100], // D.16
    [0b100011, 0b100011], // D.17
    [0b010011, 0b010011], // D.18
    [0b110010, 0b110010], // D.19
    [0b001011, 0b001011], // D.20
    [0b101010, 0b101010], // D.21
    [0b011010, 0b011010], // D.22
    [0b111010, 0b000101], // D.23
    [0b110011, 0b001100], // D.24
    [0b100110, 0b100110], // D.25
    [0b010110, 0b010110], // D.26
    [0b110110, 0b001001], // D.27
    [0b001110, 0b001110], // D.28
    [0b101110, 0b010001], // D.29
    [0b011110, 0b100001], // D.30
    [0b101011, 0b010100], // D.31
];

// K.28 5b/6b encoding (the only x value with a distinct control
// encoding shared by K28.0..K28.7).
const K28_SIX: [u8; 2] = [0b001111, 0b110000];

// 3b/4b table for data: indexed by the high three bits (HGF). Bits are
// `fghj` with `f` as bit 3. D.x.P7 shown; A7 handled separately.
const THREE_FOUR: [[u8; 2]; 8] = [
    [0b1011, 0b0100], // D.x.0
    [0b1001, 0b1001], // D.x.1
    [0b0101, 0b0101], // D.x.2
    [0b1100, 0b0011], // D.x.3
    [0b1101, 0b0010], // D.x.4
    [0b1010, 0b1010], // D.x.5
    [0b0110, 0b0110], // D.x.6
    [0b1110, 0b0001], // D.x.P7
];

// Alternate A7 encoding, replacing P7 to avoid runs of five.
const A7: [u8; 2] = [0b0111, 0b1000];

// 3b/4b table for control characters.
const K_THREE_FOUR: [[u8; 2]; 8] = [
    [0b1011, 0b0100], // K.x.0
    [0b0110, 0b1001], // K.x.1
    [0b1010, 0b0101], // K.x.2
    [0b1100, 0b0011], // K.x.3
    [0b1101, 0b0010], // K.x.4
    [0b0101, 0b1010], // K.x.5
    [0b1001, 0b0110], // K.x.6
    [0b0111, 0b1000], // K.x.7
];

#[inline]
fn col(rd: Disparity) -> usize {
    match rd {
        Disparity::Negative => 0,
        Disparity::Positive => 1,
    }
}

#[inline]
fn block_disparity_update(rd: Disparity, ones: u32, bits: u32) -> Disparity {
    let zeros = bits - ones;
    match ones.cmp(&zeros) {
        std::cmp::Ordering::Greater => Disparity::Positive,
        std::cmp::Ordering::Less => Disparity::Negative,
        std::cmp::Ordering::Equal => {
            // Balanced blocks normally preserve RD. The two "alternate
            // balanced" 6b blocks (D.07: 111000/000111) and the 4b
            // blocks 1100/0011 are chosen per-column and flip nothing.
            rd
        }
    }
}

/// Whether to substitute the A7 alternate for a data P7 sub-block.
/// Per the standard: A7 is used when (RD− entering the 3b/4b block and
/// x ∈ {17, 18, 20}) or (RD+ and x ∈ {11, 13, 14}).
#[inline]
fn use_a7(x: u8, rd_after_six: Disparity) -> bool {
    match rd_after_six {
        Disparity::Negative => matches!(x, 17 | 18 | 20),
        Disparity::Positive => matches!(x, 11 | 13 | 14),
    }
}

/// Stateful 8b/10b encoder. Starts at RD−, per the standard.
#[derive(Debug, Clone)]
pub struct Encoder {
    rd: Disparity,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// New encoder at initial running disparity RD−.
    pub fn new() -> Self {
        Encoder {
            rd: Disparity::Negative,
        }
    }

    /// Current running disparity.
    pub fn disparity(&self) -> Disparity {
        self.rd
    }

    /// Encode one symbol into a 10-bit code group (`abcdeifghj`, bit 9
    /// first on the wire).
    pub fn encode(&mut self, sym: Symbol) -> Result<u16, CodeError> {
        let group = match sym {
            Symbol::Data(byte) => {
                let x = byte & 0x1F;
                let y = (byte >> 5) & 0x07;
                let six = FIVE_SIX[x as usize][col(self.rd)];
                let rd_mid = block_disparity_update(self.rd, (six as u32).count_ones(), 6);
                let four = if y == 7 && use_a7(x, rd_mid) {
                    A7[col(rd_mid)]
                } else {
                    THREE_FOUR[y as usize][col(rd_mid)]
                };
                self.rd = block_disparity_update(rd_mid, (four as u32).count_ones(), 4);
                ((six as u16) << 4) | four as u16
            }
            Symbol::Ctrl(byte) => {
                if !VALID_K.contains(&byte) {
                    return Err(CodeError::InvalidControl(byte));
                }
                let x = byte & 0x1F;
                let y = (byte >> 5) & 0x07;
                let six = if x == 28 {
                    K28_SIX[col(self.rd)]
                } else {
                    // K23/K27/K29/K30 share the data 5b/6b encodings.
                    FIVE_SIX[x as usize][col(self.rd)]
                };
                let rd_mid = block_disparity_update(self.rd, (six as u32).count_ones(), 6);
                // Control 3b/4b: K28.x uses the table column matching
                // the *entry* disparity of the 4b block; for K28 the 6b
                // block always flips RD, so index by rd_mid.
                let four = K_THREE_FOUR[y as usize][col(rd_mid)];
                self.rd = block_disparity_update(rd_mid, (four as u32).count_ones(), 4);
                ((six as u16) << 4) | four as u16
            }
        };
        Ok(group)
    }

    /// Encode a byte slice as data symbols.
    pub fn encode_bytes(&mut self, bytes: &[u8], out: &mut Vec<u16>) {
        out.reserve(bytes.len());
        for &b in bytes {
            // Data encoding cannot fail.
            out.push(self.encode(Symbol::Data(b)).expect("data encode is total")); // lint: allow(panic-freedom): 8b/10b encode is total over data bytes
        }
    }
}

/// Decode lookup entry: the symbol plus which RD columns may legally
/// emit this group.
#[derive(Debug, Clone, Copy)]
struct DecodeEntry {
    sym: Symbol,
    /// Bitmask: bit 0 = legal when entered at RD−, bit 1 = RD+.
    legal_rd: u8,
}

/// Stateful 8b/10b decoder with disparity checking.
#[derive(Debug, Clone)]
pub struct Decoder {
    rd: Disparity,
}

fn decode_table() -> &'static [Option<DecodeEntry>; 1024] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[Option<DecodeEntry>; 1024]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table: Box<[Option<DecodeEntry>; 1024]> = Box::new([None; 1024]);
        let mut insert = |group: u16, sym: Symbol, rd_bit: u8| {
            let slot = &mut table[group as usize];
            match slot {
                None => {
                    *slot = Some(DecodeEntry {
                        sym,
                        legal_rd: rd_bit,
                    })
                }
                Some(e) => {
                    assert_eq!(
                        e.sym, sym,
                        "8b/10b decode collision: {group:#05x} maps to two symbols"
                    );
                    e.legal_rd |= rd_bit;
                }
            }
        };
        for rd in [Disparity::Negative, Disparity::Positive] {
            let rd_bit = match rd {
                Disparity::Negative => 1,
                Disparity::Positive => 2,
            };
            for b in 0..=255u8 {
                let mut enc = Encoder { rd };
                let g = enc.encode(Symbol::Data(b)).unwrap(); // lint: allow(panic-freedom): encode is total over all 256 data bytes
                insert(g, Symbol::Data(b), rd_bit);
            }
            for &k in &VALID_K {
                let mut enc = Encoder { rd };
                let g = enc.encode(Symbol::Ctrl(k)).unwrap(); // lint: allow(panic-freedom): encode is total over the valid control symbols
                insert(g, Symbol::Ctrl(k), rd_bit);
            }
        }
        table
    })
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Decoder {
    /// New decoder at initial running disparity RD−.
    pub fn new() -> Self {
        Decoder {
            rd: Disparity::Negative,
        }
    }

    /// Current running disparity.
    pub fn disparity(&self) -> Disparity {
        self.rd
    }

    /// Decode one 10-bit code group, updating and checking running
    /// disparity.
    pub fn decode(&mut self, group: u16) -> Result<Symbol, CodeError> {
        if group >= 1024 {
            return Err(CodeError::InvalidGroup(group));
        }
        let entry = decode_table()[group as usize].ok_or(CodeError::InvalidGroup(group))?;
        let rd_bit = match self.rd {
            Disparity::Negative => 1,
            Disparity::Positive => 2,
        };
        // Advance RD from the actual bits regardless, mirroring
        // hardware behaviour (one error shouldn't cascade forever).
        let six_ones = (group >> 4).count_ones();
        let rd_mid = block_disparity_update(self.rd, six_ones, 6);
        let four_ones = (group & 0xF).count_ones();
        self.rd = block_disparity_update(rd_mid, four_ones, 4);
        if entry.legal_rd & rd_bit == 0 {
            return Err(CodeError::DisparityError(group));
        }
        Ok(entry.sym)
    }

    /// Resynchronize the decoder disparity (after a comma, hardware
    /// realigns; tests use this to model resync).
    pub fn resync(&mut self, rd: Disparity) {
        self.rd = rd;
    }
}

/// Maximum run length of identical bits across a code-group sequence —
/// a line-coding quality metric (8b/10b guarantees ≤ 5).
pub fn max_run_length(groups: &[u16]) -> u32 {
    let mut best = 0u32;
    let mut run = 0u32;
    let mut last = 2u8; // neither 0 nor 1
    for &g in groups {
        for bit_idx in (0..10).rev() {
            let bit = ((g >> bit_idx) & 1) as u8;
            if bit == last {
                run += 1;
            } else {
                run = 1;
                last = bit;
            }
            best = best.max(run);
        }
    }
    best
}

/// Cumulative disparity (ones minus zeros) across a code-group
/// sequence. With the conventional RD(−1) start, 8b/10b keeps this
/// sum in {0, +2} at every group boundary (i.e. running disparity is
/// always ±1).
pub fn cumulative_disparity(groups: &[u16]) -> i32 {
    groups
        .iter()
        .map(|&g| 2 * (g & 0x3FF).count_ones() as i32 - 10)
        .sum()
}

#[cfg(test)]
#[allow(clippy::unusual_byte_groupings)] // groups mirror the 6b/4b sub-blocks
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // D.00.0 from RD−: 100111 0100  (6b flips to RD+, then 0100)
        let mut e = Encoder::new();
        let g = e.encode(Symbol::Data(0x00)).unwrap();
        assert_eq!(g, 0b100111_0100, "D.00.0 RD- encoding");
        // K28.5 from RD−: 001111 1010
        let mut e = Encoder::new();
        let g = e.encode(Symbol::Ctrl(K28_5)).unwrap();
        assert_eq!(g, 0b001111_1010, "K28.5 RD- encoding");
        // K28.5 from RD+: 110000 0101
        let mut e = Encoder {
            rd: Disparity::Positive,
        };
        let g = e.encode(Symbol::Ctrl(K28_5)).unwrap();
        assert_eq!(g, 0b110000_0101, "K28.5 RD+ encoding");
    }

    #[test]
    fn roundtrip_all_bytes_both_disparities() {
        for rd in [Disparity::Negative, Disparity::Positive] {
            for b in 0..=255u8 {
                let mut e = Encoder { rd };
                let mut d = Decoder { rd };
                let g = e.encode(Symbol::Data(b)).unwrap();
                assert_eq!(d.decode(g).unwrap(), Symbol::Data(b), "byte {b:#04x}");
                assert_eq!(e.disparity(), d.disparity(), "RD tracks for {b:#04x}");
            }
        }
    }

    #[test]
    fn roundtrip_all_k_codes() {
        for rd in [Disparity::Negative, Disparity::Positive] {
            for &k in &VALID_K {
                let mut e = Encoder { rd };
                let mut d = Decoder { rd };
                let g = e.encode(Symbol::Ctrl(k)).unwrap();
                assert_eq!(d.decode(g).unwrap(), Symbol::Ctrl(k));
            }
        }
    }

    #[test]
    fn invalid_control_rejected() {
        let mut e = Encoder::new();
        assert_eq!(
            e.encode(Symbol::Ctrl(0x00)),
            Err(CodeError::InvalidControl(0x00))
        );
    }

    #[test]
    fn disparity_stays_bounded_over_stream() {
        let mut e = Encoder::new();
        let mut groups = vec![];
        // Pathological stream: all 0x00 (max disparity pressure).
        for _ in 0..1000 {
            groups.push(e.encode(Symbol::Data(0x00)).unwrap());
        }
        let d = cumulative_disparity(&groups);
        assert!((0..=2).contains(&d), "cumulative disparity {d} out of bounds");
    }

    #[test]
    fn run_length_bounded() {
        let mut e = Encoder::new();
        let mut groups = vec![];
        for b in 0..=255u8 {
            groups.push(e.encode(Symbol::Data(b)).unwrap());
        }
        for _ in 0..32 {
            groups.push(e.encode(Symbol::Ctrl(K28_5)).unwrap());
        }
        assert!(
            max_run_length(&groups) <= 5,
            "run length {} exceeds 8b/10b bound",
            max_run_length(&groups)
        );
    }

    #[test]
    fn single_bit_flip_detected_or_misdecodes_with_disparity_trace() {
        // Flipping any single bit of a valid group yields either an
        // invalid group, a disparity error now, or a disparity error
        // within a short window (8b/10b's error model).
        let mut e = Encoder::new();
        let stream: Vec<u8> = (0..32).map(|i| (i * 37) as u8).collect();
        let mut groups = vec![];
        for &b in &stream {
            groups.push(e.encode(Symbol::Data(b)).unwrap());
        }
        let mut detected = 0;
        let mut total = 0;
        for flip_at in 0..groups.len() {
            for bit in 0..10 {
                total += 1;
                let mut corrupted = groups.clone();
                corrupted[flip_at] ^= 1 << bit;
                let mut d = Decoder::new();
                let ok = corrupted.iter().all(|&g| d.decode(g).is_ok());
                if !ok {
                    detected += 1;
                }
            }
        }
        // The code cannot catch everything with one check, but the
        // overwhelming majority of single-bit errors must be caught.
        assert!(
            detected as f64 / total as f64 > 0.75,
            "only {detected}/{total} single-bit errors detected"
        );
    }

    #[test]
    fn encode_bytes_matches_individual() {
        let mut e1 = Encoder::new();
        let mut e2 = Encoder::new();
        let data = [1u8, 2, 3, 200, 255, 0, 17];
        let mut out = vec![];
        e1.encode_bytes(&data, &mut out);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(out[i], e2.encode(Symbol::Data(b)).unwrap());
        }
    }

    #[test]
    fn comma_pattern_unique_to_k28() {
        // The singular comma bit pattern 0011111 / 1100000 (bits a..g)
        // appears only in K28.1/K28.5/K28.7 groups — the property that
        // makes word alignment possible. Scan all data groups.
        let is_comma = |g: u16| {
            let bits7 = (g >> 3) & 0x7F;
            bits7 == 0b0011111 || bits7 == 0b1100000
        };
        for rd in [Disparity::Negative, Disparity::Positive] {
            for b in 0..=255u8 {
                let mut e = Encoder { rd };
                let g = e.encode(Symbol::Data(b)).unwrap();
                assert!(!is_comma(g), "data byte {b:#04x} contains comma");
            }
        }
        let mut e = Encoder::new();
        let g = e.encode(Symbol::Ctrl(K28_5)).unwrap();
        assert!(is_comma(g), "K28.5 must contain the comma");
    }

    #[test]
    fn decoder_rejects_garbage() {
        let mut d = Decoder::new();
        // 0b1111111111 is not a valid group.
        assert!(matches!(
            d.decode(0x3FF),
            Err(CodeError::InvalidGroup(0x3FF))
        ));
        assert!(matches!(
            d.decode(2000),
            Err(CodeError::InvalidGroup(2000))
        ));
    }
}
