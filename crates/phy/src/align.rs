//! Word alignment — acquiring code-group boundaries from a raw bit
//! stream (FC-1 receiver function).
//!
//! A deserializer sees an unbroken stream of line bits with no framing.
//! The K28.5 *comma* (the singular pattern `0011111` / `1100000`, which
//! cannot appear across any concatenation of valid code groups) marks a
//! group boundary: the aligner hunts for it, locks the 10-bit phase,
//! and from then on slices groups deterministically. Loss of lock is
//! detected when decode errors accumulate.

use crate::enc8b10b::{CodeError, Decoder, Symbol};

/// Comma hunting and group slicing state.
#[derive(Debug)]
pub struct WordAligner {
    /// Bit buffer (LSB-first arrival order; bits pushed at the back).
    window: u32,
    /// Bits currently in the window.
    fill: u32,
    /// Locked phase: when `Some`, every 10 bits form a group.
    locked: bool,
    /// Consecutive decode errors since lock (for loss-of-lock).
    errors_in_lock: u32,
    /// Groups emitted since lock.
    groups: u64,
    decoder: Decoder,
}

/// Alignment events produced while consuming bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignEvent {
    /// Still hunting for a comma.
    Hunting,
    /// Lock acquired (comma seen); subsequent groups will decode.
    Locked,
    /// A complete, aligned code group decoded successfully.
    Group(Symbol),
    /// A group failed to decode (kept for caller statistics).
    BadGroup(CodeError),
    /// Too many consecutive bad groups: lock abandoned, hunting again.
    LostLock,
}

/// Comma bit patterns as they appear in the first 7 bits of a group
/// (transmission order a..g).
const COMMA_P: u16 = 0b0011111;
const COMMA_N: u16 = 0b1100000;

/// Consecutive decode errors that abandon the lock.
const MAX_ERRORS: u32 = 4;

impl Default for WordAligner {
    fn default() -> Self {
        Self::new()
    }
}

impl WordAligner {
    /// A fresh, unlocked aligner.
    pub fn new() -> Self {
        WordAligner {
            window: 0,
            fill: 0,
            locked: false,
            errors_in_lock: 0,
            groups: 0,
            decoder: Decoder::new(),
        }
    }

    /// Whether group phase is currently locked.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Aligned groups decoded since the last lock.
    pub fn groups_since_lock(&self) -> u64 {
        self.groups
    }

    /// Feed one line bit (in transmission order). Returns the event it
    /// produced.
    pub fn push_bit(&mut self, bit: bool) -> AlignEvent {
        self.window = ((self.window << 1) | bit as u32) & 0x3FF_FFFF;
        if self.fill < 26 {
            self.fill += 1;
        }
        if !self.locked {
            // Hunt: a comma occupies bits [9..3] of a group; lock when
            // the most recent 10 bits *start* with a comma, i.e. the
            // window's last 10 bits have comma in their high 7.
            if self.fill >= 10 {
                let candidate = (self.window & 0x3FF) as u16;
                let high7 = candidate >> 3;
                if high7 == COMMA_P || high7 == COMMA_N {
                    self.locked = true;
                    self.fill = 0;
                    self.errors_in_lock = 0;
                    self.groups = 0;
                    // The comma group itself is in the window: decode it.
                    return match self.decoder.decode(candidate) {
                        Ok(_) => AlignEvent::Locked,
                        Err(_) => {
                            // Comma pattern but invalid group: rare
                            // (disparity); stay locked, count it.
                            self.errors_in_lock += 1;
                            AlignEvent::Locked
                        }
                    };
                }
            }
            return AlignEvent::Hunting;
        }
        // Locked: emit every 10th bit.
        if self.fill < 10 {
            return AlignEvent::Hunting;
        }
        self.fill = 0;
        let group = (self.window & 0x3FF) as u16;
        match self.decoder.decode(group) {
            Ok(sym) => {
                self.errors_in_lock = 0;
                self.groups += 1;
                AlignEvent::Group(sym)
            }
            Err(e) => {
                self.errors_in_lock += 1;
                if self.errors_in_lock >= MAX_ERRORS {
                    self.locked = false;
                    self.errors_in_lock = 0;
                    AlignEvent::LostLock
                } else {
                    AlignEvent::BadGroup(e)
                }
            }
        }
    }

    /// Feed a slice of groups' worth of raw bits; collect decoded
    /// symbols.
    pub fn push_bits(&mut self, bits: impl IntoIterator<Item = bool>) -> Vec<Symbol> {
        let mut out = vec![];
        for b in bits {
            if let AlignEvent::Group(s) = self.push_bit(b) {
                out.push(s);
            }
        }
        out
    }
}

/// Serialize code groups to line bits (MSB of the 10-bit group first —
/// transmission order `a` first).
pub fn groups_to_bits(groups: &[u16]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(groups.len() * 10);
    for &g in groups {
        for i in (0..10).rev() {
            bits.push((g >> i) & 1 == 1);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enc8b10b::{Encoder, K28_5};
    use crate::ordered::OrderedSet;

    fn encode_stream(data: &[u8], leading_idles: usize) -> Vec<u16> {
        let mut enc = Encoder::new();
        let mut groups = vec![];
        for _ in 0..leading_idles {
            groups.extend(OrderedSet::Idle.encode(&mut enc));
        }
        for &b in data {
            groups.push(enc.encode(Symbol::Data(b)).unwrap());
        }
        groups
    }

    #[test]
    fn locks_on_comma_and_decodes() {
        let groups = encode_stream(b"AMPNET", 1);
        let bits = groups_to_bits(&groups);
        let mut al = WordAligner::new();
        let symbols = al.push_bits(bits);
        assert!(al.is_locked());
        // After lock (on the K28.5), the idle identifier data bytes and
        // our payload all decode.
        let payload: Vec<u8> = symbols
            .iter()
            .filter_map(|s| match s {
                Symbol::Data(b) => Some(*b),
                _ => None,
            })
            .collect();
        assert!(payload.ends_with(b"AMPNET"), "{payload:?}");
    }

    #[test]
    fn locks_from_any_bit_offset() {
        // Prefix with arbitrary junk bits: alignment must still lock on
        // the first comma and decode everything after it.
        let groups = encode_stream(&[0x11, 0x22, 0x33], 2);
        let mut bits = vec![true, false, true, true, false, false, true];
        bits.extend(groups_to_bits(&groups));
        let mut al = WordAligner::new();
        let symbols = al.push_bits(bits);
        assert!(al.is_locked());
        let data: Vec<u8> = symbols
            .iter()
            .filter_map(|s| match s {
                Symbol::Data(b) => Some(*b),
                _ => None,
            })
            .collect();
        assert!(data.ends_with(&[0x11, 0x22, 0x33]), "{data:?}");
    }

    #[test]
    fn no_lock_without_comma() {
        // Pure data stream (no ordered set): the aligner never locks,
        // because valid data groups cannot contain the comma.
        let groups = encode_stream(&[1, 2, 3, 4, 5, 6, 7, 8], 0);
        let bits = groups_to_bits(&groups);
        let mut al = WordAligner::new();
        let symbols = al.push_bits(bits);
        assert!(!al.is_locked());
        assert!(symbols.is_empty());
    }

    #[test]
    fn garbage_after_lock_loses_lock() {
        let groups = encode_stream(b"OK", 1);
        let mut bits = groups_to_bits(&groups);
        // A stuck-at-one line: 50 one-bits can never form valid
        // groups (max run length in 8b/10b is 5).
        bits.extend(std::iter::repeat_n(true, 50));
        let mut al = WordAligner::new();
        let mut lost = false;
        for b in bits {
            if al.push_bit(b) == AlignEvent::LostLock {
                lost = true;
            }
        }
        assert!(lost, "garbage must break the lock");
        assert!(!al.is_locked());
    }

    #[test]
    fn relocks_after_loss() {
        let mut bits = groups_to_bits(&encode_stream(b"A", 1));
        bits.extend(std::iter::repeat_n(true, 50)); // stuck line
        // Several idles after recovery: plenty of commas to re-lock on.
        bits.extend(groups_to_bits(&encode_stream(b"B", 4)));
        let mut al = WordAligner::new();
        let mut events = vec![];
        for b in bits {
            events.push(al.push_bit(b));
        }
        let locks = events.iter().filter(|e| **e == AlignEvent::Locked).count();
        assert!(locks >= 2, "must re-acquire after garbage, got {locks}");
        assert!(al.is_locked());
    }

    #[test]
    fn comma_constant_matches_k28_5() {
        let mut enc = Encoder::new();
        let g = enc.encode(Symbol::Ctrl(K28_5)).unwrap();
        let high7 = g >> 3;
        assert!(high7 == COMMA_P || high7 == COMMA_N);
    }
}
