//! Serial link timing model (FC-0).
//!
//! AmpNet is "a gigabit network" on Fibre Channel FC-0 physical media
//! (slide 3, slide 11). This module turns wire bytes into simulated
//! time: serialization at the line baud rate (every data byte costs 10
//! line bits after 8b/10b) plus distance-proportional propagation.
//! It also models the hardware failure detector: a receiver that stops
//! seeing light (or idles) reports loss-of-light within a fixed
//! detection window — the trigger for rostering (slide 16/18,
//! "network failures detected by hardware").

use ampnet_sim::SimDuration;

/// Speed of light in silica fiber, metres per second (n ≈ 1.468).
pub const FIBER_M_PER_S: f64 = 2.042e8;

/// Default FC gigabit line rate, baud (line bits per second).
pub const FC_GIGABIT_BAUD: u64 = 1_062_500_000;

/// Physical parameters of one unidirectional serial link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Line rate in baud (10 line bits per encoded byte).
    pub baud: u64,
    /// Fiber length in metres.
    pub length_m: f64,
    /// Time for receiver hardware to declare loss-of-light after the
    /// signal disappears.
    pub loss_of_light_detect: SimDuration,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            baud: FC_GIGABIT_BAUD,
            length_m: 100.0,
            loss_of_light_detect: SimDuration::from_micros(10),
        }
    }
}

impl LinkParams {
    /// A gigabit link of the given length with default detection time.
    pub fn gigabit(length_m: f64) -> Self {
        LinkParams {
            length_m,
            ..Default::default()
        }
    }

    /// Time to serialize one encoded byte (10 line bits).
    pub fn byte_time(&self) -> SimDuration {
        SimDuration::from_nanos((10.0 * 1e9 / self.baud as f64).round() as u64)
    }

    /// Time to serialize one 4-byte transmission word.
    pub fn word_time(&self) -> SimDuration {
        self.serialize_time(4)
    }

    /// Time to serialize `n` wire bytes.
    pub fn serialize_time(&self, n: usize) -> SimDuration {
        // Compute in one rounding step to avoid per-byte error buildup.
        SimDuration::from_nanos(((n as f64) * 10.0 * 1e9 / self.baud as f64).round() as u64)
    }

    /// One-way propagation delay down the fiber.
    pub fn propagation(&self) -> SimDuration {
        SimDuration::from_nanos((self.length_m / FIBER_M_PER_S * 1e9).round() as u64)
    }

    /// Latency for a frame of `n` wire bytes to fully arrive at the
    /// far end: serialization + propagation (store-and-forward at the
    /// receiving elasticity buffer).
    pub fn frame_latency(&self, n: usize) -> SimDuration {
        self.serialize_time(n) + self.propagation()
    }

    /// Effective payload bandwidth in megabytes per second given a
    /// frame of `wire_bytes` carrying `payload_bytes`.
    pub fn effective_mbps(&self, wire_bytes: usize, payload_bytes: usize) -> f64 {
        let t = self.serialize_time(wire_bytes).as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        payload_bytes as f64 / t / 1e6
    }
}

/// Operational state of a link as seen by the downstream receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Carrier present, idles or frames arriving.
    Up,
    /// Carrier lost; timestamp semantics are handled by the caller.
    Down,
}

/// Receiver-side carrier monitor: converts "signal disappeared" into a
/// loss-of-light report after the configured detection window.
#[derive(Debug, Clone)]
pub struct CarrierMonitor {
    state: LinkState,
    params: LinkParams,
}

impl CarrierMonitor {
    /// New monitor for a link that is initially up.
    pub fn new(params: LinkParams) -> Self {
        CarrierMonitor {
            state: LinkState::Up,
            params,
        }
    }

    /// Current state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Signal disappeared now; returns the delay after which hardware
    /// reports loss-of-light (the caller schedules the event).
    pub fn signal_lost(&mut self) -> SimDuration {
        self.state = LinkState::Down;
        self.params.loss_of_light_detect
    }

    /// Signal restored (e.g. upstream neighbour re-inserted).
    pub fn signal_restored(&mut self) {
        self.state = LinkState::Up;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_byte_time() {
        let p = LinkParams::default();
        // 10 bits at 1.0625 Gbaud ≈ 9.4 ns.
        assert_eq!(p.byte_time().as_nanos(), 9);
        assert_eq!(p.word_time().as_nanos(), 38);
    }

    #[test]
    fn serialize_scales_linearly() {
        let p = LinkParams::default();
        let t20 = p.serialize_time(20).as_nanos();
        // 20 bytes = 200 line bits at 1.0625 Gbaud ≈ 188 ns.
        assert_eq!(t20, 188);
        let t84 = p.serialize_time(84).as_nanos();
        assert_eq!(t84, 791); // 840 bits ≈ 790.6 ns
    }

    #[test]
    fn propagation_5ns_per_metre() {
        let p = LinkParams::gigabit(1000.0);
        let ns = p.propagation().as_nanos();
        // 1 km of silica ≈ 4.9 µs.
        assert!((4800..=5000).contains(&ns), "propagation {ns} ns");
        assert_eq!(LinkParams::gigabit(0.0).propagation().as_nanos(), 0);
    }

    #[test]
    fn frame_latency_is_sum() {
        let p = LinkParams::gigabit(200.0);
        assert_eq!(
            p.frame_latency(64),
            p.serialize_time(64) + p.propagation()
        );
    }

    #[test]
    fn effective_bandwidth() {
        let p = LinkParams::default();
        // Raw line: 106.25 MB/s of encoded bytes.
        let raw = p.effective_mbps(1000, 1000);
        assert!((raw - 106.25).abs() < 1.0, "raw {raw}");
        // A DMA micropacket: 64 payload bytes in 84 wire bytes.
        let dma = p.effective_mbps(84, 64);
        assert!((dma - 80.9).abs() < 1.5, "dma {dma}");
    }

    #[test]
    fn carrier_monitor_transitions() {
        let mut m = CarrierMonitor::new(LinkParams::default());
        assert_eq!(m.state(), LinkState::Up);
        let delay = m.signal_lost();
        assert_eq!(m.state(), LinkState::Down);
        assert_eq!(delay, SimDuration::from_micros(10));
        m.signal_restored();
        assert_eq!(m.state(), LinkState::Up);
    }
}
