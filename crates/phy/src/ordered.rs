//! AmpNet ordered sets — framing words built from K28.5.
//!
//! Slide 5/6 frames every MicroPacket between an `SOF` and `EOF`
//! column. Following Fibre Channel practice, each ordered set is one
//! transmission word (4 code groups) beginning with the comma character
//! K28.5, so receivers can acquire word alignment from any idle or
//! inter-packet gap.

use crate::enc8b10b::{Decoder, Encoder, Symbol, K28_5};

/// The AmpNet ordered sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderedSet {
    /// Idle fill word; transmitted whenever a node has nothing to
    /// insert. Also the carrier for loss-of-light detection: a port
    /// that stops seeing idles has lost its upstream neighbour.
    Idle,
    /// Start of a fixed-format MicroPacket (3 payload words follow).
    SofFixed,
    /// Start of a variable-format (DMA) MicroPacket.
    SofVariable,
    /// Normal end of frame.
    Eof,
    /// End of frame, aborted: receiver must discard the packet.
    EofAbort,
}

impl OrderedSet {
    /// All ordered sets, for table-driven tests.
    pub const ALL: [OrderedSet; 5] = [
        OrderedSet::Idle,
        OrderedSet::SofFixed,
        OrderedSet::SofVariable,
        OrderedSet::Eof,
        OrderedSet::EofAbort,
    ];

    /// The three data octets following K28.5 that identify the set.
    /// (Values chosen in FC style: a class byte repeated, then a
    /// discriminator.)
    pub fn identifier(self) -> [u8; 3] {
        match self {
            OrderedSet::Idle => [0x95, 0xB5, 0xB5],
            OrderedSet::SofFixed => [0x35, 0x35, 0x35],
            OrderedSet::SofVariable => [0x35, 0x36, 0x36],
            OrderedSet::Eof => [0x95, 0x75, 0x75],
            OrderedSet::EofAbort => [0x95, 0x7A, 0x7A],
        }
    }

    /// Parse an identifier triple back into an ordered set.
    pub fn from_identifier(id: [u8; 3]) -> Option<OrderedSet> {
        OrderedSet::ALL.into_iter().find(|os| os.identifier() == id)
    }

    /// Is this a start-of-frame set?
    pub fn is_sof(self) -> bool {
        matches!(self, OrderedSet::SofFixed | OrderedSet::SofVariable)
    }

    /// Is this an end-of-frame set (normal or abort)?
    pub fn is_eof(self) -> bool {
        matches!(self, OrderedSet::Eof | OrderedSet::EofAbort)
    }

    /// Encode this ordered set as four 10-bit code groups.
    pub fn encode(self, enc: &mut Encoder) -> [u16; 4] {
        let id = self.identifier();
        [
            enc.encode(Symbol::Ctrl(K28_5)).expect("K28.5 is valid"), // lint: allow(panic-freedom): K28.5 is a valid control symbol by definition
            enc.encode(Symbol::Data(id[0])).expect("data total"), // lint: allow(panic-freedom): 8b/10b encode is total over data bytes
            enc.encode(Symbol::Data(id[1])).expect("data total"), // lint: allow(panic-freedom): 8b/10b encode is total over data bytes
            enc.encode(Symbol::Data(id[2])).expect("data total"), // lint: allow(panic-freedom): 8b/10b encode is total over data bytes
        ]
    }

    /// Decode four code groups into an ordered set. Returns `None` for
    /// coding errors or unknown identifiers.
    pub fn decode(groups: [u16; 4], dec: &mut Decoder) -> Option<OrderedSet> {
        let first = dec.decode(groups[0]).ok()?;
        if first != Symbol::Ctrl(K28_5) {
            return None;
        }
        let mut id = [0u8; 3];
        for (i, &g) in groups[1..].iter().enumerate() {
            match dec.decode(g).ok()? {
                Symbol::Data(b) => id[i] = b,
                Symbol::Ctrl(_) => return None,
            }
        }
        OrderedSet::from_identifier(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_distinct() {
        for (i, a) in OrderedSet::ALL.iter().enumerate() {
            for b in &OrderedSet::ALL[i + 1..] {
                assert_ne!(a.identifier(), b.identifier(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn roundtrip_all_sets() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for os in OrderedSet::ALL {
            let groups = os.encode(&mut enc);
            assert_eq!(OrderedSet::decode(groups, &mut dec), Some(os));
        }
    }

    #[test]
    fn from_identifier_rejects_unknown() {
        assert_eq!(OrderedSet::from_identifier([0, 0, 0]), None);
    }

    #[test]
    fn classification() {
        assert!(OrderedSet::SofFixed.is_sof());
        assert!(OrderedSet::SofVariable.is_sof());
        assert!(!OrderedSet::Eof.is_sof());
        assert!(OrderedSet::Eof.is_eof());
        assert!(OrderedSet::EofAbort.is_eof());
        assert!(!OrderedSet::Idle.is_eof());
        assert!(!OrderedSet::Idle.is_sof());
    }

    #[test]
    fn decode_rejects_data_first_group() {
        let mut enc = Encoder::new();
        let g0 = enc.encode(Symbol::Data(0x42)).unwrap();
        let id = OrderedSet::Idle.identifier();
        let g1 = enc.encode(Symbol::Data(id[0])).unwrap();
        let g2 = enc.encode(Symbol::Data(id[1])).unwrap();
        let g3 = enc.encode(Symbol::Data(id[2])).unwrap();
        let mut dec = Decoder::new();
        assert_eq!(OrderedSet::decode([g0, g1, g2, g3], &mut dec), None);
    }
}
