//! AmpFiles — a replicated file store in the network cache (slide 12).
//!
//! "Applications can use the network to rebuild" (slide 2): because
//! the file store lives in a cache region, every node holds the whole
//! store; a node failure loses nothing, and a failover successor reads
//! its predecessor's files locally.
//!
//! Layout inside the region: a fixed directory of entries (name,
//! active buffer offset/capacity, standby buffer offset/capacity,
//! length, version, in-use flag) followed by a bump-allocated data
//! heap. Overwrites ping-pong between the two buffers: the new
//! contents land in the standby buffer and the directory entry —
//! the single commit point — swaps the roles, so a steady stream of
//! same-sized overwrites never consumes fresh heap. Fresh heap is
//! bump-allocated only when a file is created or outgrows both of
//! its buffers. Single-writer discipline per store (multi-writer
//! stores serialize with a network semaphore, as slide 10
//! prescribes).

use ampnet_cache::{CacheError, NetworkCache, RegionId};
use ampnet_packet::MicroPacket;

/// Maximum file-name bytes.
pub const NAME_LEN: usize = 16;
/// Directory entry size: name + offset + len + version + flags +
/// active capacity + standby offset + standby capacity.
const ENTRY: u32 = NAME_LEN as u32 + 4 + 4 + 4 + 4 + 4 + 4 + 4;

/// Store geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStoreLayout {
    /// Region holding the store.
    pub region: RegionId,
    /// Maximum number of files.
    pub max_files: u32,
    /// Bytes of data heap.
    pub heap_bytes: u32,
}

impl FileStoreLayout {
    /// Region bytes needed: 8 (heap cursor) + directory + heap.
    pub fn footprint(&self) -> u32 {
        8 + self.max_files * ENTRY + self.heap_bytes
    }

    fn entry_offset(&self, slot: u32) -> u32 {
        8 + slot * ENTRY
    }

    fn heap_base(&self) -> u32 {
        8 + self.max_files * ENTRY
    }
}

/// Decoded directory entry (in-use slots only).
#[derive(Debug, Clone)]
struct RawEntry {
    name: String,
    /// Active buffer offset (absolute region offset).
    offset: u32,
    /// Committed file length.
    len: u32,
    version: u32,
    /// Active buffer capacity.
    cap: u32,
    /// Standby buffer offset (0 when none allocated yet).
    alt_offset: u32,
    /// Standby buffer capacity (0 when none allocated yet).
    alt_cap: u32,
}

/// File metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// File name (UTF-8, ≤ 16 bytes).
    pub name: String,
    /// Size in bytes.
    pub len: u32,
    /// Write version (increments on overwrite).
    pub version: u32,
}

/// Errors from the file store.
#[derive(Debug, Clone, PartialEq)]
pub enum FileError {
    /// Underlying cache failure.
    Cache(CacheError),
    /// Name longer than [`NAME_LEN`] bytes or empty.
    BadName,
    /// Directory full.
    DirectoryFull,
    /// Heap exhausted.
    HeapFull,
    /// No such file.
    NotFound,
}

impl From<CacheError> for FileError {
    fn from(e: CacheError) -> Self {
        FileError::Cache(e)
    }
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::Cache(e) => write!(f, "cache: {e}"),
            FileError::BadName => write!(f, "file name empty or over {NAME_LEN} bytes"),
            FileError::DirectoryFull => write!(f, "directory full"),
            FileError::HeapFull => write!(f, "data heap exhausted"),
            FileError::NotFound => write!(f, "no such file"),
        }
    }
}

impl std::error::Error for FileError {}

/// Writer handle over a node's cache replica.
#[derive(Debug)]
pub struct FileStore {
    layout: FileStoreLayout,
}

impl FileStore {
    /// Bind to a store layout (the region must already be defined with
    /// at least `layout.footprint()` bytes).
    pub fn new(layout: FileStoreLayout) -> Self {
        FileStore { layout }
    }

    fn encode_name(name: &str) -> Result<[u8; NAME_LEN], FileError> {
        let bytes = name.as_bytes();
        if bytes.is_empty() || bytes.len() > NAME_LEN {
            return Err(FileError::BadName);
        }
        let mut out = [0u8; NAME_LEN];
        out[..bytes.len()].copy_from_slice(bytes);
        Ok(out)
    }

    fn read_entry(&self, cache: &NetworkCache, slot: u32) -> Result<Option<RawEntry>, FileError> {
        let off = self.layout.entry_offset(slot);
        let raw = cache.read(self.layout.region, off, ENTRY)?;
        let flags = u32::from_be_bytes(raw[28..32].try_into().expect("4 bytes"));
        if flags == 0 {
            return Ok(None);
        }
        let name_end = raw[..NAME_LEN]
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(NAME_LEN);
        let name = String::from_utf8_lossy(&raw[..name_end]).into_owned();
        let word = |at: usize| u32::from_be_bytes(raw[at..at + 4].try_into().expect("4 bytes"));
        Ok(Some(RawEntry {
            name,
            offset: word(16),
            len: word(20),
            version: word(24),
            cap: word(32),
            alt_offset: word(36),
            alt_cap: word(40),
        }))
    }

    fn find(&self, cache: &NetworkCache, name: &str) -> Result<Option<u32>, FileError> {
        for slot in 0..self.layout.max_files {
            if let Some(e) = self.read_entry(cache, slot)? {
                if e.name == name {
                    return Ok(Some(slot));
                }
            }
        }
        Ok(None)
    }

    fn heap_cursor(&self, cache: &NetworkCache) -> Result<u32, FileError> {
        Ok(cache.read_u64(self.layout.region, 0)? as u32)
    }

    /// Create or overwrite a file; returns the replication packets.
    ///
    /// Overwrites reuse the file's standby buffer when it is large
    /// enough (ping-pong), so sustained overwrites of a bounded-size
    /// file consume no fresh heap; the directory entry written last is
    /// the single commit point either way.
    pub fn write(
        &self,
        cache: &mut NetworkCache,
        name: &str,
        data: &[u8],
    ) -> Result<Vec<MicroPacket>, FileError> {
        let name_bytes = Self::encode_name(name)?;
        let slot = match self.find(cache, name)? {
            Some(s) => s,
            None => {
                // First free slot.
                let mut free = None;
                for s in 0..self.layout.max_files {
                    if self.read_entry(cache, s)?.is_none() {
                        free = Some(s);
                        break;
                    }
                }
                free.ok_or(FileError::DirectoryFull)?
            }
        };
        let prev = self.read_entry(cache, slot)?;
        let len = data.len() as u32;
        // Place the new contents: reuse the standby buffer when it
        // fits, otherwise bump-allocate fresh heap (file creation or
        // growth beyond both buffers).
        let (data_off, cap, alt_offset, alt_cap, new_cursor) = match &prev {
            Some(e) if e.alt_cap >= len => {
                (e.alt_offset, e.alt_cap, e.offset, e.cap, None)
            }
            _ => {
                let cursor = self.heap_cursor(cache)?;
                if cursor + len > self.layout.heap_bytes {
                    return Err(FileError::HeapFull);
                }
                let (alt_offset, alt_cap) =
                    prev.as_ref().map(|e| (e.offset, e.cap)).unwrap_or((0, 0));
                (
                    self.layout.heap_base() + cursor,
                    len,
                    alt_offset,
                    alt_cap,
                    Some(cursor + len),
                )
            }
        };
        let prev_version = prev.map(|e| e.version).unwrap_or(0);

        let mut pkts = vec![];
        // 1. Data into the (standby or fresh) buffer — readers still
        //    see the committed buffer through the old entry.
        if !data.is_empty() {
            pkts.extend(cache.write(self.layout.region, data_off, data, 12, 3)?);
        }
        // 2. Bump the heap cursor if fresh heap was claimed.
        if let Some(cursor) = new_cursor {
            pkts.extend(cache.write(
                self.layout.region,
                0,
                &(cursor as u64).to_be_bytes(),
                12,
                3,
            )?);
        }
        // 3. Publish the directory entry last (commit point): the
        //    buffers swap roles atomically with the new length/version.
        let mut entry = [0u8; ENTRY as usize];
        entry[..NAME_LEN].copy_from_slice(&name_bytes);
        entry[16..20].copy_from_slice(&data_off.to_be_bytes());
        entry[20..24].copy_from_slice(&len.to_be_bytes());
        entry[24..28].copy_from_slice(&(prev_version + 1).to_be_bytes());
        entry[28..32].copy_from_slice(&1u32.to_be_bytes());
        entry[32..36].copy_from_slice(&cap.to_be_bytes());
        entry[36..40].copy_from_slice(&alt_offset.to_be_bytes());
        entry[40..44].copy_from_slice(&alt_cap.to_be_bytes());
        pkts.extend(cache.write(
            self.layout.region,
            self.layout.entry_offset(slot),
            &entry,
            12,
            3,
        )?);
        Ok(pkts)
    }

    /// Read a file from the local replica.
    pub fn read(&self, cache: &NetworkCache, name: &str) -> Result<Vec<u8>, FileError> {
        let slot = self.find(cache, name)?.ok_or(FileError::NotFound)?;
        let e = self.read_entry(cache, slot)?.ok_or(FileError::NotFound)?;
        Ok(cache.read(self.layout.region, e.offset, e.len)?.to_vec())
    }

    /// File metadata.
    pub fn stat(&self, cache: &NetworkCache, name: &str) -> Result<FileInfo, FileError> {
        let slot = self.find(cache, name)?.ok_or(FileError::NotFound)?;
        let e = self.read_entry(cache, slot)?.ok_or(FileError::NotFound)?;
        Ok(FileInfo {
            name: e.name,
            len: e.len,
            version: e.version,
        })
    }

    /// Delete a file; returns the replication packets.
    pub fn delete(
        &self,
        cache: &mut NetworkCache,
        name: &str,
    ) -> Result<Vec<MicroPacket>, FileError> {
        let slot = self.find(cache, name)?.ok_or(FileError::NotFound)?;
        let zero = [0u8; ENTRY as usize];
        Ok(cache.write(
            self.layout.region,
            self.layout.entry_offset(slot),
            &zero,
            12,
            3,
        )?)
    }

    /// List all files.
    pub fn list(&self, cache: &NetworkCache) -> Result<Vec<FileInfo>, FileError> {
        let mut out = vec![];
        for slot in 0..self.layout.max_files {
            if let Some(e) = self.read_entry(cache, slot)? {
                out.push(FileInfo {
                    name: e.name,
                    len: e.len,
                    version: e.version,
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (NetworkCache, NetworkCache, FileStore) {
        let layout = FileStoreLayout {
            region: 4,
            max_files: 8,
            heap_bytes: 4096,
        };
        let mut a = NetworkCache::new(0);
        a.define_region(4, layout.footprint()).unwrap();
        let mut b = NetworkCache::new(7);
        b.define_region(4, layout.footprint()).unwrap();
        (a, b, FileStore::new(layout))
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut a, _, fs) = setup();
        fs.write(&mut a, "config.db", b"key=value").unwrap();
        assert_eq!(fs.read(&a, "config.db").unwrap(), b"key=value");
        let info = fs.stat(&a, "config.db").unwrap();
        assert_eq!(info.len, 9);
        assert_eq!(info.version, 1);
    }

    #[test]
    fn replica_survives_writer_death() {
        let (mut a, mut b, fs) = setup();
        let pkts = fs.write(&mut a, "journal", b"critical state").unwrap();
        for p in &pkts {
            b.apply_packet(p).unwrap();
        }
        // Writer node dies; replica still serves the file.
        drop(a);
        assert_eq!(fs.read(&b, "journal").unwrap(), b"critical state");
    }

    #[test]
    fn overwrite_bumps_version() {
        let (mut a, _, fs) = setup();
        fs.write(&mut a, "f", b"v1").unwrap();
        fs.write(&mut a, "f", b"version-two").unwrap();
        assert_eq!(fs.read(&a, "f").unwrap(), b"version-two");
        assert_eq!(fs.stat(&a, "f").unwrap().version, 2);
        assert_eq!(fs.list(&a).unwrap().len(), 1);
    }

    #[test]
    fn delete_and_slot_reuse() {
        let (mut a, _, fs) = setup();
        fs.write(&mut a, "x", b"1").unwrap();
        fs.delete(&mut a, "x").unwrap();
        assert_eq!(fs.read(&a, "x"), Err(FileError::NotFound));
        assert!(fs.list(&a).unwrap().is_empty());
        fs.write(&mut a, "y", b"2").unwrap();
        assert_eq!(fs.list(&a).unwrap().len(), 1);
    }

    #[test]
    fn directory_full() {
        let (mut a, _, fs) = setup();
        for i in 0..8 {
            fs.write(&mut a, &format!("file{i}"), b"x").unwrap();
        }
        assert_eq!(
            fs.write(&mut a, "one-too-many", b"x"),
            Err(FileError::DirectoryFull)
        );
    }

    #[test]
    fn sustained_overwrite_does_not_exhaust_heap() {
        // Regression: the old bump-only allocator leaked one buffer per
        // overwrite, so ~4 overwrites of a 1000-byte file exhausted a
        // 4096-byte heap. Ping-pong buffering bounds a bounded-size
        // file at two buffers no matter how many times it's rewritten.
        let (mut a, _, fs) = setup();
        for i in 0..100u32 {
            fs.write(&mut a, "hot", &vec![i as u8; 1000]).unwrap();
        }
        assert_eq!(fs.read(&a, "hot").unwrap(), vec![99u8; 1000]);
        assert_eq!(fs.stat(&a, "hot").unwrap().version, 100);
        // Exactly two 1000-byte buffers were ever allocated.
        assert_eq!(a.read_u64(4, 0).unwrap(), 2000);
    }

    #[test]
    fn overwrite_growth_allocates_then_pingpongs() {
        let (mut a, _, fs) = setup();
        fs.write(&mut a, "f", &[1u8; 100]).unwrap();
        // Growth beyond both buffers claims fresh heap…
        fs.write(&mut a, "f", &[2u8; 300]).unwrap();
        assert_eq!(fs.read(&a, "f").unwrap(), vec![2u8; 300]);
        // …a shrink fits the 100-byte standby again…
        fs.write(&mut a, "f", &[3u8; 100]).unwrap();
        let cursor_after = a.read_u64(4, 0).unwrap();
        fs.write(&mut a, "f", &[4u8; 300]).unwrap();
        fs.write(&mut a, "f", &[5u8; 100]).unwrap();
        // Steady alternation between the two established buffers
        // consumes no further heap.
        assert_eq!(a.read_u64(4, 0).unwrap(), cursor_after);
        assert_eq!(fs.read(&a, "f").unwrap(), vec![5u8; 100]);
    }

    #[test]
    fn heap_exhaustion() {
        let (mut a, _, fs) = setup();
        fs.write(&mut a, "big", &vec![0u8; 4000]).unwrap();
        assert_eq!(
            fs.write(&mut a, "more", &[0u8; 200]),
            Err(FileError::HeapFull)
        );
    }

    #[test]
    fn bad_names_rejected() {
        let (mut a, _, fs) = setup();
        assert_eq!(fs.write(&mut a, "", b"x"), Err(FileError::BadName));
        assert_eq!(
            fs.write(&mut a, "a-name-that-is-way-too-long", b"x"),
            Err(FileError::BadName)
        );
    }

    #[test]
    fn list_multiple() {
        let (mut a, _, fs) = setup();
        fs.write(&mut a, "a", b"1").unwrap();
        fs.write(&mut a, "b", b"22").unwrap();
        fs.write(&mut a, "c", b"333").unwrap();
        let names: Vec<String> = fs.list(&a).unwrap().into_iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_file_ok() {
        let (mut a, _, fs) = setup();
        fs.write(&mut a, "empty", b"").unwrap();
        assert_eq!(fs.read(&a, "empty").unwrap(), Vec::<u8>::new());
    }
}
