//! AmpThreads — remote task execution (slides 12, 17).
//!
//! "Supports embedded multi-threaded application processes": a node
//! submits a task descriptor into the replicated task table and pokes
//! the target node with an Interrupt MicroPacket; the target's AmpDK
//! runs the task and writes the result back into the table, so the
//! submitter (or a failover successor — the table is in the network
//! cache) can collect it.

use ampnet_cache::{CacheError, NetworkCache, RegionId};
use ampnet_packet::build::{self, InterruptPayload};
use ampnet_packet::MicroPacket;

/// The interrupt vector AmpThreads uses.
pub const THREAD_VECTOR: u16 = 0x0054;

/// Builtin task kinds (a deterministic stand-in for arbitrary code;
/// real AmpNet shipped firmware tasks the same way — by id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TaskKind {
    /// result = arg + 1
    Increment = 1,
    /// result = arg * arg
    Square = 2,
    /// result = population count of arg
    PopCount = 3,
    /// result = CRC-32 of the arg bytes (as u32)
    Checksum = 4,
}

impl TaskKind {
    fn from_u8(v: u8) -> Option<TaskKind> {
        match v {
            1 => Some(TaskKind::Increment),
            2 => Some(TaskKind::Square),
            3 => Some(TaskKind::PopCount),
            4 => Some(TaskKind::Checksum),
            _ => None,
        }
    }

    /// Execute the task.
    pub fn run(self, arg: u32) -> u32 {
        match self {
            TaskKind::Increment => arg.wrapping_add(1),
            TaskKind::Square => arg.wrapping_mul(arg),
            TaskKind::PopCount => arg.count_ones(),
            TaskKind::Checksum => ampnet_phy::crc32(&arg.to_be_bytes()),
        }
    }
}

/// Task status in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TaskStatus {
    /// Slot unused.
    Free = 0,
    /// Submitted, awaiting execution.
    Pending = 1,
    /// Completed; result valid.
    Done = 2,
}

/// One table entry (16 bytes on the wire):
/// kind(1) status(1) target(1) submitter(1) arg(4) result(4) pad(4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskEntry {
    /// What to run.
    pub kind: TaskKind,
    /// Current status.
    pub status: TaskStatus,
    /// Node that should run it.
    pub target: u8,
    /// Node that submitted it.
    pub submitter: u8,
    /// Argument.
    pub arg: u32,
    /// Result (valid when Done).
    pub result: u32,
}

const ENTRY: u32 = 16;

/// Errors from task submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// Underlying cache failure.
    Cache(CacheError),
    /// The slot already holds a pending or uncollected task; submitting
    /// would silently clobber it.
    SlotBusy,
}

impl From<CacheError> for TaskError {
    fn from(e: CacheError) -> Self {
        TaskError::Cache(e)
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Cache(e) => write!(f, "cache: {e}"),
            TaskError::SlotBusy => write!(f, "task slot busy (collect it first)"),
        }
    }
}

impl std::error::Error for TaskError {}

/// The replicated task table.
#[derive(Debug, Clone, Copy)]
pub struct TaskTable {
    /// Region holding the table.
    pub region: RegionId,
    /// Maximum concurrent tasks.
    pub slots: u32,
}

impl TaskTable {
    /// Region bytes needed.
    pub fn footprint(&self) -> u32 {
        self.slots * ENTRY
    }

    fn offset(&self, slot: u32) -> u32 {
        slot * ENTRY
    }

    /// Read an entry from a replica.
    pub fn read(
        &self,
        cache: &NetworkCache,
        slot: u32,
    ) -> Result<Option<TaskEntry>, CacheError> {
        let raw = cache.read(self.region, self.offset(slot), ENTRY)?;
        let Some(kind) = TaskKind::from_u8(raw[0]) else {
            return Ok(None);
        };
        let status = match raw[1] {
            1 => TaskStatus::Pending,
            2 => TaskStatus::Done,
            _ => return Ok(None),
        };
        Ok(Some(TaskEntry {
            kind,
            status,
            target: raw[2],
            submitter: raw[3],
            arg: u32::from_be_bytes(raw[4..8].try_into().expect("4 bytes")),
            result: u32::from_be_bytes(raw[8..12].try_into().expect("4 bytes")),
        }))
    }

    fn write_entry(
        &self,
        cache: &mut NetworkCache,
        slot: u32,
        e: &TaskEntry,
    ) -> Result<Vec<MicroPacket>, CacheError> {
        let mut raw = [0u8; ENTRY as usize];
        raw[0] = e.kind as u8;
        raw[1] = e.status as u8;
        raw[2] = e.target;
        raw[3] = e.submitter;
        raw[4..8].copy_from_slice(&e.arg.to_be_bytes());
        raw[8..12].copy_from_slice(&e.result.to_be_bytes());
        cache.write(self.region, self.offset(slot), &raw, 11, 4)
    }

    /// Submit a task into `slot`: writes the Pending entry and builds
    /// the doorbell interrupt for the target node. Returns
    /// (replication packets, interrupt packet).
    ///
    /// Refuses with [`TaskError::SlotBusy`] when the slot still holds a
    /// pending or uncollected task — a silent overwrite would lose the
    /// in-flight task (or its result) with no signal to the submitter.
    pub fn submit(
        &self,
        cache: &mut NetworkCache,
        slot: u32,
        kind: TaskKind,
        target: u8,
        arg: u32,
    ) -> Result<(Vec<MicroPacket>, MicroPacket), TaskError> {
        if self.read(cache, slot)?.is_some() {
            return Err(TaskError::SlotBusy);
        }
        let entry = TaskEntry {
            kind,
            status: TaskStatus::Pending,
            target,
            submitter: cache.node(),
            arg,
            result: 0,
        };
        let pkts = self.write_entry(cache, slot, &entry)?;
        let doorbell = build::interrupt(
            cache.node(),
            target,
            InterruptPayload {
                vector: THREAD_VECTOR,
                cookie: slot as u16,
                arg,
            },
        );
        Ok((pkts, doorbell))
    }

    /// Target-side: execute the pending task in `slot` (typically in
    /// response to the doorbell interrupt) and publish the result.
    /// Returns (result, replication packets, completion interrupt).
    pub fn execute(
        &self,
        cache: &mut NetworkCache,
        slot: u32,
    ) -> Result<Option<(u32, Vec<MicroPacket>, MicroPacket)>, CacheError> {
        let Some(mut entry) = self.read(cache, slot)? else {
            return Ok(None);
        };
        if entry.status != TaskStatus::Pending || entry.target != cache.node() {
            return Ok(None);
        }
        entry.result = entry.kind.run(entry.arg);
        entry.status = TaskStatus::Done;
        let pkts = self.write_entry(cache, slot, &entry)?;
        let completion = build::interrupt(
            cache.node(),
            entry.submitter,
            InterruptPayload {
                vector: THREAD_VECTOR,
                cookie: slot as u16,
                arg: entry.result,
            },
        );
        Ok(Some((entry.result, pkts, completion)))
    }

    /// Submitter-side: collect a completed result and free the slot.
    pub fn collect(
        &self,
        cache: &mut NetworkCache,
        slot: u32,
    ) -> Result<Option<(u32, Vec<MicroPacket>)>, CacheError> {
        let Some(entry) = self.read(cache, slot)? else {
            return Ok(None);
        };
        if entry.status != TaskStatus::Done {
            return Ok(None);
        }
        let zero = [0u8; ENTRY as usize];
        let pkts = cache.write(self.region, self.offset(slot), &zero, 11, 4)?;
        Ok(Some((entry.result, pkts)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (NetworkCache, NetworkCache, TaskTable) {
        let table = TaskTable {
            region: 6,
            slots: 16,
        };
        let mut submitter = NetworkCache::new(1);
        submitter.define_region(6, table.footprint()).unwrap();
        let mut worker = NetworkCache::new(2);
        worker.define_region(6, table.footprint()).unwrap();
        (submitter, worker, table)
    }

    fn sync(from_pkts: &[MicroPacket], to: &mut NetworkCache) {
        for p in from_pkts {
            to.apply_packet(p).unwrap();
        }
    }

    #[test]
    fn remote_task_lifecycle() {
        let (mut sub, mut wrk, table) = setup();
        // Submit square(12) to node 2.
        let (pkts, doorbell) = table.submit(&mut sub, 0, TaskKind::Square, 2, 12).unwrap();
        sync(&pkts, &mut wrk);
        assert_eq!(doorbell.ctrl.dst, 2);
        let ip = build::parse_interrupt(&doorbell).unwrap();
        assert_eq!(ip.vector, THREAD_VECTOR);
        assert_eq!(ip.cookie, 0);

        // Worker executes.
        let (result, pkts, completion) = table.execute(&mut wrk, 0).unwrap().unwrap();
        assert_eq!(result, 144);
        sync(&pkts, &mut sub);
        assert_eq!(completion.ctrl.dst, 1);

        // Submitter collects.
        let (got, pkts) = table.collect(&mut sub, 0).unwrap().unwrap();
        assert_eq!(got, 144);
        sync(&pkts, &mut wrk);
        assert!(table.read(&sub, 0).unwrap().is_none(), "slot freed");
    }

    #[test]
    fn all_task_kinds() {
        assert_eq!(TaskKind::Increment.run(41), 42);
        assert_eq!(TaskKind::Square.run(9), 81);
        assert_eq!(TaskKind::PopCount.run(0xFF), 8);
        assert_eq!(
            TaskKind::Checksum.run(0x12345678),
            ampnet_phy::crc32(&0x12345678u32.to_be_bytes())
        );
    }

    #[test]
    fn wrong_target_refuses() {
        let (mut sub, mut wrk, table) = setup();
        let (pkts, _) = table.submit(&mut sub, 1, TaskKind::Increment, 9, 1).unwrap();
        sync(&pkts, &mut wrk);
        // Worker is node 2, task targets 9.
        assert!(table.execute(&mut wrk, 1).unwrap().is_none());
    }

    #[test]
    fn collect_before_done_is_none() {
        let (mut sub, _, table) = setup();
        let (_pkts, _) = table.submit(&mut sub, 2, TaskKind::Increment, 2, 0).unwrap();
        assert!(table.collect(&mut sub, 2).unwrap().is_none());
    }

    #[test]
    fn empty_slot_reads_none() {
        let (sub, _, table) = setup();
        assert!(table.read(&sub, 5).unwrap().is_none());
    }

    #[test]
    fn submit_refuses_occupied_slot() {
        // Regression: submit used to write the Pending entry blindly,
        // silently clobbering an in-flight task (or an uncollected
        // result) in the same slot.
        let (mut sub, mut wrk, table) = setup();
        let (pkts, _) = table.submit(&mut sub, 3, TaskKind::Square, 2, 7).unwrap();
        sync(&pkts, &mut wrk);
        // Pending → busy.
        assert_eq!(
            table.submit(&mut sub, 3, TaskKind::Increment, 2, 1),
            Err(TaskError::SlotBusy)
        );
        // Done but uncollected → still busy (the result would be lost).
        let (_, pkts, _) = table.execute(&mut wrk, 3).unwrap().unwrap();
        sync(&pkts, &mut sub);
        assert_eq!(
            table.submit(&mut sub, 3, TaskKind::Increment, 2, 1),
            Err(TaskError::SlotBusy)
        );
        // Collected → free again.
        let (result, pkts) = table.collect(&mut sub, 3).unwrap().unwrap();
        assert_eq!(result, 49);
        sync(&pkts, &mut wrk);
        assert!(table.submit(&mut sub, 3, TaskKind::Increment, 2, 1).is_ok());
    }

    #[test]
    fn failover_successor_can_collect() {
        // The submitter dies after the worker finishes; a third node
        // holding the replica collects the result — "applications can
        // use the network to rebuild".
        let (mut sub, mut wrk, table) = setup();
        let mut successor = NetworkCache::new(3);
        successor.define_region(6, table.footprint()).unwrap();

        let (pkts, _) = table.submit(&mut sub, 4, TaskKind::PopCount, 2, 0xF0F0).unwrap();
        sync(&pkts, &mut wrk);
        sync(&pkts, &mut successor);
        let (_, pkts, _) = table.execute(&mut wrk, 4).unwrap().unwrap();
        sync(&pkts, &mut successor);
        drop(sub); // submitter node lost
        let (result, _) = table.collect(&mut successor, 4).unwrap().unwrap();
        assert_eq!(result, 8);
    }
}
