//! Mini-MPI collectives over AmpNet messaging (slide 12).
//!
//! The paper's software stack runs MPI and PVM above the AmpNet
//! driver. This module provides the collective patterns those
//! libraries lean on, exploiting the ring's native broadcast: barrier,
//! broadcast, all-reduce and gather, as sans-IO per-rank engines — the
//! caller moves the datagrams (over a [`crate::msg`] channel or the
//! full cluster simulation).
//!
//! Wire format of a collective datagram (little parsing on purpose):
//! `[kind: u8][tag: u32][rank: u8][value: u64]`.

use std::collections::BTreeMap;

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Identity element.
    fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
        }
    }
}

const KIND_BARRIER: u8 = 1;
const KIND_REDUCE: u8 = 2;
const KIND_BCAST: u8 = 3;
const KIND_GATHER: u8 = 4;

/// One collective message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveMsg {
    kind: u8,
    /// Caller-chosen tag separating concurrent collectives.
    pub tag: u32,
    /// Sending rank.
    pub rank: u8,
    /// Payload value.
    pub value: u64,
}

impl CollectiveMsg {
    /// Serialize (14 bytes).
    pub fn to_bytes(&self) -> [u8; 14] {
        let mut b = [0u8; 14];
        b[0] = self.kind;
        b[1..5].copy_from_slice(&self.tag.to_be_bytes());
        b[5] = self.rank;
        b[6..14].copy_from_slice(&self.value.to_be_bytes());
        b
    }

    /// Parse; `None` if not a collective datagram.
    pub fn from_bytes(b: &[u8]) -> Option<CollectiveMsg> {
        if b.len() != 14 || !(KIND_BARRIER..=KIND_GATHER).contains(&b[0]) {
            return None;
        }
        Some(CollectiveMsg {
            kind: b[0],
            tag: u32::from_be_bytes(b[1..5].try_into().expect("4")),
            rank: b[5],
            value: u64::from_be_bytes(b[6..14].try_into().expect("8")),
        })
    }
}

/// What a rank should transmit: broadcast or unicast to a rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outgoing {
    /// Broadcast to all ranks.
    Broadcast(CollectiveMsg),
    /// Unicast to one rank.
    To(u8, CollectiveMsg),
}

/// The per-rank collective engine.
#[derive(Debug)]
pub struct Rank {
    rank: u8,
    n_ranks: u8,
    /// Per (kind, tag): contributions seen so far (rank → value).
    pending: BTreeMap<(u8, u32), BTreeMap<u8, u64>>,
    /// Completed collectives: (kind, tag) → result.
    done: BTreeMap<(u8, u32), u64>,
    /// Gather results at the root: tag → rank-indexed values.
    gathered: BTreeMap<u32, BTreeMap<u8, u64>>,
}

impl Rank {
    /// Engine for `rank` of `n_ranks` (ranks are 0..n_ranks).
    pub fn new(rank: u8, n_ranks: u8) -> Self {
        assert!(n_ranks >= 1 && rank < n_ranks);
        Rank {
            rank,
            n_ranks,
            pending: BTreeMap::new(),
            done: BTreeMap::new(),
            gathered: BTreeMap::new(),
        }
    }

    /// Enter a barrier. Complete when [`Rank::barrier_done`].
    pub fn barrier(&mut self, tag: u32) -> Outgoing {
        let msg = CollectiveMsg {
            kind: KIND_BARRIER,
            tag,
            rank: self.rank,
            value: 0,
        };
        self.note(msg);
        Outgoing::Broadcast(msg)
    }

    /// Has every rank reached the barrier?
    pub fn barrier_done(&self, tag: u32) -> bool {
        self.count(KIND_BARRIER, tag) == self.n_ranks as usize
    }

    /// Contribute to an all-reduce. Result via [`Rank::reduce_result`].
    pub fn allreduce(&mut self, tag: u32, value: u64) -> Outgoing {
        let msg = CollectiveMsg {
            kind: KIND_REDUCE,
            tag,
            rank: self.rank,
            value,
        };
        self.note(msg);
        Outgoing::Broadcast(msg)
    }

    /// The reduced value once every rank contributed.
    pub fn reduce_result(&self, tag: u32, op: ReduceOp) -> Option<u64> {
        let contributions = self.pending.get(&(KIND_REDUCE, tag))?;
        if contributions.len() != self.n_ranks as usize {
            return None;
        }
        Some(
            contributions
                .values()
                .fold(op.identity(), |acc, &v| op.apply(acc, v)),
        )
    }

    /// Root broadcasts a value; non-roots receive via
    /// [`Rank::bcast_result`].
    pub fn bcast(&mut self, tag: u32, value: u64) -> Outgoing {
        let msg = CollectiveMsg {
            kind: KIND_BCAST,
            tag,
            rank: self.rank,
            value,
        };
        self.done.insert((KIND_BCAST, tag), value);
        Outgoing::Broadcast(msg)
    }

    /// The broadcast value, once it arrived.
    pub fn bcast_result(&self, tag: u32) -> Option<u64> {
        self.done.get(&(KIND_BCAST, tag)).copied()
    }

    /// Contribute to a gather rooted at `root`.
    pub fn gather(&mut self, tag: u32, root: u8, value: u64) -> Outgoing {
        let msg = CollectiveMsg {
            kind: KIND_GATHER,
            tag,
            rank: self.rank,
            value,
        };
        if root == self.rank {
            self.gathered.entry(tag).or_default().insert(self.rank, value);
            // Self-contribution needs no wire transfer; emit a
            // loopback unicast for uniformity.
        }
        Outgoing::To(root, msg)
    }

    /// At the root: the rank-ordered gathered values, once complete.
    pub fn gather_result(&self, tag: u32) -> Option<Vec<u64>> {
        let g = self.gathered.get(&tag)?;
        if g.len() != self.n_ranks as usize {
            return None;
        }
        Some(g.values().copied().collect())
    }

    /// Feed a received collective datagram.
    pub fn on_message(&mut self, msg: CollectiveMsg) {
        match msg.kind {
            KIND_BARRIER | KIND_REDUCE => self.note(msg),
            KIND_BCAST => {
                self.done.insert((KIND_BCAST, msg.tag), msg.value);
            }
            KIND_GATHER => {
                self.gathered
                    .entry(msg.tag)
                    .or_default()
                    .insert(msg.rank, msg.value);
            }
            _ => {}
        }
    }

    fn note(&mut self, msg: CollectiveMsg) {
        self.pending
            .entry((msg.kind, msg.tag))
            .or_default()
            .insert(msg.rank, msg.value);
    }

    fn count(&self, kind: u8, tag: u32) -> usize {
        self.pending.get(&(kind, tag)).map(|m| m.len()).unwrap_or(0)
    }
}

/// Drive a set of ranks to completion by instantly moving messages —
/// the unit-test harness (the cluster integration exercises the same
/// engines over the simulated ring).
#[cfg(test)]
fn pump(ranks: &mut [Rank], outgoing: Vec<(u8, Outgoing)>) {
    for (src, out) in outgoing {
        match out {
            Outgoing::Broadcast(msg) => {
                for (i, r) in ranks.iter_mut().enumerate() {
                    if i as u8 != src {
                        r.on_message(msg);
                    }
                }
            }
            Outgoing::To(dst, msg) => {
                if dst != src {
                    ranks[dst as usize].on_message(msg);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks(n: u8) -> Vec<Rank> {
        (0..n).map(|r| Rank::new(r, n)).collect()
    }

    #[test]
    fn barrier_completes_only_with_everyone() {
        let mut rs = ranks(4);
        let mut outs = vec![];
        for r in 0..3u8 {
            outs.push((r, rs[r as usize].barrier(7)));
        }
        pump(&mut rs, outs);
        assert!(!rs[0].barrier_done(7), "rank 3 missing");
        let out = rs[3].barrier(7);
        pump(&mut rs, vec![(3, out)]);
        for r in &rs {
            assert!(r.barrier_done(7));
        }
    }

    #[test]
    fn allreduce_sum_min_max() {
        let mut rs = ranks(4);
        let values = [10u64, 3, 25, 8];
        let outs: Vec<_> = (0..4u8)
            .map(|r| (r, rs[r as usize].allreduce(1, values[r as usize])))
            .collect();
        pump(&mut rs, outs);
        for r in &rs {
            assert_eq!(r.reduce_result(1, ReduceOp::Sum), Some(46));
            assert_eq!(r.reduce_result(1, ReduceOp::Min), Some(3));
            assert_eq!(r.reduce_result(1, ReduceOp::Max), Some(25));
        }
    }

    #[test]
    fn reduce_incomplete_is_none() {
        let mut rs = ranks(3);
        let out = rs[0].allreduce(9, 5);
        pump(&mut rs, vec![(0, out)]);
        assert_eq!(rs[1].reduce_result(9, ReduceOp::Sum), None);
    }

    #[test]
    fn bcast_from_root() {
        let mut rs = ranks(5);
        let out = rs[2].bcast(3, 0xFEED);
        pump(&mut rs, vec![(2, out)]);
        for r in &rs {
            assert_eq!(r.bcast_result(3), Some(0xFEED));
        }
        assert_eq!(rs[0].bcast_result(99), None);
    }

    #[test]
    fn gather_at_root() {
        let mut rs = ranks(4);
        let mut outs = vec![];
        for r in 0..4u8 {
            outs.push((r, rs[r as usize].gather(5, 1, r as u64 * 100)));
        }
        pump(&mut rs, outs);
        assert_eq!(rs[1].gather_result(5), Some(vec![0, 100, 200, 300]));
        assert_eq!(rs[0].gather_result(5), None, "only the root gathers");
    }

    #[test]
    fn concurrent_tags_do_not_mix() {
        let mut rs = ranks(2);
        let o1 = rs[0].allreduce(1, 5);
        let o2 = rs[0].allreduce(2, 50);
        let o3 = rs[1].allreduce(1, 6);
        let o4 = rs[1].allreduce(2, 60);
        pump(&mut rs, vec![(0, o1), (0, o2), (1, o3), (1, o4)]);
        assert_eq!(rs[0].reduce_result(1, ReduceOp::Sum), Some(11));
        assert_eq!(rs[0].reduce_result(2, ReduceOp::Sum), Some(110));
    }

    #[test]
    fn wire_roundtrip() {
        let m = CollectiveMsg {
            kind: KIND_REDUCE,
            tag: 0xDEAD,
            rank: 7,
            value: u64::MAX - 1,
        };
        assert_eq!(CollectiveMsg::from_bytes(&m.to_bytes()), Some(m));
        assert_eq!(CollectiveMsg::from_bytes(&[0u8; 14]), None);
        assert_eq!(CollectiveMsg::from_bytes(&[1u8; 5]), None);
    }
}
