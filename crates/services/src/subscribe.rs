//! AmpSubscribe — topic pub/sub over the network cache (slide 12).
//!
//! A topic is a ring of seqlock-guarded record slots in a cache
//! region plus a head counter. Publishing writes the next slot and
//! bumps the head; because the whole structure replicates, any node
//! subscribes by *polling its local replica* — no subscription state
//! at the publisher at all. Slow subscribers that fall more than a
//! ring behind observe an explicit `Lagged` gap (the slots were
//! overwritten), never torn data.

use ampnet_cache::seqlock_msg::{self, ReadOutcome, RecordLayout};
use ampnet_cache::{CacheError, NetworkCache, RegionId};
use ampnet_packet::MicroPacket;

/// Topic geometry within a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicLayout {
    /// Region holding the topic.
    pub region: RegionId,
    /// Byte offset of the topic header (head counter record).
    pub base: u32,
    /// Number of slots in the ring.
    pub slots: u32,
    /// Payload bytes per slot.
    pub slot_len: u32,
}

impl TopicLayout {
    /// Head counter: a seqlock record holding the u64 publish count.
    ///
    /// Public so external drivers (e.g. the `ampnet-load` workload
    /// engine) can publish through a cluster's replication path while
    /// reusing the exact topic geometry subscribers poll.
    pub fn head_record(&self) -> RecordLayout {
        RecordLayout {
            region: self.region,
            offset: self.base,
            data_len: 8,
        }
    }

    /// Slot record for publish index `index` (the ring wraps every
    /// [`TopicLayout::slots`] records).
    pub fn slot_record(&self, index: u64) -> RecordLayout {
        let slot = (index % self.slots as u64) as u32;
        let slot_footprint = 8 + self.slot_len + 8;
        RecordLayout {
            region: self.region,
            offset: self.base + 24 + slot * slot_footprint,
            data_len: self.slot_len,
        }
    }

    /// Total region bytes the topic occupies.
    pub fn footprint(&self) -> u32 {
        24 + self.slots * (8 + self.slot_len + 8)
    }
}

/// Publisher handle (one writer per topic, AmpNet's single-producer
/// discipline — multi-producer topics coordinate with a network
/// semaphore).
#[derive(Debug)]
pub struct Publisher {
    layout: TopicLayout,
    published: u64,
}

impl Publisher {
    /// Create a publisher; the topic starts empty.
    pub fn new(layout: TopicLayout) -> Self {
        Publisher {
            layout,
            published: 0,
        }
    }

    /// Number of records published.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Publish one record (padded/truncated to the slot length).
    /// Returns the cache-update packets to broadcast.
    pub fn publish(
        &mut self,
        cache: &mut NetworkCache,
        payload: &[u8],
    ) -> Result<Vec<MicroPacket>, CacheError> {
        assert!(
            payload.len() as u32 <= self.layout.slot_len,
            "record exceeds slot length"
        );
        let mut slot_data = vec![0u8; self.layout.slot_len as usize];
        slot_data[..payload.len()].copy_from_slice(payload);
        // Write the slot first, then advance the head: a subscriber
        // that sees head = n can always read slots < n consistently.
        let mut pkts = seqlock_msg::write_record(
            cache,
            self.layout.slot_record(self.published),
            &slot_data,
            13,
            2,
        )?;
        self.published += 1;
        pkts.extend(seqlock_msg::write_record(
            cache,
            self.layout.head_record(),
            &self.published.to_be_bytes(),
            13,
            2,
        )?);
        Ok(pkts)
    }
}

/// What a poll returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollOutcome {
    /// New records, in publish order.
    Records(Vec<Vec<u8>>),
    /// Fell more than one ring behind: `skipped` records were
    /// overwritten before being read; the cursor jumped forward.
    Lagged {
        /// Records lost to overwrite.
        skipped: u64,
        /// Records recovered after the jump.
        records: Vec<Vec<u8>>,
    },
    /// Nothing new (or a write was racing; retry next poll).
    Empty,
}

/// Subscriber: polls the local replica.
#[derive(Debug)]
pub struct Subscriber {
    layout: TopicLayout,
    cursor: u64,
    received: u64,
    lagged: u64,
}

impl Subscriber {
    /// Subscribe from the current beginning of the topic.
    pub fn new(layout: TopicLayout) -> Self {
        Subscriber {
            layout,
            cursor: 0,
            received: 0,
            lagged: 0,
        }
    }

    /// Records delivered so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Records lost to lag so far.
    pub fn lagged(&self) -> u64 {
        self.lagged
    }

    /// Poll the local replica for new records.
    pub fn poll(&mut self, cache: &NetworkCache) -> Result<PollOutcome, CacheError> {
        let head = match seqlock_msg::try_read(cache, self.layout.head_record())? {
            ReadOutcome::Ok { data, .. } => {
                u64::from_be_bytes(data.as_slice().try_into().expect("8 bytes"))
            }
            ReadOutcome::Busy => return Ok(PollOutcome::Empty),
        };
        if head <= self.cursor {
            return Ok(PollOutcome::Empty);
        }
        // Readable window: the last `slots` records.
        let window_start = head.saturating_sub(self.layout.slots as u64);
        let mut skipped = 0;
        if self.cursor < window_start {
            skipped = window_start - self.cursor;
            self.cursor = window_start;
        }
        let mut records = vec![];
        while self.cursor < head {
            match seqlock_msg::try_read(cache, self.layout.slot_record(self.cursor))? {
                ReadOutcome::Ok { data, .. } => {
                    records.push(data);
                    self.cursor += 1;
                }
                ReadOutcome::Busy => break, // racing write; next poll
            }
        }
        self.received += records.len() as u64;
        self.lagged += skipped;
        if skipped > 0 {
            Ok(PollOutcome::Lagged { skipped, records })
        } else if records.is_empty() {
            Ok(PollOutcome::Empty)
        } else {
            Ok(PollOutcome::Records(records))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(slots: u32) -> (NetworkCache, NetworkCache, TopicLayout) {
        let layout = TopicLayout {
            region: 2,
            base: 0,
            slots,
            slot_len: 32,
        };
        let mut publisher_cache = NetworkCache::new(0);
        publisher_cache.define_region(2, layout.footprint()).unwrap();
        let mut replica = NetworkCache::new(5);
        replica.define_region(2, layout.footprint()).unwrap();
        (publisher_cache, replica, layout)
    }

    fn replicate(pkts: &[MicroPacket], replica: &mut NetworkCache) {
        for p in pkts {
            replica.apply_packet(p).unwrap();
        }
    }

    #[test]
    fn publish_then_poll() {
        let (mut pc, mut replica, layout) = setup(8);
        let mut publisher = Publisher::new(layout);
        let mut sub = Subscriber::new(layout);
        let pkts = publisher.publish(&mut pc, b"event-1").unwrap();
        replicate(&pkts, &mut replica);
        match sub.poll(&replica).unwrap() {
            PollOutcome::Records(rs) => {
                assert_eq!(rs.len(), 1);
                assert_eq!(&rs[0][..7], b"event-1");
            }
            other => panic!("expected records, got {other:?}"),
        }
        assert_eq!(sub.poll(&replica).unwrap(), PollOutcome::Empty);
    }

    #[test]
    fn records_arrive_in_order() {
        let (mut pc, mut replica, layout) = setup(16);
        let mut publisher = Publisher::new(layout);
        let mut sub = Subscriber::new(layout);
        for i in 0..10u8 {
            let pkts = publisher.publish(&mut pc, &[i; 4]).unwrap();
            replicate(&pkts, &mut replica);
        }
        let PollOutcome::Records(rs) = sub.poll(&replica).unwrap() else {
            panic!("expected records");
        };
        assert_eq!(rs.len(), 10);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r[0], i as u8);
        }
        assert_eq!(sub.received(), 10);
    }

    #[test]
    fn slow_subscriber_sees_lag_not_corruption() {
        let (mut pc, mut replica, layout) = setup(4);
        let mut publisher = Publisher::new(layout);
        let mut sub = Subscriber::new(layout);
        // Publish 10 into a 4-slot ring before the first poll.
        for i in 0..10u8 {
            let pkts = publisher.publish(&mut pc, &[i; 4]).unwrap();
            replicate(&pkts, &mut replica);
        }
        match sub.poll(&replica).unwrap() {
            PollOutcome::Lagged { skipped, records } => {
                assert_eq!(skipped, 6, "10 published, 4 retained");
                assert_eq!(records.len(), 4);
                assert_eq!(records[0][0], 6, "oldest surviving record");
                assert_eq!(records[3][0], 9);
            }
            other => panic!("expected lag, got {other:?}"),
        }
        assert_eq!(sub.lagged(), 6);
    }

    #[test]
    fn partial_replication_reads_cleanly() {
        // Replica has the slot write but not yet the head bump: the
        // subscriber simply doesn't see the record yet.
        let (mut pc, mut replica, layout) = setup(8);
        let mut publisher = Publisher::new(layout);
        let mut sub = Subscriber::new(layout);
        let pkts = publisher.publish(&mut pc, b"half").unwrap();
        // The head-record packets are the last 3 (counter, data, counter
        // each one packet for 8-byte records).
        let cut = pkts.len() - 3;
        replicate(&pkts[..cut], &mut replica);
        assert_eq!(sub.poll(&replica).unwrap(), PollOutcome::Empty);
        replicate(&pkts[cut..], &mut replica);
        assert!(matches!(
            sub.poll(&replica).unwrap(),
            PollOutcome::Records(_)
        ));
    }

    #[test]
    fn two_subscribers_independent_cursors() {
        let (mut pc, mut replica, layout) = setup(8);
        let mut publisher = Publisher::new(layout);
        let mut s1 = Subscriber::new(layout);
        let mut s2 = Subscriber::new(layout);
        let pkts = publisher.publish(&mut pc, b"x").unwrap();
        replicate(&pkts, &mut replica);
        assert!(matches!(s1.poll(&replica).unwrap(), PollOutcome::Records(_)));
        let pkts = publisher.publish(&mut pc, b"y").unwrap();
        replicate(&pkts, &mut replica);
        assert!(matches!(s1.poll(&replica).unwrap(), PollOutcome::Records(_)));
        // s2 sees both at once.
        let PollOutcome::Records(rs) = s2.poll(&replica).unwrap() else {
            panic!();
        };
        assert_eq!(rs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds slot length")]
    fn oversized_record_rejected() {
        let (mut pc, _, layout) = setup(4);
        let mut publisher = Publisher::new(layout);
        let _ = publisher.publish(&mut pc, &[0; 33]);
    }
}
