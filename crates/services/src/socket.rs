//! AmpIP — the datagram socket facade (slide 12).
//!
//! The paper's stack runs the host IP stack over the "Amp IP Driver";
//! applications see ordinary sockets while datagrams ride DMA
//! MicroPackets. This module gives that shape: port-addressed
//! datagram endpoints multiplexed over one [`crate::msg`] channel.
//!
//! Wire format inside the message payload:
//! `[dst_port: u16][src_port: u16][data...]`.

use crate::msg::{Datagram, MsgRx, MsgTx};
use ampnet_packet::MicroPacket;
use std::collections::{BTreeMap, VecDeque};

/// The message stream AmpIP rides on.
pub const AMPIP_STREAM: u8 = 4;

/// A (node, port) endpoint address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockAddr {
    /// Node id.
    pub node: u8,
    /// Port number.
    pub port: u16,
}

/// A received datagram with its source address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received {
    /// Sender address.
    pub from: SockAddr,
    /// Payload.
    pub data: Vec<u8>,
}

/// Errors from the socket layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketError {
    /// The port is already bound.
    PortInUse(u16),
    /// Sending from an unbound port.
    NotBound(u16),
}

impl std::fmt::Display for SocketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketError::PortInUse(p) => write!(f, "port {p} already bound"),
            SocketError::NotBound(p) => write!(f, "port {p} not bound"),
        }
    }
}

impl std::error::Error for SocketError {}

/// Per-node AmpIP endpoint: binds ports, sends and receives datagrams.
#[derive(Debug)]
pub struct AmpIp {
    node: u8,
    tx: MsgTx,
    rx: MsgRx,
    /// Port-ordered (deterministic iteration) bound-port queues.
    bound: BTreeMap<u16, VecDeque<Received>>,
    /// Datagrams to unbound ports (counted, then discarded — UDP
    /// semantics).
    dropped_unbound: u64,
}

impl AmpIp {
    /// An endpoint for `node`.
    pub fn new(node: u8) -> Self {
        AmpIp {
            node,
            tx: MsgTx::new(node),
            rx: MsgRx::new(),
            bound: BTreeMap::new(),
            dropped_unbound: 0,
        }
    }

    /// Bind a port for receiving.
    pub fn bind(&mut self, port: u16) -> Result<(), SocketError> {
        if self.bound.contains_key(&port) {
            return Err(SocketError::PortInUse(port));
        }
        self.bound.insert(port, VecDeque::new());
        Ok(())
    }

    /// Release a port (queued datagrams are discarded).
    pub fn close(&mut self, port: u16) {
        self.bound.remove(&port);
    }

    /// Datagrams that arrived for unbound ports.
    pub fn dropped_unbound(&self) -> u64 {
        self.dropped_unbound
    }

    /// Build the MicroPackets that carry `data` from `src_port` to
    /// `dst`. The caller puts them on the ring (or hands them to the
    /// cluster's `send_message` path).
    pub fn send_to(
        &mut self,
        src_port: u16,
        dst: SockAddr,
        data: &[u8],
    ) -> Result<Vec<MicroPacket>, SocketError> {
        if !self.bound.contains_key(&src_port) {
            return Err(SocketError::NotBound(src_port));
        }
        let mut wire = Vec::with_capacity(4 + data.len());
        wire.extend_from_slice(&dst.port.to_be_bytes());
        wire.extend_from_slice(&src_port.to_be_bytes());
        wire.extend_from_slice(data);
        Ok(self.tx.send(dst.node, AMPIP_STREAM, &wire))
    }

    /// Feed a MicroPacket from the ring; routes completed datagrams to
    /// their bound port queues.
    pub fn on_packet(&mut self, pkt: &MicroPacket) {
        let Some(d) = self.rx.on_packet(pkt) else {
            return;
        };
        self.on_datagram(d);
    }

    /// Feed an already-reassembled datagram (for integration with a
    /// transport that reassembles centrally, like the cluster).
    pub fn on_datagram(&mut self, d: Datagram) {
        if d.stream != AMPIP_STREAM || d.payload.len() < 4 {
            return;
        }
        let dst_port = u16::from_be_bytes([d.payload[0], d.payload[1]]);
        let src_port = u16::from_be_bytes([d.payload[2], d.payload[3]]);
        match self.bound.get_mut(&dst_port) {
            Some(q) => q.push_back(Received {
                from: SockAddr {
                    node: d.src,
                    port: src_port,
                },
                data: d.payload[4..].to_vec(),
            }),
            None => self.dropped_unbound += 1,
        }
    }

    /// Receive the next datagram on a bound port.
    pub fn recv_from(&mut self, port: u16) -> Option<Received> {
        self.bound.get_mut(&port)?.pop_front()
    }

    /// The node this endpoint belongs to.
    pub fn node(&self) -> u8 {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump(pkts: &[MicroPacket], to: &mut AmpIp) {
        for p in pkts {
            to.on_packet(p);
        }
    }

    #[test]
    fn bind_send_recv() {
        let mut a = AmpIp::new(1);
        let mut b = AmpIp::new(2);
        a.bind(5000).unwrap();
        b.bind(80).unwrap();
        let pkts = a
            .send_to(5000, SockAddr { node: 2, port: 80 }, b"GET /roster")
            .unwrap();
        pump(&pkts, &mut b);
        let r = b.recv_from(80).expect("delivered");
        assert_eq!(r.data, b"GET /roster");
        assert_eq!(r.from, SockAddr { node: 1, port: 5000 });
        assert!(b.recv_from(80).is_none());
    }

    #[test]
    fn reply_path() {
        let mut a = AmpIp::new(1);
        let mut b = AmpIp::new(2);
        a.bind(5000).unwrap();
        b.bind(80).unwrap();
        let pkts = a.send_to(5000, SockAddr { node: 2, port: 80 }, b"ping").unwrap();
        pump(&pkts, &mut b);
        let req = b.recv_from(80).unwrap();
        let pkts = b.send_to(80, req.from, b"pong").unwrap();
        pump(&pkts, &mut a);
        assert_eq!(a.recv_from(5000).unwrap().data, b"pong");
    }

    #[test]
    fn unbound_port_counts_drop() {
        let mut a = AmpIp::new(1);
        let mut b = AmpIp::new(2);
        a.bind(1).unwrap();
        let pkts = a.send_to(1, SockAddr { node: 2, port: 9 }, b"x").unwrap();
        pump(&pkts, &mut b);
        assert_eq!(b.dropped_unbound(), 1);
    }

    #[test]
    fn double_bind_rejected_and_close_frees() {
        let mut a = AmpIp::new(1);
        a.bind(7).unwrap();
        assert_eq!(a.bind(7), Err(SocketError::PortInUse(7)));
        a.close(7);
        a.bind(7).unwrap();
    }

    #[test]
    fn send_from_unbound_rejected() {
        let mut a = AmpIp::new(1);
        assert_eq!(
            a.send_to(9, SockAddr { node: 2, port: 1 }, b"x").unwrap_err(),
            SocketError::NotBound(9)
        );
    }

    #[test]
    fn large_datagrams_fragment_transparently() {
        let mut a = AmpIp::new(1);
        let mut b = AmpIp::new(2);
        a.bind(1).unwrap();
        b.bind(2).unwrap();
        let big: Vec<u8> = (0..3000u32).map(|i| (i % 255) as u8).collect();
        let pkts = a.send_to(1, SockAddr { node: 2, port: 2 }, &big).unwrap();
        assert!(pkts.len() > 40, "fragments expected");
        pump(&pkts, &mut b);
        assert_eq!(b.recv_from(2).unwrap().data, big);
    }

    #[test]
    fn ports_are_independent_queues() {
        let mut a = AmpIp::new(1);
        let mut b = AmpIp::new(2);
        a.bind(1).unwrap();
        b.bind(10).unwrap();
        b.bind(20).unwrap();
        let p1 = a.send_to(1, SockAddr { node: 2, port: 10 }, b"ten").unwrap();
        let p2 = a.send_to(1, SockAddr { node: 2, port: 20 }, b"twenty").unwrap();
        pump(&p1, &mut b);
        pump(&p2, &mut b);
        assert_eq!(b.recv_from(20).unwrap().data, b"twenty");
        assert_eq!(b.recv_from(10).unwrap().data, b"ten");
    }
}
