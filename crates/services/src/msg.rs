//! Message layer: arbitrary-size datagrams over MicroPackets.
//!
//! This is the substrate under AmpIP (slide 12: the IP stack rides the
//! AmpNet driver) and the MPI/PVM-style messaging the paper's software
//! diagram shows. A datagram is fragmented into DMA MicroPackets on a
//! dedicated *message channel*; the ring's per-source FIFO makes
//! reassembly trivial and loss-free. A CRC-32 trailer guards each
//! datagram end to end.
//!
//! Wire convention: message fragments use DMA packets whose
//! `DmaCtrl.region` is [`MSG_REGION`] (a sentinel never used by the
//! network cache) and whose `offset` packs `(datagram id << 16) |
//! fragment index`. Fragment 0 carries an 8-byte header: total length
//! (u32) + CRC-32 of the payload.

use ampnet_packet::{build, DmaCtrl, MicroPacket, PacketType, MAX_DMA_PAYLOAD};
use ampnet_phy::crc32;
use ampnet_telemetry::{defs, CounterHandle, Telemetry};

/// Sentinel region id marking message traffic (not a cache region).
pub const MSG_REGION: u8 = 0xFE;

/// Header bytes in fragment 0.
const HEADER: usize = 8;

/// Maximum datagram size: 16-bit fragment index × cell payload.
pub const MAX_DATAGRAM: usize = (u16::MAX as usize) * MAX_DMA_PAYLOAD - HEADER;

/// Sender side: fragments datagrams.
///
/// ```
/// use ampnet_services::msg::{MsgTx, MsgRx};
///
/// let mut tx = MsgTx::new(1);
/// let mut rx = MsgRx::new();
/// let packets = tx.send(2, 0, b"a datagram larger than one cell................................");
/// let mut delivered = None;
/// for p in &packets {
///     delivered = delivered.or(rx.on_packet(p));
/// }
/// assert!(delivered.unwrap().payload.starts_with(b"a datagram"));
/// ```
#[derive(Debug)]
pub struct MsgTx {
    node: u8,
    next_id: u16,
    sent_datagrams: u64,
    sent_bytes: u64,
    tel: Telemetry,
    msgs_sent: CounterHandle,
    fragments: CounterHandle,
}

impl MsgTx {
    /// New sender for `node`.
    pub fn new(node: u8) -> Self {
        MsgTx {
            node,
            next_id: 0,
            sent_datagrams: 0,
            sent_bytes: 0,
            tel: Telemetry::disabled(),
            msgs_sent: CounterHandle::NONE,
            fragments: CounterHandle::NONE,
        }
    }

    /// Register this sender's service-plane counters in `tel`.
    pub fn instrument(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.msgs_sent = tel.counter(&defs::SERVICES_MSGS_SENT, self.node);
        self.fragments = tel.counter(&defs::SERVICES_MSG_FRAGMENTS, self.node);
    }

    /// Datagrams sent.
    pub fn sent_datagrams(&self) -> u64 {
        self.sent_datagrams
    }

    /// Payload bytes sent.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Fragment `payload` into MicroPackets for `dst` on `stream`.
    /// `tag` is an application demultiplexing label (rides in the
    /// packet stream id together with the channel).
    pub fn send(&mut self, dst: u8, stream: u8, payload: &[u8]) -> Vec<MicroPacket> {
        assert!(payload.len() <= MAX_DATAGRAM, "datagram too large");
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.sent_datagrams += 1;
        self.sent_bytes += payload.len() as u64;

        // Fragment 0: header + first payload bytes.
        let mut wire = Vec::with_capacity(HEADER + payload.len());
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&crc32(payload).to_be_bytes());
        wire.extend_from_slice(payload);

        let pkts: Vec<MicroPacket> = wire
            .chunks(MAX_DMA_PAYLOAD)
            .enumerate()
            .map(|(i, chunk)| {
                let ctrl = DmaCtrl {
                    channel: 14, // message channel
                    region: MSG_REGION,
                    offset: ((id as u32) << 16) | (i as u32),
                    len: 0,
                };
                build::dma(self.node, dst, stream, ctrl, chunk).expect("chunk in 1..=64")
            })
            .collect();
        self.tel.inc(self.msgs_sent);
        self.tel.add(self.fragments, pkts.len() as u64);
        pkts
    }
}

/// A reassembled datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sending node.
    pub src: u8,
    /// Stream it arrived on.
    pub stream: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Reassembly errors (counted, not fatal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsgRxStats {
    /// Complete datagrams delivered.
    pub delivered: u64,
    /// Datagrams discarded for CRC mismatch.
    pub crc_errors: u64,
    /// Fragments that arrived out of sequence (ring FIFO violated —
    /// should never happen).
    pub sequence_errors: u64,
}

#[derive(Debug)]
struct Partial {
    expected_len: usize,
    crc: u32,
    data: Vec<u8>,
    next_frag: u32,
}

/// Delivered-id window entries retained per source for replay dedup.
/// Sources replay *all* outstanding datagrams after rostering, so the
/// window must cover every datagram that can be in flight at once —
/// one remembered id is not enough (an older already-delivered
/// datagram would re-deliver as a duplicate).
const DEDUP_WINDOW: usize = 128;

/// Per-source window of recently delivered datagram ids: a fixed
/// circular buffer of the last [`DEDUP_WINDOW`] ids. Exact-match
/// lookup (not a `≤` cursor): a datagram whose first delivery attempt
/// failed CRC must still deliver when replayed, even if newer ids
/// from the same source landed in between.
#[derive(Debug)]
struct DedupWindow {
    src: u8,
    ids: [u16; DEDUP_WINDOW],
    len: u16,
    /// Next overwrite position once the window is full (oldest entry).
    head: u16,
}

impl DedupWindow {
    fn new(src: u8) -> Self {
        DedupWindow {
            src,
            ids: [0; DEDUP_WINDOW],
            len: 0,
            head: 0,
        }
    }

    #[inline]
    fn contains(&self, id: u16) -> bool {
        self.ids[..self.len as usize].contains(&id)
    }

    fn push(&mut self, id: u16) {
        if (self.len as usize) < DEDUP_WINDOW {
            self.ids[self.len as usize] = id;
            self.len += 1;
        } else {
            self.ids[self.head as usize] = id;
            self.head = (self.head + 1) % DEDUP_WINDOW as u16;
        }
    }
}

/// Receiver side: reassembles datagrams per (source, datagram id).
///
/// Both lookup structures are linear-scan vectors, not maps: a
/// receiver holds at most a handful of in-flight partials and one
/// fixed-size dedup window per source, so the scan beats hashing on
/// the packet hot path and order never influences behaviour (keyed
/// access only). The dedup window used to be a single flat
/// `Vec<(src, id)>` scanned end to end on *every* packet; with many
/// sources that scan (up to `sources × DEDUP_WINDOW` entries) was the
/// hottest function in the serial scale bench. The per-source ring
/// keeps the identical delivered-id semantics with a bounded
/// 128-entry probe.
#[derive(Debug, Default)]
pub struct MsgRx {
    partials: Vec<((u8, u16), Partial)>,
    /// One delivered-id window per source, created on first delivery.
    delivered: Vec<DedupWindow>,
    stats: MsgRxStats,
    tel: Telemetry,
    assembled: CounterHandle,
}

impl MsgRx {
    /// New reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register this receiver's service-plane counters in `tel`,
    /// labelled with the owning `node`.
    pub fn instrument(&mut self, tel: &Telemetry, node: u8) {
        self.tel = tel.clone();
        self.assembled = tel.counter(&defs::SERVICES_MSGS_ASSEMBLED, node);
    }

    /// Counters.
    pub fn stats(&self) -> MsgRxStats {
        self.stats
    }

    /// Is this packet message traffic?
    pub fn is_message(pkt: &MicroPacket) -> bool {
        pkt.ctrl.ptype == PacketType::Dma
            && matches!(&pkt.body, ampnet_packet::Body::Variable { ctrl, .. } if ctrl.region == MSG_REGION)
    }

    /// Feed a packet; returns a datagram when one completes.
    pub fn on_packet(&mut self, pkt: &MicroPacket) -> Option<Datagram> {
        if !Self::is_message(pkt) {
            return None;
        }
        let ampnet_packet::Body::Variable { ctrl, .. } = &pkt.body else {
            return None;
        };
        let src = pkt.ctrl.src;
        let stream = pkt.ctrl.tag;
        let id = (ctrl.offset >> 16) as u16;
        let frag = ctrl.offset & 0xFFFF;
        let chunk = pkt.dma_payload().expect("variable body");

        let key = (src, id);
        if self
            .delivered
            .iter()
            .find(|w| w.src == src)
            .is_some_and(|w| w.contains(id))
        {
            // Retransmission of an already-delivered datagram
            // (post-rostering replay): drop silently.
            return None;
        }
        if frag == 0 {
            if chunk.len() < HEADER {
                self.stats.sequence_errors += 1;
                return None;
            }
            let expected_len =
                u32::from_be_bytes(chunk[..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_be_bytes(chunk[4..8].try_into().expect("4 bytes"));
            let mut data = Vec::with_capacity(expected_len);
            data.extend_from_slice(&chunk[HEADER..]);
            let fresh = Partial {
                expected_len,
                crc,
                data,
                next_frag: 1,
            };
            match self.partials.iter_mut().find(|(k, _)| *k == key) {
                Some(entry) => entry.1 = fresh,
                None => self.partials.push((key, fresh)),
            }
        } else {
            let Some((_, p)) = self.partials.iter_mut().find(|(k, _)| *k == key) else {
                self.stats.sequence_errors += 1;
                return None;
            };
            if p.next_frag != frag {
                self.stats.sequence_errors += 1;
                self.partials.retain(|(k, _)| *k != key);
                return None;
            }
            p.next_frag += 1;
            p.data.extend_from_slice(chunk);
        }

        let done = self
            .partials
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, p)| p.data.len() >= p.expected_len)
            .unwrap_or(false);
        if done {
            let at = self
                .partials
                .iter()
                .position(|(k, _)| *k == key)
                .expect("checked");
            let (_, p) = self.partials.swap_remove(at);
            let mut payload = p.data;
            payload.truncate(p.expected_len);
            if crc32(&payload) != p.crc {
                self.stats.crc_errors += 1;
                return None;
            }
            self.stats.delivered += 1;
            match self.delivered.iter_mut().find(|w| w.src == src) {
                Some(w) => w.push(id),
                None => {
                    let mut w = DedupWindow::new(src);
                    w.push(id);
                    self.delivered.push(w);
                }
            }
            self.tel.inc(self.assembled);
            return Some(Datagram {
                src,
                stream,
                payload,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_datagram_roundtrip() {
        let mut tx = MsgTx::new(1);
        let mut rx = MsgRx::new();
        let pkts = tx.send(2, 0, b"");
        assert_eq!(pkts.len(), 1);
        let d = rx.on_packet(&pkts[0]).expect("complete");
        assert_eq!(d.payload, b"");
        assert_eq!(d.src, 1);
    }

    #[test]
    fn small_datagram_single_fragment() {
        let mut tx = MsgTx::new(3);
        let mut rx = MsgRx::new();
        let pkts = tx.send(2, 5, b"hello ampnet");
        assert_eq!(pkts.len(), 1);
        let d = rx.on_packet(&pkts[0]).unwrap();
        assert_eq!(d.payload, b"hello ampnet");
        assert_eq!(d.stream, 5);
        assert_eq!(rx.stats().delivered, 1);
    }

    #[test]
    fn multi_fragment_reassembly() {
        let mut tx = MsgTx::new(1);
        let mut rx = MsgRx::new();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let pkts = tx.send(2, 0, &payload);
        assert_eq!(pkts.len(), 1008usize.div_ceil(64));
        let mut got = None;
        for (i, p) in pkts.iter().enumerate() {
            let r = rx.on_packet(p);
            if i + 1 < pkts.len() {
                assert!(r.is_none(), "complete before last fragment");
            } else {
                got = r;
            }
        }
        assert_eq!(got.unwrap().payload, payload);
    }

    #[test]
    fn interleaved_sources_reassemble_independently() {
        let mut tx1 = MsgTx::new(1);
        let mut tx2 = MsgTx::new(2);
        let mut rx = MsgRx::new();
        let a = vec![0xAA; 200];
        let b = vec![0xBB; 200];
        let pa = tx1.send(9, 0, &a);
        let pb = tx2.send(9, 0, &b);
        let mut delivered = vec![];
        for (x, y) in pa.iter().zip(pb.iter()) {
            if let Some(d) = rx.on_packet(x) {
                delivered.push(d);
            }
            if let Some(d) = rx.on_packet(y) {
                delivered.push(d);
            }
        }
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].payload, a);
        assert_eq!(delivered[1].payload, b);
    }

    #[test]
    fn corrupted_payload_caught_by_crc() {
        let mut tx = MsgTx::new(1);
        let mut rx = MsgRx::new();
        let mut pkts = tx.send(2, 0, &[7u8; 100]);
        // Corrupt a byte in the second fragment.
        if let ampnet_packet::Body::Variable { data, .. } = &mut pkts[1].body {
            data[3] ^= 0xFF;
        }
        let mut out = None;
        for p in &pkts {
            out = out.or(rx.on_packet(p));
        }
        assert!(out.is_none());
        assert_eq!(rx.stats().crc_errors, 1);
    }

    #[test]
    fn missing_fragment_detected() {
        let mut tx = MsgTx::new(1);
        let mut rx = MsgRx::new();
        let pkts = tx.send(2, 0, &vec![1u8; 300]);
        // Skip fragment 2.
        for (i, p) in pkts.iter().enumerate() {
            if i != 2 {
                assert!(rx.on_packet(p).is_none());
            }
        }
        assert!(rx.stats().sequence_errors > 0);
    }

    #[test]
    fn non_message_packets_ignored() {
        let mut rx = MsgRx::new();
        let data = build::data(0, 1, 0, [0; 8]);
        assert!(rx.on_packet(&data).is_none());
        let cache_dma = build::dma(
            0,
            1,
            0,
            DmaCtrl {
                channel: 0,
                region: 3, // a real cache region
                offset: 0,
                len: 0,
            },
            &[1, 2, 3],
        )
        .unwrap();
        assert!(!MsgRx::is_message(&cache_dma));
        assert!(rx.on_packet(&cache_dma).is_none());
    }

    #[test]
    fn retransmitted_datagram_deduplicated() {
        let mut tx = MsgTx::new(1);
        let mut rx = MsgRx::new();
        let pkts = tx.send(2, 0, b"once only");
        assert!(rx.on_packet(&pkts[0]).is_some());
        // Full replay (the ring healed and the source retransmitted).
        for p in &pkts {
            assert!(rx.on_packet(p).is_none(), "duplicate delivered");
        }
        assert_eq!(rx.stats().delivered, 1);
    }

    #[test]
    fn replayed_older_datagram_deduplicated() {
        // Regression: the receiver used to remember only the *last*
        // delivered id per source, so a post-rostering replay of an
        // older already-delivered datagram re-delivered it as a
        // duplicate (and regressed the remembered id).
        let mut tx = MsgTx::new(1);
        let mut rx = MsgRx::new();
        let d0 = tx.send(2, 0, b"first");
        let d1 = tx.send(2, 0, b"second");
        assert!(rx.on_packet(&d0[0]).is_some());
        assert!(rx.on_packet(&d1[0]).is_some());
        // The source replays both outstanding datagrams, oldest first.
        for p in d0.iter().chain(d1.iter()) {
            assert!(rx.on_packet(p).is_none(), "duplicate delivered");
        }
        assert_eq!(rx.stats().delivered, 2);
        // A genuinely new datagram still delivers.
        let d2 = tx.send(2, 0, b"third");
        assert!(rx.on_packet(&d2[0]).is_some());
        assert_eq!(rx.stats().delivered, 3);
    }

    #[test]
    fn crc_failed_datagram_delivers_on_replay() {
        // The dedup window records *delivered* ids only: a datagram
        // whose first copy was corrupted must go through when the
        // source replays it, even after newer ids were delivered.
        let mut tx = MsgTx::new(1);
        let mut rx = MsgRx::new();
        let mut bad = tx.send(2, 0, &[7u8; 100]);
        if let ampnet_packet::Body::Variable { data, .. } = &mut bad[1].body {
            data[3] ^= 0xFF;
        }
        let good = tx.send(2, 0, b"newer");
        for p in &bad {
            assert!(rx.on_packet(p).is_none());
        }
        assert_eq!(rx.stats().crc_errors, 1);
        assert!(rx.on_packet(&good[0]).is_some());
        // Clean replay of the corrupted datagram: delivers now.
        let clean = {
            let mut tx_replay = MsgTx::new(1);
            tx_replay.send(2, 0, &[7u8; 100]) // same id 0 as `bad`
        };
        let mut out = None;
        for p in &clean {
            out = out.or(rx.on_packet(p));
        }
        assert_eq!(out.expect("replay delivers").payload, vec![7u8; 100]);
    }

    #[test]
    fn many_datagrams_sequentially() {
        let mut tx = MsgTx::new(4);
        let mut rx = MsgRx::new();
        for n in 0..100u32 {
            let payload = n.to_be_bytes().repeat(10);
            let pkts = tx.send(5, 1, &payload);
            let mut got = None;
            for p in &pkts {
                got = got.or(rx.on_packet(p));
            }
            assert_eq!(got.unwrap().payload, payload);
        }
        assert_eq!(tx.sent_datagrams(), 100);
        assert_eq!(rx.stats().delivered, 100);
    }
}
