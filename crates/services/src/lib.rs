//! # ampnet-services — AmpDC network-centric services
//!
//! The application layer of slide 12: everything AmpNet offers above
//! the driver, built on the network cache and MicroPackets.
//!
//! * [`msg`] — datagram fragmentation/reassembly over DMA
//!   MicroPackets with CRC-32 end-to-end checks; the substrate under
//!   AmpIP and the MPI/PVM-style messaging in the paper's stack
//!   diagram.
//! * [`subscribe`] — AmpSubscribe: replicated topic rings; publishers
//!   write their local replica, subscribers poll theirs, slow
//!   consumers observe explicit lag, never corruption.
//! * [`files`] — AmpFiles: a replicated file store; files survive the
//!   writer's death because every node holds the whole store, and
//!   overwrites ping-pong between two heap buffers so hot files never
//!   exhaust the data heap.
//! * [`threads`] — AmpThreads: remote task execution with the task
//!   table in the network cache and Interrupt-MicroPacket doorbells.
//! * [`mpi`] — the collective patterns MPI/PVM lean on (barrier,
//!   broadcast, all-reduce, gather), exploiting the ring's native
//!   broadcast.
//! * [`socket`] — AmpIP: port-addressed UDP-style datagram sockets
//!   over the message layer.
//!
//! All of these endpoints are exercised under production-shaped load
//! (open-loop arrival processes, chaos fault schedules) by the
//! `ampnet-load` workload engine; see `docs/WORKLOADS.md` at the
//! repository root for the workload catalogue and SLO classes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod files;
pub mod mpi;
pub mod msg;
pub mod socket;
pub mod subscribe;
pub mod threads;
