//! Property tests for the AmpDC services: file-store consistency under
//! arbitrary operation sequences, pub/sub delivery semantics, and
//! message-layer robustness under replication order.

use ampnet_cache::NetworkCache;
use ampnet_services::files::{FileError, FileStore, FileStoreLayout};
use ampnet_services::msg::{MsgRx, MsgTx};
use ampnet_services::subscribe::{PollOutcome, Publisher, Subscriber, TopicLayout};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum FsOp {
    Write(u8, Vec<u8>),
    Delete(u8),
    Overwrite(u8, Vec<u8>),
}

fn arb_fs_ops() -> impl Strategy<Value = Vec<FsOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6, proptest::collection::vec(any::<u8>(), 0..40)).prop_map(|(n, d)| FsOp::Write(n, d)),
            (0u8..6).prop_map(FsOp::Delete),
            (0u8..6, proptest::collection::vec(any::<u8>(), 0..40))
                .prop_map(|(n, d)| FsOp::Overwrite(n, d)),
        ],
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The file store agrees with an in-memory model after any op
    /// sequence, at the writer AND at a replica fed only packets.
    #[test]
    fn file_store_matches_model(ops in arb_fs_ops()) {
        let layout = FileStoreLayout { region: 1, max_files: 6, heap_bytes: 2048 };
        let mut writer = NetworkCache::new(0);
        writer.define_region(1, layout.footprint()).unwrap();
        let mut replica = NetworkCache::new(1);
        replica.define_region(1, layout.footprint()).unwrap();
        let fs = FileStore::new(layout);
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for op in ops {
            let (name, action): (String, _) = match op {
                FsOp::Write(n, d) | FsOp::Overwrite(n, d) => (format!("f{n}"), Some(d)),
                FsOp::Delete(n) => (format!("f{n}"), None),
            };
            match action {
                Some(data) => match fs.write(&mut writer, &name, &data) {
                    Ok(pkts) => {
                        for p in &pkts {
                            replica.apply_packet(p).unwrap();
                        }
                        model.insert(name, data);
                    }
                    Err(FileError::HeapFull | FileError::DirectoryFull) => {}
                    Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                },
                None => {
                    let model_had = model.remove(&name).is_some();
                    match fs.delete(&mut writer, &name) {
                        Ok(pkts) => {
                            prop_assert!(model_had);
                            for p in &pkts {
                                replica.apply_packet(p).unwrap();
                            }
                        }
                        Err(FileError::NotFound) => prop_assert!(!model_had),
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
            }
        }
        // Both the writer's view and the replica's match the model.
        for cache in [&writer, &replica] {
            let listed = fs.list(cache).unwrap();
            prop_assert_eq!(listed.len(), model.len());
            for (name, data) in &model {
                prop_assert_eq!(&fs.read(cache, name).unwrap(), data, "file {}", name);
            }
        }
        prop_assert!(writer.converged_with(&replica));
    }

    /// Pub/sub: a subscriber that keeps up sees exactly the published
    /// sequence; one that lags sees a gap plus the most recent ring.
    #[test]
    fn subscribe_delivery_semantics(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..30),
        poll_every in 1usize..8,
    ) {
        let layout = TopicLayout { region: 2, base: 0, slots: 8, slot_len: 16 };
        let mut cache = NetworkCache::new(0);
        cache.define_region(2, layout.footprint()).unwrap();
        let mut publisher = Publisher::new(layout);
        let mut live = Subscriber::new(layout);
        let mut seen: Vec<Vec<u8>> = vec![];
        for (i, rec) in records.iter().enumerate() {
            publisher.publish(&mut cache, rec).unwrap();
            if i % poll_every == 0 {
                match live.poll(&cache).unwrap() {
                    PollOutcome::Records(rs) => seen.extend(rs),
                    PollOutcome::Lagged { records: rs, .. } => seen.extend(rs),
                    PollOutcome::Empty => {}
                }
            }
        }
        // Final drain.
        loop {
            match live.poll(&cache).unwrap() {
                PollOutcome::Records(rs) => seen.extend(rs),
                PollOutcome::Lagged { records: rs, .. } => seen.extend(rs),
                PollOutcome::Empty => break,
            }
        }
        // Keeping up within the ring: everything received, in order,
        // allowing for lag if poll_every exceeded the ring size.
        let received = seen.len() as u64 + live.lagged();
        prop_assert_eq!(received, records.len() as u64);
        // Whatever was received matches the tail of what was published
        // (records are slot_len padded, compare prefixes).
        let offset = records.len() - seen.len();
        for (got, want) in seen.iter().zip(&records[offset..]) {
            prop_assert_eq!(&got[..want.len()], &want[..]);
        }
    }

    /// Message layer: any interleaving of complete datagram packet
    /// sequences from distinct sources reassembles everything.
    #[test]
    fn msg_interleaving_reassembles(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..5),
        order_seed in any::<u64>(),
    ) {
        // One source per payload; round-robin interleave their packets
        // (per-source order preserved, as the ring guarantees).
        let mut streams: Vec<Vec<ampnet_packet::MicroPacket>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| MsgTx::new(i as u8).send(99, 0, p))
            .collect();
        let mut rx = MsgRx::new();
        let mut delivered = vec![None; payloads.len()];
        let mut rng = order_seed;
        while streams.iter().any(|s| !s.is_empty()) {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let nonempty: Vec<usize> =
                (0..streams.len()).filter(|&i| !streams[i].is_empty()).collect();
            let pick = nonempty[(rng >> 33) as usize % nonempty.len()];
            let pkt = streams[pick].remove(0);
            if let Some(d) = rx.on_packet(&pkt) {
                delivered[d.src as usize] = Some(d.payload);
            }
        }
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(delivered[i].as_ref(), Some(p), "source {}", i);
        }
        prop_assert_eq!(rx.stats().crc_errors, 0);
        prop_assert_eq!(rx.stats().sequence_errors, 0);
    }
}
