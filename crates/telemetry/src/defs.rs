//! The static metric catalog: every metric any AmpNet crate may
//! register, declared once.
//!
//! [`ALL`] is the contract between the code and `docs/METRICS.md`: a
//! test generates the doc table from these defs and a second test runs
//! a full-stack exercise and asserts the set of *actually registered*
//! defs equals [`ALL`] — so neither dead catalog entries nor
//! undocumented metrics can survive CI.

use crate::metric::{MetricDef, MetricKind, Plane, Unit};

macro_rules! def {
    ($ident:ident, $name:literal, $kind:ident, $unit:ident, $plane:ident,
     $per_node:literal, $evidence:literal, $help:literal) => {
        /// Catalog entry — see the struct fields for details.
        pub static $ident: MetricDef = MetricDef {
            name: $name,
            kind: MetricKind::$kind,
            unit: Unit::$unit,
            plane: Plane::$plane,
            per_node: $per_node,
            help: $help,
            evidence: $evidence,
        };
    };
}

// ---- phy --------------------------------------------------------------
def!(PHY_TX_FRAMES, "phy_tx_frames", Counter, Frames, Phy, true,
    "slide 6",
    "Wire frames clocked onto the fiber by this node's serial port");
def!(PHY_BURSTS_INJECTED, "phy_bursts_injected", Counter, Events, Phy, true,
    "slide 16",
    "Bit-error bursts injected at this PHY (fault campaigns)");
def!(PHY_BURST_BIT_ERRORS, "phy_burst_bit_errors", Counter, Events, Phy, true,
    "slide 16",
    "Single-bit corruptions contained in injected bursts");
def!(PHY_BURST_VIOLATIONS, "phy_burst_violations", Counter, Events, Phy, true,
    "slide 16",
    "Code/disparity violations the 8b/10b checker flagged in bursts");

// ---- mac --------------------------------------------------------------
def!(MAC_INSERTED, "mac_inserted", Counter, Frames, Mac, true,
    "slide 7",
    "Frames this node inserted into the ring from its own queues");
def!(MAC_FORWARDED, "mac_forwarded", Counter, Frames, Mac, true,
    "slide 7",
    "Transit frames forwarded through the insertion register");
def!(MAC_STRIPPED, "mac_stripped", Counter, Frames, Mac, true,
    "slide 7",
    "Own frames stripped after completing a full ring tour");
def!(MAC_WOULD_DROP, "mac_would_drop", Gauge, Frames, Mac, true,
    "slide 8",
    "Frames the MAC would have dropped (losslessness: must stay 0)");
def!(MAC_TRANSIT_HIGHWATER, "mac_transit_highwater_bytes", Gauge, Bytes, Mac, true,
    "slide 7",
    "High-water mark of the transit (insertion) register in bytes");
def!(MAC_BACKOFFS, "mac_backoffs", Gauge, Events, Mac, true,
    "slide 8",
    "Pacing-governor backoff decisions taken by this node's MAC");
def!(RING_TOUR_NS, "ring_tour_ns", Histogram, Nanos, Mac, false,
    "slide 8",
    "Full ring-tour latency (insert to strip) across all nodes");
def!(RING_ACCESS_NS, "ring_access_ns", Histogram, Nanos, Mac, false,
    "slide 8",
    "Medium-access wait from enqueue to insertion");

// ---- delivery ---------------------------------------------------------
def!(DELIVERY_FRAMES, "delivery_frames", Counter, Frames, Delivery, true,
    "slide 7",
    "Frames copied up into this node's host delivery queues");
def!(DELIVERY_PAYLOAD_BYTES, "delivery_payload_bytes", Counter, Bytes, Delivery, true,
    "slide 7",
    "Payload bytes delivered to the host (goodput numerator)");

// ---- transport --------------------------------------------------------
def!(ARENA_SLOTS, "arena_frame_slots", Gauge, Slots, Transport, false,
    "slide 5",
    "Frame-arena slots currently allocated (pool size)");
def!(ARENA_LIVE_FRAMES, "arena_live_frames", Gauge, Frames, Transport, false,
    "slide 5",
    "Peak simultaneously-live frames observed in the arena");
def!(ARENA_FRAMES_REUSED, "arena_frames_reused", Gauge, Frames, Transport, false,
    "slide 5",
    "Pooled frame slots reused without a fresh allocation");
def!(TRANSPORT_REPLAYED_BROADCASTS, "transport_replayed_broadcasts", Counter, Packets,
    Transport, false,
    "slide 18",
    "Broadcast packets replayed by smart data recovery after a repair");
def!(TRANSPORT_REPLAYED_UNICASTS, "transport_replayed_unicasts", Counter, Packets,
    Transport, false,
    "slide 18",
    "Unicast packets replayed to their destination after a repair");
def!(TRANSPORT_STALE_FRAMES, "transport_stale_frames_released", Counter, Frames,
    Transport, false,
    "slide 16",
    "In-flight frames released because their roster epoch went stale");

// ---- membership -------------------------------------------------------
def!(MEMBERSHIP_EPOCH, "membership_epoch", Gauge, Epochs, Membership, false,
    "slide 16",
    "Current roster epoch (increments per completed roster episode)");
def!(MEMBERSHIP_RING_SIZE, "membership_ring_size", Gauge, Nodes, Membership, false,
    "slide 16",
    "Nodes in the active ring after the latest roster episode");
def!(MEMBERSHIP_ROSTER_EPISODES, "membership_roster_episodes", Counter, Events,
    Membership, false,
    "slide 16",
    "Completed roster episodes (boot counts as the first)");
def!(MEMBERSHIP_JOINS_REJECTED, "membership_joins_rejected", Counter, Events,
    Membership, false,
    "slide 17",
    "Join attempts rejected by the assimilation rules");
def!(MEMBERSHIP_BURSTS_ESCALATED, "membership_bursts_escalated", Counter, Events,
    Membership, false,
    "slide 16",
    "Error bursts that crossed the detection threshold and forced a roster");
def!(MEMBERSHIP_BURSTS_ABSORBED, "membership_bursts_absorbed", Counter, Events,
    Membership, false,
    "slide 16",
    "Error bursts absorbed below the escalation threshold");
def!(MEMBERSHIP_SPARE_FAULTS, "membership_spare_faults", Counter, Events,
    Membership, false,
    "slide 18",
    "Faults injected into nodes already outside the active ring");

// ---- cache ------------------------------------------------------------
def!(CACHE_UPDATES_APPLIED, "cache_updates_applied", Counter, Packets, Cache, true,
    "slide 9",
    "Broadcast cache-update packets applied to this node's replica");
def!(CACHE_SEQLOCK_WRITES, "cache_seqlock_writes", Counter, Records, Cache, true,
    "slide 9",
    "Multi-word records published under the seqlock protocol");
def!(CACHE_SEQLOCK_READS_OK, "cache_seqlock_reads_ok", Counter, Reads, Cache, true,
    "slide 9",
    "Seqlock reads that validated on the first generation check");
def!(CACHE_SEQLOCK_READS_BUSY, "cache_seqlock_reads_busy", Counter, Reads, Cache, true,
    "slide 9",
    "Seqlock reads that observed a concurrent writer and must retry");
def!(CACHE_ATOMICS_EXECUTED, "cache_atomics_executed", Counter, Ops, Cache, true,
    "slide 10",
    "D64 atomic operations executed at this node's cache");

// ---- services ---------------------------------------------------------
def!(SERVICES_MSGS_SENT, "services_msgs_sent", Counter, Messages, Services, true,
    "slide 12",
    "Datagram messages handed to the fragmentation layer");
def!(SERVICES_MSG_FRAGMENTS, "services_msg_fragments", Counter, Packets, Services, true,
    "slide 12",
    "Micro-packet fragments produced by outbound messages");
def!(SERVICES_MSGS_ASSEMBLED, "services_msgs_assembled", Counter, Messages, Services, true,
    "slide 12",
    "Inbound messages fully reassembled from fragments");
def!(SERVICES_SEM_ACQUISITIONS, "services_sem_acquisitions", Counter, Events, Services,
    false,
    "slide 10",
    "Network semaphore acquisitions granted cluster-wide");
def!(SERVICES_SEM_ACQUIRE_NS, "services_sem_acquire_ns", Histogram, Nanos, Services,
    false,
    "slide 10",
    "Semaphore acquire latency from request to ownership");

// ---- pdes -------------------------------------------------------------
def!(PDES_SLICES, "pdes_slices", Counter, Events, Pdes, false,
    "slide 15",
    "Lockstep time slices executed by the multi-segment coordinator");
def!(PDES_EXCHANGES_ELIDED, "pdes_exchanges_elided", Counter, Events, Pdes, false,
    "slide 15",
    "Boundary exchange halves skipped as provable no-ops (no backlog / no matured crossing)");
def!(PDES_QUIESCENT_SHARD_SLICES, "pdes_quiescent_shard_slices", Counter, Events, Pdes,
    false,
    "slide 15",
    "Shard-slices advanced as a bare clock bump (no event due, no worker wake)");
def!(PDES_BARRIERS_ELIDED, "pdes_barriers_elided", Counter, Events, Pdes, false,
    "slide 15",
    "Slices where every shard was quiescent, so the epoch gate was never touched");
def!(PDES_EXCHANGES_SKIPPED, "pdes_exchanges_skipped", Counter, Events, Pdes, false,
    "slide 15",
    "Boundaries where the whole exchange was skipped (no backlog and no matured crossing)");
def!(PDES_DIRTY_BRIDGES, "pdes_dirty_bridges", Counter, Events, Pdes, false,
    "slide 15",
    "Bridge-boundary pairs with a crossing in flight; over pdes_slices x bridges, the dirty-bridge ratio");

// ---- load -------------------------------------------------------------
def!(LOAD_ARRIVALS, "load_arrivals", Counter, Ops, Load, false,
    "slide 2",
    "Modeled client operations offered by the open-loop arrival processes, all classes");
def!(LOAD_COMPLETIONS, "load_completions", Counter, Ops, Load, false,
    "slide 2",
    "Modeled client operations completed end to end, all classes");
def!(LOAD_PUBSUB_LAGGED, "load_pubsub_lagged", Counter, Records, Load, false,
    "slide 12",
    "AmpSubscribe records lost to subscriber lag under load (ring overwritten)");
def!(LOAD_PUBSUB_NS, "load_pubsub_ns", Histogram, Nanos, Load, false,
    "slide 12",
    "Publish-to-observe latency of AmpSubscribe records under load");
def!(LOAD_CACHE_NS, "load_cache_ns", Histogram, Nanos, Load, false,
    "slide 12",
    "Write-to-replica-visibility latency of AmpFiles writes under load");
def!(LOAD_SOCKET_NS, "load_socket_ns", Histogram, Nanos, Load, false,
    "slide 12",
    "AmpIP request-reply round-trip latency under load");
def!(LOAD_THREADS_NS, "load_threads_ns", Histogram, Nanos, Load, false,
    "slide 12",
    "AmpThreads submit-to-collect latency under load");
def!(LOAD_SEM_NS, "load_sem_ns", Histogram, Nanos, Load, false,
    "slide 10",
    "Semaphore acquire latency inside the contention-storm workload class");

/// Every metric in the catalog, in `docs/METRICS.md` order.
pub static ALL: &[&MetricDef] = &[
    &PHY_TX_FRAMES,
    &PHY_BURSTS_INJECTED,
    &PHY_BURST_BIT_ERRORS,
    &PHY_BURST_VIOLATIONS,
    &MAC_INSERTED,
    &MAC_FORWARDED,
    &MAC_STRIPPED,
    &MAC_WOULD_DROP,
    &MAC_TRANSIT_HIGHWATER,
    &MAC_BACKOFFS,
    &RING_TOUR_NS,
    &RING_ACCESS_NS,
    &DELIVERY_FRAMES,
    &DELIVERY_PAYLOAD_BYTES,
    &ARENA_SLOTS,
    &ARENA_LIVE_FRAMES,
    &ARENA_FRAMES_REUSED,
    &TRANSPORT_REPLAYED_BROADCASTS,
    &TRANSPORT_REPLAYED_UNICASTS,
    &TRANSPORT_STALE_FRAMES,
    &MEMBERSHIP_EPOCH,
    &MEMBERSHIP_RING_SIZE,
    &MEMBERSHIP_ROSTER_EPISODES,
    &MEMBERSHIP_JOINS_REJECTED,
    &MEMBERSHIP_BURSTS_ESCALATED,
    &MEMBERSHIP_BURSTS_ABSORBED,
    &MEMBERSHIP_SPARE_FAULTS,
    &CACHE_UPDATES_APPLIED,
    &CACHE_SEQLOCK_WRITES,
    &CACHE_SEQLOCK_READS_OK,
    &CACHE_SEQLOCK_READS_BUSY,
    &CACHE_ATOMICS_EXECUTED,
    &SERVICES_MSGS_SENT,
    &SERVICES_MSG_FRAGMENTS,
    &SERVICES_MSGS_ASSEMBLED,
    &SERVICES_SEM_ACQUISITIONS,
    &SERVICES_SEM_ACQUIRE_NS,
    &PDES_SLICES,
    &PDES_EXCHANGES_ELIDED,
    &PDES_QUIESCENT_SHARD_SLICES,
    &PDES_BARRIERS_ELIDED,
    &PDES_EXCHANGES_SKIPPED,
    &PDES_DIRTY_BRIDGES,
    &LOAD_ARRIVALS,
    &LOAD_COMPLETIONS,
    &LOAD_PUBSUB_LAGGED,
    &LOAD_PUBSUB_NS,
    &LOAD_CACHE_NS,
    &LOAD_SOCKET_NS,
    &LOAD_THREADS_NS,
    &LOAD_SEM_NS,
];

/// The complete `docs/METRICS.md` document, generated from the
/// catalog. `figures --metrics-doc` prints this verbatim and a test
/// diffs it against the committed file, so the reference cannot drift
/// from the registry.
pub fn reference_doc() -> String {
    let mut doc = String::from(
        "# AmpNet metrics reference\n\
         \n\
         Every metric the workspace can register, one row per\n\
         `MetricDef` in `ampnet_telemetry::defs::ALL`. This file is\n\
         generated — regenerate with:\n\
         \n\
         ```text\n\
         cargo run -p ampnet-bench --bin figures -- --metrics-doc > docs/METRICS.md\n\
         ```\n\
         \n\
         A test (`tests/metrics_reference.rs`) diffs this table against\n\
         the catalog, so edits belong in `crates/telemetry/src/defs.rs`,\n\
         not here. The `node` column says whether the metric carries a\n\
         per-node label or is registered once per cluster/segment; the\n\
         `evidence` column points at the paper slide the metric\n\
         substantiates.\n\
         \n\
         | name | kind | unit | plane | node | evidence | help |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for def in ALL {
        doc.push_str(&def.doc_row());
        doc.push('\n');
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn catalog_names_are_unique() {
        let names: BTreeSet<_> = ALL.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), ALL.len(), "duplicate metric name in defs::ALL");
    }

    #[test]
    fn doc_rows_are_wellformed() {
        for def in ALL {
            let row = def.doc_row();
            assert_eq!(row.matches('|').count(), 8, "bad row: {row}");
            assert!(row.contains(def.name));
            assert!(row.contains(def.evidence));
        }
    }
}
