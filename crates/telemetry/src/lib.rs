//! Per-plane observability for the AmpNet reproduction: a zero-alloc
//! hot-path metrics registry plus a bounded flight recorder.
//!
//! The paper's claims are availability claims — lossless all-to-all
//! (slide 8), sub-millisecond rostering (slide 16), seqlock-coherent
//! caching (slide 9) — and this crate is how the reproduction *shows*
//! them happening. Two instruments, one clock:
//!
//! * [`MetricsRegistry`] — counters, gauges and log-linear
//!   [`Histogram`]s behind dense `u32` handles. Registration (setup
//!   time) allocates; recording (hot path) is an array index plus an
//!   integer bump.
//! * [`FlightRecorder`] — a preallocated ring of the last N plane
//!   events on the simulated clock, dumped as a correlated timeline
//!   when a chaos invariant fails (or on demand).
//!
//! Both live behind [`Telemetry`], a cheaply-clonable handle that every
//! layer of a cluster shares. A disabled `Telemetry` (the default) is
//! a single `None` check per call — the PR 2 allocation benchmark
//! stays at its committed allocs/packet with telemetry compiled in.
//!
//! # Example
//!
//! ```
//! use ampnet_telemetry::{defs, FlightEvent, FlightKind, Plane, Telemetry};
//!
//! let tel = Telemetry::new(64); // flight ring of 64 events
//! let inserted = tel.counter(&defs::MAC_INSERTED, 0); // node 0
//! tel.inc(inserted);
//! tel.add(inserted, 2);
//! tel.flight(FlightEvent {
//!     at_ns: 1_500,
//!     node: 0,
//!     plane: Plane::Mac,
//!     kind: FlightKind::MacInsert,
//!     a: 3,   // destination
//!     b: 48,  // wire bytes
//! });
//!
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter_total("mac_inserted"), 3);
//! assert!(snap.to_json().contains("\"mac_inserted\""));
//! assert!(tel.flight_dump().contains("insert -> node 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defs;
mod hist;
mod metric;
mod recorder;
mod registry;
mod snapshot;

pub use hist::{Counter, Histogram};
pub use metric::{MetricDef, MetricKind, Plane, Unit};
pub use recorder::{FlightEvent, FlightKind, FlightRecorder};
pub use registry::{CounterHandle, GaugeHandle, HistHandle, MetricsRegistry, GLOBAL};
pub use snapshot::{MetricsSnapshot, SnapValue, SnapshotEntry};

use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug)]
struct Inner {
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
}

/// Shared handle to one registry + flight recorder.
///
/// Cloning is cheap (one `Arc` bump) and every clone records into the
/// same registry, which is how a cluster's PHY, MAC, cache and service
/// layers share a single correlated timeline. The default instance is
/// *disabled*: every operation is a single branch and no storage
/// exists, so instrumentation can stay compiled into hot paths.
///
/// All methods take `&self` (interior mutability), so read-only layers
/// — e.g. seqlock readers holding `&NetworkCache` — can still count.
///
/// The handle is `Send + Sync` so a whole cluster (which owns clones of
/// it) can be advanced on a worker thread of the sharded multi-segment
/// engine. Determinism discipline: one registry per shard. Each shard's
/// handle is only ever recorded into by the thread currently driving
/// that shard, so the mutex is uncontended (and never allocates) on the
/// hot path; cross-shard views are produced after the barrier with
/// [`Telemetry::merge_shards`], which folds the per-shard registries in
/// shard order.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
}

/// Lock a handle's state. Poisoning can only happen if a panic unwound
/// mid-record; the instruments are plain integers, so the state is
/// still coherent — keep serving it rather than double-panicking.
fn lock(inner: &Arc<Mutex<Inner>>) -> MutexGuard<'_, Inner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl Telemetry {
    /// Enabled telemetry with a flight ring of `flight_capacity` events.
    pub fn new(flight_capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner {
                metrics: MetricsRegistry::new(),
                recorder: FlightRecorder::new(flight_capacity),
            }))),
        }
    }

    /// Disabled telemetry: all operations are no-ops.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) a counter; [`CounterHandle::NONE`] when disabled.
    pub fn counter(&self, def: &'static MetricDef, node: u8) -> CounterHandle {
        match &self.inner {
            Some(inner) => lock(inner).metrics.counter(def, node),
            None => CounterHandle::NONE,
        }
    }

    /// Register (or look up) a gauge; [`GaugeHandle::NONE`] when disabled.
    pub fn gauge(&self, def: &'static MetricDef, node: u8) -> GaugeHandle {
        match &self.inner {
            Some(inner) => lock(inner).metrics.gauge(def, node),
            None => GaugeHandle::NONE,
        }
    }

    /// Register (or look up) a histogram; [`HistHandle::NONE`] when disabled.
    pub fn histogram(&self, def: &'static MetricDef, node: u8) -> HistHandle {
        match &self.inner {
            Some(inner) => lock(inner).metrics.histogram(def, node),
            None => HistHandle::NONE,
        }
    }

    /// Increment a counter by one. Zero-alloc, no-op when disabled.
    #[inline]
    pub fn inc(&self, h: CounterHandle) {
        self.add(h, 1);
    }

    /// Add `n` to a counter. Zero-alloc, no-op when disabled.
    #[inline]
    pub fn add(&self, h: CounterHandle, n: u64) {
        if let Some(inner) = &self.inner {
            lock(inner).metrics.add(h, n);
        }
    }

    /// Set a gauge. Zero-alloc, no-op when disabled.
    #[inline]
    pub fn set(&self, h: GaugeHandle, v: i64) {
        if let Some(inner) = &self.inner {
            lock(inner).metrics.set(h, v);
        }
    }

    /// Record a histogram sample. Zero-alloc, no-op when disabled.
    #[inline]
    pub fn record(&self, h: HistHandle, sample: u64) {
        if let Some(inner) = &self.inner {
            lock(inner).metrics.record(h, sample);
        }
    }

    /// Append a flight event. Zero-alloc, no-op when disabled.
    #[inline]
    pub fn flight(&self, ev: FlightEvent) {
        if let Some(inner) = &self.inner {
            lock(inner).recorder.record(ev);
        }
    }

    /// Current counter value (0 when disabled).
    pub fn counter_value(&self, h: CounterHandle) -> u64 {
        match &self.inner {
            Some(inner) => lock(inner).metrics.counter_value(h),
            None => 0,
        }
    }

    /// Current gauge value (0 when disabled).
    pub fn gauge_value(&self, h: GaugeHandle) -> i64 {
        match &self.inner {
            Some(inner) => lock(inner).metrics.gauge_value(h),
            None => 0,
        }
    }

    /// Snapshot the registry (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => lock(inner).metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Distinct [`MetricDef`]s registered so far (empty when disabled).
    pub fn registered_defs(&self) -> Vec<&'static MetricDef> {
        match &self.inner {
            Some(inner) => lock(inner).metrics.registered_defs(),
            None => Vec::new(),
        }
    }

    /// Render the flight-recorder timeline (empty string when disabled).
    pub fn flight_dump(&self) -> String {
        match &self.inner {
            Some(inner) => lock(inner).recorder.dump(),
            None => String::new(),
        }
    }

    /// Events currently retained by the flight recorder.
    pub fn flight_len(&self) -> usize {
        match &self.inner {
            Some(inner) => lock(inner).recorder.len(),
            None => 0,
        }
    }

    /// Total flight events ever recorded (including overwritten ones).
    pub fn flight_recorded(&self) -> u64 {
        match &self.inner {
            Some(inner) => lock(inner).recorder.recorded(),
            None => 0,
        }
    }

    /// Deterministic cross-shard aggregate: fold every shard's registry
    /// — in slice order — into one snapshot of cluster-of-clusters
    /// totals. Per-instrument values of the same [`MetricDef`] are
    /// combined across shards and nodes into a single [`GLOBAL`] entry
    /// (counters and gauges sum, histograms bucket-merge); entry order
    /// is first-registration order across the fold, so two runs that
    /// recorded the same per-shard streams produce byte-identical
    /// [`MetricsSnapshot::to_json`] output regardless of how many
    /// worker threads advanced the shards. Disabled handles contribute
    /// nothing.
    pub fn merge_shards(shards: &[Telemetry]) -> MetricsSnapshot {
        let mut acc = MetricsRegistry::new();
        for shard in shards {
            if let Some(inner) = &shard.inner {
                lock(inner).metrics.aggregate_into(&mut acc);
            }
        }
        acc.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_everywhere() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        let c = tel.counter(&defs::MAC_INSERTED, 0);
        assert_eq!(c, CounterHandle::NONE);
        tel.inc(c);
        tel.flight(FlightEvent::default());
        assert_eq!(tel.counter_value(c), 0);
        assert!(tel.snapshot().entries.is_empty());
        assert!(tel.flight_dump().is_empty());
        assert_eq!(tel.flight_recorded(), 0);
    }

    #[test]
    fn clones_share_one_registry() {
        let tel = Telemetry::new(16);
        let clone = tel.clone();
        let c = tel.counter(&defs::MAC_INSERTED, 0);
        let same = clone.counter(&defs::MAC_INSERTED, 0);
        assert_eq!(c, same);
        tel.inc(c);
        clone.add(same, 2);
        assert_eq!(tel.counter_value(c), 3);
        assert_eq!(tel.snapshot().counter_total("mac_inserted"), 3);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().enabled());
    }
}
