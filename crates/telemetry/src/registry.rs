//! The handle-based [`MetricsRegistry`].
//!
//! Registration (setup time) allocates; recording (hot path) does not.
//! A handle is a dense `u32` index into a pre-grown instrument table,
//! so `inc`/`add`/`set`/`record` compile down to an array index plus an
//! integer bump — no hashing, no string comparison, no allocation.

use crate::hist::Histogram;
use crate::metric::{MetricDef, MetricKind};
use crate::snapshot::{MetricsSnapshot, SnapValue, SnapshotEntry};
use std::collections::BTreeMap;

/// Node label on a per-node instrument; [`GLOBAL`] for cluster-wide ones.
pub const GLOBAL: u8 = u8::MAX;

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Inert handle: recording through it is a no-op. Returned
            /// by disabled [`crate::Telemetry`] instances so call sites
            /// never need an `Option`.
            pub const NONE: $name = $name(u32::MAX);
        }

        impl Default for $name {
            fn default() -> Self {
                $name::NONE
            }
        }
    };
}

handle!(
    /// Handle to a registered counter.
    CounterHandle
);
handle!(
    /// Handle to a registered gauge.
    GaugeHandle
);
handle!(
    /// Handle to a registered histogram.
    HistHandle
);

#[derive(Debug)]
enum Value {
    Counter(u64),
    Gauge(i64),
    Hist(Histogram),
}

#[derive(Debug)]
struct Instrument {
    def: &'static MetricDef,
    node: u8,
    value: Value,
}

/// Registry of all instruments for one cluster or segment.
///
/// Iteration order (and therefore snapshot order) is registration
/// order, which the instrumented stack performs deterministically —
/// that is what makes same-seed snapshot bytes identical.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    instruments: Vec<Instrument>,
    by_key: BTreeMap<(&'static str, u8), u32>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, def: &'static MetricDef, node: u8) -> u32 {
        if let Some(&idx) = self.by_key.get(&(def.name, node)) {
            return idx;
        }
        let idx = u32::try_from(self.instruments.len()).expect("registry overflow"); // lint: allow(panic-freedom): u32::MAX instruments is a configuration explosion; fail at registration, which is the cold path
        let value = match def.kind {
            MetricKind::Counter => Value::Counter(0),
            MetricKind::Gauge => Value::Gauge(0),
            MetricKind::Histogram => Value::Hist(Histogram::new()),
        };
        self.instruments.push(Instrument { def, node, value });
        self.by_key.insert((def.name, node), idx);
        idx
    }

    /// Register (or look up) a counter instance. `node` labels per-node
    /// instruments; pass [`GLOBAL`] for cluster-wide ones.
    pub fn counter(&mut self, def: &'static MetricDef, node: u8) -> CounterHandle {
        debug_assert_eq!(def.kind, MetricKind::Counter, "{} is not a counter", def.name);
        CounterHandle(self.register(def, node))
    }

    /// Register (or look up) a gauge instance.
    pub fn gauge(&mut self, def: &'static MetricDef, node: u8) -> GaugeHandle {
        debug_assert_eq!(def.kind, MetricKind::Gauge, "{} is not a gauge", def.name);
        GaugeHandle(self.register(def, node))
    }

    /// Register (or look up) a histogram instance.
    pub fn histogram(&mut self, def: &'static MetricDef, node: u8) -> HistHandle {
        debug_assert_eq!(
            def.kind,
            MetricKind::Histogram,
            "{} is not a histogram",
            def.name
        );
        HistHandle(self.register(def, node))
    }

    /// Add `n` to a counter. Zero-alloc; ignores [`CounterHandle::NONE`].
    #[inline]
    pub fn add(&mut self, h: CounterHandle, n: u64) {
        if let Some(Instrument { value: Value::Counter(c), .. }) =
            self.instruments.get_mut(h.0 as usize)
        {
            *c += n;
        }
    }

    /// Set a gauge. Zero-alloc; ignores [`GaugeHandle::NONE`].
    #[inline]
    pub fn set(&mut self, h: GaugeHandle, v: i64) {
        if let Some(Instrument { value: Value::Gauge(g), .. }) =
            self.instruments.get_mut(h.0 as usize)
        {
            *g = v;
        }
    }

    /// Record a histogram sample. Zero-alloc; ignores [`HistHandle::NONE`].
    #[inline]
    pub fn record(&mut self, h: HistHandle, sample: u64) {
        if let Some(Instrument { value: Value::Hist(hist), .. }) =
            self.instruments.get_mut(h.0 as usize)
        {
            hist.record(sample);
        }
    }

    /// Current value of a counter (0 for [`CounterHandle::NONE`]).
    pub fn counter_value(&self, h: CounterHandle) -> u64 {
        match self.instruments.get(h.0 as usize) {
            Some(Instrument { value: Value::Counter(c), .. }) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge (0 for [`GaugeHandle::NONE`]).
    pub fn gauge_value(&self, h: GaugeHandle) -> i64 {
        match self.instruments.get(h.0 as usize) {
            Some(Instrument { value: Value::Gauge(g), .. }) => *g,
            _ => 0,
        }
    }

    /// Number of registered instruments (instances, not defs).
    pub fn len(&self) -> usize {
        self.instruments.len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.instruments.is_empty()
    }

    /// The distinct [`MetricDef`]s registered so far, in first-seen
    /// order. Used by the docs-sync test to prove the full-stack
    /// exercise touches every catalog entry.
    pub fn registered_defs(&self) -> Vec<&'static MetricDef> {
        let mut seen: Vec<&'static MetricDef> = Vec::new(); // lint: allow(hot-path-alloc): cold diagnostic backing the docs-sync test, never on the record path
        for inst in &self.instruments {
            if !seen.iter().any(|d| d.name == inst.def.name) {
                seen.push(inst.def);
            }
        }
        seen
    }

    /// Fold this registry's instruments into `acc` under the [`GLOBAL`]
    /// node label: counters and gauges sum, histograms bucket-merge.
    /// Entry order in `acc` is first-seen order across successive
    /// `aggregate_into` calls, so folding per-shard registries in shard
    /// order yields a deterministic merged snapshot. Used by
    /// [`crate::Telemetry::merge_shards`].
    pub fn aggregate_into(&self, acc: &mut MetricsRegistry) {
        for inst in &self.instruments {
            match &inst.value {
                Value::Counter(c) => {
                    let h = acc.counter(inst.def, GLOBAL);
                    acc.add(h, *c);
                }
                Value::Gauge(g) => {
                    let h = acc.gauge(inst.def, GLOBAL);
                    let cur = acc.gauge_value(h);
                    acc.set(h, cur.saturating_add(*g));
                }
                Value::Hist(hist) => {
                    let h = acc.histogram(inst.def, GLOBAL);
                    if let Some(Instrument { value: Value::Hist(dst), .. }) =
                        acc.instruments.get_mut(h.0 as usize)
                    {
                        dst.merge(hist);
                    }
                }
            }
        }
    }

    /// Point-in-time snapshot of every instrument, in registration
    /// order. Deterministic given deterministic registration/recording.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self
            .instruments
            .iter()
            .map(|inst| SnapshotEntry {
                def: inst.def,
                node: (inst.node != GLOBAL).then_some(inst.node),
                value: match &inst.value {
                    Value::Counter(c) => SnapValue::Counter(*c),
                    Value::Gauge(g) => SnapValue::Gauge(*g),
                    Value::Hist(h) => SnapValue::Hist {
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                        p50: h.p50(),
                        p99: h.p99(),
                    },
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs;

    #[test]
    fn registration_is_idempotent() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter(&defs::MAC_INSERTED, 3);
        let b = reg.counter(&defs::MAC_INSERTED, 3);
        let c = reg.counter(&defs::MAC_INSERTED, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.registered_defs().len(), 1);
    }

    #[test]
    fn none_handles_are_inert() {
        let mut reg = MetricsRegistry::new();
        let real = reg.counter(&defs::MAC_INSERTED, 0);
        reg.add(CounterHandle::NONE, 99);
        reg.set(GaugeHandle::NONE, -5);
        reg.record(HistHandle::NONE, 123);
        reg.add(real, 2);
        assert_eq!(reg.counter_value(real), 2);
        assert_eq!(reg.counter_value(CounterHandle::NONE), 0);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn aggregate_folds_shards_into_global_entries() {
        let mut shard0 = MetricsRegistry::new();
        let mut shard1 = MetricsRegistry::new();
        let c0 = shard0.counter(&defs::MAC_INSERTED, 0);
        shard0.add(c0, 3);
        let g0 = shard0.gauge(&defs::MAC_WOULD_DROP, 0);
        shard0.set(g0, 2);
        let h0 = shard0.histogram(&defs::RING_TOUR_NS, GLOBAL);
        shard0.record(h0, 100);
        let c1 = shard1.counter(&defs::MAC_INSERTED, 5);
        shard1.add(c1, 4);
        let g1 = shard1.gauge(&defs::MAC_WOULD_DROP, 5);
        shard1.set(g1, -1);
        let h1 = shard1.histogram(&defs::RING_TOUR_NS, GLOBAL);
        shard1.record(h1, 900);

        let mut acc = MetricsRegistry::new();
        shard0.aggregate_into(&mut acc);
        shard1.aggregate_into(&mut acc);
        let snap = acc.snapshot();
        assert_eq!(snap.entries.len(), 3);
        assert_eq!(snap.counter_total("mac_inserted"), 7);
        // Every merged entry carries the GLOBAL label.
        assert!(snap.entries.iter().all(|e| e.node.is_none()));
        match snap.entries[1].value {
            SnapValue::Gauge(v) => assert_eq!(v, 1),
            ref v => panic!("expected gauge, got {v:?}"),
        }
        match snap.entries[2].value {
            SnapValue::Hist { count, min, max, .. } => {
                assert_eq!((count, min, max), (2, 100, 900));
            }
            ref v => panic!("expected hist, got {v:?}"),
        }
    }

    #[test]
    fn snapshot_orders_by_registration() {
        let mut reg = MetricsRegistry::new();
        reg.counter(&defs::MAC_STRIPPED, 1);
        reg.gauge(&defs::MAC_WOULD_DROP, 1);
        reg.histogram(&defs::RING_TOUR_NS, GLOBAL);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.entries.iter().map(|e| e.def.name).collect();
        assert_eq!(
            names,
            ["mac_stripped", "mac_would_drop", "ring_tour_ns"]
        );
        assert_eq!(snap.entries[0].node, Some(1));
        assert_eq!(snap.entries[2].node, None);
    }
}
