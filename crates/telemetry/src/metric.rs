//! Static metric identity: kind, unit, plane and the [`MetricDef`]
//! catalog entry that ties a metric name to its documentation row.
//!
//! Every metric the workspace can ever register is declared once, as a
//! `&'static MetricDef` in [`crate::defs`]. Instrumentation sites hand
//! that def to [`crate::Telemetry`] at registration time; the def is
//! also the unit of documentation — `docs/METRICS.md` is literally the
//! concatenation of [`MetricDef::doc_row`] over [`crate::defs::ALL`],
//! enforced by a test.

/// What kind of instrument a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Last-written value (sampled, may go up or down).
    Gauge,
    /// Log-linear distribution of `u64` samples.
    Histogram,
}

impl MetricKind {
    /// Lower-case name used in snapshots and the metrics reference.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Unit of a metric's value (or of histogram samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Wire frames.
    Frames,
    /// Micro-packets.
    Packets,
    /// Bytes.
    Bytes,
    /// Discrete events.
    Events,
    /// Nanoseconds of simulated time.
    Nanos,
    /// Cache records.
    Records,
    /// Read attempts.
    Reads,
    /// Executed operations.
    Ops,
    /// Datagram messages.
    Messages,
    /// Cluster nodes.
    Nodes,
    /// Roster epochs.
    Epochs,
    /// Arena frame slots.
    Slots,
}

impl Unit {
    /// Lower-case name used in snapshots and the metrics reference.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Frames => "frames",
            Unit::Packets => "packets",
            Unit::Bytes => "bytes",
            Unit::Events => "events",
            Unit::Nanos => "ns",
            Unit::Records => "records",
            Unit::Reads => "reads",
            Unit::Ops => "ops",
            Unit::Messages => "messages",
            Unit::Nodes => "nodes",
            Unit::Epochs => "epochs",
            Unit::Slots => "slots",
        }
    }
}

/// Which layer of the stack a metric (or flight event) belongs to.
///
/// Mirrors the PR 2 plane split: `SerialPhy` → `RegisterMac` →
/// `HostQueues` inside one node, with transport/membership above the
/// ring and the cache/services planes above those.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Plane {
    /// Serialisation, hop latency, error bursts (`SerialPhy`).
    Phy,
    /// Register-insertion decisions (`RegisterMac`).
    Mac,
    /// Host-side delivery queues (`HostQueues`).
    Delivery,
    /// Frame arena, replay and per-hop scheduling (`ampnet-core`).
    Transport,
    /// Roster episodes, joins, error-burst escalation.
    Membership,
    /// Network cache updates, seqlock and atomics (`ampnet-cache`).
    Cache,
    /// Messaging and semaphore services (`ampnet-services`).
    Services,
    /// The sharded conservative-PDES engine itself: slice planning,
    /// exchange elision, quiescent-shard accounting (`ampnet-core`'s
    /// multi-segment coordinator).
    Pdes,
    /// The workload engine's modeled client populations: per-class
    /// offered/completed operations and end-to-end latency
    /// (`ampnet-load`).
    Load,
}

impl Plane {
    /// Lower-case name used in snapshots and the metrics reference.
    pub fn as_str(self) -> &'static str {
        match self {
            Plane::Phy => "phy",
            Plane::Mac => "mac",
            Plane::Delivery => "delivery",
            Plane::Transport => "transport",
            Plane::Membership => "membership",
            Plane::Cache => "cache",
            Plane::Services => "services",
            Plane::Pdes => "pdes",
            Plane::Load => "load",
        }
    }
}

/// Static identity of one metric: the single source of truth for its
/// name, shape and documentation.
#[derive(Debug, PartialEq, Eq)]
pub struct MetricDef {
    /// Unique snake_case metric name.
    pub name: &'static str,
    /// Instrument kind.
    pub kind: MetricKind,
    /// Unit of the value (or of histogram samples).
    pub unit: Unit,
    /// Plane the metric instruments.
    pub plane: Plane,
    /// Whether the metric is registered once per node (`true`) or once
    /// per cluster/segment (`false`).
    pub per_node: bool,
    /// One-line description (shows up verbatim in `docs/METRICS.md`).
    pub help: &'static str,
    /// Paper slide / section this metric evidences.
    pub evidence: &'static str,
}

impl MetricDef {
    /// The `docs/METRICS.md` table row for this metric. The reference
    /// doc is generated from these rows (`figures --metrics-doc`) and a
    /// test diffs the committed file against them, so the doc cannot
    /// drift from the registry.
    pub fn doc_row(&self) -> String {
        format!(
            "| `{}` | {} | {} | {} | {} | {} | {} |",
            self.name,
            self.kind.as_str(),
            self.unit.as_str(),
            self.plane.as_str(),
            if self.per_node { "node" } else { "—" },
            self.evidence,
            self.help,
        )
    }
}
