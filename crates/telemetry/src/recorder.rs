//! The flight recorder: a bounded, preallocated ring of the last N
//! plane events, stamped with simulated time.
//!
//! Where the [`crate::MetricsRegistry`] answers "how many / how long",
//! the recorder answers "what happened just before it went wrong". It
//! keeps the most recent [`FlightRecorder::capacity`] events — PHY
//! fault bursts, MAC insert/strip decisions, roster transitions,
//! seqlock retries, semaphore grants — and can render them as one
//! correlated timeline. The chaos engine dumps this next to the shrunk
//! fault schedule whenever an invariant trips.
//!
//! The ring is fully allocated up front; recording overwrites slots in
//! place, so the hot path never allocates regardless of event volume.

use crate::metric::Plane;
use crate::registry::GLOBAL;

/// What a flight event describes. The two payload words `a`/`b` are
/// kind-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlightKind {
    /// Empty slot (never emitted once the ring has wrapped).
    #[default]
    Empty,
    /// PHY error burst injected: `a` = bit errors, `b` = violations detected.
    PhyBurst,
    /// MAC inserted an own frame: `a` = destination, `b` = wire bytes.
    MacInsert,
    /// MAC delivered a frame to the host: `a` = source, `b` = payload bytes.
    MacDeliver,
    /// MAC stripped an own frame after a full tour: `a` = wire bytes.
    MacStrip,
    /// Roster episode started (ring down): `a` = outgoing epoch.
    RosterDown,
    /// Roster episode completed: `a` = new epoch, `b` = ring size.
    RosterUp,
    /// Stale-epoch frame released by transport: `a` = frame epoch.
    StaleFrame,
    /// Smart data recovery replayed traffic: `a` = broadcasts, `b` = unicasts.
    Replay,
    /// Seqlock reader observed a writer mid-publish: `a` = region, `b` = offset.
    SeqlockBusy,
    /// Network semaphore granted: `a` = semaphore id, `b` = acquire latency ns.
    SemAcquire,
    /// Join attempt rejected by assimilation rules: `a` = joining node.
    JoinRejected,
    /// Node brought online into the roster: `a` = node id.
    NodeOnline,
}

/// One entry in the flight-recorder ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Simulated time in nanoseconds.
    pub at_ns: u64,
    /// Node the event happened at ([`GLOBAL`] for cluster-wide events).
    pub node: u8,
    /// Plane the event belongs to.
    pub plane: Plane,
    /// Event kind.
    pub kind: FlightKind,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

impl Default for FlightEvent {
    fn default() -> Self {
        FlightEvent {
            at_ns: 0,
            node: GLOBAL,
            plane: Plane::Phy,
            kind: FlightKind::Empty,
            a: 0,
            b: 0,
        }
    }
}

impl FlightEvent {
    fn describe(&self) -> String {
        match self.kind {
            FlightKind::Empty => "-".into(),
            FlightKind::PhyBurst => {
                format!("phy burst: {} bit error(s), {} violation(s)", self.a, self.b)
            }
            FlightKind::MacInsert => {
                format!("insert -> node {} ({} wire bytes)", self.a, self.b)
            }
            FlightKind::MacDeliver => {
                format!("deliver <- node {} ({} payload bytes)", self.a, self.b)
            }
            FlightKind::MacStrip => format!("strip own frame ({} wire bytes)", self.a),
            FlightKind::RosterDown => format!("ring down, leaving epoch {}", self.a),
            FlightKind::RosterUp => {
                format!("ring up: epoch {}, {} node(s)", self.a, self.b)
            }
            FlightKind::StaleFrame => format!("released stale frame (epoch {})", self.a),
            FlightKind::Replay => {
                format!("replayed {} broadcast(s), {} unicast(s)", self.a, self.b)
            }
            FlightKind::SeqlockBusy => {
                format!("seqlock busy at region {} offset {}", self.a, self.b)
            }
            FlightKind::SemAcquire => {
                format!("semaphore {} acquired after {} ns", self.a, self.b)
            }
            FlightKind::JoinRejected => format!("join rejected for node {}", self.a),
            FlightKind::NodeOnline => format!("node {} online", self.a),
        }
    }
}

/// Bounded ring of the last N [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<FlightEvent>,
    head: usize,
    recorded: u64,
}

impl FlightRecorder {
    /// Ring with room for `capacity` events (capacity must be > 0).
    /// The whole ring is allocated here; recording never allocates.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity > 0");
        FlightRecorder {
            slots: vec![FlightEvent::default(); capacity],
            head: 0,
            recorded: 0,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.recorded.min(self.slots.len() as u64) as usize
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.len() as u64
    }

    /// Append an event, overwriting the oldest once full. Zero-alloc.
    #[inline]
    pub fn record(&mut self, ev: FlightEvent) {
        self.slots[self.head] = ev;
        self.head = (self.head + 1) % self.slots.len();
        self.recorded += 1;
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightEvent> {
        let len = self.len();
        let start = (self.head + self.slots.len() - len) % self.slots.len();
        (0..len).map(move |i| &self.slots[(start + i) % self.slots.len()])
    }

    /// Render the retained window as a correlated timeline, oldest
    /// first, one line per event.
    pub fn dump(&self) -> String {
        let mut out = format!(
            "flight recorder: {} event(s) retained, {} dropped to wraparound\n",
            self.len(),
            self.dropped()
        );
        for ev in self.iter() {
            let node = if ev.node == GLOBAL {
                "  -".to_string()
            } else {
                format!("{:3}", ev.node)
            };
            out.push_str(&format!(
                "[{:>12} ns] node {} {:<10} {}\n",
                ev.at_ns,
                node,
                ev.plane.as_str(),
                ev.describe()
            ));
        }
        out
    }

    /// Forget everything (capacity is kept).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = FlightEvent::default();
        }
        self.head = 0;
        self.recorded = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, a: u64) -> FlightEvent {
        FlightEvent {
            at_ns,
            node: 1,
            plane: Plane::Mac,
            kind: FlightKind::MacInsert,
            a,
            b: 0,
        }
    }

    #[test]
    fn retains_recent_events_in_order() {
        let mut r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(ev(i * 10, i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let ats: Vec<u64> = r.iter().map(|e| e.at_ns).collect();
        assert_eq!(ats, [0, 10, 20, 30, 40]);
    }

    #[test]
    fn wraparound_keeps_newest_window() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(ev(i, i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let ats: Vec<u64> = r.iter().map(|e| e.at_ns).collect();
        assert_eq!(ats, [6, 7, 8, 9], "oldest-first window after wrap");
        let dump = r.dump();
        assert!(dump.contains("6 dropped to wraparound"), "{dump}");
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut r = FlightRecorder::new(4);
        for i in 0..9u64 {
            r.record(ev(i, i));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 4);
        r.record(ev(99, 0));
        assert_eq!(r.iter().next().unwrap().at_ns, 99);
    }

    #[test]
    fn dump_renders_global_and_node_events() {
        let mut r = FlightRecorder::new(4);
        r.record(FlightEvent {
            at_ns: 5,
            node: GLOBAL,
            plane: Plane::Membership,
            kind: FlightKind::RosterUp,
            a: 2,
            b: 6,
        });
        r.record(ev(7, 3));
        let dump = r.dump();
        assert!(dump.contains("node   - membership ring up: epoch 2, 6 node(s)"), "{dump}");
        assert!(dump.contains("node   1 mac"), "{dump}");
    }
}
