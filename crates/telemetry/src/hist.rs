//! Scalar measurement primitives: [`Counter`] and the log-linear
//! [`Histogram`].
//!
//! Both types started life in `ampnet-sim::stats` and were re-homed
//! here so every crate (including ones below the simulator in the
//! dependency graph) can record into the [`MetricsRegistry`]
//! without a cycle. `ampnet-sim` re-exports them, so existing
//! `ampnet_sim::{Counter, Histogram}` call sites are unaffected.
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

/// Monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Log-linear histogram of `u64` samples (typically nanoseconds).
///
/// Buckets: 64 powers-of-two decades, each split into 16 linear
/// sub-buckets, giving ≤ 6.25 % relative error per recorded value.
/// All bucket storage is allocated once in [`Histogram::new`];
/// [`Histogram::record`] is allocation-free, which is what lets the
/// registry keep its zero-alloc hot-path guarantee.
///
/// ```
/// use ampnet_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100u64, 200, 400, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min(), 100);
/// assert!(h.p99() <= h.max());
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB: usize = 16;
const SUB_BITS: u32 = 4;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64 * SUB], // lint: allow(hot-path-alloc): constructor: the bucket array is allocated once at registration
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let decade = msb - SUB_BITS + 1;
        let sub = (value >> (decade - 1)) as usize - SUB;
        (decade as usize) * SUB + sub
    }

    /// Lower bound of the bucket at `idx`.
    fn bucket_low(idx: usize) -> u64 {
        let decade = idx / SUB;
        let sub = idx % SUB;
        if decade == 0 {
            sub as u64
        } else {
            ((SUB + sub) as u64) << (decade - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean of recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in [0, 1]; returns the lower bound of the
    /// containing bucket (a ≤ 6.25 % under-estimate at worst).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_low(idx).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_exact_small_values() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert!((h.mean() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_bucket_error_bound() {
        let mut h = Histogram::new();
        let v = 1_000_000u64;
        h.record(v);
        let q = h.quantile(0.5);
        assert!(q <= v);
        assert!(
            (v - q) as f64 / v as f64 <= 0.0625 + 1e-9,
            "quantile {q} too far below {v}"
        );
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 37);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max());
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..500u64 {
            a.record(i * 3 + 1);
            all.record(i * 3 + 1);
        }
        for i in 0..500u64 {
            b.record(i * 7 + 2);
            all.record(i * 7 + 2);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.p50(), all.p50());
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
