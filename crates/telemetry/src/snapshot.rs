//! Point-in-time export of a [`MetricsRegistry`](crate::MetricsRegistry).
//!
//! The JSON writer is hand-rolled (like `BENCH_ring.json`) and emits
//! only integers in registration order, so a snapshot of a
//! deterministic run is byte-identical across same-seed executions —
//! pinned by a test and consumed by `figures --metrics`.

use crate::metric::MetricDef;

/// Value of one instrument at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary (integer fields only, for byte-stable JSON).
    Hist {
        /// Samples recorded.
        count: u64,
        /// Sum of all samples.
        sum: u128,
        /// Smallest sample (0 when empty).
        min: u64,
        /// Largest sample.
        max: u64,
        /// Median (bucket lower bound).
        p50: u64,
        /// 99th percentile (bucket lower bound).
        p99: u64,
    },
}

/// One instrument in a snapshot.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotEntry {
    /// The static catalog entry this instrument instantiates.
    pub def: &'static MetricDef,
    /// Node label, `None` for cluster-wide instruments.
    pub node: Option<u8>,
    /// Captured value.
    pub value: SnapValue,
}

/// A full registry snapshot, in registration order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All instrument entries.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// Look up an entry by metric name and node label.
    pub fn get(&self, name: &str, node: Option<u8>) -> Option<&SnapshotEntry> {
        self.entries
            .iter()
            .find(|e| e.def.name == name && e.node == node)
    }

    /// Sum of one counter metric across all nodes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.def.name == name)
            .map(|e| match e.value {
                SnapValue::Counter(c) => c,
                _ => 0,
            })
            .sum()
    }

    /// Serialise to JSON. Hand-rolled, integers only, registration
    /// order — byte-identical for identical registry states.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.entries.len() * 96);
        out.push_str("{\n  \"snapshot\": \"ampnet_metrics\",\n");
        out.push_str(&format!("  \"instruments\": {},\n", self.entries.len()));
        out.push_str("  \"metrics\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"unit\": \"{}\", \"plane\": \"{}\", \"node\": {}, ",
                e.def.name,
                e.def.kind.as_str(),
                e.def.unit.as_str(),
                e.def.plane.as_str(),
                match e.node {
                    Some(n) => n.to_string(),
                    None => "null".to_string(),
                },
            ));
            match e.value {
                SnapValue::Counter(c) => out.push_str(&format!("\"value\": {c}}}")),
                SnapValue::Gauge(g) => out.push_str(&format!("\"value\": {g}}}")),
                SnapValue::Hist { count, sum, min, max, p50, p99 } => {
                    out.push_str(&format!(
                        "\"count\": {count}, \"sum\": {sum}, \"min\": {min}, \"max\": {max}, \"p50\": {p50}, \"p99\": {p99}}}"
                    ));
                }
            }
            out.push_str(if i + 1 < self.entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::defs;
    use crate::registry::{MetricsRegistry, GLOBAL};

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter(&defs::MAC_INSERTED, 2);
            let g = reg.gauge(&defs::MAC_WOULD_DROP, 2);
            let h = reg.histogram(&defs::RING_TOUR_NS, GLOBAL);
            reg.add(c, 7);
            reg.set(g, 0);
            for i in 1..=100 {
                reg.record(h, i * 1000);
            }
            reg.snapshot().to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same construction must serialise identically");
        assert!(a.contains("\"name\": \"mac_inserted\""));
        assert!(a.contains("\"node\": 2"));
        assert!(a.contains("\"node\": null"));
        assert!(!a.contains('.'), "snapshot JSON must be integer-only:\n{a}");
    }

    #[test]
    fn lookup_helpers() {
        let mut reg = MetricsRegistry::new();
        let c0 = reg.counter(&defs::MAC_INSERTED, 0);
        let c1 = reg.counter(&defs::MAC_INSERTED, 1);
        reg.add(c0, 3);
        reg.add(c1, 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("mac_inserted"), 7);
        assert!(snap.get("mac_inserted", Some(1)).is_some());
        assert!(snap.get("mac_inserted", Some(9)).is_none());
    }
}
