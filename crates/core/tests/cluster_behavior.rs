//! Cluster-level behaviour tests: the paper's scenarios end to end.

use ampnet_core::{
    Cluster, ClusterConfig, Component, CounterAppConfig, FailoverPolicy, Features, JoinRequest,
    NodeId, ReadOutcome, RecordLayout, SemStressConfig, SemaphoreAddr, SeqProbeConfig, SimDuration,
    SimTime, SwitchId, Version,
};

fn booted(n: usize, seed: u64) -> Cluster {
    let mut c = Cluster::new(ClusterConfig::small(n).with_seed(seed));
    c.run_for(SimDuration::from_millis(10));
    assert!(c.ring_up(), "boot must complete within 10 ms");
    c
}

#[test]
fn boot_builds_full_ring() {
    let c = booted(8, 1);
    assert_eq!(c.ring().len(), 8);
    assert_eq!(c.epoch(), 1);
    assert_eq!(c.roster_history().len(), 1);
    assert!(c.caches_converged());
}

#[test]
fn messages_flow_in_both_directions() {
    let mut c = booted(6, 2);
    c.send_message(0, 5, 1, b"forward");
    c.send_message(5, 0, 1, b"backward");
    c.run_for(SimDuration::from_millis(1));
    assert_eq!(c.pop_message(5).unwrap().payload, b"forward");
    assert_eq!(c.pop_message(0).unwrap().payload, b"backward");
    assert_eq!(c.total_drops(), 0);
}

#[test]
fn large_message_fragments_and_reassembles() {
    let mut c = booted(4, 3);
    let big: Vec<u8> = (0..5000u32).map(|i| (i % 241) as u8).collect();
    c.send_message(1, 3, 0, &big);
    c.run_for(SimDuration::from_millis(2));
    assert_eq!(c.pop_message(3).unwrap().payload, big);
}

#[test]
fn broadcast_message_reaches_all() {
    let mut c = booted(5, 4);
    c.send_message(2, ampnet_packet::BROADCAST, 0, b"to everyone");
    c.run_for(SimDuration::from_millis(1));
    for n in [0u8, 1, 3, 4] {
        assert_eq!(c.pop_message(n).unwrap().payload, b"to everyone", "node {n}");
    }
    assert!(c.pop_message(2).is_none(), "no self-delivery");
}

#[test]
fn cache_writes_replicate_everywhere() {
    let mut c = booted(6, 5);
    c.cache_write(3, 0, 512, b"shared management database");
    c.run_for(SimDuration::from_millis(1));
    for n in 0..6u8 {
        assert_eq!(
            c.cache(n).read(0, 512, 26).unwrap(),
            b"shared management database",
            "replica at node {n}"
        );
    }
    assert!(c.caches_converged());
}

#[test]
fn node_failure_heals_and_traffic_resumes() {
    let mut c = booted(8, 6);
    let t_fail = c.now() + SimDuration::from_millis(1);
    c.schedule_failure(t_fail, Component::Node(NodeId(4)));
    c.run_for(SimDuration::from_millis(20));
    assert!(c.ring_up());
    assert_eq!(c.ring().len(), 7);
    assert!(!c.ring().order.contains(&NodeId(4)));
    assert_eq!(c.epoch(), 2);
    // The healed ring still carries traffic.
    c.send_message(0, 7, 0, b"after healing");
    c.run_for(SimDuration::from_millis(1));
    assert_eq!(c.pop_message(7).unwrap().payload, b"after healing");
    // Recovery matched the slide-16 bound (2 tours + detection).
    let heal = &c.roster_history()[1];
    assert!(heal.outcome.recovery_in_tours() < 3.5);
}

#[test]
fn switch_failure_reroutes_without_losing_members() {
    let mut c = booted(6, 7);
    c.schedule_failure(
        c.now() + SimDuration::from_millis(1),
        Component::Switch(SwitchId(0)),
    );
    c.run_for(SimDuration::from_millis(20));
    assert!(c.ring_up());
    assert_eq!(c.ring().len(), 6, "quad redundancy keeps everyone");
    assert!(c
        .ring()
        .hops
        .iter()
        .all(|h| !h.via.contains(&SwitchId(0))));
}

#[test]
fn cache_write_racing_failure_still_converges() {
    let mut c = booted(6, 8);
    // Issue a write and kill a node while its packets circulate.
    c.cache_write(0, 0, 0, &vec![0xEE; 600]);
    c.schedule_failure(
        c.now() + SimDuration::from_micros(5),
        Component::Node(NodeId(3)),
    );
    c.run_for(SimDuration::from_millis(30));
    assert!(c.ring_up());
    // Smart data recovery: survivors replayed; all converge.
    for n in [0u8, 1, 2, 4, 5] {
        assert_eq!(
            c.cache(n).read(0, 0, 600).unwrap(),
            &vec![0xEE; 600][..],
            "replica at {n}"
        );
    }
    assert!(c.caches_converged());
    assert_eq!(c.total_drops(), 0);
}

#[test]
fn spare_link_failure_does_not_disturb_the_ring() {
    let mut c = booted(4, 9);
    let epoch_before = c.epoch();
    // All ring hops use switch 0 on a healthy plant; switch 3 is spare.
    c.schedule_failure(
        c.now() + SimDuration::from_micros(10),
        Component::Link(NodeId(1), SwitchId(3)),
    );
    c.run_for(SimDuration::from_millis(5));
    assert!(c.ring_up());
    assert_eq!(c.epoch(), epoch_before, "no roster episode for a spare");
}

#[test]
fn node_rejoin_after_assimilation() {
    let mut c = booted(5, 10);
    c.schedule_failure(c.now() + SimDuration::from_millis(1), Component::Node(NodeId(2)));
    c.run_for(SimDuration::from_millis(10));
    assert_eq!(c.ring().len(), 4);
    // Write state while node 2 is away.
    c.cache_write(0, 0, 100, b"written while away");
    c.run_for(SimDuration::from_millis(1));

    let req = JoinRequest {
        node: 2,
        version: Version::new(1, 0, 0),
        features: Features::NONE,
        diagnostics_pass: true,
    };
    c.schedule_join(c.now(), 2, req);
    // Assimilation takes boot + diag + refresh ≈ 70+ ms.
    c.run_for(SimDuration::from_millis(200));
    assert!(c.ring_up());
    assert_eq!(c.ring().len(), 5, "rejoined the ring");
    assert!(c.node_online(2));
    // The cache refresh brought it current.
    assert_eq!(c.cache(2).read(0, 100, 18).unwrap(), b"written while away");
    assert!(c.caches_converged());
}

#[test]
fn incompatible_joiner_rejected() {
    let mut c = booted(4, 11);
    c.schedule_failure(c.now(), Component::Node(NodeId(3)));
    c.run_for(SimDuration::from_millis(5));
    let req = JoinRequest {
        node: 3,
        version: Version::new(9, 0, 0), // wrong major
        features: Features::NONE,
        diagnostics_pass: true,
    };
    c.schedule_join(c.now(), 3, req);
    c.run_for(SimDuration::from_millis(200));
    assert!(!c.node_online(3));
    assert_eq!(c.rejections().len(), 1);
    assert_eq!(c.ring().len(), 3);
}

#[test]
fn seqlock_probe_no_torn_reads() {
    let mut c = booted(4, 12);
    let layout = RecordLayout {
        region: 0,
        offset: 1024,
        data_len: 64,
    };
    c.start_seqlock_probe(SeqProbeConfig {
        writer: 0,
        readers: vec![1, 2, 3],
        layout,
        write_interval: SimDuration::from_micros(20),
        read_interval: SimDuration::from_micros(7),
        guarded: true,
        deadline: c.now() + SimDuration::from_millis(5),
    });
    c.run_for(SimDuration::from_millis(6));
    let r = c.seq_report().unwrap();
    assert!(r.writes > 100);
    assert!(r.reads_ok > 500);
    assert_eq!(r.torn, 0, "guarded reads must never tear");
}

#[test]
fn unguarded_reads_tear_under_write_load() {
    let mut c = booted(4, 13);
    let layout = RecordLayout {
        region: 0,
        offset: 1024,
        data_len: 512, // spans many cells: wide window for tearing
    };
    c.start_seqlock_probe(SeqProbeConfig {
        writer: 0,
        readers: vec![1, 2, 3],
        layout,
        write_interval: SimDuration::from_micros(15),
        read_interval: SimDuration::from_micros(3),
        guarded: false,
        deadline: c.now() + SimDuration::from_millis(10),
    });
    c.run_for(SimDuration::from_millis(12));
    let r = c.seq_report().unwrap();
    assert!(
        r.torn > 0,
        "ablation A2 must expose torn reads ({} reads)",
        r.reads_ok
    );
}

#[test]
fn semaphores_mutually_exclude() {
    let mut c = booted(6, 14);
    c.start_sem_stress(SemStressConfig {
        addr: SemaphoreAddr {
            home: 0,
            region: 0,
            offset: 2048,
        },
        contenders: vec![1, 2, 3, 4, 5],
        rounds: 10,
        crit: SimDuration::from_micros(30),
        backoff: Default::default(),
    });
    c.run_for(SimDuration::from_millis(50));
    let r = c.sem_report().unwrap();
    assert_eq!(r.violations, 0, "mutual exclusion must hold");
    assert_eq!(r.acquisitions, 50, "5 contenders × 10 rounds");
    assert_eq!(r.unfinished, 0);
    assert!(r.contentions > 0, "they really contended");
    assert!(r.acquire_latency.count() == 50);
}

#[test]
fn counter_app_failover_no_data_loss() {
    let mut c = booted(6, 15);
    let deadline = c.now() + SimDuration::from_millis(30);
    c.start_counter_app(CounterAppConfig {
        members: vec![(1, 90), (2, 70), (3, 80)],
        policy: FailoverPolicy {
            failover_period: SimDuration::from_millis(1),
            ..Default::default()
        },
        counter_layout: RecordLayout {
            region: 0,
            offset: 4096,
            data_len: 8,
        },
        heartbeat_layout: RecordLayout {
            region: 0,
            offset: 4160,
            data_len: 8,
        },
        deadline,
    });
    // Kill the initial leader (node 1, qualification 90) mid-run.
    c.schedule_failure(
        c.now() + SimDuration::from_millis(8),
        Component::Node(NodeId(1)),
    );
    c.run_for(SimDuration::from_millis(40));
    let r = c.counter_report().unwrap();
    assert_eq!(r.resumes.len(), 1, "exactly one failover");
    let resume = &r.resumes[0];
    assert_eq!(resume.new_leader, 3, "best qualified survivor (80 > 70)");
    assert_eq!(resume.lost_committed, 0, "no committed data lost");
    assert!(r.increments_issued > 20);
    assert!(r.committed > 0);
    // Detection was millisecond-scale.
    let detect = resume.report.detection_latency();
    assert!(
        detect <= SimDuration::from_millis(3),
        "detection took {detect}"
    );
    // Survivors agree on the final value.
    let vals: Vec<u64> = r.final_values.iter().map(|&(_, v)| v).collect();
    assert!(vals.windows(2).all(|w| w[0] == w[1]), "{vals:?}");
}

#[test]
fn determinism_across_runs() {
    let run = |seed| {
        let mut c = booted(6, seed);
        c.send_message(0, 3, 0, b"det");
        c.schedule_failure(c.now() + SimDuration::from_millis(1), Component::Node(NodeId(5)));
        c.run_for(SimDuration::from_millis(20));
        (
            c.epoch(),
            c.ring().order.clone(),
            c.now().as_nanos(),
            c.total_drops(),
        )
    };
    assert_eq!(run(77), run(77));
}

#[test]
fn double_failure_still_heals() {
    let mut c = booted(8, 16);
    c.schedule_failure(c.now() + SimDuration::from_millis(1), Component::Node(NodeId(2)));
    c.schedule_failure(
        c.now() + SimDuration::from_millis(1) + SimDuration::from_micros(100),
        Component::Node(NodeId(6)),
    );
    c.run_for(SimDuration::from_millis(30));
    assert!(c.ring_up());
    assert_eq!(c.ring().len(), 6);
    c.send_message(0, 7, 0, b"still alive");
    c.run_for(SimDuration::from_millis(1));
    assert_eq!(c.pop_message(7).unwrap().payload, b"still alive");
}

#[test]
fn seqlock_read_api_works_quiescent() {
    let mut c = booted(3, 17);
    let layout = RecordLayout {
        region: 0,
        offset: 256,
        data_len: 16,
    };
    let mut data = vec![7u8; 16];
    data[0] = 1;
    c.record_write(0, layout, &data);
    c.run_for(SimDuration::from_millis(1));
    match c.record_try_read(2, layout) {
        ReadOutcome::Ok { data: d, generation } => {
            assert_eq!(d, data);
            assert_eq!(generation, 1);
        }
        ReadOutcome::Busy => panic!("quiescent record must read cleanly"),
    }
}

#[test]
fn boot_timing_is_charged() {
    let c = Cluster::new(ClusterConfig::small(16).with_seed(18));
    assert!(!c.ring_up(), "ring is down until the boot roster finishes");
    let mut c = c;
    c.run_for(SimDuration::from_micros(100));
    assert!(!c.ring_up(), "16-node boot takes ~1 ms, not 100 µs");
    c.run_for(SimDuration::from_millis(5));
    assert!(c.ring_up());
    assert_eq!(SimTime::ZERO + (c.roster_history()[0].outcome.completed_at - SimTime::ZERO),
               c.roster_history()[0].outcome.completed_at);
}

#[test]
fn certification_sweep_after_boot_and_heal() {
    let mut c = booted(6, 20);
    c.run_for(SimDuration::from_millis(2));
    assert_eq!(c.certifications().len(), 1, "boot epoch certified");
    assert!(c.certifications()[0].passed());
    assert_eq!(c.certifications()[0].epoch, 1);

    c.schedule_failure(c.now(), Component::Node(NodeId(2)));
    c.run_for(SimDuration::from_millis(20));
    assert_eq!(c.certifications().len(), 2, "heal epoch certified too");
    let cert = &c.certifications()[1];
    assert_eq!(cert.epoch, 2);
    assert!(cert.echo_completed, "echo toured the healed ring");
    assert!(cert.crc_uniform, "survivor replicas agree");
    assert!(cert.passed());
}

#[test]
fn certification_echo_costs_one_tour() {
    let mut c = booted(8, 21);
    c.run_for(SimDuration::from_millis(2));
    let cert = &c.certifications()[0];
    let restored = c.roster_history()[0].outcome.completed_at;
    let sweep = cert.at - restored;
    // The echo tour at hardware speed: 8 hops of ~(0.19us ser + 0.5us
    // prop + 60ns) — well under 100 us.
    assert!(
        sweep < SimDuration::from_micros(100),
        "echo sweep took {sweep}"
    );
}

#[test]
fn collectives_over_the_ring() {
    use ampnet_core::ReduceOp;
    let mut c = booted(5, 22);
    c.enable_collectives();

    // Barrier: stagger the entries; nobody completes early.
    for n in 0..4u8 {
        c.coll_barrier(n, 1);
    }
    c.run_for(SimDuration::from_millis(1));
    assert!(!c.coll_barrier_done(0, 1), "rank 4 not yet in");
    c.coll_barrier(4, 1);
    c.run_for(SimDuration::from_millis(1));
    for n in 0..5u8 {
        assert!(c.coll_barrier_done(n, 1), "rank {n}");
    }

    // All-reduce.
    for n in 0..5u8 {
        c.coll_allreduce(n, 2, (n as u64 + 1) * 10);
    }
    c.run_for(SimDuration::from_millis(1));
    for n in 0..5u8 {
        assert_eq!(c.coll_reduce_result(n, 2, ReduceOp::Sum), Some(150));
        assert_eq!(c.coll_reduce_result(n, 2, ReduceOp::Max), Some(50));
    }

    // Broadcast + gather.
    c.coll_bcast(2, 3, 0xABCD);
    for n in 0..5u8 {
        c.coll_gather(n, 4, 0, n as u64 * n as u64);
    }
    c.run_for(SimDuration::from_millis(1));
    for n in 0..5u8 {
        assert_eq!(c.coll_bcast_result(n, 3), Some(0xABCD));
    }
    assert_eq!(c.coll_gather_result(0, 4), Some(vec![0, 1, 4, 9, 16]));
    assert_eq!(c.total_drops(), 0);
}

#[test]
fn collectives_survive_a_roster_episode() {
    use ampnet_core::ReduceOp;
    let mut c = booted(6, 23);
    c.enable_collectives();
    // Contribute from half the ranks, break the ring, then the rest.
    for n in 0..3u8 {
        c.coll_allreduce(n, 9, 100 + n as u64);
    }
    c.schedule_failure(c.now() + SimDuration::from_micros(20), Component::Node(NodeId(5)));
    c.run_for(SimDuration::from_millis(10));
    for n in [3u8, 4] {
        c.coll_allreduce(n, 9, 100 + n as u64);
    }
    // Rank 5 is dead; the survivors' reduce over 6 ranks can never
    // complete — applications detect this via the roster change and
    // re-issue over the surviving group (new tag).
    c.run_for(SimDuration::from_millis(5));
    assert_eq!(c.coll_reduce_result(0, 9, ReduceOp::Sum), None);
    // Regroup: 5 survivors, fresh tag.
    for n in 0..5u8 {
        c.coll_allreduce(n, 10, n as u64);
    }
    c.run_for(SimDuration::from_millis(5));
    // Note: ranks were sized at 6; survivors see 5/6 contributions on
    // tag 10 plus nothing from rank 5 — still incomplete by design.
    // The application-level answer is to re-rank after a roster
    // change; verify the messaging itself stayed lossless instead.
    assert_eq!(c.total_drops(), 0);
}

#[test]
fn trace_records_milestones() {
    let mut c = Cluster::new(ClusterConfig::small(5).with_seed(60));
    c.enable_trace(64);
    c.run_for(SimDuration::from_millis(5));
    c.schedule_failure(c.now(), Component::Node(NodeId(2)));
    c.run_for(SimDuration::from_millis(20));
    let entries: Vec<String> = c.trace().entries().map(|e| e.to_string()).collect();
    assert!(
        entries.iter().any(|e| e.contains("roster") && e.contains("epoch 2")),
        "roster milestone missing: {entries:?}"
    );
    assert!(
        entries.iter().any(|e| e.contains("certified")),
        "certification milestone missing: {entries:?}"
    );
    // Disabled by default: a fresh cluster records nothing.
    let mut quiet = Cluster::new(ClusterConfig::small(3).with_seed(61));
    quiet.run_for(SimDuration::from_millis(5));
    assert!(quiet.trace().is_empty());
}

#[test]
fn ampip_sockets_over_the_ring() {
    use ampnet_core::SockAddr;
    let mut c = booted(4, 62);
    c.sock_bind(0, 5000).unwrap();
    c.sock_bind(3, 80).unwrap();
    c.sock_send(0, 5000, SockAddr { node: 3, port: 80 }, b"GET /status")
        .unwrap();
    c.run_for(SimDuration::from_millis(1));
    let req = c.sock_recv(3, 80).expect("request arrived");
    assert_eq!(req.data, b"GET /status");
    assert_eq!(req.from, SockAddr { node: 0, port: 5000 });
    // Reply through the ring.
    c.sock_send(3, 80, req.from, b"200 OK").unwrap();
    c.run_for(SimDuration::from_millis(1));
    assert_eq!(c.sock_recv(0, 5000).unwrap().data, b"200 OK");
    // Unbound destination is UDP-dropped, not fatal.
    c.sock_send(0, 5000, SockAddr { node: 2, port: 9 }, b"void")
        .unwrap();
    c.run_for(SimDuration::from_millis(1));
    assert!(c.sock_recv(2, 9).is_none());
    assert_eq!(c.total_drops(), 0, "MAC still never drops");
}

#[test]
fn ampthreads_remote_execution_end_to_end() {
    use ampnet_core::TaskKind;
    let mut c = Cluster::new(
        ClusterConfig::small(5)
            .with_seed(63)
            .with_regions(vec![(0, 64 * 1024), (3, 16 * 16)]),
    );
    c.run_for(SimDuration::from_millis(5));
    c.enable_threads(3, 16);

    // Node 0 farms squares out to nodes 1..4.
    for (slot, target) in [(0u32, 1u8), (1, 2), (2, 3), (3, 4)] {
        c.spawn_remote(0, slot, TaskKind::Square, target, slot + 10);
    }
    c.run_for(SimDuration::from_millis(2));
    // Doorbell interrupts executed automatically; completions landed;
    // the submitter collects.
    for slot in 0..4u32 {
        let result = c.collect_remote(0, slot).expect("task finished");
        assert_eq!(result, (slot + 10) * (slot + 10));
    }
    c.run_for(SimDuration::from_millis(1));
    assert!(c.caches_converged(), "task table converged after frees");
    assert_eq!(c.total_drops(), 0);
}

#[test]
fn ampthreads_result_survives_submitter_death() {
    use ampnet_core::TaskKind;
    let mut c = Cluster::new(
        ClusterConfig::small(5)
            .with_seed(64)
            .with_regions(vec![(0, 1024), (3, 16 * 16)]),
    );
    c.run_for(SimDuration::from_millis(5));
    c.enable_threads(3, 16);
    c.spawn_remote(0, 7, TaskKind::PopCount, 2, 0xFFFF_0001);
    c.run_for(SimDuration::from_millis(2));
    // Submitter dies after the worker finished.
    c.schedule_failure(c.now(), Component::Node(NodeId(0)));
    c.run_for(SimDuration::from_millis(20));
    // Any survivor can collect from its replica.
    let result = c.collect_remote(4, 7).expect("replicated result");
    assert_eq!(result, 17);
}

#[test]
fn repair_reabsorbs_isolated_node() {
    let mut c = booted(4, 65);
    // Cut EVERY fiber of node 2: it is isolated (still alive).
    for s in 0..4u8 {
        c.schedule_failure(
            c.now() + SimDuration::from_micros(s as u64 + 1),
            Component::Link(NodeId(2), SwitchId(s)),
        );
    }
    c.run_for(SimDuration::from_millis(20));
    assert_eq!(c.ring().len(), 3, "node 2 isolated");
    assert!(c.node_online(2), "alive but unreachable");

    // Splice one fiber back: the ring grows to 4 again.
    c.schedule_repair(c.now(), Component::Link(NodeId(2), SwitchId(1)));
    c.run_for(SimDuration::from_millis(10));
    assert_eq!(c.ring().len(), 4, "repair re-absorbed the node");
    assert!(matches!(
        c.roster_history().last().unwrap().reason,
        ampnet_core::RosterReason::Repair(_)
    ));
    // Traffic reaches the reconnected node.
    c.send_message(0, 2, 0, b"welcome back");
    c.run_for(SimDuration::from_millis(1));
    assert_eq!(c.pop_message(2).unwrap().payload, b"welcome back");
}

#[test]
fn spare_repair_is_silent() {
    let mut c = booted(4, 66);
    let epoch = c.epoch();
    c.schedule_failure(c.now(), Component::Link(NodeId(1), SwitchId(3)));
    c.run_for(SimDuration::from_millis(2));
    c.schedule_repair(c.now(), Component::Link(NodeId(1), SwitchId(3)));
    c.run_for(SimDuration::from_millis(5));
    assert_eq!(c.epoch(), epoch, "spare out, spare back: no episodes");
    assert!(c.ring_up());
}

#[test]
fn background_sweep_finds_spare_faults() {
    let mut c = booted(4, 67);
    c.enable_trace(32);
    c.enable_background_sweep(SimDuration::from_millis(1));
    let epoch = c.epoch();
    // A spare fiber dies silently (no light on the ring dims).
    c.schedule_failure(c.now(), Component::Link(NodeId(1), SwitchId(2)));
    c.run_for(SimDuration::from_millis(5));
    assert_eq!(c.epoch(), epoch, "no emergency rostering for a spare");
    assert_eq!(c.spare_faults().len(), 1, "but the sweep caught it");
    assert!(matches!(
        c.spare_faults()[0].1,
        Component::Link(NodeId(1), SwitchId(2))
    ));
    // No duplicates on later sweeps.
    c.run_for(SimDuration::from_millis(5));
    assert_eq!(c.spare_faults().len(), 1);
}

#[test]
fn cascading_failovers_still_lossless() {
    let mut c = booted(6, 68);
    let deadline = c.now() + SimDuration::from_millis(60);
    c.start_counter_app(CounterAppConfig {
        members: vec![(1, 90), (2, 70), (3, 80)],
        policy: FailoverPolicy {
            failover_period: SimDuration::from_millis(1),
            ..Default::default()
        },
        counter_layout: RecordLayout {
            region: 0,
            offset: 4096,
            data_len: 8,
        },
        heartbeat_layout: RecordLayout {
            region: 0,
            offset: 4160,
            data_len: 8,
        },
        deadline,
    });
    // Kill the leader... and then its successor.
    c.schedule_failure(c.now() + SimDuration::from_millis(10), Component::Node(NodeId(1)));
    c.schedule_failure(c.now() + SimDuration::from_millis(30), Component::Node(NodeId(3)));
    c.run_for(SimDuration::from_millis(100));
    let r = c.counter_report().unwrap();
    assert_eq!(r.resumes.len(), 2, "two failovers");
    assert_eq!(r.resumes[0].new_leader, 3, "80 beats 70 first");
    assert_eq!(r.resumes[1].new_leader, 2, "last survivor takes over");
    assert_eq!(r.resumes[0].lost_committed, 0);
    assert_eq!(r.resumes[1].lost_committed, 0, "no loss across cascades");
    assert!(r.committed > 0);
    // The lone survivor still carries the full committed state.
    let v = c.cache(2).read_u64(0, 4096 + 8).unwrap();
    assert!(v >= r.committed);
}

#[test]
fn custom_interrupts_reach_the_inbox() {
    use ampnet_core::InterruptPayload;
    let mut c = booted(3, 69);
    let ip = InterruptPayload {
        vector: 0x0099,
        cookie: 7,
        arg: 0xABCD_0123,
    };
    c.send_interrupt(0, 2, ip);
    c.run_for(SimDuration::from_millis(1));
    assert_eq!(c.pop_interrupt(2), Some(ip));
    assert!(c.pop_interrupt(2).is_none());
    assert!(c.pop_interrupt(1).is_none(), "interrupts are unicast");
}

#[test]
fn in_flight_unicast_at_failure_is_replayed() {
    // Regression: a unicast whose fragments are on the wire when the
    // ring breaks must be replayed after healing, even though the
    // outage lasts far longer than the normal delivery window.
    let mut c = booted(6, 70);
    c.send_message(0, 4, 0, b"mid-flight datagram");
    // Break the ring 2 µs later — fragments are still in flight
    // (a tour takes ~6 µs).
    c.schedule_failure(
        c.now() + SimDuration::from_micros(2),
        Component::Node(NodeId(2)),
    );
    c.run_for(SimDuration::from_millis(20));
    assert!(c.ring_up());
    assert_eq!(
        c.pop_message(4).map(|d| d.payload),
        Some(b"mid-flight datagram".to_vec()),
        "in-flight unicast must survive the outage via replay"
    );
}
