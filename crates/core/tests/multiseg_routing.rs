//! Multi-segment routing tests (slide 15: segments joined by routers,
//! with "2R's" for redundancy).

use ampnet_core::{
    Cluster, ClusterConfig, Component, GlobalAddr, MultiSegment, NodeId, ParallelMode, SimDuration,
};

fn ga(segment: u8, node: u8) -> GlobalAddr {
    GlobalAddr { segment, node }
}

fn two_segments(seed: u64) -> MultiSegment {
    let mut net = MultiSegment::new(vec![
        ClusterConfig::small(4).with_seed(seed),
        ClusterConfig::small(4).with_seed(seed + 1),
    ]);
    // Router pair: node 3 of segment 0 ↔ node 0 of segment 1.
    net.add_bridge(ga(0, 3), ga(1, 0), SimDuration::from_micros(5));
    net.run_for(SimDuration::from_millis(5)); // boot both rings
    assert!(net.segment(0).ring_up() && net.segment(1).ring_up());
    net
}

#[test]
fn local_global_delivery() {
    let mut net = two_segments(30);
    net.send_global(ga(0, 0), ga(0, 2), b"same segment");
    net.run_for(SimDuration::from_millis(1));
    let d = net.pop_global(ga(0, 2)).expect("delivered");
    assert_eq!(d.payload, b"same segment");
    assert_eq!(d.src, ga(0, 0));
}

#[test]
fn cross_segment_delivery() {
    let mut net = two_segments(31);
    net.send_global(ga(0, 1), ga(1, 2), b"across the router");
    net.run_for(SimDuration::from_millis(2));
    let d = net.pop_global(ga(1, 2)).expect("crossed the bridge");
    assert_eq!(d.payload, b"across the router");
    assert_eq!(d.src, ga(0, 1));
    assert_eq!(net.unroutable, 0);
}

#[test]
fn router_node_sending_crosses_directly() {
    let mut net = two_segments(32);
    net.send_global(ga(0, 3), ga(1, 1), b"from the router itself");
    net.run_for(SimDuration::from_millis(2));
    assert_eq!(
        net.pop_global(ga(1, 1)).unwrap().payload,
        b"from the router itself"
    );
}

#[test]
fn three_segment_line_multi_hop() {
    let mut net = MultiSegment::new(vec![
        ClusterConfig::small(3).with_seed(33),
        ClusterConfig::small(3).with_seed(34),
        ClusterConfig::small(3).with_seed(35),
    ]);
    net.add_bridge(ga(0, 2), ga(1, 0), SimDuration::from_micros(5));
    net.add_bridge(ga(1, 2), ga(2, 0), SimDuration::from_micros(5));
    net.run_for(SimDuration::from_millis(5));
    net.send_global(ga(0, 0), ga(2, 1), b"two bridges away");
    net.run_for(SimDuration::from_millis(3));
    let d = net.pop_global(ga(2, 1)).expect("multi-hop routed");
    assert_eq!(d.payload, b"two bridges away");
    assert_eq!(d.src, ga(0, 0));
    assert_eq!(net.unroutable, 0);
}

#[test]
fn redundant_router_takes_over() {
    // Slide 15's "2R's": two bridges between the segments.
    let mut net = MultiSegment::new(vec![
        ClusterConfig::small(4).with_seed(36),
        ClusterConfig::small(4).with_seed(37),
    ]);
    net.add_bridge(ga(0, 3), ga(1, 0), SimDuration::from_micros(5));
    net.add_bridge(ga(0, 2), ga(1, 1), SimDuration::from_micros(5));
    net.run_for(SimDuration::from_millis(5));

    // Primary router (segment 0, node 3) dies; its segment re-rosters
    // and the second bridge carries the traffic.
    let t = net.segment(0).now();
    net.segment_mut(0)
        .schedule_failure(t, Component::Node(NodeId(3)));
    net.run_for(SimDuration::from_millis(10));
    assert_eq!(net.segment(0).ring().len(), 3);

    net.send_global(ga(0, 0), ga(1, 2), b"via the backup router");
    net.run_for(SimDuration::from_millis(3));
    let d = net.pop_global(ga(1, 2)).expect("backup bridge used");
    assert_eq!(d.payload, b"via the backup router");
    assert_eq!(net.unroutable, 0);
}

#[test]
fn no_route_is_counted_not_lost_silently() {
    let mut net = MultiSegment::new(vec![
        ClusterConfig::small(3).with_seed(38),
        ClusterConfig::small(3).with_seed(39),
    ]);
    // No bridge at all.
    net.run_for(SimDuration::from_millis(5));
    net.send_global(ga(0, 0), ga(1, 1), b"nowhere to go");
    net.run_for(SimDuration::from_millis(2));
    assert_eq!(net.unroutable, 1);
    assert!(net.pop_global(ga(1, 1)).is_none());
}

#[test]
fn segments_heal_independently() {
    let mut net = two_segments(40);
    // Break segment 1's ring while segment 0 keeps serving.
    let t = net.segment(1).now();
    net.segment_mut(1)
        .schedule_failure(t, Component::Node(NodeId(3)));
    net.send_global(ga(0, 0), ga(0, 1), b"unaffected");
    net.run_for(SimDuration::from_millis(10));
    assert_eq!(net.pop_global(ga(0, 1)).unwrap().payload, b"unaffected");
    assert_eq!(net.segment(1).ring().len(), 3, "segment 1 healed alone");
    // Cross-segment traffic works after the heal.
    net.send_global(ga(0, 2), ga(1, 1), b"post-heal crossing");
    net.run_for(SimDuration::from_millis(3));
    assert_eq!(
        net.pop_global(ga(1, 1)).unwrap().payload,
        b"post-heal crossing"
    );
}

#[test]
fn bidirectional_crossing() {
    let mut net = two_segments(41);
    net.send_global(ga(0, 1), ga(1, 3), b"eastbound");
    net.send_global(ga(1, 3), ga(0, 1), b"westbound");
    net.run_for(SimDuration::from_millis(3));
    assert_eq!(net.pop_global(ga(1, 3)).unwrap().payload, b"eastbound");
    assert_eq!(net.pop_global(ga(0, 1)).unwrap().payload, b"westbound");
}

#[test]
fn clusters_stay_deterministic_under_lockstep() {
    let run = |seed| {
        let mut net = two_segments(seed);
        net.send_global(ga(0, 0), ga(1, 2), b"det");
        net.run_for(SimDuration::from_millis(3));
        (
            net.pop_global(ga(1, 2)).map(|d| d.payload),
            net.segment(0).now().as_nanos(),
            net.segment(1).now().as_nanos(),
        )
    };
    assert_eq!(run(50), run(50));
}

#[test]
fn crossing_near_deadline_is_not_deferred_past_it() {
    // Regression for the slice-boundary loss bug: with a coarse slice
    // (40 µs) and `deadline - now < slice`, a datagram that matures
    // mid-slice (bridge latency 5 µs) used to be injected only at the
    // clamped final boundary == deadline, where the far cluster never
    // runs again — so it silently missed the deadline. Boundaries are
    // now also placed at crossing maturity instants.
    let mut net = two_segments(60);
    let coarse = SimDuration::from_micros(40);
    // Router itself sends, so the crossing is queued immediately with
    // deliver_at = now + 5 µs, inside the one-and-only slice: with
    // deadline - now (35 µs) < slice (40 µs), the old engine's single
    // clamped slice injected the crossing at the deadline itself and
    // the far ring never carried it.
    net.send_global(ga(0, 3), ga(1, 2), b"just in time");
    let deadline = net.segment(0).now() + SimDuration::from_micros(35);
    net.run_until(deadline, coarse);
    let d = net
        .pop_global(ga(1, 2))
        .expect("crossing must be injected at maturity, not deferred past the deadline");
    assert_eq!(d.payload, b"just in time");
    assert_eq!(net.unroutable, 0);
}

#[test]
fn threaded_mode_delivers_like_serial() {
    let run = |mode: ParallelMode| {
        let mut net = two_segments(61);
        net.set_parallel_mode(mode);
        net.send_global(ga(0, 1), ga(1, 2), b"mode-independent");
        net.send_global(ga(1, 3), ga(0, 0), b"westbound");
        net.run_for(SimDuration::from_millis(3));
        (
            net.pop_global(ga(1, 2)).map(|d| d.payload),
            net.pop_global(ga(0, 0)).map(|d| d.payload),
            net.unroutable,
            net.segment(0).now(),
            net.segment(1).now(),
        )
    };
    let serial = run(ParallelMode::Serial);
    assert_eq!(serial.0.as_deref(), Some(b"mode-independent".as_slice()));
    assert_eq!(serial, run(ParallelMode::Threads(2)));
    assert_eq!(serial, run(ParallelMode::Threads(8)));
}

#[test]
fn threaded_mode_survives_router_failover() {
    let run = |mode: ParallelMode| {
        let mut net = MultiSegment::new(vec![
            ClusterConfig::small(4).with_seed(62),
            ClusterConfig::small(4).with_seed(63),
        ]);
        net.add_bridge(ga(0, 3), ga(1, 0), SimDuration::from_micros(5));
        net.add_bridge(ga(0, 2), ga(1, 1), SimDuration::from_micros(5));
        net.set_parallel_mode(mode);
        net.run_for(SimDuration::from_millis(5));
        let t = net.segment(0).now();
        net.segment_mut(0)
            .schedule_failure(t, Component::Node(NodeId(3)));
        net.run_for(SimDuration::from_millis(10));
        net.send_global(ga(0, 0), ga(1, 2), b"backup bridge");
        net.run_for(SimDuration::from_millis(3));
        (net.pop_global(ga(1, 2)).map(|d| d.payload), net.unroutable)
    };
    let serial = run(ParallelMode::Serial);
    assert_eq!(serial.0.as_deref(), Some(b"backup bridge".as_slice()));
    assert_eq!(serial, run(ParallelMode::Threads(4)));
}

#[test]
fn more_threads_than_segments_is_fine() {
    let mut net = two_segments(64);
    net.set_parallel_mode(ParallelMode::Threads(16)); // clamped to 2 workers
    net.send_global(ga(0, 0), ga(1, 1), b"overprovisioned");
    net.run_for(SimDuration::from_millis(2));
    assert_eq!(
        net.pop_global(ga(1, 1)).unwrap().payload,
        b"overprovisioned"
    );
}

// Re-exported type sanity.
#[test]
fn cluster_accessors() {
    let net = two_segments(42);
    let c: &Cluster = net.segment(0);
    assert_eq!(c.n_nodes(), 4);
}
