//! Property tests over the whole cluster: for arbitrary survivable
//! failure schedules, the system invariants hold — the ring heals to
//! the exact maximum, nothing drops, caches reconverge, and the run is
//! deterministic.

use ampnet_core::{Cluster, ClusterConfig, Component, NodeId, SimDuration, SwitchId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Fault {
    Node(u8),
    Switch(u8),
    Link(u8, u8),
}

fn arb_schedule(n_nodes: usize) -> impl Strategy<Value = Vec<(u64, Fault)>> {
    let fault = prop_oneof![
        (0..n_nodes as u8).prop_map(Fault::Node),
        (1u8..4).prop_map(Fault::Switch), // keep switch 0 candidates alive
        ((0..n_nodes as u8), (0u8..4)).prop_map(|(n, s)| Fault::Link(n, s)),
    ];
    proptest::collection::vec(((500u64..15_000), fault), 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary (survivable) fault schedules: ring heals maximally,
    /// no MAC ever drops, surviving replicas reconverge.
    #[test]
    fn fault_schedule_invariants(
        schedule in arb_schedule(8),
        seed in 0u64..1000,
    ) {
        let n = 8usize;
        let mut c = Cluster::new(ClusterConfig::small(n).with_seed(seed));
        c.run_for(SimDuration::from_millis(5));
        prop_assume!(c.ring_up());

        // Background cache traffic from every node.
        for src in 0..n as u8 {
            c.cache_write(src, 0, src as u32 * 256, &[src; 64]);
        }
        // Inject the schedule, skipping faults that would kill nodes
        // 0..2 (keep a quorum for simple assertions).
        let base = c.now();
        let mut killed_nodes = std::collections::HashSet::new();
        for (us, f) in &schedule {
            let at = base + SimDuration::from_micros(*us);
            match f {
                Fault::Node(id) if *id >= 2 => {
                    killed_nodes.insert(*id);
                    c.schedule_failure(at, Component::Node(NodeId(*id)));
                }
                Fault::Switch(s) => {
                    c.schedule_failure(at, Component::Switch(SwitchId(*s)));
                }
                Fault::Link(nd, s) => {
                    c.schedule_failure(at, Component::Link(NodeId(*nd), SwitchId(*s)));
                }
                _ => {}
            }
        }
        c.run_for(SimDuration::from_millis(80));

        // Ring healed and is exactly maximal.
        prop_assert!(c.ring_up(), "ring did not heal");
        let exact = c.topology().largest_ring();
        prop_assert_eq!(c.ring().len(), exact.len());
        // Paper's no-drop guarantee.
        prop_assert_eq!(c.total_drops(), 0);
        // All surviving replicas byte-identical after replay.
        prop_assert!(c.caches_converged(), "caches diverged");
        // Post-heal traffic works.
        c.send_message(0, 1, 0, b"alive");
        c.run_for(SimDuration::from_millis(2));
        prop_assert_eq!(c.pop_message(1).map(|d| d.payload), Some(b"alive".to_vec()));
    }

    /// Bit-exact determinism for any schedule.
    #[test]
    fn determinism_for_any_schedule(
        schedule in arb_schedule(6),
        seed in 0u64..100,
    ) {
        let run = || {
            let mut c = Cluster::new(ClusterConfig::small(6).with_seed(seed));
            c.run_for(SimDuration::from_millis(5));
            let base = c.now();
            for (us, f) in &schedule {
                let at = base + SimDuration::from_micros(*us);
                match f {
                    Fault::Node(id) if *id >= 2 && (*id as usize) < 6 => {
                        c.schedule_failure(at, Component::Node(NodeId(*id)));
                    }
                    Fault::Switch(s) => {
                        c.schedule_failure(at, Component::Switch(SwitchId(*s)));
                    }
                    Fault::Link(nd, s) if (*nd as usize) < 6 => {
                        c.schedule_failure(at, Component::Link(NodeId(*nd), SwitchId(*s)));
                    }
                    _ => {}
                }
            }
            c.cache_write(0, 0, 0, b"det");
            c.run_for(SimDuration::from_millis(40));
            (
                c.epoch(),
                c.ring().order.clone(),
                c.now().as_nanos(),
                c.certifications().len(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
