//! The AmpNet cluster: every subsystem wired into one deterministic
//! discrete-event simulation.
//!
//! A [`Cluster`] owns the physical plant (`ampnet-topo`), one node
//! context per host (ring MAC, network cache replica, message
//! endpoints, semaphore client, DK lifecycle) and the global event
//! loop. Failures injected into the plant trigger detection and
//! rostering exactly as slides 16/18 describe; while the ring heals,
//! traffic pauses, and sources replay their unacknowledged packets
//! afterwards (slide 18's smart data recovery).

use crate::config::ClusterConfig;
use crate::observe::ObservedEvent;
use ampnet_cache::atomics;
use ampnet_cache::seqlock_msg::{self, ReadOutcome, RecordLayout};
use ampnet_cache::{NetworkCache, SemaphoreAction, SemaphoreClient};
use ampnet_dk::{assimilate, AssimilationFailure, JoinRequest};
use ampnet_packet::build::{self, InterruptPayload};
use ampnet_packet::{MicroPacket, PacketType};
use ampnet_ring::{ArrivalAction, RingNode, TxChoice};
use ampnet_roster::{initial_rostering, run_rostering, RosterOutcome, RosterSkip};
use ampnet_services::msg::{Datagram, MsgRx, MsgTx};
use ampnet_services::socket::{AmpIp, Received, SockAddr, SocketError, AMPIP_STREAM};
use ampnet_services::threads::{TaskKind, TaskTable, THREAD_VECTOR};
use ampnet_sim::{Level, Sim, SimDuration, SimTime, Trace};
use ampnet_topo::montecarlo::{apply as apply_failure, Component};
use ampnet_topo::{LogicalRing, NodeId, Topology};
use std::collections::VecDeque;

/// Why a roster episode ran.
#[derive(Debug, Clone, PartialEq)]
pub enum RosterReason {
    /// Cluster bring-up.
    Boot,
    /// A component failed.
    Failure(Component),
    /// A node (re-)assimilated.
    Join(NodeId),
    /// A switch or fiber was repaired, enlarging the possible ring.
    Repair(Component),
}

/// One completed roster episode.
#[derive(Debug, Clone)]
pub struct RosterEvent {
    /// Trigger.
    pub reason: RosterReason,
    /// Full protocol accounting.
    pub outcome: RosterOutcome,
}

/// Per-node composite state.
pub(crate) struct NodeCtx {
    pub(crate) mac: RingNode,
    pub(crate) cache: NetworkCache,
    pub(crate) online: bool,
    pub(crate) msg_tx: MsgTx,
    pub(crate) msg_rx: MsgRx,
    pub(crate) inbox: VecDeque<Datagram>,
    pub(crate) interrupts: VecDeque<InterruptPayload>,
    pub(crate) sem: Option<SemaphoreClient>,
    /// Collective rank engine (enabled by `enable_collectives`).
    pub(crate) rank: Option<ampnet_services::mpi::Rank>,
    /// AmpIP datagram socket endpoint.
    pub(crate) ampip: AmpIp,
    /// Monotonic counter of semaphore sends; stale retransmission
    /// timers compare against it.
    pub(crate) sem_seq: u64,
    /// Own broadcasts inserted and not yet stripped (replayed after a
    /// roster episode — slide 18 smart data recovery).
    pub(crate) outstanding: Vec<MicroPacket>,
    /// Own unicasts in flight, with insertion time (replayed likewise;
    /// entries expire after two quiet tours).
    pub(crate) outstanding_unicast: Vec<(SimTime, MicroPacket)>,
}

#[derive(Debug)]
pub(crate) enum Ev {
    Arrival { epoch: u64, node: u8, pkt: MicroPacket },
    TxDone { epoch: u64, node: u8 },
    Retry { node: u8 },
    Fail(Component),
    Repair(Component),
    RingRestored { epoch: u64 },
    Join { node: u8, req: JoinRequest },
    NodeOnline { node: u8 },
    // Application events (see apps.rs).
    SemPoll { node: u8 },
    SemCritDone { node: u8 },
    /// Retransmission check for an in-flight D64 request.
    SemTimeout { node: u8, seq: u64 },
    CounterTick,
    FailoverPoll { node: u8 },
    SeqWriterTick,
    SeqReaderTick { node: u8 },
    /// A thread doorbell raced its task-entry DMA; re-check shortly.
    ThreadRetry { node: u8, slot: u32, tries: u8 },
    /// Background diagnostic sweep over spare components.
    DiagSweep,
    /// A phy-level bit-error burst on a node's receive fiber.
    ErrorBurst { node: u8, seed: u64, errors: u32 },
}

/// The simulated AmpNet cluster.
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) topo: Topology,
    pub(crate) ring: LogicalRing,
    pub(crate) ring_up: bool,
    pub(crate) epoch: u64,
    pub(crate) sim: Sim<Ev>,
    pub(crate) nodes: Vec<NodeCtx>,
    pub(crate) tx_busy: Vec<bool>,
    retry_pending: Vec<bool>,
    pending_roster: Option<(RosterReason, RosterOutcome)>,
    history: Vec<RosterEvent>,
    rejections: Vec<(u8, AssimilationFailure)>,
    /// Position of each node in the current ring (usize::MAX = not a
    /// member).
    ring_pos: Vec<usize>,
    pub(crate) apps: crate::apps::AppState,
    pub(crate) diag: crate::diagnostics::DiagState,
    pub(crate) trace: Trace,
    /// AmpThreads task table (enabled by `enable_threads`).
    task_table: Option<TaskTable>,
    /// Instant the ring last went down (replay-window anchor).
    ring_down_at: SimTime,
    /// Background sweep interval (None = disabled).
    sweep_interval: Option<SimDuration>,
    /// Spare faults found by the background sweep: (found at, component).
    spare_faults: Vec<(SimTime, Component)>,
    /// Spare faults already reported (avoid duplicates).
    known_spare_faults: std::collections::HashSet<String>,
    /// Journal of externally visible transitions (see `observe.rs`).
    observations: Vec<(SimTime, ObservedEvent)>,
}

impl Cluster {
    /// Build and boot a cluster. The initial roster episode is charged
    /// for (the ring is up after its two tours).
    pub fn new(cfg: ClusterConfig) -> Self {
        let topo = Topology::redundant(cfg.n_nodes, cfg.n_switches, cfg.fiber_length_m);
        let nodes = (0..cfg.n_nodes)
            .map(|i| {
                let mut cache = NetworkCache::new(i as u8);
                for &(region, size) in &cfg.cache_regions {
                    cache.define_region(region, size).expect("unique regions");
                }
                NodeCtx {
                    mac: RingNode::new(i as u8, cfg.mac),
                    cache,
                    online: true,
                    msg_tx: MsgTx::new(i as u8),
                    msg_rx: MsgRx::new(),
                    inbox: VecDeque::new(),
                    interrupts: VecDeque::new(),
                    sem: None,
                    rank: None,
                    ampip: AmpIp::new(i as u8),
                    sem_seq: 0,
                    outstanding: vec![],
                    outstanding_unicast: vec![],
                }
            })
            .collect();
        let mut sim = Sim::new(cfg.seed);
        let boot = initial_rostering(&topo, &cfg.timing.roster).expect("nodes exist");
        sim.schedule_at(boot.completed_at, Ev::RingRestored { epoch: 1 });
        let n = cfg.n_nodes;
        let mut cluster = Cluster {
            topo,
            ring: LogicalRing::empty(),
            ring_up: false,
            epoch: 1,
            sim,
            nodes,
            tx_busy: vec![false; n],
            retry_pending: vec![false; n],
            pending_roster: Some((RosterReason::Boot, boot)),
            history: vec![],
            rejections: vec![],
            ring_pos: vec![usize::MAX; n],
            apps: Default::default(),
            diag: Default::default(),
            trace: Trace::disabled(),
            task_table: None,
            ring_down_at: SimTime::ZERO,
            sweep_interval: None,
            spare_faults: vec![],
            known_spare_faults: Default::default(),
            observations: vec![],
            cfg,
        };
        cluster.ring_pos = vec![usize::MAX; cluster.cfg.n_nodes];
        cluster
    }

    // ----- clock and run loop -----

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Run the event loop until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((_, ev)) = self.sim.pop_next(deadline) {
            self.handle(ev);
        }
    }

    /// Run the event loop for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    // ----- introspection -----

    /// The current logical ring.
    pub fn ring(&self) -> &LogicalRing {
        &self.ring
    }

    /// Whether the ring is currently carrying traffic.
    pub fn ring_up(&self) -> bool {
        self.ring_up
    }

    /// Current roster epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Completed roster episodes, oldest first.
    pub fn roster_history(&self) -> &[RosterEvent] {
        &self.history
    }

    /// Enable milestone tracing (roster phases, failovers,
    /// certifications), retaining the most recent `capacity` entries.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::enabled(capacity, Level::Info);
    }

    /// The milestone trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub(crate) fn log(&mut self, level: Level, subsystem: &'static str, message: String) {
        if self.trace.wants(level) {
            let now = self.sim.now();
            self.trace.log(now, level, subsystem, message);
        }
    }

    /// The observation journal: every externally visible transition
    /// (failures applied, roster episodes, repairs, bursts), stamped
    /// with simulated time. Deterministic for a given config and seed.
    pub fn observations(&self) -> &[(SimTime, ObservedEvent)] {
        &self.observations
    }

    pub(crate) fn observe(&mut self, ev: ObservedEvent) {
        let now = self.sim.now();
        self.observations.push((now, ev));
    }

    /// Join attempts rejected by DK policy.
    pub fn rejections(&self) -> &[(u8, AssimilationFailure)] {
        &self.rejections
    }

    /// The physical plant (for assertions).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Sum of `would_drop` across all MACs — the paper says always 0.
    pub fn total_drops(&self) -> u64 {
        self.nodes.iter().map(|n| n.mac.stats().would_drop).sum()
    }

    /// Is the node online (assimilated and alive)?
    pub fn node_online(&self, node: u8) -> bool {
        self.nodes[node as usize].online
    }

    /// Do all online nodes hold byte-identical caches right now?
    /// (Only meaningful when traffic has quiesced.)
    pub fn caches_converged(&self) -> bool {
        let online: Vec<&NodeCtx> = self.nodes.iter().filter(|n| n.online).collect();
        match online.split_first() {
            None => true,
            Some((first, rest)) => rest
                .iter()
                .all(|n| first.cache.converged_with(&n.cache)),
        }
    }

    /// A node's cache replica (read-only).
    pub fn cache(&self, node: u8) -> &NetworkCache {
        &self.nodes[node as usize].cache
    }

    // ----- application-facing operations -----

    /// Send an application datagram from `src` to `dst` (or broadcast
    /// with [`ampnet_packet::BROADCAST`]).
    pub fn send_message(&mut self, src: u8, dst: u8, stream: u8, payload: &[u8]) {
        let pkts = self.nodes[src as usize].msg_tx.send(dst, stream, payload);
        for p in pkts {
            self.enqueue_own(src, p);
        }
        self.kick(src);
    }

    /// Pop the next delivered datagram at `node`.
    pub fn pop_message(&mut self, node: u8) -> Option<Datagram> {
        self.nodes[node as usize].inbox.pop_front()
    }

    /// Pop the next delivered datagram on a specific stream at `node`,
    /// leaving other streams' traffic queued.
    pub fn pop_message_on(&mut self, node: u8, stream: u8) -> Option<Datagram> {
        let inbox = &mut self.nodes[node as usize].inbox;
        let pos = inbox.iter().position(|d| d.stream == stream)?;
        inbox.remove(pos)
    }

    /// Number of configured nodes.
    pub fn n_nodes(&self) -> usize {
        self.cfg.n_nodes
    }

    /// Enable the background diagnostic sweep (slide 18): every
    /// `interval`, the DK scans for failed *spare* components — faults
    /// that dim no ring light and so trigger no emergency rostering —
    /// and logs them for maintenance.
    pub fn enable_background_sweep(&mut self, interval: SimDuration) {
        if self.sweep_interval.is_none() {
            self.sim.schedule_in(interval, Ev::DiagSweep);
        }
        self.sweep_interval = Some(interval);
    }

    /// Spare faults found by the background sweep, oldest first.
    pub fn spare_faults(&self) -> &[(SimTime, Component)] {
        &self.spare_faults
    }

    fn run_diag_sweep(&mut self) {
        let Some(interval) = self.sweep_interval else {
            return;
        };
        let now = self.sim.now();
        // Scan: failed links/switches that are not on the current ring
        // (ring faults trigger rostering through loss of light).
        let mut found: Vec<Component> = vec![];
        for s in self.topo.switch_ids() {
            if !self.topo.switch_alive(s) {
                found.push(Component::Switch(s));
            }
        }
        for n in self.topo.node_ids() {
            for s in self.topo.switch_ids() {
                if let Some(l) = self.topo.link(n, s) {
                    if !l.up {
                        found.push(Component::Link(n, s));
                    }
                }
            }
        }
        for c in found {
            let key = format!("{c:?}");
            if self.known_spare_faults.insert(key) {
                self.log(
                    Level::Warn,
                    "diag",
                    format!("background sweep found failed spare {c:?}"),
                );
                self.spare_faults.push((now, c));
            }
        }
        self.sim.schedule_in(interval, Ev::DiagSweep);
    }

    /// Enable AmpThreads: the task table lives in `region` (must be a
    /// configured cache region of at least `slots × 16` bytes); thread
    /// doorbell interrupts then execute automatically at their target.
    pub fn enable_threads(&mut self, region: u8, slots: u32) {
        self.task_table = Some(TaskTable { region, slots });
    }

    /// Submit a remote task: writes the replicated task entry and
    /// rings the target's doorbell. Collect with
    /// [`Cluster::collect_remote`].
    pub fn spawn_remote(&mut self, submitter: u8, slot: u32, kind: TaskKind, target: u8, arg: u32) {
        let table = self.task_table.expect("enable_threads first");
        let (pkts, doorbell) = table
            .submit(&mut self.nodes[submitter as usize].cache, slot, kind, target, arg)
            .expect("task table region configured");
        for p in pkts {
            self.enqueue_own(submitter, p);
        }
        self.enqueue_own(submitter, doorbell);
        self.kick(submitter);
    }

    /// Collect a finished remote task's result at `node` (frees the
    /// slot network-wide). `None` while still pending.
    pub fn collect_remote(&mut self, node: u8, slot: u32) -> Option<u32> {
        let table = self.task_table?;
        let (result, pkts) = table
            .collect(&mut self.nodes[node as usize].cache, slot)
            .ok()??;
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
        Some(result)
    }

    /// A THREAD_VECTOR doorbell arrived: run the task against this
    /// node's replica and publish the result. The doorbell is an
    /// urgent cell and can overtake the task-entry DMA packets, so a
    /// miss re-checks after a short delay (bounded retries).
    fn on_thread_interrupt(&mut self, node: u8, slot: u32) {
        self.try_thread_execute(node, slot, 0);
    }

    fn try_thread_execute(&mut self, node: u8, slot: u32, tries: u8) {
        let Some(table) = self.task_table else {
            return;
        };
        match table.execute(&mut self.nodes[node as usize].cache, slot) {
            Ok(Some((_result, pkts, completion))) => {
                for p in pkts {
                    self.enqueue_own(node, p);
                }
                self.enqueue_own(node, completion);
                self.kick(node);
            }
            _ if tries < 10 => {
                self.sim.schedule_in(
                    SimDuration::from_micros(5),
                    Ev::ThreadRetry {
                        node,
                        slot,
                        tries: tries + 1,
                    },
                );
            }
            _ => {} // entry never materialized; drop the doorbell
        }
    }

    /// Bind an AmpIP port at `node`.
    pub fn sock_bind(&mut self, node: u8, port: u16) -> Result<(), SocketError> {
        self.nodes[node as usize].ampip.bind(port)
    }

    /// Send an AmpIP datagram from `(node, src_port)` to `dst`.
    pub fn sock_send(
        &mut self,
        node: u8,
        src_port: u16,
        dst: SockAddr,
        data: &[u8],
    ) -> Result<(), SocketError> {
        let pkts = self.nodes[node as usize]
            .ampip
            .send_to(src_port, dst, data)?;
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
        Ok(())
    }

    /// Receive the next AmpIP datagram on a bound port at `node`.
    pub fn sock_recv(&mut self, node: u8, port: u16) -> Option<Received> {
        self.nodes[node as usize].ampip.recv_from(port)
    }

    /// Pop the next delivered interrupt at `node`.
    pub fn pop_interrupt(&mut self, node: u8) -> Option<InterruptPayload> {
        self.nodes[node as usize].interrupts.pop_front()
    }

    /// Send a remote interrupt (urgent MicroPacket) from `src` to
    /// `dst`. Vectors other than the AmpThreads doorbell surface at the
    /// destination via [`Cluster::pop_interrupt`].
    pub fn send_interrupt(&mut self, src: u8, dst: u8, payload: InterruptPayload) {
        let pkt = build::interrupt(src, dst, payload);
        self.enqueue_own(src, pkt);
        self.kick(src);
    }

    /// Write to the network cache at `node`; the update replicates to
    /// every online node via broadcast DMA MicroPackets.
    pub fn cache_write(&mut self, node: u8, region: u8, offset: u32, data: &[u8]) {
        let pkts = self.nodes[node as usize]
            .cache
            .write(region, offset, data, 1, 1)
            .expect("valid cache write");
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
    }

    /// Write a seqlock record at `node` (slide 9 protocol).
    pub fn record_write(&mut self, node: u8, layout: RecordLayout, data: &[u8]) {
        let pkts =
            seqlock_msg::write_record(&mut self.nodes[node as usize].cache, layout, data, 1, 1)
                .expect("valid record write");
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
    }

    /// One local seqlock read attempt at `node`.
    pub fn record_try_read(&self, node: u8, layout: RecordLayout) -> ReadOutcome {
        seqlock_msg::try_read(&self.nodes[node as usize].cache, layout).expect("valid layout")
    }

    // ----- fault injection and membership -----

    /// Schedule a component failure.
    pub fn schedule_failure(&mut self, at: SimTime, c: Component) {
        self.sim.schedule_at(at, Ev::Fail(c));
    }

    /// Schedule a node (re-)join.
    pub fn schedule_join(&mut self, at: SimTime, node: u8, req: JoinRequest) {
        self.sim.schedule_at(at, Ev::Join { node, req });
    }

    /// Schedule a switch/link repair (splice the fiber, power the
    /// switch). Node repairs go through [`Cluster::schedule_join`] —
    /// nodes must re-assimilate. If the repair lets a larger logical
    /// ring exist, a roster episode rebuilds onto it.
    pub fn schedule_repair(&mut self, at: SimTime, c: Component) {
        assert!(
            !matches!(c, Component::Node(_)),
            "node repairs must re-assimilate: use schedule_join"
        );
        self.sim.schedule_at(at, Ev::Repair(c));
    }

    /// Schedule a phy-level bit-error burst on `node`'s receive fiber:
    /// `errors` single-bit corruptions of the serial stream, replayable
    /// from `seed`. A detected burst escalates exactly like a carrier
    /// loss — the receiving NIU declares its upstream ring link dead
    /// and rostering heals around it; replay then restores any traffic
    /// the corrupted window cost (paper slides 16–18).
    pub fn schedule_error_burst(&mut self, at: SimTime, node: u8, seed: u64, errors: u32) {
        assert!((node as usize) < self.cfg.n_nodes, "no such node");
        self.sim.schedule_at(at, Ev::ErrorBurst { node, seed, errors });
    }

    fn apply_error_burst(&mut self, node: u8, seed: u64, errors: u32) {
        use ampnet_phy::{Decoder, Encoder, ErrorBurst, Symbol};
        // The deserializer sees a window of inter-frame fill while the
        // burst is active; corrupt it and count violations the way the
        // NIU's 8b/10b checker does. A disparity slip may surface a few
        // groups late — scanning the whole window models that.
        let mut burst = ErrorBurst::new(seed, errors);
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let mut detected = 0u32;
        let window = (errors as usize).max(1) * 4;
        for i in 0..window {
            let byte = (i % 251) as u8;
            let clean = enc.encode(Symbol::Data(byte)).expect("data encodes");
            let wire = if i % 4 == 0 {
                burst.corrupt_group(clean)
            } else {
                clean
            };
            match dec.decode(wire) {
                Ok(sym) if sym == Symbol::Data(byte) => {}
                _ => detected += 1,
            }
        }
        self.observe(ObservedEvent::ErrorBurst { node, errors, detected });
        self.log(
            Level::Warn,
            "phy",
            format!("node {node}: bit-error burst, {errors} injected, {detected} violations"),
        );
        let pos = self.ring_pos[node as usize];
        if detected == 0 || !self.ring_up || pos == usize::MAX || self.ring.order.len() < 2 {
            // Nothing detectable, or the lasers are already down /
            // re-syncing: the burst changes nothing.
            self.observe(ObservedEvent::ErrorBurstAbsorbed { node });
            return;
        }
        // Loss-of-sync on the incoming fiber: the link from the
        // upstream hop switch into this node is declared dead.
        let n = self.ring.order.len();
        let sw = self.ring.hops[(pos + n - 1) % n];
        let link = Component::Link(NodeId(node), sw);
        self.observe(ObservedEvent::ErrorBurstEscalated { node, link });
        self.log(
            Level::Warn,
            "phy",
            format!("node {node}: burst escalated, {link:?} lost sync"),
        );
        self.inject_failure(link);
    }

    // ----- internals: transport -----

    pub(crate) fn enqueue_own(&mut self, node: u8, pkt: MicroPacket) {
        let stream = pkt.ctrl.tag % self.cfg.mac.n_streams as u8;
        if pkt.ctrl.flags.contains(ampnet_packet::Flags::URGENT) {
            self.nodes[node as usize].mac.enqueue_urgent(pkt);
        } else {
            self.nodes[node as usize].mac.enqueue_own(stream, pkt);
        }
    }

    fn ring_successor(&self, node: u8) -> Option<(u8, f64)> {
        let pos = self.ring_pos[node as usize];
        if pos == usize::MAX || self.ring.order.is_empty() {
            return None;
        }
        let n = self.ring.order.len();
        let v = self.ring.order[(pos + 1) % n];
        let s = self.ring.hops[pos];
        let lu = self.topo.link(NodeId(node), s).map(|l| l.length_m)?;
        let lv = self.topo.link(v, s).map(|l| l.length_m)?;
        Some((v.0, lu + lv))
    }

    pub(crate) fn kick(&mut self, node: u8) {
        let i = node as usize;
        if !self.ring_up || !self.nodes[i].online || self.tx_busy[i] {
            return;
        }
        let Some((succ, fiber_m)) = self.ring_successor(node) else {
            return;
        };
        let now = self.sim.now();
        match self.nodes[i].mac.next_tx(now) {
            Some(TxChoice { packet, own, .. }) => {
                if own {
                    if packet.ctrl.is_broadcast() {
                        self.nodes[i].outstanding.push(packet.clone());
                    } else {
                        self.nodes[i].outstanding_unicast.push((now, packet.clone()));
                    }
                }
                let link = self.cfg.timing.link(fiber_m);
                let ser = link.serialize_time(packet.wire_bytes());
                let latency = ser + link.propagation() + self.cfg.timing.node_latency;
                self.tx_busy[i] = true;
                let epoch = self.epoch;
                self.sim.schedule_in(ser, Ev::TxDone { epoch, node });
                self.sim.schedule_in(
                    latency,
                    Ev::Arrival {
                        epoch,
                        node: succ,
                        pkt: packet,
                    },
                );
            }
            None => {
                if self.nodes[i].mac.streams_ref().has_traffic() && !self.retry_pending[i] {
                    let at = self.nodes[i].mac.next_insert_allowed().max(now);
                    if at > now {
                        self.retry_pending[i] = true;
                        self.sim.schedule_at(at, Ev::Retry { node });
                    }
                }
            }
        }
    }

    fn kick_all(&mut self) {
        for node in 0..self.cfg.n_nodes as u8 {
            self.kick(node);
        }
    }

    /// One quiet roster-speed tour (for unicast replay expiry).
    fn quiet_tour(&self) -> SimDuration {
        let n = self.ring.order.len().max(1) as u64;
        let link = self.cfg.timing.link(self.cfg.fiber_length_m * 2.0);
        (link.serialize_time(84) + link.propagation() + self.cfg.timing.node_latency)
            .saturating_mul(n)
    }

    // ----- internals: packet dispatch -----

    fn dispatch(&mut self, node: u8, pkt: MicroPacket) {
        let i = node as usize;
        match pkt.ctrl.ptype {
            PacketType::Dma => {
                if MsgRx::is_message(&pkt) {
                    if let Some(d) = self.nodes[i].msg_rx.on_packet(&pkt) {
                        if d.stream == AMPIP_STREAM {
                            self.nodes[i].ampip.on_datagram(d);
                        } else if !self.try_collective(node, d.stream, &d.payload) {
                            self.nodes[i].inbox.push_back(d);
                        }
                    }
                } else {
                    // Cache update; tolerate regions this replica has
                    // not defined (e.g. a node that joined later).
                    let _ = self.nodes[i].cache.apply_packet(&pkt);
                    crate::apps::on_cache_update(self, node, &pkt);
                }
            }
            PacketType::Data => {
                // Raw data cells: surfaced via the interrupt-style
                // inbox as 8-byte datagrams.
                self.nodes[i].inbox.push_back(Datagram {
                    src: pkt.ctrl.src,
                    stream: pkt.ctrl.tag,
                    payload: pkt.fixed_payload().to_vec(),
                });
            }
            PacketType::D64Atomic => {
                if pkt.ctrl.flags.contains(ampnet_packet::Flags::RESPONSE) {
                    self.on_atomic_response(node, &pkt);
                } else if let Some(req) = build::parse_atomic_request(&pkt) {
                    let requester = pkt.ctrl.src;
                    if let Ok(effect) =
                        atomics::execute(&mut self.nodes[i].cache, requester, req)
                    {
                        self.enqueue_own(node, effect.response);
                        for u in effect.updates {
                            self.enqueue_own(node, u);
                        }
                        self.kick(node);
                    }
                }
            }
            PacketType::Interrupt => {
                if let Some(ip) = build::parse_interrupt(&pkt) {
                    if ip.vector == THREAD_VECTOR && self.task_table.is_some() {
                        self.on_thread_interrupt(node, ip.cookie as u32);
                    } else {
                        self.nodes[i].interrupts.push_back(ip);
                    }
                }
            }
            PacketType::Diagnostic | PacketType::Rostering => {
                // Rostering runs out-of-band (see inject_failure);
                // diagnostics echo handled at the app layer.
            }
        }
    }

    /// Send a semaphore protocol packet and arm its retransmission
    /// timer. The tagged D64 operations are idempotent, so a spurious
    /// resend (packet survived after all) is harmless.
    pub(crate) fn sem_send(&mut self, node: u8, pkt: MicroPacket) {
        let i = node as usize;
        self.nodes[i].sem_seq += 1;
        let seq = self.nodes[i].sem_seq;
        self.enqueue_own(node, pkt);
        self.kick(node);
        self.sim.schedule_in(
            SimDuration::from_micros(500),
            Ev::SemTimeout { node, seq },
        );
    }

    fn on_atomic_response(&mut self, node: u8, pkt: &MicroPacket) {
        let now = self.sim.now();
        let i = node as usize;
        if self.nodes[i].sem.is_some() {
            // Any response settles the in-flight request: invalidate
            // the pending retransmission timer.
            self.nodes[i].sem_seq += 1;
            let sem = self.nodes[i].sem.as_mut().expect("checked");
            match sem.on_response(now, pkt) {
                SemaphoreAction::Send(p) => {
                    self.sem_send(node, p);
                }
                SemaphoreAction::WaitUntil(t) => {
                    self.sim.schedule_at(t, Ev::SemPoll { node });
                }
                SemaphoreAction::None => {
                    crate::apps::on_sem_transition(self, node);
                }
            }
        }
    }

    // ----- internals: failure / rostering -----

    fn inject_failure(&mut self, c: Component) {
        crate::diagnostics::abandon_if_running(self);
        self.observe(ObservedEvent::FailureInjected(c));
        apply_failure(&mut self.topo, c);
        if let Component::Node(n) = c {
            self.nodes[n.0 as usize].online = false;
            crate::apps::on_node_death(self, n.0);
        }
        let now = self.sim.now();
        match run_rostering(&self.topo, &self.ring, c, now, self.epoch, &self.cfg.timing.roster)
        {
            Ok(outcome) => {
                self.ring_up = false;
                self.ring_down_at = now;
                self.epoch = outcome.epoch;
                self.log(
                    Level::Warn,
                    "roster",
                    format!(
                        "{c:?} failed; epoch {} rostering, ETA {}",
                        outcome.epoch, outcome.completed_at
                    ),
                );
                self.sim.schedule_at(
                    outcome.completed_at,
                    Ev::RingRestored {
                        epoch: outcome.epoch,
                    },
                );
                self.pending_roster = Some((RosterReason::Failure(c), outcome));
                self.observe(ObservedEvent::RosterStarted { epoch: self.epoch });
            }
            Err(RosterSkip::SpareComponent) => {
                self.log(
                    Level::Info,
                    "roster",
                    format!("{c:?} failed but is spare; ring unaffected"),
                );
                self.observe(ObservedEvent::SpareFault(c));
            }
            Err(RosterSkip::NoSurvivors) => {
                self.ring_up = false;
                self.ring = LogicalRing::empty();
                self.ring_pos.fill(usize::MAX);
                self.log(Level::Warn, "roster", format!("{c:?} failed; no survivors"));
                self.observe(ObservedEvent::NoSurvivors(c));
            }
        }
    }

    fn install_ring(&mut self, outcome: &RosterOutcome) {
        self.ring = outcome.ring.clone();
        self.ring_pos.fill(usize::MAX);
        for (pos, n) in self.ring.order.iter().enumerate() {
            self.ring_pos[n.0 as usize] = pos;
        }
    }

    fn restore_ring(&mut self, epoch: u64) {
        if epoch != self.epoch {
            return; // superseded by a newer episode
        }
        let Some((reason, outcome)) = self.pending_roster.take() else {
            return;
        };
        self.install_ring(&outcome);
        self.log(
            Level::Info,
            "roster",
            format!(
                "epoch {} live: {} nodes in {:.2} ring tours ({:?})",
                epoch,
                outcome.ring.len(),
                outcome.recovery_in_tours(),
                reason
            ),
        );
        self.history.push(RosterEvent {
            reason,
            outcome,
        });
        self.observe(ObservedEvent::RingRestored {
            epoch,
            ring_len: self.ring.len(),
        });
        self.ring_up = true;
        self.tx_busy.fill(false);
        self.retry_pending.fill(false);
        // Smart data recovery: every surviving member replays its
        // unacknowledged traffic (idempotent at the receivers). A
        // unicast is possibly-lost — and therefore replayed — if it
        // was inserted within two quiet tours of the instant the ring
        // went down; anything older had certainly been delivered. The
        // outage duration itself must not count against the window.
        let expiry = self.quiet_tour().saturating_mul(2);
        let replay_after = self.ring_down_at - expiry.min(SimDuration::from_nanos(self.ring_down_at.as_nanos()));
        for i in 0..self.nodes.len() {
            if !self.nodes[i].online {
                self.nodes[i].outstanding.clear();
                self.nodes[i].outstanding_unicast.clear();
                continue;
            }
            let replay: Vec<MicroPacket> = self.nodes[i].outstanding.drain(..).collect();
            let unicast: Vec<(SimTime, MicroPacket)> =
                self.nodes[i].outstanding_unicast.drain(..).collect();
            for p in replay {
                self.enqueue_own(i as u8, p);
            }
            for (t, p) in unicast {
                if t >= replay_after {
                    self.enqueue_own(i as u8, p);
                }
            }
        }
        self.kick_all();
        self.start_certification();
        crate::apps::on_ring_restored(self);
    }

    /// Restore a failed switch or fiber. A repair that would let a
    /// strictly larger ring exist (some node was excluded) triggers a
    /// roster episode to capture the capacity; otherwise it silently
    /// returns the component to the spare pool.
    fn apply_repair(&mut self, c: Component) {
        match c {
            Component::Switch(s) => self.topo.restore_switch(s),
            Component::Link(n, s) => self.topo.restore_link(n, s),
            Component::Node(_) => return,
        }
        self.log(
            Level::Info,
            "repair",
            format!("{c:?} repaired"),
        );
        self.observe(ObservedEvent::RepairApplied(c));
        let best = ampnet_topo::largest_ring(&self.topo);
        if best.len() > self.ring.len() && self.ring_up {
            // Re-roster to absorb the recovered capacity.
            if let Ok(mut outcome) = initial_rostering(&self.topo, &self.cfg.timing.roster) {
                let now = self.sim.now();
                self.epoch += 1;
                outcome.epoch = self.epoch;
                outcome.failed_at = now;
                let cost = outcome.explore_time + outcome.commit_time;
                outcome.completed_at = now + cost;
                self.ring_up = false;
                self.sim
                    .schedule_at(outcome.completed_at, Ev::RingRestored { epoch: self.epoch });
                self.pending_roster = Some((RosterReason::Repair(c), outcome));
            }
        }
    }

    fn handle_join(&mut self, node: u8, req: JoinRequest) {
        let cache_bytes: u64 = self
            .cfg
            .cache_regions
            .iter()
            .map(|&(_, sz)| sz as u64)
            .sum();
        match assimilate(req, self.cfg.compat, cache_bytes, &self.cfg.timing.assimilation) {
            Ok(timeline) => {
                // The node becomes ring-eligible (lasers up, conforming
                // to the assimilation rules) only when it comes online.
                self.sim
                    .schedule_in(timeline.total(), Ev::NodeOnline { node });
            }
            Err(f) => {
                self.rejections.push((node, f));
                self.observe(ObservedEvent::JoinRejected(node));
            }
        }
    }

    fn handle_node_online(&mut self, node: u8) {
        self.topo.restore_node(NodeId(node));
        // Cache refresh completed (time already charged): copy the
        // sponsor's replica. The packet-level protocol is validated in
        // ampnet-cache::refresh.
        let sponsor = (0..self.nodes.len())
            .find(|&i| i != node as usize && self.nodes[i].online);
        if let Some(s) = sponsor {
            let snapshot = self.nodes[s].cache.clone();
            let me = &mut self.nodes[node as usize];
            let id = me.cache.node();
            me.cache = snapshot;
            // Re-home the replica.
            let mut rehomed = NetworkCache::new(id);
            for region in me.cache.region_ids() {
                let size = me.cache.region_size(region).expect("listed");
                rehomed.define_region(region, size).expect("fresh");
                let data = me.cache.read(region, 0, size).expect("whole region");
                let _ = rehomed.write(region, 0, data, 0, 0);
            }
            me.cache = rehomed;
        }
        self.nodes[node as usize].online = true;
        self.observe(ObservedEvent::NodeOnline(node));
        // Extend the ring: a join-triggered roster episode.
        if let Ok(mut outcome) = initial_rostering(&self.topo, &self.cfg.timing.roster) {
            let now = self.sim.now();
            self.epoch += 1;
            outcome.epoch = self.epoch;
            outcome.failed_at = now;
            let cost = outcome.explore_time + outcome.commit_time;
            outcome.completed_at = now + cost;
            self.ring_up = false;
            self.sim
                .schedule_at(outcome.completed_at, Ev::RingRestored { epoch: self.epoch });
            self.pending_roster = Some((RosterReason::Join(NodeId(node)), outcome));
        }
    }

    // ----- the event handler -----

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival { epoch, node, pkt } => {
                if epoch != self.epoch || !self.nodes[node as usize].online {
                    return; // packet lost in a ring reconfiguration
                }
                let now = self.sim.now();
                match self.nodes[node as usize].mac.on_arrival(now, pkt) {
                    ArrivalAction::Deliver(p) => self.dispatch(node, p),
                    ArrivalAction::DeliverAndForward(p) => self.dispatch(node, p),
                    ArrivalAction::Strip => {
                        crate::apps::on_strip(self, node);
                        // Retire the acknowledged broadcast.
                        if !self.nodes[node as usize].outstanding.is_empty() {
                            let acked = self.nodes[node as usize].outstanding.remove(0);
                            self.on_diag_strip(node, &acked);
                        }
                    }
                    ArrivalAction::Forward => {}
                }
                // Expire confirmed unicasts (anything older than two
                // tours has certainly reached its destination).
                let expiry = self.quiet_tour().saturating_mul(2);
                let now = self.sim.now();
                self.nodes[node as usize]
                    .outstanding_unicast
                    .retain(|(t, _)| now.saturating_since(*t) <= expiry);
                self.kick(node);
            }
            Ev::TxDone { epoch, node } => {
                if epoch != self.epoch {
                    return;
                }
                self.tx_busy[node as usize] = false;
                self.kick(node);
            }
            Ev::Retry { node } => {
                self.retry_pending[node as usize] = false;
                self.kick(node);
            }
            Ev::Fail(c) => self.inject_failure(c),
            Ev::Repair(c) => self.apply_repair(c),
            Ev::RingRestored { epoch } => self.restore_ring(epoch),
            Ev::Join { node, req } => self.handle_join(node, req),
            Ev::NodeOnline { node } => self.handle_node_online(node),
            Ev::SemPoll { node } => {
                let now = self.sim.now();
                if let Some(sem) = self.nodes[node as usize].sem.as_mut() {
                    match sem.poll(now) {
                        SemaphoreAction::Send(p) => {
                            self.sem_send(node, p);
                        }
                        SemaphoreAction::WaitUntil(t) => {
                            self.sim.schedule_at(t, Ev::SemPoll { node });
                        }
                        SemaphoreAction::None => {}
                    }
                }
            }
            Ev::SemTimeout { node, seq } => {
                let i = node as usize;
                if self.nodes[i].sem_seq != seq || !self.nodes[i].online {
                    return; // settled or superseded
                }
                if let Some(pkt) = self.nodes[i].sem.as_ref().and_then(|s| s.resend()) {
                    self.sem_send(node, pkt);
                }
            }
            Ev::SemCritDone { node } => crate::apps::on_crit_done(self, node),
            Ev::CounterTick => crate::apps::on_counter_tick(self),
            Ev::FailoverPoll { node } => crate::apps::on_failover_poll(self, node),
            Ev::SeqWriterTick => crate::apps::on_seq_writer_tick(self),
            Ev::SeqReaderTick { node } => crate::apps::on_seq_reader_tick(self, node),
            Ev::ThreadRetry { node, slot, tries } => {
                if self.nodes[node as usize].online {
                    self.try_thread_execute(node, slot, tries);
                }
            }
            Ev::DiagSweep => self.run_diag_sweep(),
            Ev::ErrorBurst { node, seed, errors } => self.apply_error_burst(node, seed, errors),
        }
    }
}
