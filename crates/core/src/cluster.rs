//! The AmpNet cluster: every subsystem wired into one deterministic
//! discrete-event simulation.
//!
//! A [`Cluster`] owns the physical plant (`ampnet-topo`), one node
//! context per host (layered ring data-plane, network cache replica,
//! message endpoints, semaphore client, DK lifecycle) and the global
//! event loop. The per-node data-plane is an `ampnet-ring`
//! [`NodeStack`] (PhyPort → InsertionMac → DeliveryPlane) fed from a
//! cluster-owned [`FrameArena`]: each packet is serialized once at its
//! source and hops move pooled frame handles. Failures injected into
//! the plant trigger detection and rostering exactly as slides 16/18
//! describe (see `membership.rs`); while the ring heals, traffic
//! pauses, and sources replay their unacknowledged packets afterwards
//! (slide 18's smart data recovery). The hop-by-hop machinery lives in
//! `transport.rs`.

use crate::config::ClusterConfig;
use crate::observe::ObservedEvent;
use crate::telemetry::CoreTelemetry;
use crate::transport::HopTimingCache;
use ampnet_cache::seqlock_msg::{self, ReadOutcome, RecordLayout};
use ampnet_cache::{NetworkCache, SemaphoreClient};
use ampnet_dk::{AssimilationFailure, JoinRequest};
use ampnet_packet::build::{self, InterruptPayload};
use ampnet_packet::{FrameArena, FrameRef, MicroPacket};
use ampnet_ring::{HostQueues, NodeStack, RegisterMac, SerialPhy};
use ampnet_roster::{initial_rostering, RosterOutcome};
use ampnet_services::msg::{Datagram, MsgRx, MsgTx};
use ampnet_services::socket::{AmpIp, Received, SockAddr, SocketError};
use ampnet_services::files::{FileError, FileStore};
use ampnet_services::threads::{TaskError, TaskKind, TaskTable};
use ampnet_sim::{Level, Sim, SimDuration, SimTime, Trace};
use ampnet_telemetry::{MetricsSnapshot, Telemetry};
use ampnet_topo::montecarlo::Component;
use ampnet_topo::{NodeId, Plant, PlantRing};
use std::collections::VecDeque;

/// Why a roster episode ran.
#[derive(Debug, Clone, PartialEq)]
pub enum RosterReason {
    /// Cluster bring-up.
    Boot,
    /// A component failed.
    Failure(Component),
    /// A node (re-)assimilated.
    Join(NodeId),
    /// A switch or fiber was repaired, enlarging the possible ring.
    Repair(Component),
}

/// One completed roster episode.
#[derive(Debug, Clone)]
pub struct RosterEvent {
    /// Trigger.
    pub reason: RosterReason,
    /// Full protocol accounting.
    pub outcome: RosterOutcome,
}

/// Per-node composite state.
pub(crate) struct NodeCtx {
    /// The layered data-plane (PHY / insertion MAC / host delivery).
    pub(crate) stack: NodeStack<SerialPhy, RegisterMac, HostQueues>,
    pub(crate) cache: NetworkCache,
    pub(crate) online: bool,
    pub(crate) msg_tx: MsgTx,
    pub(crate) msg_rx: MsgRx,
    pub(crate) inbox: VecDeque<Datagram>,
    pub(crate) interrupts: VecDeque<InterruptPayload>,
    pub(crate) sem: Option<SemaphoreClient>,
    /// Collective rank engine (enabled by `enable_collectives`).
    pub(crate) rank: Option<ampnet_services::mpi::Rank>,
    /// AmpIP datagram socket endpoint.
    pub(crate) ampip: AmpIp,
    /// Monotonic counter of semaphore sends; stale retransmission
    /// timers compare against it.
    pub(crate) sem_seq: u64,
    /// Own broadcasts inserted and not yet stripped (replayed after a
    /// roster episode — slide 18 smart data recovery). FIFO: strips
    /// acknowledge the oldest entry, so retirement is a `pop_front`.
    pub(crate) outstanding: VecDeque<MicroPacket>,
    /// Own unicasts in flight, with insertion time (replayed likewise;
    /// entries expire after two quiet tours). Insertion times are
    /// monotone, so expiry pops an aged prefix off the front.
    pub(crate) outstanding_unicast: VecDeque<(SimTime, MicroPacket)>,
}

#[derive(Debug)]
pub(crate) enum Ev {
    Arrival { epoch: u64, node: u8, frame: FrameRef },
    TxDone { epoch: u64, node: u8 },
    Retry { node: u8 },
    Fail(Component),
    Repair(Component),
    RingRestored { epoch: u64 },
    Join { node: u8, req: JoinRequest },
    NodeOnline { node: u8 },
    // Application events (see apps.rs).
    SemPoll { node: u8 },
    SemCritDone { node: u8 },
    /// Retransmission check for an in-flight D64 request.
    SemTimeout { node: u8, seq: u64 },
    CounterTick,
    FailoverPoll { node: u8 },
    SeqWriterTick,
    SeqReaderTick { node: u8 },
    /// A thread doorbell raced its task-entry DMA; re-check shortly.
    ThreadRetry { node: u8, slot: u32, tries: u8 },
    /// Background diagnostic sweep over spare components.
    DiagSweep,
    /// A phy-level bit-error burst on a node's receive fiber.
    ErrorBurst { node: u8, seed: u64, errors: u32 },
}

/// The simulated AmpNet cluster.
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) topo: Plant,
    pub(crate) ring: PlantRing,
    pub(crate) ring_up: bool,
    pub(crate) epoch: u64,
    pub(crate) sim: Sim<Ev>,
    pub(crate) nodes: Vec<NodeCtx>,
    /// Pooled wire frames shared by every node's data-plane.
    pub(crate) arena: FrameArena,
    pub(crate) tx_busy: Vec<bool>,
    pub(crate) retry_pending: Vec<bool>,
    pub(crate) pending_roster: Option<(RosterReason, RosterOutcome)>,
    pub(crate) history: Vec<RosterEvent>,
    pub(crate) rejections: Vec<(u8, AssimilationFailure)>,
    /// Position of each node in the current ring (usize::MAX = not a
    /// member).
    pub(crate) ring_pos: Vec<usize>,
    /// Memoized ring successor per node: `(successor, fiber metres)`
    /// for members, `None` otherwise. `kick` runs once per event, and
    /// the successor walk (`ring.order` indexing + `hop_fiber_m`'s
    /// f64 path math) only changes when a roster episode installs a
    /// new ring, so it is rebuilt there instead of recomputed per
    /// transmission attempt.
    pub(crate) ring_succ: Vec<Option<(u8, f64)>>,
    pub(crate) apps: crate::apps::AppState,
    pub(crate) diag: crate::diagnostics::DiagState,
    pub(crate) trace: Trace,
    /// AmpThreads task table (enabled by `enable_threads`).
    pub(crate) task_table: Option<TaskTable>,
    /// Instant the ring last went down (replay-window anchor).
    pub(crate) ring_down_at: SimTime,
    /// Background sweep interval (None = disabled).
    pub(crate) sweep_interval: Option<SimDuration>,
    /// Spare faults found by the background sweep: (found at, component).
    pub(crate) spare_faults: Vec<(SimTime, Component)>,
    /// Spare faults already reported (avoid duplicates).
    pub(crate) known_spare_faults: std::collections::BTreeSet<String>,
    /// Journal of externally visible transitions (see `observe.rs`).
    pub(crate) observations: Vec<(SimTime, ObservedEvent)>,
    /// Cluster-wide telemetry handles (disabled by default).
    pub(crate) tel: CoreTelemetry,
    /// Reusable same-instant event batch (allocated once).
    batch: Vec<(SimTime, Ev)>,
    /// Memoized per-hop wire timing (transport.rs): the floating-point
    /// link math is identical for every hop with the same fiber run
    /// and frame size, but sat on the per-transmission hot path.
    pub(crate) hop_timing: HopTimingCache,
    /// Cached unicast replay-expiry window, keyed by ring length
    /// (`usize::MAX` = stale). `quiet_tour() * 2` only changes when
    /// the ring does, not per arrival.
    pub(crate) unicast_expiry: (usize, SimDuration),
    /// Datagrams currently sitting in node inboxes, indexed by stream.
    /// Maintained at the transport push sites and the `pop_message*`
    /// sinks, so the multi-segment coordinator can elide a whole
    /// exchange scan (`pending_messages_on(ROUTE_STREAM) == 0` across
    /// all shards) without touching any inbox.
    pub(crate) stream_backlog: [u64; 256],
}

impl Cluster {
    /// Build and boot a cluster. The initial roster episode is charged
    /// for (the ring is up after its two tours).
    pub fn new(cfg: ClusterConfig) -> Self {
        let topo = cfg.build_plant();
        let nominal_link = cfg.timing.link(cfg.fiber_length_m);
        let nodes = (0..cfg.n_nodes)
            .map(|i| {
                let mut cache = NetworkCache::new(i as u8);
                for &(region, size) in &cfg.cache_regions {
                    cache.define_region(region, size).expect("unique regions"); // lint: allow(panic-freedom): region ids come from a deduplicated config map
                }
                NodeCtx {
                    stack: NodeStack::new(
                        SerialPhy::new(nominal_link, cfg.timing.node_latency),
                        RegisterMac::new(i as u8, cfg.mac),
                        HostQueues::retaining(cfg.n_nodes),
                    ),
                    cache,
                    online: true,
                    msg_tx: MsgTx::new(i as u8),
                    msg_rx: MsgRx::new(),
                    inbox: VecDeque::new(),
                    interrupts: VecDeque::new(),
                    sem: None,
                    rank: None,
                    ampip: AmpIp::new(i as u8),
                    sem_seq: 0,
                    outstanding: VecDeque::new(),
                    outstanding_unicast: VecDeque::new(),
                }
            })
            .collect();
        let mut sim = Sim::new(cfg.seed);
        let boot = initial_rostering(&topo, &cfg.timing.roster).expect("nodes exist"); // lint: allow(panic-freedom): ClusterConfig guarantees at least one node
        sim.schedule_at(boot.completed_at, Ev::RingRestored { epoch: 1 });
        let n = cfg.n_nodes;
        let mut cluster = Cluster {
            topo,
            ring: PlantRing::empty(),
            ring_up: false,
            epoch: 1,
            sim,
            nodes,
            arena: FrameArena::new(),
            tx_busy: vec![false; n],
            retry_pending: vec![false; n],
            pending_roster: Some((RosterReason::Boot, boot)),
            history: vec![],
            rejections: vec![],
            ring_pos: vec![usize::MAX; n],
            ring_succ: vec![None; n],
            apps: Default::default(),
            diag: Default::default(),
            trace: Trace::disabled(),
            task_table: None,
            ring_down_at: SimTime::ZERO,
            sweep_interval: None,
            spare_faults: vec![],
            known_spare_faults: Default::default(),
            observations: vec![],
            tel: Default::default(),
            batch: vec![],
            hop_timing: HopTimingCache::default(),
            unicast_expiry: (usize::MAX, SimDuration::ZERO),
            stream_backlog: [0; 256],
            cfg,
        };
        cluster.ring_pos = vec![usize::MAX; cluster.cfg.n_nodes];
        cluster
    }

    // ----- clock and run loop -----

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Run the event loop until `deadline`. Events are dispatched in
    /// same-instant batches; the order is identical to one-at-a-time
    /// popping (see [`Sim::pop_batch`]).
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut batch = std::mem::take(&mut self.batch);
        loop {
            batch.clear();
            if self.sim.pop_batch(deadline, &mut batch) == 0 {
                break;
            }
            for (_, ev) in batch.drain(..) {
                self.handle(ev);
            }
        }
        self.batch = batch;
    }

    /// Run the event loop for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    // ----- introspection -----

    /// The current logical ring.
    pub fn ring(&self) -> &PlantRing {
        &self.ring
    }

    /// Whether the ring is currently carrying traffic.
    pub fn ring_up(&self) -> bool {
        self.ring_up
    }

    /// Current roster epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Completed roster episodes, oldest first.
    pub fn roster_history(&self) -> &[RosterEvent] {
        &self.history
    }

    /// Enable milestone tracing (roster phases, failovers,
    /// certifications), retaining the most recent `capacity` entries.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::enabled(capacity, Level::Info);
    }

    /// The milestone trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub(crate) fn log(&mut self, level: Level, subsystem: &'static str, message: String) {
        if self.trace.wants(level) {
            let now = self.sim.now();
            self.trace.log(now, level, subsystem, message);
        }
    }

    /// The observation journal: every externally visible transition
    /// (failures applied, roster episodes, repairs, bursts), stamped
    /// with simulated time. Deterministic for a given config and seed.
    pub fn observations(&self) -> &[(SimTime, ObservedEvent)] {
        &self.observations
    }

    pub(crate) fn observe(&mut self, ev: ObservedEvent) {
        let now = self.sim.now();
        match &ev {
            ObservedEvent::SpareFault(_) => self.tel.spare_fault(),
            ObservedEvent::RosterStarted { epoch } => self.tel.roster_started(now, *epoch),
            ObservedEvent::RingRestored { epoch, ring_len } => {
                self.tel.ring_restored(now, *epoch, *ring_len)
            }
            ObservedEvent::JoinRejected(node) => self.tel.join_rejected(now, *node),
            ObservedEvent::NodeOnline(node) => self.tel.node_online(now, *node),
            ObservedEvent::ErrorBurstEscalated { .. } => self.tel.burst_escalated(),
            ObservedEvent::ErrorBurstAbsorbed { .. } => self.tel.burst_absorbed(),
            _ => {}
        }
        self.observations.push((now, ev));
    }

    // ----- telemetry -----

    /// Enable per-plane telemetry: one shared registry spanning PHY,
    /// MAC, delivery, cache, services and the control plane, plus a
    /// flight recorder retaining the last `flight_capacity` plane
    /// events. Same config + seed ⇒ byte-identical
    /// [`Cluster::metrics_snapshot`] JSON.
    pub fn enable_telemetry(&mut self, flight_capacity: usize) {
        self.enable_telemetry_with(&Telemetry::new(flight_capacity));
    }

    /// Attach an existing [`Telemetry`] handle instead of creating one,
    /// letting several drivers (e.g. a cluster and a standalone ring
    /// segment) share one registry and one flight recorder.
    pub fn enable_telemetry_with(&mut self, tel: &Telemetry) {
        self.tel = CoreTelemetry::new(tel);
        for (i, ctx) in self.nodes.iter_mut().enumerate() {
            ctx.stack.instrument(tel);
            ctx.cache.set_telemetry(tel);
            ctx.msg_tx.instrument(tel);
            ctx.msg_rx.instrument(tel, i as u8);
        }
    }

    /// Whether [`Cluster::enable_telemetry`] has been called.
    pub fn telemetry_enabled(&self) -> bool {
        self.tel.tel.enabled()
    }

    /// The shared telemetry handle (disabled unless
    /// [`Cluster::enable_telemetry`] ran).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel.tel
    }

    /// Point-in-time snapshot of every registered instrument. Gauges
    /// (MAC occupancy, arena pool state) are refreshed first. Empty
    /// when telemetry is disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.publish_metrics();
        self.tel.tel.snapshot()
    }

    /// Refresh gauge-backed instruments (MAC occupancy, arena pool
    /// state) into the registry without taking a snapshot. The
    /// multi-segment engine calls this on every shard before folding
    /// the per-shard registries with `Telemetry::merge_shards`.
    pub fn publish_metrics(&self) {
        for ctx in &self.nodes {
            ctx.stack.publish_metrics();
            ctx.stack.telemetry.set_backoffs(ctx.stack.mac.backoffs());
        }
        self.tel.publish_arena(&self.arena);
    }

    /// Render the flight-recorder timeline (empty when telemetry is
    /// disabled).
    pub fn flight_dump(&self) -> String {
        self.tel.tel.flight_dump()
    }

    /// Simulation events processed by this cluster's kernel so far.
    /// The scaling benchmark sums this across shards for an events/sec
    /// figure.
    pub fn events_processed(&self) -> u64 {
        self.sim.processed()
    }

    /// Join attempts rejected by DK policy.
    pub fn rejections(&self) -> &[(u8, AssimilationFailure)] {
        &self.rejections
    }

    /// The physical plant (for assertions).
    pub fn topology(&self) -> &Plant {
        &self.topo
    }

    /// The shared frame pool (occupancy/reuse statistics).
    pub fn arena(&self) -> &FrameArena {
        &self.arena
    }

    /// Sum of `would_drop` across all MACs — the paper says always 0.
    pub fn total_drops(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.stack.mac.stats().would_drop)
            .sum()
    }

    /// Is the node online (assimilated and alive)?
    pub fn node_online(&self, node: u8) -> bool {
        self.nodes[node as usize].online
    }

    /// Do all online nodes hold byte-identical caches right now?
    /// (Only meaningful when traffic has quiesced.)
    pub fn caches_converged(&self) -> bool {
        let online: Vec<&NodeCtx> = self.nodes.iter().filter(|n| n.online).collect();
        match online.split_first() {
            None => true,
            Some((first, rest)) => rest
                .iter()
                .all(|n| first.cache.converged_with(&n.cache)),
        }
    }

    /// A node's cache replica (read-only).
    pub fn cache(&self, node: u8) -> &NetworkCache {
        &self.nodes[node as usize].cache
    }

    // ----- application-facing operations -----

    /// Send an application datagram from `src` to `dst` (or broadcast
    /// with [`ampnet_packet::BROADCAST`]).
    pub fn send_message(&mut self, src: u8, dst: u8, stream: u8, payload: &[u8]) {
        let pkts = self.nodes[src as usize].msg_tx.send(dst, stream, payload);
        for p in pkts {
            self.enqueue_own(src, p);
        }
        self.kick(src);
    }

    /// Pop the next delivered datagram at `node`.
    pub fn pop_message(&mut self, node: u8) -> Option<Datagram> {
        let d = self.nodes[node as usize].inbox.pop_front()?;
        self.stream_backlog[d.stream as usize] -= 1;
        Some(d)
    }

    /// Pop the next delivered datagram on a specific stream at `node`,
    /// leaving other streams' traffic queued.
    pub fn pop_message_on(&mut self, node: u8, stream: u8) -> Option<Datagram> {
        let inbox = &mut self.nodes[node as usize].inbox;
        let pos = inbox.iter().position(|d| d.stream == stream)?;
        let d = inbox.remove(pos);
        if d.is_some() {
            self.stream_backlog[stream as usize] -= 1;
        }
        d
    }

    /// Datagrams currently queued in node inboxes on `stream`, across
    /// the whole cluster. O(1) — the multi-segment coordinator polls
    /// this every slice to decide whether an exchange can be elided.
    pub fn pending_messages_on(&self, stream: u8) -> u64 {
        self.stream_backlog[stream as usize]
    }

    /// Time of the earliest pending simulation event, if any (always
    /// after [`Cluster::now`]). The multi-segment slice planner uses
    /// this to skip dead air and to leave quiescent shards unwoken.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.sim.peek_time()
    }

    /// Number of configured nodes.
    pub fn n_nodes(&self) -> usize {
        self.cfg.n_nodes
    }

    /// Enable the background diagnostic sweep (slide 18): every
    /// `interval`, the DK scans for failed *spare* components — faults
    /// that dim no ring light and so trigger no emergency rostering —
    /// and logs them for maintenance.
    pub fn enable_background_sweep(&mut self, interval: SimDuration) {
        if self.sweep_interval.is_none() {
            self.sim.schedule_in(interval, Ev::DiagSweep);
        }
        self.sweep_interval = Some(interval);
    }

    /// Spare faults found by the background sweep, oldest first.
    pub fn spare_faults(&self) -> &[(SimTime, Component)] {
        &self.spare_faults
    }

    /// Enable AmpThreads: the task table lives in `region` (must be a
    /// configured cache region of at least `slots × 16` bytes); thread
    /// doorbell interrupts then execute automatically at their target.
    pub fn enable_threads(&mut self, region: u8, slots: u32) {
        self.task_table = Some(TaskTable { region, slots });
    }

    /// Submit a remote task: writes the replicated task entry and
    /// rings the target's doorbell. Collect with
    /// [`Cluster::collect_remote`]. Returns `false` (submitting
    /// nothing) when the slot still holds a pending or uncollected
    /// task — callers pick another slot or retry after collecting.
    pub fn spawn_remote(
        &mut self,
        submitter: u8,
        slot: u32,
        kind: TaskKind,
        target: u8,
        arg: u32,
    ) -> bool {
        let table = self.task_table.expect("enable_threads first"); // lint: allow(panic-freedom): public task entry points are documented as gated on enable_threads
        let (pkts, doorbell) =
            match table.submit(&mut self.nodes[submitter as usize].cache, slot, kind, target, arg)
            {
                Ok(out) => out,
                Err(TaskError::SlotBusy) => return false,
                Err(TaskError::Cache(e)) => panic!("task table region configured: {e}"), // lint: allow(panic-freedom): a misconfigured task-table region is a harness bug, not a protocol state; fail loud
            };
        for p in pkts {
            self.enqueue_own(submitter, p);
        }
        self.enqueue_own(submitter, doorbell);
        self.kick(submitter);
        true
    }

    /// Collect a finished remote task's result at `node` (frees the
    /// slot network-wide). `None` while still pending.
    pub fn collect_remote(&mut self, node: u8, slot: u32) -> Option<u32> {
        let table = self.task_table?;
        let (result, pkts) = table
            .collect(&mut self.nodes[node as usize].cache, slot)
            .ok()??;
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
        Some(result)
    }

    /// Bind an AmpIP port at `node`.
    pub fn sock_bind(&mut self, node: u8, port: u16) -> Result<(), SocketError> {
        self.nodes[node as usize].ampip.bind(port)
    }

    /// Send an AmpIP datagram from `(node, src_port)` to `dst`.
    pub fn sock_send(
        &mut self,
        node: u8,
        src_port: u16,
        dst: SockAddr,
        data: &[u8],
    ) -> Result<(), SocketError> {
        let pkts = self.nodes[node as usize]
            .ampip
            .send_to(src_port, dst, data)?;
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
        Ok(())
    }

    /// Receive the next AmpIP datagram on a bound port at `node`.
    pub fn sock_recv(&mut self, node: u8, port: u16) -> Option<Received> {
        self.nodes[node as usize].ampip.recv_from(port)
    }

    /// Pop the next delivered interrupt at `node`.
    pub fn pop_interrupt(&mut self, node: u8) -> Option<InterruptPayload> {
        self.nodes[node as usize].interrupts.pop_front()
    }

    /// Send a remote interrupt (urgent MicroPacket) from `src` to
    /// `dst`. Vectors other than the AmpThreads doorbell surface at the
    /// destination via [`Cluster::pop_interrupt`].
    pub fn send_interrupt(&mut self, src: u8, dst: u8, payload: InterruptPayload) {
        let pkt = build::interrupt(src, dst, payload);
        self.enqueue_own(src, pkt);
        self.kick(src);
    }

    /// Write to the network cache at `node`; the update replicates to
    /// every online node via broadcast DMA MicroPackets.
    pub fn cache_write(&mut self, node: u8, region: u8, offset: u32, data: &[u8]) {
        let pkts = self.nodes[node as usize]
            .cache
            .write(region, offset, data, 1, 1)
            .expect("valid cache write"); // lint: allow(panic-freedom): the write targets a region defined during setup, offset bounded by layout
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
    }

    /// Write a file through an AmpFiles store handle at `node`; the
    /// store's region must be configured on every node. The data,
    /// heap-cursor and directory-entry updates replicate via broadcast
    /// DMA MicroPackets, directory entry last (the commit point), so
    /// replicas never observe a half-written file.
    pub fn file_write(
        &mut self,
        node: u8,
        store: &FileStore,
        name: &str,
        data: &[u8],
    ) -> Result<(), FileError> {
        let pkts = store.write(&mut self.nodes[node as usize].cache, name, data)?;
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
        Ok(())
    }

    /// Write a seqlock record at `node` (slide 9 protocol).
    pub fn record_write(&mut self, node: u8, layout: RecordLayout, data: &[u8]) {
        let pkts =
            seqlock_msg::write_record(&mut self.nodes[node as usize].cache, layout, data, 1, 1)
                .expect("valid record write"); // lint: allow(panic-freedom): record regions are defined at setup with fixed record sizes
        for p in pkts {
            self.enqueue_own(node, p);
        }
        self.kick(node);
    }

    /// One local seqlock read attempt at `node`.
    pub fn record_try_read(&self, node: u8, layout: RecordLayout) -> ReadOutcome {
        seqlock_msg::try_read(&self.nodes[node as usize].cache, layout).expect("valid layout") // lint: allow(panic-freedom): layout was validated when the record region was defined
    }

    // ----- fault injection scheduling -----

    /// Schedule a component failure.
    pub fn schedule_failure(&mut self, at: SimTime, c: Component) {
        self.sim.schedule_at(at, Ev::Fail(c));
    }

    /// Schedule a node (re-)join.
    pub fn schedule_join(&mut self, at: SimTime, node: u8, req: JoinRequest) {
        self.sim.schedule_at(at, Ev::Join { node, req });
    }

    /// Schedule a switch/link repair (splice the fiber, power the
    /// switch). Node repairs go through [`Cluster::schedule_join`] —
    /// nodes must re-assimilate. If the repair lets a larger logical
    /// ring exist, a roster episode rebuilds onto it.
    pub fn schedule_repair(&mut self, at: SimTime, c: Component) {
        assert!(
            !matches!(c, Component::Node(_)),
            "node repairs must re-assimilate: use schedule_join"
        );
        self.sim.schedule_at(at, Ev::Repair(c));
    }

    /// Schedule a phy-level bit-error burst on `node`'s receive fiber:
    /// `errors` single-bit corruptions of the serial stream, replayable
    /// from `seed`. A detected burst escalates exactly like a carrier
    /// loss — the receiving NIU declares its upstream ring link dead
    /// and rostering heals around it; replay then restores any traffic
    /// the corrupted window cost (paper slides 16–18).
    pub fn schedule_error_burst(&mut self, at: SimTime, node: u8, seed: u64, errors: u32) {
        assert!((node as usize) < self.cfg.n_nodes, "no such node");
        self.sim.schedule_at(at, Ev::ErrorBurst { node, seed, errors });
    }
}

// A whole cluster must be movable to a worker thread of the sharded
// multi-segment engine. This assertion fails to compile if any layer
// reintroduces a non-`Send` handle (the telemetry `Rc` was the last).
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<Cluster>();
