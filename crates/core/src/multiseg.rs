//! Multi-segment AmpNet networks (slide 15): dual- and quad-redundant
//! *segments* joined by router nodes ("R" — and "2R's" for redundant
//! routers).
//!
//! Each segment is a full [`Cluster`] with its own ring, cache and
//! self-healing. A *bridge* is a pair of router nodes, one on each
//! segment, connected by an inter-segment link. Globally-addressed
//! datagrams `(segment, node)` hop segment-locally to the router,
//! cross the bridge, and continue — with automatic failover to a
//! redundant bridge when a router node dies.
//!
//! The segments run in lockstep time slices (conservative parallel
//! simulation): each slice, every cluster advances to the same
//! simulated instant, then bridge traffic is exchanged with the
//! configured inter-segment latency (resolution = one slice).

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use ampnet_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Message stream reserved for inter-segment routing.
pub const ROUTE_STREAM: u8 = 5;

/// A global address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalAddr {
    /// Segment index.
    pub segment: u8,
    /// Node within the segment.
    pub node: u8,
}

/// One inter-segment bridge (a router pair).
#[derive(Debug, Clone, Copy)]
pub struct Bridge {
    /// Endpoint on the first segment.
    pub a: GlobalAddr,
    /// Endpoint on the second segment.
    pub b: GlobalAddr,
    /// One-way latency across the bridge.
    pub latency: SimDuration,
}

/// A routed datagram awaiting cross-bridge delivery.
#[derive(Debug)]
struct InFlight {
    deliver_at: SimTime,
    ingress: GlobalAddr,
    wire: Vec<u8>,
}

/// A delivered global datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDatagram {
    /// Original sender.
    pub src: GlobalAddr,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A multi-segment AmpNet network.
pub struct MultiSegment {
    clusters: Vec<Cluster>,
    bridges: Vec<Bridge>,
    crossing: Vec<InFlight>,
    delivered: Vec<Vec<VecDeque<GlobalDatagram>>>,
    /// Datagrams dropped for having no usable route (counted, so tests
    /// can assert routedness).
    pub unroutable: u64,
}

fn encode(dst: GlobalAddr, src: GlobalAddr, payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&[dst.segment, dst.node, src.segment, src.node]);
    wire.extend_from_slice(payload);
    wire
}

fn decode(wire: &[u8]) -> Option<(GlobalAddr, GlobalAddr, &[u8])> {
    if wire.len() < 4 {
        return None;
    }
    Some((
        GlobalAddr {
            segment: wire[0],
            node: wire[1],
        },
        GlobalAddr {
            segment: wire[2],
            node: wire[3],
        },
        &wire[4..],
    ))
}

impl MultiSegment {
    /// Build a network of independent segments (each boots its own
    /// ring); add bridges before sending.
    pub fn new(configs: Vec<ClusterConfig>) -> Self {
        let delivered = configs
            .iter()
            .map(|c| (0..c.n_nodes).map(|_| VecDeque::new()).collect())
            .collect();
        MultiSegment {
            clusters: configs.into_iter().map(Cluster::new).collect(),
            bridges: vec![],
            crossing: vec![],
            delivered,
            unroutable: 0,
        }
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.clusters.len()
    }

    /// Access a segment's cluster.
    pub fn segment(&self, s: u8) -> &Cluster {
        &self.clusters[s as usize]
    }

    /// Mutable access (fault injection, app start).
    pub fn segment_mut(&mut self, s: u8) -> &mut Cluster {
        &mut self.clusters[s as usize]
    }

    /// Connect two segments with a router pair.
    pub fn add_bridge(&mut self, a: GlobalAddr, b: GlobalAddr, latency: SimDuration) {
        assert_ne!(a.segment, b.segment, "bridges join distinct segments");
        self.bridges.push(Bridge { a, b, latency });
    }

    /// Next-hop router for traffic from `from_seg` toward `dst_seg`:
    /// BFS over segments using only bridges whose *both* router nodes
    /// are online (redundant bridges fail over automatically).
    fn next_hop(&self, from_seg: u8, dst_seg: u8) -> Option<Bridge> {
        let n = self.clusters.len();
        let usable: Vec<&Bridge> = self
            .bridges
            .iter()
            .filter(|br| {
                self.clusters[br.a.segment as usize].node_online(br.a.node)
                    && self.clusters[br.b.segment as usize].node_online(br.b.node)
            })
            .collect();
        // BFS from dst back toward from_seg, recording the first hop.
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[dst_seg as usize] = 0;
        queue.push_back(dst_seg);
        while let Some(seg) = queue.pop_front() {
            for br in &usable {
                for (x, y) in [(br.a, br.b), (br.b, br.a)] {
                    if x.segment == seg && dist[y.segment as usize] == usize::MAX {
                        dist[y.segment as usize] = dist[seg as usize] + 1;
                        queue.push_back(y.segment);
                    }
                }
            }
        }
        if dist[from_seg as usize] == usize::MAX {
            return None;
        }
        // Choose the usable bridge out of from_seg that decreases the
        // distance; deterministic: first in registration order.
        usable
            .into_iter()
            .find(|br| {
                let (local, remote) = if br.a.segment == from_seg {
                    (br.a, br.b)
                } else if br.b.segment == from_seg {
                    (br.b, br.a)
                } else {
                    return false;
                };
                let _ = local;
                dist[remote.segment as usize] + 1 == dist[from_seg as usize]
            })
            .copied()
    }

    /// Send a globally-addressed datagram.
    pub fn send_global(&mut self, src: GlobalAddr, dst: GlobalAddr, payload: &[u8]) {
        let wire = encode(dst, src, payload);
        if src.segment == dst.segment {
            self.clusters[src.segment as usize].send_message(
                src.node,
                dst.node,
                ROUTE_STREAM,
                &wire,
            );
            return;
        }
        match self.next_hop(src.segment, dst.segment) {
            Some(br) => {
                let router = if br.a.segment == src.segment { br.a } else { br.b };
                if router.node == src.node {
                    // The sender IS the router: queue straight across.
                    let now = self.clusters[src.segment as usize].now();
                    let egress = if br.a.segment == src.segment { br.b } else { br.a };
                    self.crossing.push(InFlight {
                        deliver_at: now + br.latency,
                        ingress: egress,
                        wire,
                    });
                } else {
                    self.clusters[src.segment as usize].send_message(
                        src.node,
                        router.node,
                        ROUTE_STREAM,
                        &wire,
                    );
                }
            }
            None => self.unroutable += 1,
        }
    }

    /// Pop the next delivered global datagram at an address.
    pub fn pop_global(&mut self, at: GlobalAddr) -> Option<GlobalDatagram> {
        self.delivered[at.segment as usize][at.node as usize].pop_front()
    }

    /// Advance every segment in lockstep to `deadline`, moving bridge
    /// traffic between slices of `slice` duration.
    pub fn run_until(&mut self, deadline: SimTime, slice: SimDuration) {
        assert!(slice.as_nanos() > 0, "slice must be positive");
        loop {
            let now = self.clusters.iter().map(|c| c.now()).max().unwrap_or(SimTime::ZERO);
            if now >= deadline {
                break;
            }
            let step_to = (now + slice).min(deadline);
            for c in &mut self.clusters {
                c.run_until(step_to);
            }
            self.drain_route_streams(step_to);
            self.deliver_crossings(step_to);
        }
    }

    /// Convenience: run for a duration with a default 10 µs slice.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self
            .clusters
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(SimTime::ZERO)
            + d;
        self.run_until(deadline, SimDuration::from_micros(10));
    }

    /// Pull ROUTE_STREAM datagrams out of every node's inbox: deliver
    /// finals, queue bridge crossings, forward multi-hop traffic.
    fn drain_route_streams(&mut self, now: SimTime) {
        for seg in 0..self.clusters.len() as u8 {
            for node in 0..self.clusters[seg as usize].n_nodes() as u8 {
                // Collect first to avoid borrowing issues.
                let mut datagrams = vec![];
                while let Some(d) = self.clusters[seg as usize].pop_message_on(node, ROUTE_STREAM)
                {
                    datagrams.push(d);
                }
                for d in datagrams {
                    let Some((dst, src, payload)) = decode(&d.payload) else {
                        continue;
                    };
                    let here = GlobalAddr {
                        segment: seg,
                        node,
                    };
                    if dst == here {
                        self.delivered[seg as usize][node as usize].push_back(GlobalDatagram {
                            src,
                            payload: payload.to_vec(),
                        });
                    } else if dst.segment == seg {
                        // Mis-delivered within segment (should not
                        // happen: unicast goes straight to the node).
                        self.clusters[seg as usize].send_message(
                            node,
                            dst.node,
                            ROUTE_STREAM,
                            &d.payload,
                        );
                    } else {
                        // This node is a router on the path: cross the
                        // bridge toward dst.
                        match self.next_hop(seg, dst.segment) {
                            Some(br) => {
                                let (local, remote) =
                                    if br.a.segment == seg { (br.a, br.b) } else { (br.b, br.a) };
                                if local.node == node {
                                    self.crossing.push(InFlight {
                                        deliver_at: now + br.latency,
                                        ingress: remote,
                                        wire: d.payload.clone(),
                                    });
                                } else {
                                    // Reach the proper router first.
                                    self.clusters[seg as usize].send_message(
                                        node,
                                        local.node,
                                        ROUTE_STREAM,
                                        &d.payload,
                                    );
                                }
                            }
                            None => self.unroutable += 1,
                        }
                    }
                }
            }
        }
    }

    /// Inject matured crossings into their ingress segment.
    fn deliver_crossings(&mut self, now: SimTime) {
        let mut staying = vec![];
        let pending: Vec<InFlight> = self.crossing.drain(..).collect();
        for x in pending {
            if x.deliver_at > now {
                staying.push(x);
                continue;
            }
            let Some((dst, _src, _payload)) = decode(&x.wire) else {
                continue;
            };
            let seg = x.ingress.segment as usize;
            if !self.clusters[seg].node_online(x.ingress.node) {
                // Router died while the frame crossed; re-route from
                // any online node... the originator will re-send at
                // the application layer. Count it.
                self.unroutable += 1;
                continue;
            }
            if dst.segment == x.ingress.segment {
                // Final segment: router forwards to the destination
                // (or delivers to itself).
                self.clusters[seg].send_message(
                    x.ingress.node,
                    dst.node,
                    ROUTE_STREAM,
                    &x.wire,
                );
            } else {
                // Multi-hop: route onward from the ingress router.
                match self.next_hop(x.ingress.segment, dst.segment) {
                    Some(br) => {
                        let (local, remote) = if br.a.segment == x.ingress.segment {
                            (br.a, br.b)
                        } else {
                            (br.b, br.a)
                        };
                        if local.node == x.ingress.node {
                            staying.push(InFlight {
                                deliver_at: now + br.latency,
                                ingress: remote,
                                wire: x.wire,
                            });
                        } else {
                            self.clusters[seg].send_message(
                                x.ingress.node,
                                local.node,
                                ROUTE_STREAM,
                                &x.wire,
                            );
                        }
                    }
                    None => self.unroutable += 1,
                }
            }
        }
        self.crossing = staying;
    }
}
