//! Multi-segment AmpNet networks (slide 15): dual- and quad-redundant
//! *segments* joined by router nodes ("R" — and "2R's" for redundant
//! routers).
//!
//! Each segment is a full [`Cluster`] with its own ring, cache and
//! self-healing. A *bridge* is a pair of router nodes, one on each
//! segment, connected by an inter-segment link. Globally-addressed
//! datagrams `(segment, node)` hop segment-locally to the router,
//! cross the bridge, and continue — with automatic failover to a
//! redundant bridge when a router node dies.
//!
//! # Sharded conservative PDES
//!
//! The segments run in lockstep time slices (conservative parallel
//! discrete-event simulation). Each slice, every cluster *shard*
//! advances to the same simulated instant — under
//! [`ParallelMode::Threads`] the shards advance concurrently on a
//! scoped worker pool synchronized by a sense-reversing *epoch gate*
//! (see `EpochGate`) — then the coordinator performs the *boundary
//! exchange*: route-stream inboxes are drained in deterministic
//! `(segment, node, FIFO seq)` order and matured bridge crossings
//! injected per *dirty* bridge in bridge-registration order.
//!
//! Why determinism survives threads: shards only interact through the
//! exchange. During a slice each cluster is advanced by exactly one
//! worker (shard confinement — its kernel, RNG, trace and telemetry
//! registry are private to the shard), so its state after the slice is
//! a pure function of its state before it, independent of scheduling.
//! The exchange itself always runs single-threaded on the coordinator
//! in a fixed total order. The minimum bridge latency is the classic
//! conservative *lookahead*: a datagram handed to a bridge at one
//! boundary cannot affect the far segment before `latency` has passed,
//! so slices up to that long never miss a causal interaction. (Slices
//! may be *coarser*: inboxes are drained only at boundaries, so the
//! effective crossing time is quantised to the slice either way;
//! crossings are injected exactly at their maturity instant, see
//! [`MultiSegment::run_until`].)
//!
//! # Adaptive lookahead
//!
//! Fixed slices charge the full synchronization price — two gate
//! crossings and an exchange scan — every `slice` nanoseconds, even
//! through phases where no bridge carries any traffic. The engine
//! amortizes that four ways (all default, see [`Lookahead`]):
//!
//! * **Adaptive slice sizing and fusion** ([`SlicePlanner`]): quiet
//!   exchanges double the slice up to [`crate::MAX_SLICE_GROWTH`]× the
//!   base, any moved traffic resets it, and dead air (no shard has an
//!   event before the tentative boundary) is skipped outright. Once a
//!   quiet phase is established ([`crate::FUSE_AFTER`] consecutive
//!   quiet exchanges) and no crossing is in flight, consecutive quiet
//!   slices *fuse*: one [`crate::FUSE_FACTOR`]-wide window is planned
//!   and published in a single epoch-gate publication instead of
//!   re-planning each slice.
//! * **Quiescent-shard skipping**: a shard with no event due within
//!   the slice does not wake its worker — the coordinator bumps its
//!   clock inline (an O(1) operation) while workers that do have work
//!   run concurrently. Every shard's clock still advances every slice;
//!   only the wake is skipped. When *every* shard is quiescent the
//!   epoch gate is never touched at all (a fully elided barrier,
//!   counted in [`SliceStats::barriers_elided`]).
//! * **Dirty-bridge exchange**: in-flight crossings are queued per
//!   bridge (`CrossingSet`); a bridge is *dirty* while its queue is
//!   non-empty. The delivery merge runs only over dirty bridges, the
//!   earliest-maturity scan is one `front()` peek per bridge, and the
//!   route-stream drain is gated on per-shard `ROUTE_STREAM` backlog
//!   (an O(1) check per shard against [`Cluster::pending_messages_on`]).
//! * **Exchange skipping**: when no shard holds backlog *and* no
//!   crossing has matured, the whole exchange is a proven no-op and is
//!   skipped outright ([`SliceStats::exchanges_skipped`]). Elision and
//!   skipping are pure no-ops, so [`Lookahead::Fixed`] plus elision
//!   reproduces the fixed-slice engine bit-for-bit.
//!
//! Every decision above is a pure function of shard-visible state at a
//! boundary (queue peeks, inbox backlog, in-flight crossings) — all
//! deterministic functions of the seed — so Serial and Threads modes
//! plan identical boundary sequences and produce identical digests.
//! The `slice-planner` model in `ampnet-check` exhaustively verifies
//! the planner never delivers a crossing past its maturity and never
//! starves a shard; `tests/parallel_equivalence.rs` pins cross-mode
//! digest equality under both policies.

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::planner::{Lookahead, SlicePlanner};
use ampnet_sim::{Fnv64, SimDuration, SimTime};
use ampnet_telemetry::{defs, CounterHandle, MetricsSnapshot, Telemetry, GLOBAL};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Message stream reserved for inter-segment routing.
pub const ROUTE_STREAM: u8 = 5;

/// A global address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalAddr {
    /// Segment index.
    pub segment: u8,
    /// Node within the segment.
    pub node: u8,
}

/// One inter-segment bridge (a router pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bridge {
    /// Endpoint on the first segment.
    pub a: GlobalAddr,
    /// Endpoint on the second segment.
    pub b: GlobalAddr,
    /// One-way latency across the bridge.
    pub latency: SimDuration,
}

/// A routed datagram awaiting cross-bridge delivery.
#[derive(Debug)]
struct InFlight {
    deliver_at: SimTime,
    ingress: GlobalAddr,
    wire: Vec<u8>,
}

/// In-flight crossings, queued per bridge (index = bridge registration
/// order). A bridge with a non-empty queue is *dirty*; the delivery
/// merge runs only over dirty bridges and the whole exchange is
/// skipped when no queue holds a matured entry.
///
/// Every push happens at a boundary instant `now` with `deliver_at =
/// now + latency` for that bridge's constant latency, and boundaries
/// are monotone — so each queue is FIFO *and* sorted by `deliver_at`.
/// The front entry therefore carries the bridge's earliest maturity:
/// the planner's earliest-crossing scan and the matured check are one
/// `front()` peek per bridge instead of a walk over every crossing.
#[derive(Default)]
struct CrossingSet {
    per_bridge: Vec<VecDeque<InFlight>>,
}

impl CrossingSet {
    /// Grow to cover `n_bridges` queues (bridges are only ever added).
    fn ensure(&mut self, n_bridges: usize) {
        if self.per_bridge.len() < n_bridges {
            self.per_bridge.resize_with(n_bridges, VecDeque::new);
        }
    }

    /// Queue a crossing on bridge `idx` (registration order).
    fn push(&mut self, idx: usize, x: InFlight) {
        self.ensure(idx + 1);
        debug_assert!(
            self.per_bridge[idx].back().is_none_or(|b| b.deliver_at <= x.deliver_at),
            "per-bridge queues must stay sorted by maturity"
        );
        self.per_bridge[idx].push_back(x);
    }

    /// Earliest in-flight maturity strictly after `now`, across all
    /// bridges (one front peek per dirty bridge).
    fn earliest_after(&self, now: SimTime) -> Option<SimTime> {
        self.per_bridge
            .iter()
            .filter_map(|q| q.front())
            .map(|x| x.deliver_at)
            .filter(|&t| t > now)
            .min()
    }

    /// Does any bridge hold a crossing matured at or before `t`?
    fn any_matured(&self, t: SimTime) -> bool {
        self.per_bridge
            .iter()
            .any(|q| q.front().is_some_and(|x| x.deliver_at <= t))
    }

    /// Number of dirty bridges (non-empty queues) right now.
    fn dirty_count(&self) -> u64 {
        self.per_bridge.iter().filter(|q| !q.is_empty()).count() as u64
    }
}

/// A delivered global datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDatagram {
    /// Original sender.
    pub src: GlobalAddr,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// How the lockstep engine advances its shards each slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelMode {
    /// One thread advances every shard in segment order — the
    /// reference execution.
    Serial,
    /// A scoped pool of this many worker threads advances the shards
    /// concurrently (worker `w` takes segments `w, w + n, ...`).
    /// Produces bit-identical results to [`ParallelMode::Serial`] for
    /// the same seed — enforced by `tests/parallel_equivalence.rs`.
    Threads(usize),
}

/// Accumulated counters from the lockstep engine, one total per
/// [`MultiSegment`] across all `run_until` calls.
///
/// All fields except [`SliceStats::worker_wakes`] are *mode-invariant*:
/// computed by the coordinator from deterministic simulation state, so
/// they are bit-identical across [`ParallelMode`]s for the same seed
/// (and safe to publish through telemetry). `worker_wakes` depends on
/// the worker count and is reported here only — never in a digest or a
/// merged snapshot.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SliceStats {
    /// Lockstep slices executed (boundary exchanges reached).
    pub slices: u64,
    /// Exchanges where the route-stream drain was skipped because no
    /// shard held `ROUTE_STREAM` backlog.
    pub drains_elided: u64,
    /// Exchanges where crossing delivery was skipped because no
    /// in-flight crossing had matured.
    pub deliveries_elided: u64,
    /// (shard, slice) pairs where the shard had no event due within
    /// the slice — its clock was bumped without waking a worker.
    /// Counted exactly once per planned slice, at plan consumption
    /// (both drive paths share the tally site), so slice fusion —
    /// which replaces several notional slices with one planned one —
    /// never double-counts.
    pub quiescent_shard_slices: u64,
    /// Slices where *every* shard was quiescent: the epoch gate was
    /// never touched (threaded mode publishes nothing, wakes no one).
    /// A pure plan property, so mode-invariant.
    pub barriers_elided: u64,
    /// Boundaries where the entire exchange was skipped: no shard held
    /// `ROUTE_STREAM` backlog *and* no crossing had matured.
    pub exchanges_skipped: u64,
    /// (bridge, boundary) pairs with at least one crossing in flight
    /// after the drain — the numerator of the dirty-bridge ratio
    /// (denominator: `slices × bridges`).
    pub dirty_bridges: u64,
    /// Worker wake-ups under [`ParallelMode::Threads`] (always 0 under
    /// Serial). The one mode-*dependent* field.
    pub worker_wakes: u64,
}

impl SliceStats {
    fn absorb(&mut self, other: &SliceStats) {
        self.slices += other.slices;
        self.drains_elided += other.drains_elided;
        self.deliveries_elided += other.deliveries_elided;
        self.quiescent_shard_slices += other.quiescent_shard_slices;
        self.barriers_elided += other.barriers_elided;
        self.exchanges_skipped += other.exchanges_skipped;
        self.dirty_bridges += other.dirty_bridges;
        self.worker_wakes += other.worker_wakes;
    }
}

/// Coordinator-side telemetry handles. Only mode-invariant counters
/// live here (see [`SliceStats`]), so the merged snapshot stays
/// byte-identical across [`ParallelMode`]s.
struct CoordTel {
    tel: Telemetry,
    slices: CounterHandle,
    exchanges_elided: CounterHandle,
    quiescent: CounterHandle,
    barriers_elided: CounterHandle,
    exchanges_skipped: CounterHandle,
    dirty_bridges: CounterHandle,
}

impl CoordTel {
    fn new(tel: &Telemetry) -> Self {
        CoordTel {
            tel: tel.clone(),
            slices: tel.counter(&defs::PDES_SLICES, GLOBAL),
            exchanges_elided: tel.counter(&defs::PDES_EXCHANGES_ELIDED, GLOBAL),
            quiescent: tel.counter(&defs::PDES_QUIESCENT_SHARD_SLICES, GLOBAL),
            barriers_elided: tel.counter(&defs::PDES_BARRIERS_ELIDED, GLOBAL),
            exchanges_skipped: tel.counter(&defs::PDES_EXCHANGES_SKIPPED, GLOBAL),
            dirty_bridges: tel.counter(&defs::PDES_DIRTY_BRIDGES, GLOBAL),
        }
    }
}

/// A multi-segment AmpNet network.
pub struct MultiSegment {
    clusters: Vec<Cluster>,
    bridges: Vec<Bridge>,
    crossing: CrossingSet,
    delivered: Vec<Vec<VecDeque<GlobalDatagram>>>,
    /// Datagrams dropped for having no usable route (counted, so tests
    /// can assert routedness).
    pub unroutable: u64,
    mode: ParallelMode,
    lookahead: Lookahead,
    stats: SliceStats,
    /// Per-shard telemetry handles (one registry per segment, so no
    /// cross-thread interleaving can touch registration order). Empty
    /// until [`MultiSegment::enable_telemetry`].
    shard_tels: Vec<Telemetry>,
    /// Coordinator registry (engine counters); folded last by
    /// [`MultiSegment::merged_metrics_snapshot`].
    coord: Option<CoordTel>,
}

fn encode(dst: GlobalAddr, src: GlobalAddr, payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&[dst.segment, dst.node, src.segment, src.node]);
    wire.extend_from_slice(payload);
    wire
}

fn decode(wire: &[u8]) -> Option<(GlobalAddr, GlobalAddr, &[u8])> {
    if wire.len() < 4 {
        return None;
    }
    Some((
        GlobalAddr {
            segment: wire[0],
            node: wire[1],
        },
        GlobalAddr {
            segment: wire[2],
            node: wire[3],
        },
        &wire[4..],
    ))
}

/// One shard slot. Workers and the coordinator strictly alternate
/// access (workers only between the two barrier waits of a slice, the
/// coordinator only outside them), so every lock is uncontended — the
/// mutex exists to make that alternation safe, not to arbitrate.
type ShardCell<'a> = Mutex<&'a mut Cluster>;

/// Lock a shard cell. A poisoned cell means a worker panicked mid-run;
/// propagate the panic rather than computing with a half-advanced
/// shard.
fn shard<'g, 'a>(cell: &'g ShardCell<'a>) -> MutexGuard<'g, &'a mut Cluster> {
    cell.lock().expect("shard worker panicked") // lint: allow(panic-freedom): a poisoned cell means a worker panicked mid-slice; propagate instead of computing with a half-advanced shard
}

/// Routing context carried across boundary exchanges. The
/// usable-bridge set is a function of node liveness, which only
/// changes while shards advance — never during an exchange, when
/// every shard is parked at the boundary. So it is computed at most
/// once per boundary (lazily: pure final-hop deliveries never pay the
/// 2-locks-per-bridge liveness scan) and the per-destination BFS
/// distance tables derived from it are memoized for as long as the
/// set stays identical between boundaries — in steady state each
/// destination segment's BFS runs once per `run_until`, not once per
/// bridge hop.
#[derive(Default)]
struct RouteCtx {
    /// Usable set (bridge registration indices, ascending) for the
    /// current boundary; `None` until first use within the boundary
    /// (invalidated by [`RouteCtx::new_boundary`]).
    usable: Option<Vec<usize>>,
    /// The usable set the memoized distance tables were built from.
    tables_for: Vec<usize>,
    /// Memoized BFS distances, indexed by destination segment.
    dist_to: Vec<Option<Box<[usize]>>>,
    queue: VecDeque<usize>,
    /// Reusable collect buffer for one node's ROUTE_STREAM drain.
    datagrams: Vec<ampnet_services::msg::Datagram>,
}

impl RouteCtx {
    /// Forget the boundary-local usable set (liveness may change while
    /// shards advance to the next boundary). The distance tables stay:
    /// they are revalidated against the fresh set on next use.
    fn new_boundary(&mut self) {
        self.usable = None;
    }

    /// Next hop (bridge registration index) for `from_seg` →
    /// `dst_seg`, identical to [`route_next_hop`] over the current
    /// usable set but with the liveness scan amortized per boundary
    /// and the BFS amortized per liveness change.
    fn route(
        &mut self,
        xch: &Exchange<'_>,
        cells: &[ShardCell<'_>],
        from_seg: u8,
        dst_seg: u8,
    ) -> Option<usize> {
        if self.usable.is_none() {
            let fresh = xch.usable_bridges(cells);
            if fresh != self.tables_for {
                self.tables_for.clone_from(&fresh);
                self.dist_to.iter_mut().for_each(|t| *t = None);
            }
            self.usable = Some(fresh);
        }
        let usable = self.usable.as_deref().expect("filled above"); // lint: allow(panic-freedom): usable is filled by the branch directly above
        if self.dist_to.len() < cells.len() {
            self.dist_to.resize(cells.len(), None);
        }
        let slot = &mut self.dist_to[dst_seg as usize];
        let dist = match slot {
            Some(d) => &**d,
            None => &**slot.insert(route_distances(
                xch.bridges,
                usable,
                cells.len(),
                dst_seg,
                &mut self.queue,
            )),
        };
        first_descending_bridge(xch.bridges, usable, dist, from_seg)
    }
}

/// Hop distances from every segment to `dst_seg` over the `usable`
/// bridges (registration indices into `bridges`; `usize::MAX` =
/// unreachable): BFS from the destination, over the workspace's shared
/// traversal ([`ampnet_topo::pathing::bfs_distances_into`]). Bridges
/// are enumerated in registration order, so the distance field — and
/// every routing decision derived from it — is unchanged from the
/// inline implementation this replaced.
fn route_distances(
    bridges: &[Bridge],
    usable: &[usize],
    n_segments: usize,
    dst_seg: u8,
    queue: &mut VecDeque<usize>,
) -> Box<[usize]> {
    ampnet_topo::pathing::bfs_distances_into(n_segments, dst_seg as usize, queue, |seg, visit| {
        for &i in usable {
            let br = &bridges[i];
            for (x, y) in [(br.a, br.b), (br.b, br.a)] {
                if x.segment as usize == seg {
                    visit(y.segment as usize);
                }
            }
        }
    })
}

/// The first usable bridge (registration order) out of `from_seg`
/// whose far side is strictly closer to the destination `dist` was
/// computed for. Returns the bridge's registration index.
fn first_descending_bridge(
    bridges: &[Bridge],
    usable: &[usize],
    dist: &[usize],
    from_seg: u8,
) -> Option<usize> {
    if dist[from_seg as usize] == usize::MAX {
        return None;
    }
    usable
        .iter()
        .find(|&&i| {
            let br = &bridges[i];
            let remote = if br.a.segment == from_seg {
                br.b
            } else if br.b.segment == from_seg {
                br.a
            } else {
                return false;
            };
            dist[remote.segment as usize] + 1 == dist[from_seg as usize]
        })
        .copied()
}

/// Next-hop router (bridge registration index) for traffic from
/// `from_seg` toward `dst_seg`, given the currently `usable` bridges
/// (both router nodes online): BFS from the destination, then the
/// first usable bridge (registration order) out of `from_seg` that
/// decreases the distance. Pure function of
/// `usable`/`n_segments`/`from_seg`/`dst_seg`, so serial and threaded
/// execution route identically; [`RouteCtx::route`] is the memoized
/// hot-path equivalent.
fn route_next_hop(
    bridges: &[Bridge],
    usable: &[usize],
    n_segments: usize,
    from_seg: u8,
    dst_seg: u8,
    queue: &mut VecDeque<usize>,
) -> Option<usize> {
    let dist = route_distances(bridges, usable, n_segments, dst_seg, queue);
    first_descending_bridge(bridges, usable, &dist, from_seg)
}

/// The barrier-exchange state: everything the coordinator mutates
/// between slices, split from the shard cells so the *same* exchange
/// code runs under both [`ParallelMode`]s. All methods take the cells
/// and hold at most one shard lock at a time (routing decisions peek
/// at several shards in sequence), which rules out lock-order cycles.
struct Exchange<'a> {
    bridges: &'a [Bridge],
    crossing: &'a mut CrossingSet,
    delivered: &'a mut [Vec<VecDeque<GlobalDatagram>>],
    unroutable: &'a mut u64,
}

impl Exchange<'_> {
    /// Registration indices of bridges whose *both* router nodes are
    /// online right now (ascending, preserving registration order).
    fn usable_bridges(&self, cells: &[ShardCell<'_>]) -> Vec<usize> {
        self.bridges
            .iter()
            .enumerate()
            .filter(|(_, br)| {
                shard(&cells[br.a.segment as usize]).node_online(br.a.node)
                    // lint: allow(lock-discipline): coordinator-only probe while every worker is parked at the slice boundary — both guards are uncontended and no cross-thread order cycle exists
                    && shard(&cells[br.b.segment as usize]).node_online(br.b.node)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Pull ROUTE_STREAM datagrams out of every node's inbox: deliver
    /// finals, queue bridge crossings, forward multi-hop traffic.
    /// Iteration order — segment ascending, node ascending, FIFO
    /// within an inbox — is the deterministic exchange order.
    fn drain_route_streams(
        &mut self,
        cells: &[ShardCell<'_>],
        now: SimTime,
        routes: &mut RouteCtx,
    ) {
        for seg in 0..cells.len() as u8 {
            let n_nodes = {
                let c = shard(&cells[seg as usize]);
                // Whole segment clean: skip its node loop outright.
                if c.pending_messages_on(ROUTE_STREAM) == 0 {
                    continue;
                }
                c.n_nodes() as u8
            };
            for node in 0..n_nodes {
                // Collect with the shard locked, then route with the
                // lock released (routing peeks at other shards).
                let mut datagrams = std::mem::take(&mut routes.datagrams);
                datagrams.clear();
                {
                    let mut c = shard(&cells[seg as usize]);
                    while let Some(d) = c.pop_message_on(node, ROUTE_STREAM) {
                        datagrams.push(d);
                    }
                }
                for d in &datagrams {
                    let Some((dst, src, payload)) = decode(&d.payload) else {
                        continue;
                    };
                    let here = GlobalAddr { segment: seg, node };
                    if dst == here {
                        self.delivered[seg as usize][node as usize].push_back(GlobalDatagram {
                            src,
                            payload: payload.to_vec(),
                        });
                    } else if dst.segment == seg {
                        // Mis-delivered within segment (should not
                        // happen: unicast goes straight to the node).
                        shard(&cells[seg as usize]).send_message(
                            node,
                            dst.node,
                            ROUTE_STREAM,
                            &d.payload,
                        );
                    } else {
                        // This node is a router on the path: cross the
                        // bridge toward dst, marking its queue dirty.
                        match routes.route(self, cells, seg, dst.segment) {
                            Some(bi) => {
                                let br = self.bridges[bi];
                                let (local, remote) =
                                    if br.a.segment == seg { (br.a, br.b) } else { (br.b, br.a) };
                                if local.node == node {
                                    self.crossing.push(bi, InFlight {
                                        deliver_at: now + br.latency,
                                        ingress: remote,
                                        wire: d.payload.clone(),
                                    });
                                } else {
                                    // Reach the proper router first.
                                    shard(&cells[seg as usize]).send_message(
                                        node,
                                        local.node,
                                        ROUTE_STREAM,
                                        &d.payload,
                                    );
                                }
                            }
                            None => *self.unroutable += 1,
                        }
                    }
                }
                routes.datagrams = datagrams;
            }
        }
    }

    /// Inject matured crossings into their ingress segment: the merge
    /// over *dirty* bridges, in bridge registration order, FIFO within
    /// each queue. Clean bridges (empty queues) cost one `is_empty`
    /// peek; a multi-hop re-cross pushed during the merge lands at
    /// `now + latency > now` and is therefore never reprocessed within
    /// the same boundary, wherever its target queue sits in the order.
    fn deliver_crossings(
        &mut self,
        cells: &[ShardCell<'_>],
        now: SimTime,
        routes: &mut RouteCtx,
    ) {
        for b in 0..self.crossing.per_bridge.len() {
            while self.crossing.per_bridge[b]
                .front()
                .is_some_and(|x| x.deliver_at <= now)
            {
                let Some(x) = self.crossing.per_bridge[b].pop_front() else {
                    break;
                };
                let Some((dst, _src, _payload)) = decode(&x.wire) else {
                    continue;
                };
                let seg = x.ingress.segment as usize;
                if !shard(&cells[seg]).node_online(x.ingress.node) {
                    // Router died while the frame crossed; re-route
                    // from any online node... the originator will
                    // re-send at the application layer. Count it.
                    *self.unroutable += 1;
                    continue;
                }
                if dst.segment == x.ingress.segment {
                    // Final segment: router forwards to the
                    // destination (or delivers to itself).
                    shard(&cells[seg]).send_message(
                        x.ingress.node,
                        dst.node,
                        ROUTE_STREAM,
                        &x.wire,
                    );
                } else {
                    // Multi-hop: route onward from the ingress router.
                    match routes.route(self, cells, x.ingress.segment, dst.segment) {
                        Some(bi) => {
                            let br = self.bridges[bi];
                            let (local, remote) = if br.a.segment == x.ingress.segment {
                                (br.a, br.b)
                            } else {
                                (br.b, br.a)
                            };
                            if local.node == x.ingress.node {
                                self.crossing.push(bi, InFlight {
                                    deliver_at: now + br.latency,
                                    ingress: remote,
                                    wire: x.wire,
                                });
                            } else {
                                shard(&cells[seg]).send_message(
                                    x.ingress.node,
                                    local.node,
                                    ROUTE_STREAM,
                                    &x.wire,
                                );
                            }
                        }
                        None => *self.unroutable += 1,
                    }
                }
            }
        }
    }
}

/// The sense-reversing epoch gate: the single synchronization
/// primitive of the threaded drive, replacing the old per-worker
/// channel wake plus shared done-channel protocol (two blocking
/// channel crossings per worker per slice).
///
/// Protocol. The coordinator *publishes* a slice by storing the
/// boundary (`step`), the busy-worker mask (`busy`), a zeroed `done`
/// count, and then — the sense reversal — advancing the monotone
/// `epoch` word (release ordering makes the other stores visible to
/// anyone who observes the new epoch). Workers park on the epoch word
/// (bounded spin, then [`std::thread::park`]); a worker that observes
/// an epoch it has not completed re-reads `busy`/`step`, **re-checks
/// the epoch word** (a changed epoch means the publication was torn
/// across the reads — retry), advances its partition if its busy bit
/// is set, and bumps `done`. The coordinator waits until `done`
/// reaches the popcount of `busy`.
///
/// What the gate buys over the channels it replaces:
/// * a worker whose partition is fully quiescent is never woken *and
///   never contributes a crossing* — the coordinator bumps its shards
///   inline and the worker stays parked through any number of epochs
///   (it catches up by observing only the latest);
/// * a fully-quiescent slice touches the gate not at all (no store,
///   no unpark — [`SliceStats::barriers_elided`]);
/// * a fused quiet window ([`crate::FUSE_FACTOR`] notional slices) is
///   one publication.
///
/// Unpark tokens are sticky, so the publish-then-unpark order has no
/// lost-wake window; a stale token at worst costs one spurious loop
/// iteration (the worker re-parks on an unchanged epoch). `done` is
/// bumped through a drop guard, so a panicking worker still releases
/// the coordinator, which then propagates the panic through the
/// poisoned shard mutex instead of spinning forever.
struct EpochGate {
    /// Monotone publication counter (the sense word).
    epoch: AtomicU64,
    /// Boundary instant (nanos) published with the current epoch.
    step: AtomicU64,
    /// Bit `w`: worker `w` owns at least one busy shard this epoch.
    /// A `u64` caps the pool at 64 workers (enforced in `run_until`).
    busy: AtomicU64,
    /// Workers finished with the current epoch.
    done: AtomicU64,
    /// Set (before the final epoch bump) to shut the pool down.
    shutdown: AtomicBool,
}

impl EpochGate {
    fn new() -> Self {
        EpochGate {
            epoch: AtomicU64::new(0),
            step: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            done: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Publish a slice: `mask` must be non-zero (an all-quiescent
    /// slice elides the gate instead). Returns the new epoch.
    fn publish(&self, step: SimTime, mask: u64) -> u64 {
        debug_assert_ne!(mask, 0, "publishing an empty slice");
        self.step.store(step.0, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        self.busy.store(mask, Ordering::Relaxed);
        // The release bump orders every store above before the epoch
        // observation that makes workers act on them.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// Coordinator-side wait until `finished` workers completed the
    /// current epoch. Bounded spin, then yield: slices are short, but
    /// on an oversubscribed host the workers need the core more than
    /// a spinning coordinator does.
    fn await_done(&self, finished: u64) {
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) < finished {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Worker-side wait for an epoch newer than `seen`. Bounded spin,
    /// then park (tokens make the race with `unpark` benign).
    fn await_epoch(&self, seen: u64) -> u64 {
        let mut spins = 0u32;
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e != seen {
                return e;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
    }
}

/// Bumps a counter on drop: keeps `EpochGate::await_done` finite even
/// when a worker's slice panics (see the gate's protocol doc).
struct DoneGuard<'g>(&'g AtomicU64);

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Release);
    }
}

/// One planned slice: the boundary every shard advances to, plus which
/// shards actually have work before it.
struct SlicePlan {
    step_to: SimTime,
    /// `busy[i]` — shard `i` has an event due at or before `step_to`
    /// and must be advanced by a worker; quiescent shards only need a
    /// clock bump.
    busy: Vec<bool>,
    quiescent: u64,
}

/// Plan the next slice, or `None` once every shard has reached
/// `deadline`. Pure function of deterministic shard state (clock
/// maxima, queue peeks, in-flight crossings), so Serial and Threads
/// modes plan identical boundary sequences — the whole determinism
/// argument reduces to this.
fn plan_slice(
    cells: &[ShardCell<'_>],
    crossing: &CrossingSet,
    planner: &SlicePlanner,
    deadline: SimTime,
) -> Option<SlicePlan> {
    let mut now = SimTime::ZERO;
    let mut nexts = Vec::with_capacity(cells.len());
    for cell in cells {
        let mut c = shard(cell);
        now = now.max(c.now());
        nexts.push(c.next_event_time());
    }
    if now >= deadline {
        return None;
    }
    let earliest_event = nexts.iter().flatten().copied().min();
    let earliest_crossing = crossing.earliest_after(now);
    let step_to = planner.boundary(now, deadline, earliest_event, earliest_crossing);
    let busy: Vec<bool> = nexts
        .iter()
        .map(|nx| nx.is_some_and(|t| t <= step_to))
        .collect();
    let quiescent = busy.iter().filter(|b| !**b).count() as u64;
    Some(SlicePlan {
        step_to,
        busy,
        quiescent,
    })
}

impl MultiSegment {
    /// Build a network of independent segments (each boots its own
    /// ring); add bridges before sending.
    pub fn new(configs: Vec<ClusterConfig>) -> Self {
        let delivered = configs
            .iter()
            .map(|c| (0..c.n_nodes).map(|_| VecDeque::new()).collect())
            .collect();
        MultiSegment {
            clusters: configs.into_iter().map(Cluster::new).collect(),
            bridges: vec![],
            crossing: CrossingSet::default(),
            delivered,
            unroutable: 0,
            mode: ParallelMode::Serial,
            lookahead: Lookahead::default(),
            stats: SliceStats::default(),
            shard_tels: vec![],
            coord: None,
        }
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.clusters.len()
    }

    /// Access a segment's cluster.
    pub fn segment(&self, s: u8) -> &Cluster {
        &self.clusters[s as usize]
    }

    /// Mutable access (fault injection, app start).
    pub fn segment_mut(&mut self, s: u8) -> &mut Cluster {
        &mut self.clusters[s as usize]
    }

    /// Select how shards advance. [`ParallelMode::Serial`] is the
    /// default and the reference; `Threads(n)` must agree with it
    /// bit-for-bit (same seed, same digest).
    pub fn set_parallel_mode(&mut self, mode: ParallelMode) {
        if let ParallelMode::Threads(n) = mode {
            assert!(n >= 1, "Threads(0) has no one to advance the shards");
        }
        self.mode = mode;
    }

    /// The active [`ParallelMode`].
    pub fn parallel_mode(&self) -> ParallelMode {
        self.mode
    }

    /// Select the slice-sizing policy. [`Lookahead::Adaptive`] is the
    /// default; [`Lookahead::Fixed`] reproduces the fixed-slice engine
    /// exactly (A/B baseline for the scale bench). Either policy is
    /// bit-identical across [`ParallelMode`]s for the same seed.
    pub fn set_lookahead(&mut self, policy: Lookahead) {
        self.lookahead = policy;
    }

    /// The active [`Lookahead`] policy.
    pub fn lookahead(&self) -> Lookahead {
        self.lookahead
    }

    /// Accumulated engine counters across every `run_until` call so
    /// far. See [`SliceStats`] for which fields are mode-invariant.
    pub fn slice_stats(&self) -> SliceStats {
        self.stats
    }

    /// The conservative-PDES lookahead bound: the smallest one-way
    /// bridge latency (None while no bridges exist). Slices no longer
    /// than this never quantise a cross-segment interaction.
    pub fn min_bridge_latency(&self) -> Option<SimDuration> {
        self.bridges.iter().map(|b| b.latency).min()
    }

    /// Connect two segments with a router pair.
    pub fn add_bridge(&mut self, a: GlobalAddr, b: GlobalAddr, latency: SimDuration) {
        assert_ne!(a.segment, b.segment, "bridges join distinct segments");
        assert!(latency.as_nanos() > 0, "a zero-latency bridge has no lookahead");
        self.bridges.push(Bridge { a, b, latency });
        self.crossing.ensure(self.bridges.len());
    }

    /// Enable telemetry with one *private* registry per segment (shard
    /// confinement: a worker thread only ever records into the shard it
    /// is advancing). [`MultiSegment::merged_metrics_snapshot`] folds
    /// them deterministically.
    pub fn enable_telemetry(&mut self, flight_capacity: usize) {
        self.shard_tels = self
            .clusters
            .iter_mut()
            .map(|c| {
                let tel = Telemetry::new(flight_capacity);
                c.enable_telemetry_with(&tel);
                tel
            })
            .collect();
        let coord = Telemetry::new(flight_capacity);
        self.enable_coordinator_telemetry_with(&coord);
    }

    /// Register the coordinator's engine counters (slices, elided
    /// exchanges, quiescent shard-slices) on an existing registry. All
    /// of them are mode-invariant — see [`SliceStats`] — so merged
    /// snapshots stay byte-identical across [`ParallelMode`]s.
    pub fn enable_coordinator_telemetry_with(&mut self, tel: &Telemetry) {
        self.coord = Some(CoordTel::new(tel));
    }

    /// Enable the milestone trace on every segment (needed for
    /// [`MultiSegment::digest`] to be meaningful).
    pub fn enable_traces(&mut self, capacity: usize) {
        for c in &mut self.clusters {
            c.enable_trace(capacity);
        }
    }

    /// Cluster-of-clusters metrics: every shard's gauges refreshed,
    /// then the per-shard registries folded in segment order (counters
    /// and gauges sum, histograms merge). Byte-identical for the same
    /// seed under any [`ParallelMode`]. Empty unless
    /// [`MultiSegment::enable_telemetry`] ran.
    pub fn merged_metrics_snapshot(&self) -> MetricsSnapshot {
        for c in &self.clusters {
            c.publish_metrics();
        }
        let mut regs = self.shard_tels.clone();
        if let Some(coord) = &self.coord {
            regs.push(coord.tel.clone());
        }
        Telemetry::merge_shards(&regs)
    }

    /// Deterministic digest of the whole network: each segment's trace
    /// digest folded in segment order, plus the unroutable count. The
    /// serial/threaded equivalence tests compare exactly this.
    pub fn digest(&self) -> u64 {
        let mut f = Fnv64::new();
        for c in &self.clusters {
            f.fold_u64(c.trace().digest());
        }
        f.fold_u64(self.unroutable);
        f.finish()
    }

    /// Total simulation events processed across all shards (the
    /// scaling benchmark's throughput numerator).
    pub fn events_processed(&self) -> u64 {
        self.clusters.iter().map(|c| c.events_processed()).sum()
    }

    /// Send a globally-addressed datagram.
    pub fn send_global(&mut self, src: GlobalAddr, dst: GlobalAddr, payload: &[u8]) {
        let wire = encode(dst, src, payload);
        if src.segment == dst.segment {
            self.clusters[src.segment as usize].send_message(
                src.node,
                dst.node,
                ROUTE_STREAM,
                &wire,
            );
            return;
        }
        let usable: Vec<usize> = self
            .bridges
            .iter()
            .enumerate()
            .filter(|(_, br)| {
                self.clusters[br.a.segment as usize].node_online(br.a.node)
                    && self.clusters[br.b.segment as usize].node_online(br.b.node)
            })
            .map(|(i, _)| i)
            .collect();
        let mut queue = VecDeque::new();
        match route_next_hop(
            &self.bridges,
            &usable,
            self.clusters.len(),
            src.segment,
            dst.segment,
            &mut queue,
        ) {
            Some(bi) => {
                let br = self.bridges[bi];
                let router = if br.a.segment == src.segment { br.a } else { br.b };
                if router.node == src.node {
                    // The sender IS the router: queue straight across
                    // (marking the bridge dirty).
                    let now = self.clusters[src.segment as usize].now();
                    let egress = if br.a.segment == src.segment { br.b } else { br.a };
                    self.crossing.push(bi, InFlight {
                        deliver_at: now + br.latency,
                        ingress: egress,
                        wire,
                    });
                } else {
                    self.clusters[src.segment as usize].send_message(
                        src.node,
                        router.node,
                        ROUTE_STREAM,
                        &wire,
                    );
                }
            }
            None => self.unroutable += 1,
        }
    }

    /// Pop the next delivered global datagram at an address.
    pub fn pop_global(&mut self, at: GlobalAddr) -> Option<GlobalDatagram> {
        self.delivered[at.segment as usize][at.node as usize].pop_front()
    }

    /// Advance every segment in lockstep to `deadline`, moving bridge
    /// traffic between slices. The [`SlicePlanner`] sizes each slice
    /// (at most `slice` under [`Lookahead::Fixed`], adaptively grown —
    /// and fused through established quiet phases — under
    /// [`Lookahead::Adaptive`]); boundaries are additionally placed at
    /// crossing maturity instants and at `deadline`. Under
    /// [`ParallelMode::Threads`] the busy shards of each slice advance
    /// concurrently behind the sense-reversing `EpochGate` (quiescent
    /// shards get an inline clock bump without a publication; fully
    /// quiescent slices never touch the gate); the exchange between
    /// slices is always performed by this thread in deterministic
    /// order, runs its delivery merge only over dirty bridges, and is
    /// skipped outright when it provably has nothing to move.
    pub fn run_until(&mut self, deadline: SimTime, slice: SimDuration) {
        assert!(slice.as_nanos() > 0, "slice must be positive");
        if self.clusters.is_empty() {
            return;
        }
        let workers = match self.mode {
            ParallelMode::Serial => 1,
            // The epoch gate's busy mask caps the pool at 64 — far
            // beyond any host this runs on, and more workers than
            // shards would idle anyway.
            ParallelMode::Threads(n) => n.min(self.clusters.len()).clamp(1, 64),
        };
        let mut planner = SlicePlanner::new(slice, self.lookahead);
        let mut tally = SliceStats::default();
        // Split borrows: the shard cells take `clusters`; the exchange
        // takes everything else. Serial and threaded paths then share
        // all slice/exchange code.
        self.crossing.ensure(self.bridges.len());
        let cells: Vec<ShardCell<'_>> = self.clusters.iter_mut().map(Mutex::new).collect();
        let mut xch = Exchange {
            bridges: &self.bridges,
            crossing: &mut self.crossing,
            delivered: &mut self.delivered,
            unroutable: &mut self.unroutable,
        };
        // The boundary exchange, shared by both drive paths. Elision:
        // draining is a no-op unless some shard holds ROUTE_STREAM
        // backlog (O(shards) reads), delivery is a no-op unless a
        // dirty bridge holds a matured crossing (one front peek per
        // bridge) — all deterministic state, so the elision decisions
        // are mode-invariant (and under `Lookahead::Fixed` eliding
        // changes nothing at all). When both halves elide, the whole
        // exchange was a proven no-op: counted as skipped.
        fn exchange_at(
            xch: &mut Exchange<'_>,
            cells: &[ShardCell<'_>],
            step_to: SimTime,
            planner: &mut SlicePlanner,
            tally: &mut SliceStats,
            routes: &mut RouteCtx,
        ) {
            // Liveness cannot change while every shard is parked at
            // this boundary, so one lazily computed usable-bridge set
            // serves both phases; the distance tables memoized in
            // `routes` survive boundaries until the set changes.
            routes.new_boundary();
            let any_backlog = cells
                .iter()
                .any(|c| shard(c).pending_messages_on(ROUTE_STREAM) > 0);
            if any_backlog {
                xch.drain_route_streams(cells, step_to, routes);
            } else {
                tally.drains_elided += 1;
            }
            // Crossings queued by the drain just now mature at
            // `step_to + latency` (latency > 0), never at `step_to`
            // itself, so checking after the drain misses nothing.
            let any_matured = xch.crossing.any_matured(step_to);
            if any_matured {
                xch.deliver_crossings(cells, step_to, routes);
            } else {
                tally.deliveries_elided += 1;
            }
            if !any_backlog && !any_matured {
                tally.exchanges_skipped += 1;
            }
            tally.dirty_bridges += xch.crossing.dirty_count();
            planner.note_exchange(any_backlog || any_matured);
            tally.slices += 1;
        }
        let mut routes = RouteCtx::default();
        if workers <= 1 {
            while let Some(plan) = plan_slice(&cells, xch.crossing, &planner, deadline) {
                tally.quiescent_shard_slices += plan.quiescent;
                if plan.quiescent == cells.len() as u64 {
                    tally.barriers_elided += 1;
                }
                for cell in &cells {
                    shard(cell).run_until(plan.step_to);
                }
                exchange_at(&mut xch, &cells, plan.step_to, &mut planner, &mut tally, &mut routes);
            }
        } else {
            // Threaded drive: persistent workers parked on the epoch
            // gate. Each slice the coordinator publishes the boundary
            // and the busy-worker mask once, unparks exactly the busy
            // workers, bumps the clocks of every other shard inline
            // (O(1) each — their queues are empty up to the boundary),
            // waits on the done count, then runs the exchange while
            // all workers are parked. Worker `w` owns segments
            // `w, w + n, ...` — a fixed partition, so across slices a
            // shard is only ever touched by its worker or (when the
            // whole partition is quiescent) the coordinator, never two
            // threads in the same slice.
            let gate = EpochGate::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let cells = &cells;
                        let gate = &gate;
                        scope.spawn(move || {
                            let mut seen = 0u64;
                            loop {
                                let cur = gate.await_epoch(seen);
                                if gate.shutdown.load(Ordering::Acquire) {
                                    break;
                                }
                                let mask = gate.busy.load(Ordering::Acquire);
                                let step = SimTime(gate.step.load(Ordering::Acquire));
                                if gate.epoch.load(Ordering::Acquire) != cur {
                                    // Torn read: a newer publication
                                    // landed between the loads. Retry
                                    // against the new epoch (`seen` is
                                    // still the last one *completed*).
                                    continue;
                                }
                                if mask & (1u64 << w) != 0 {
                                    let _done = DoneGuard(&gate.done);
                                    let mut i = w;
                                    while i < cells.len() {
                                        shard(&cells[i]).run_until(step);
                                        i += workers;
                                    }
                                }
                                seen = cur;
                            }
                        })
                    })
                    .collect();
                while let Some(plan) = plan_slice(&cells, xch.crossing, &planner, deadline) {
                    tally.quiescent_shard_slices += plan.quiescent;
                    let mut mask = 0u64;
                    for w in 0..workers {
                        let has_busy = (w..cells.len()).step_by(workers).any(|i| plan.busy[i]);
                        if has_busy {
                            mask |= 1u64 << w;
                        } else {
                            // Entire partition quiescent: bump the
                            // clocks here instead of a wake.
                            let mut i = w;
                            while i < cells.len() {
                                shard(&cells[i]).run_until(plan.step_to);
                                i += workers;
                            }
                        }
                    }
                    if mask == 0 {
                        // Fully quiescent slice (or fused window): the
                        // gate is never touched — no publication, no
                        // unpark, no wait.
                        tally.barriers_elided += 1;
                    } else {
                        gate.publish(plan.step_to, mask);
                        let mut woken = 0u64;
                        for (w, h) in handles.iter().enumerate() {
                            if mask & (1u64 << w) != 0 {
                                h.thread().unpark();
                                woken += 1;
                            }
                        }
                        gate.await_done(woken);
                        tally.worker_wakes += woken;
                    }
                    exchange_at(&mut xch, &cells, plan.step_to, &mut planner, &mut tally, &mut routes);
                }
                gate.shutdown.store(true, Ordering::Release);
                gate.epoch.fetch_add(1, Ordering::Release);
                for h in &handles {
                    h.thread().unpark();
                }
            });
        }
        self.stats.absorb(&tally);
        if let Some(coord) = &self.coord {
            coord.tel.add(coord.slices, tally.slices);
            coord
                .tel
                .add(coord.exchanges_elided, tally.drains_elided + tally.deliveries_elided);
            coord.tel.add(coord.quiescent, tally.quiescent_shard_slices);
            coord.tel.add(coord.barriers_elided, tally.barriers_elided);
            coord.tel.add(coord.exchanges_skipped, tally.exchanges_skipped);
            coord.tel.add(coord.dirty_bridges, tally.dirty_bridges);
        }
    }

    /// Convenience: run for a duration with a default 10 µs slice.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self
            .clusters
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(SimTime::ZERO)
            + d;
        self.run_until(deadline, SimDuration::from_micros(10));
    }
}
