//! Multi-segment AmpNet networks (slide 15): dual- and quad-redundant
//! *segments* joined by router nodes ("R" — and "2R's" for redundant
//! routers).
//!
//! Each segment is a full [`Cluster`] with its own ring, cache and
//! self-healing. A *bridge* is a pair of router nodes, one on each
//! segment, connected by an inter-segment link. Globally-addressed
//! datagrams `(segment, node)` hop segment-locally to the router,
//! cross the bridge, and continue — with automatic failover to a
//! redundant bridge when a router node dies.
//!
//! # Sharded conservative PDES
//!
//! The segments run in lockstep time slices (conservative parallel
//! discrete-event simulation). Each slice, every cluster *shard*
//! advances to the same simulated instant — under
//! [`ParallelMode::Threads`] the shards advance concurrently on a
//! scoped worker pool — then the coordinator performs the *barrier
//! exchange*: route-stream inboxes are drained and bridge crossings
//! injected in deterministic `(segment, node, FIFO seq)` order.
//!
//! Why determinism survives threads: shards only interact through the
//! exchange. During a slice each cluster is advanced by exactly one
//! worker (shard confinement — its kernel, RNG, trace and telemetry
//! registry are private to the shard), so its state after the slice is
//! a pure function of its state before it, independent of scheduling.
//! The exchange itself always runs single-threaded on the coordinator
//! in a fixed total order. The minimum bridge latency is the classic
//! conservative *lookahead*: a datagram handed to a bridge at one
//! boundary cannot affect the far segment before `latency` has passed,
//! so slices up to that long never miss a causal interaction. (Slices
//! may be *coarser*: inboxes are drained only at boundaries, so the
//! effective crossing time is quantised to the slice either way;
//! crossings are injected exactly at their maturity instant, see
//! [`MultiSegment::run_until`].)

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use ampnet_sim::{Fnv64, SimDuration, SimTime};
use ampnet_telemetry::{MetricsSnapshot, Telemetry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// Message stream reserved for inter-segment routing.
pub const ROUTE_STREAM: u8 = 5;

/// A global address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalAddr {
    /// Segment index.
    pub segment: u8,
    /// Node within the segment.
    pub node: u8,
}

/// One inter-segment bridge (a router pair).
#[derive(Debug, Clone, Copy)]
pub struct Bridge {
    /// Endpoint on the first segment.
    pub a: GlobalAddr,
    /// Endpoint on the second segment.
    pub b: GlobalAddr,
    /// One-way latency across the bridge.
    pub latency: SimDuration,
}

/// A routed datagram awaiting cross-bridge delivery.
#[derive(Debug)]
struct InFlight {
    deliver_at: SimTime,
    ingress: GlobalAddr,
    wire: Vec<u8>,
}

/// A delivered global datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDatagram {
    /// Original sender.
    pub src: GlobalAddr,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// How the lockstep engine advances its shards each slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelMode {
    /// One thread advances every shard in segment order — the
    /// reference execution.
    Serial,
    /// A scoped pool of this many worker threads advances the shards
    /// concurrently (worker `w` takes segments `w, w + n, ...`).
    /// Produces bit-identical results to [`ParallelMode::Serial`] for
    /// the same seed — enforced by `tests/parallel_equivalence.rs`.
    Threads(usize),
}

/// A multi-segment AmpNet network.
pub struct MultiSegment {
    clusters: Vec<Cluster>,
    bridges: Vec<Bridge>,
    crossing: Vec<InFlight>,
    delivered: Vec<Vec<VecDeque<GlobalDatagram>>>,
    /// Datagrams dropped for having no usable route (counted, so tests
    /// can assert routedness).
    pub unroutable: u64,
    mode: ParallelMode,
    /// Per-shard telemetry handles (one registry per segment, so no
    /// cross-thread interleaving can touch registration order). Empty
    /// until [`MultiSegment::enable_telemetry`].
    shard_tels: Vec<Telemetry>,
}

fn encode(dst: GlobalAddr, src: GlobalAddr, payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&[dst.segment, dst.node, src.segment, src.node]);
    wire.extend_from_slice(payload);
    wire
}

fn decode(wire: &[u8]) -> Option<(GlobalAddr, GlobalAddr, &[u8])> {
    if wire.len() < 4 {
        return None;
    }
    Some((
        GlobalAddr {
            segment: wire[0],
            node: wire[1],
        },
        GlobalAddr {
            segment: wire[2],
            node: wire[3],
        },
        &wire[4..],
    ))
}

/// One shard slot. Workers and the coordinator strictly alternate
/// access (workers only between the two barrier waits of a slice, the
/// coordinator only outside them), so every lock is uncontended — the
/// mutex exists to make that alternation safe, not to arbitrate.
type ShardCell<'a> = Mutex<&'a mut Cluster>;

/// Lock a shard cell. A poisoned cell means a worker panicked mid-run;
/// propagate the panic rather than computing with a half-advanced
/// shard.
fn shard<'g, 'a>(cell: &'g ShardCell<'a>) -> MutexGuard<'g, &'a mut Cluster> {
    cell.lock().expect("shard worker panicked")
}

/// Next-hop router for traffic from `from_seg` toward `dst_seg`, given
/// the currently `usable` bridges (both router nodes online): BFS from
/// the destination, then the first usable bridge (registration order)
/// out of `from_seg` that decreases the distance. Pure function of its
/// inputs, so serial and threaded execution route identically.
fn route_next_hop(usable: &[Bridge], n_segments: usize, from_seg: u8, dst_seg: u8) -> Option<Bridge> {
    let mut dist = vec![usize::MAX; n_segments];
    let mut queue = VecDeque::new();
    dist[dst_seg as usize] = 0;
    queue.push_back(dst_seg);
    while let Some(seg) = queue.pop_front() {
        for br in usable {
            for (x, y) in [(br.a, br.b), (br.b, br.a)] {
                if x.segment == seg && dist[y.segment as usize] == usize::MAX {
                    dist[y.segment as usize] = dist[seg as usize] + 1;
                    queue.push_back(y.segment);
                }
            }
        }
    }
    if dist[from_seg as usize] == usize::MAX {
        return None;
    }
    usable
        .iter()
        .find(|br| {
            let remote = if br.a.segment == from_seg {
                br.b
            } else if br.b.segment == from_seg {
                br.a
            } else {
                return false;
            };
            dist[remote.segment as usize] + 1 == dist[from_seg as usize]
        })
        .copied()
}

/// The barrier-exchange state: everything the coordinator mutates
/// between slices, split from the shard cells so the *same* exchange
/// code runs under both [`ParallelMode`]s. All methods take the cells
/// and hold at most one shard lock at a time (routing decisions peek
/// at several shards in sequence), which rules out lock-order cycles.
struct Exchange<'a> {
    bridges: &'a [Bridge],
    crossing: &'a mut Vec<InFlight>,
    delivered: &'a mut [Vec<VecDeque<GlobalDatagram>>],
    unroutable: &'a mut u64,
}

impl Exchange<'_> {
    /// Bridges whose *both* router nodes are online right now.
    fn usable_bridges(&self, cells: &[ShardCell<'_>]) -> Vec<Bridge> {
        self.bridges
            .iter()
            .filter(|br| {
                shard(&cells[br.a.segment as usize]).node_online(br.a.node)
                    && shard(&cells[br.b.segment as usize]).node_online(br.b.node)
            })
            .copied()
            .collect()
    }

    /// Pull ROUTE_STREAM datagrams out of every node's inbox: deliver
    /// finals, queue bridge crossings, forward multi-hop traffic.
    /// Iteration order — segment ascending, node ascending, FIFO
    /// within an inbox — is the deterministic exchange order.
    fn drain_route_streams(&mut self, cells: &[ShardCell<'_>], now: SimTime) {
        for seg in 0..cells.len() as u8 {
            let n_nodes = shard(&cells[seg as usize]).n_nodes() as u8;
            for node in 0..n_nodes {
                // Collect with the shard locked, then route with the
                // lock released (routing peeks at other shards).
                let mut datagrams = vec![];
                {
                    let mut c = shard(&cells[seg as usize]);
                    while let Some(d) = c.pop_message_on(node, ROUTE_STREAM) {
                        datagrams.push(d);
                    }
                }
                for d in datagrams {
                    let Some((dst, src, payload)) = decode(&d.payload) else {
                        continue;
                    };
                    let here = GlobalAddr { segment: seg, node };
                    if dst == here {
                        self.delivered[seg as usize][node as usize].push_back(GlobalDatagram {
                            src,
                            payload: payload.to_vec(),
                        });
                    } else if dst.segment == seg {
                        // Mis-delivered within segment (should not
                        // happen: unicast goes straight to the node).
                        shard(&cells[seg as usize]).send_message(
                            node,
                            dst.node,
                            ROUTE_STREAM,
                            &d.payload,
                        );
                    } else {
                        // This node is a router on the path: cross the
                        // bridge toward dst.
                        let usable = self.usable_bridges(cells);
                        match route_next_hop(&usable, cells.len(), seg, dst.segment) {
                            Some(br) => {
                                let (local, remote) =
                                    if br.a.segment == seg { (br.a, br.b) } else { (br.b, br.a) };
                                if local.node == node {
                                    self.crossing.push(InFlight {
                                        deliver_at: now + br.latency,
                                        ingress: remote,
                                        wire: d.payload.clone(),
                                    });
                                } else {
                                    // Reach the proper router first.
                                    shard(&cells[seg as usize]).send_message(
                                        node,
                                        local.node,
                                        ROUTE_STREAM,
                                        &d.payload,
                                    );
                                }
                            }
                            None => *self.unroutable += 1,
                        }
                    }
                }
            }
        }
    }

    /// Inject matured crossings into their ingress segment.
    fn deliver_crossings(&mut self, cells: &[ShardCell<'_>], now: SimTime) {
        let mut staying = vec![];
        let pending: Vec<InFlight> = self.crossing.drain(..).collect();
        for x in pending {
            if x.deliver_at > now {
                staying.push(x);
                continue;
            }
            let Some((dst, _src, _payload)) = decode(&x.wire) else {
                continue;
            };
            let seg = x.ingress.segment as usize;
            if !shard(&cells[seg]).node_online(x.ingress.node) {
                // Router died while the frame crossed; re-route from
                // any online node... the originator will re-send at
                // the application layer. Count it.
                *self.unroutable += 1;
                continue;
            }
            if dst.segment == x.ingress.segment {
                // Final segment: router forwards to the destination
                // (or delivers to itself).
                shard(&cells[seg]).send_message(x.ingress.node, dst.node, ROUTE_STREAM, &x.wire);
            } else {
                // Multi-hop: route onward from the ingress router.
                let usable = self.usable_bridges(cells);
                match route_next_hop(&usable, cells.len(), x.ingress.segment, dst.segment) {
                    Some(br) => {
                        let (local, remote) = if br.a.segment == x.ingress.segment {
                            (br.a, br.b)
                        } else {
                            (br.b, br.a)
                        };
                        if local.node == x.ingress.node {
                            staying.push(InFlight {
                                deliver_at: now + br.latency,
                                ingress: remote,
                                wire: x.wire,
                            });
                        } else {
                            shard(&cells[seg]).send_message(
                                x.ingress.node,
                                local.node,
                                ROUTE_STREAM,
                                &x.wire,
                            );
                        }
                    }
                    None => *self.unroutable += 1,
                }
            }
        }
        *self.crossing = staying;
    }

    /// End of the current slice: the next boundary the shards advance
    /// to. Normally `now + slice`, clamped to `deadline` — and clamped
    /// to the earliest pending crossing's maturity instant, so a
    /// datagram that must cross a bridge near the deadline is injected
    /// *at* `deliver_at` (and can still traverse the far ring before
    /// `deadline`) instead of being deferred to a coarse boundary past
    /// it. That deferral was the slice-boundary loss bug: with
    /// `deadline - now < slice` the final slice used to inject the
    /// crossing at the deadline itself, where the far shard never runs
    /// again.
    fn next_boundary(&self, now: SimTime, slice: SimDuration, deadline: SimTime) -> SimTime {
        let mut step = (now + slice).min(deadline);
        for x in self.crossing.iter() {
            if x.deliver_at > now && x.deliver_at < step {
                step = x.deliver_at;
            }
        }
        step
    }
}

impl MultiSegment {
    /// Build a network of independent segments (each boots its own
    /// ring); add bridges before sending.
    pub fn new(configs: Vec<ClusterConfig>) -> Self {
        let delivered = configs
            .iter()
            .map(|c| (0..c.n_nodes).map(|_| VecDeque::new()).collect())
            .collect();
        MultiSegment {
            clusters: configs.into_iter().map(Cluster::new).collect(),
            bridges: vec![],
            crossing: vec![],
            delivered,
            unroutable: 0,
            mode: ParallelMode::Serial,
            shard_tels: vec![],
        }
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.clusters.len()
    }

    /// Access a segment's cluster.
    pub fn segment(&self, s: u8) -> &Cluster {
        &self.clusters[s as usize]
    }

    /// Mutable access (fault injection, app start).
    pub fn segment_mut(&mut self, s: u8) -> &mut Cluster {
        &mut self.clusters[s as usize]
    }

    /// Select how shards advance. [`ParallelMode::Serial`] is the
    /// default and the reference; `Threads(n)` must agree with it
    /// bit-for-bit (same seed, same digest).
    pub fn set_parallel_mode(&mut self, mode: ParallelMode) {
        if let ParallelMode::Threads(n) = mode {
            assert!(n >= 1, "Threads(0) has no one to advance the shards");
        }
        self.mode = mode;
    }

    /// The active [`ParallelMode`].
    pub fn parallel_mode(&self) -> ParallelMode {
        self.mode
    }

    /// The conservative-PDES lookahead bound: the smallest one-way
    /// bridge latency (None while no bridges exist). Slices no longer
    /// than this never quantise a cross-segment interaction.
    pub fn min_bridge_latency(&self) -> Option<SimDuration> {
        self.bridges.iter().map(|b| b.latency).min()
    }

    /// Connect two segments with a router pair.
    pub fn add_bridge(&mut self, a: GlobalAddr, b: GlobalAddr, latency: SimDuration) {
        assert_ne!(a.segment, b.segment, "bridges join distinct segments");
        assert!(latency.as_nanos() > 0, "a zero-latency bridge has no lookahead");
        self.bridges.push(Bridge { a, b, latency });
    }

    /// Enable telemetry with one *private* registry per segment (shard
    /// confinement: a worker thread only ever records into the shard it
    /// is advancing). [`MultiSegment::merged_metrics_snapshot`] folds
    /// them deterministically.
    pub fn enable_telemetry(&mut self, flight_capacity: usize) {
        self.shard_tels = self
            .clusters
            .iter_mut()
            .map(|c| {
                let tel = Telemetry::new(flight_capacity);
                c.enable_telemetry_with(&tel);
                tel
            })
            .collect();
    }

    /// Enable the milestone trace on every segment (needed for
    /// [`MultiSegment::digest`] to be meaningful).
    pub fn enable_traces(&mut self, capacity: usize) {
        for c in &mut self.clusters {
            c.enable_trace(capacity);
        }
    }

    /// Cluster-of-clusters metrics: every shard's gauges refreshed,
    /// then the per-shard registries folded in segment order (counters
    /// and gauges sum, histograms merge). Byte-identical for the same
    /// seed under any [`ParallelMode`]. Empty unless
    /// [`MultiSegment::enable_telemetry`] ran.
    pub fn merged_metrics_snapshot(&self) -> MetricsSnapshot {
        for c in &self.clusters {
            c.publish_metrics();
        }
        Telemetry::merge_shards(&self.shard_tels)
    }

    /// Deterministic digest of the whole network: each segment's trace
    /// digest folded in segment order, plus the unroutable count. The
    /// serial/threaded equivalence tests compare exactly this.
    pub fn digest(&self) -> u64 {
        let mut f = Fnv64::new();
        for c in &self.clusters {
            f.fold_u64(c.trace().digest());
        }
        f.fold_u64(self.unroutable);
        f.finish()
    }

    /// Total simulation events processed across all shards (the
    /// scaling benchmark's throughput numerator).
    pub fn events_processed(&self) -> u64 {
        self.clusters.iter().map(|c| c.events_processed()).sum()
    }

    /// Send a globally-addressed datagram.
    pub fn send_global(&mut self, src: GlobalAddr, dst: GlobalAddr, payload: &[u8]) {
        let wire = encode(dst, src, payload);
        if src.segment == dst.segment {
            self.clusters[src.segment as usize].send_message(
                src.node,
                dst.node,
                ROUTE_STREAM,
                &wire,
            );
            return;
        }
        let usable: Vec<Bridge> = self
            .bridges
            .iter()
            .filter(|br| {
                self.clusters[br.a.segment as usize].node_online(br.a.node)
                    && self.clusters[br.b.segment as usize].node_online(br.b.node)
            })
            .copied()
            .collect();
        match route_next_hop(&usable, self.clusters.len(), src.segment, dst.segment) {
            Some(br) => {
                let router = if br.a.segment == src.segment { br.a } else { br.b };
                if router.node == src.node {
                    // The sender IS the router: queue straight across.
                    let now = self.clusters[src.segment as usize].now();
                    let egress = if br.a.segment == src.segment { br.b } else { br.a };
                    self.crossing.push(InFlight {
                        deliver_at: now + br.latency,
                        ingress: egress,
                        wire,
                    });
                } else {
                    self.clusters[src.segment as usize].send_message(
                        src.node,
                        router.node,
                        ROUTE_STREAM,
                        &wire,
                    );
                }
            }
            None => self.unroutable += 1,
        }
    }

    /// Pop the next delivered global datagram at an address.
    pub fn pop_global(&mut self, at: GlobalAddr) -> Option<GlobalDatagram> {
        self.delivered[at.segment as usize][at.node as usize].pop_front()
    }

    /// Advance every segment in lockstep to `deadline`, moving bridge
    /// traffic between slices of at most `slice` duration (boundaries
    /// are additionally placed at crossing maturity instants and at
    /// `deadline` — see `Exchange::next_boundary`). Under
    /// [`ParallelMode::Threads`] the shards of each slice advance
    /// concurrently; the exchange between slices is always performed
    /// by this thread in deterministic order.
    pub fn run_until(&mut self, deadline: SimTime, slice: SimDuration) {
        assert!(slice.as_nanos() > 0, "slice must be positive");
        let workers = match self.mode {
            ParallelMode::Serial => 1,
            ParallelMode::Threads(n) => n.min(self.clusters.len()).max(1),
        };
        // Split borrows: the shard cells take `clusters`; the exchange
        // takes everything else. Serial and threaded paths then share
        // all slice/exchange code.
        let cells: Vec<ShardCell<'_>> = self.clusters.iter_mut().map(Mutex::new).collect();
        let mut xch = Exchange {
            bridges: &self.bridges,
            crossing: &mut self.crossing,
            delivered: &mut self.delivered,
            unroutable: &mut self.unroutable,
        };
        if workers <= 1 {
            loop {
                let now = cells
                    .iter()
                    .map(|c| shard(c).now())
                    .max()
                    .unwrap_or(SimTime::ZERO);
                if now >= deadline {
                    break;
                }
                let step_to = xch.next_boundary(now, slice, deadline);
                for cell in &cells {
                    shard(cell).run_until(step_to);
                }
                xch.drain_route_streams(&cells, step_to);
                xch.deliver_crossings(&cells, step_to);
            }
            return;
        }
        // Threaded drive: persistent workers parked on a barrier, so a
        // slice costs two barrier crossings instead of `workers` thread
        // spawns. The coordinator publishes the next boundary in an
        // atomic (u64::MAX = shut down), releases the workers, waits
        // for them to finish the slice, then runs the exchange while
        // they are parked. Worker `w` advances segments `w, w + n, ...`
        // — a fixed partition, so each shard is advanced by the same
        // thread every slice (shard confinement).
        let barrier = Barrier::new(workers + 1);
        let step_target = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let cells = &cells;
                let barrier = &barrier;
                let step_target = &step_target;
                scope.spawn(move || loop {
                    barrier.wait();
                    let step = step_target.load(Ordering::Acquire);
                    if step == u64::MAX {
                        break;
                    }
                    let mut i = w;
                    while i < cells.len() {
                        shard(&cells[i]).run_until(SimTime(step));
                        i += workers;
                    }
                    barrier.wait();
                });
            }
            loop {
                let now = cells
                    .iter()
                    .map(|c| shard(c).now())
                    .max()
                    .unwrap_or(SimTime::ZERO);
                if now >= deadline {
                    break;
                }
                let step_to = xch.next_boundary(now, slice, deadline);
                step_target.store(step_to.0, Ordering::Release);
                barrier.wait(); // release the workers into the slice
                barrier.wait(); // all shards now at step_to
                xch.drain_route_streams(&cells, step_to);
                xch.deliver_crossings(&cells, step_to);
            }
            step_target.store(u64::MAX, Ordering::Release);
            barrier.wait();
        });
    }

    /// Convenience: run for a duration with a default 10 µs slice.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self
            .clusters
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(SimTime::ZERO)
            + d;
        self.run_until(deadline, SimDuration::from_micros(10));
    }
}
