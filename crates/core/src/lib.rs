//! # ampnet-core — the AmpNet cluster
//!
//! The facade crate of the reproduction: a [`Cluster`] wires the
//! physical plant, register-insertion MACs, network cache replicas,
//! rostering, AmpDK lifecycle and the AmpDC services into one
//! deterministic discrete-event simulation, and exposes the paper's
//! scenarios — fault injection, self-healing, assimilation and
//! application failover — as a library API.
//!
//! ```
//! use ampnet_core::{Cluster, ClusterConfig};
//! use ampnet_sim::SimDuration;
//!
//! let mut cluster = Cluster::new(ClusterConfig::small(4));
//! cluster.run_for(SimDuration::from_millis(5)); // boot completes
//! assert!(cluster.ring_up());
//! assert_eq!(cluster.ring().len(), 4);
//!
//! cluster.send_message(0, 2, 0, b"hello over the ring");
//! cluster.run_for(SimDuration::from_millis(1));
//! let d = cluster.pop_message(2).expect("delivered");
//! assert_eq!(d.payload, b"hello over the ring");
//! assert_eq!(cluster.total_drops(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod apps;
mod cluster;
mod collectives;
mod config;
mod diagnostics;
mod membership;
mod multiseg;
mod observe;
mod planner;
mod telemetry;
mod transport;

pub use apps::{
    CounterAppConfig, CounterAppReport, ResumeRecord, SemStressConfig, SemStressReport,
    SeqProbeConfig, SeqProbeReport,
};
pub use cluster::{Cluster, RosterEvent, RosterReason};
pub use observe::ObservedEvent;
pub use diagnostics::Certification;
pub use multiseg::{
    Bridge, GlobalAddr, GlobalDatagram, MultiSegment, ParallelMode, SliceStats, ROUTE_STREAM,
};
pub use planner::{plan_boundary, Lookahead, SlicePlanner, FUSE_AFTER, FUSE_FACTOR, MAX_SLICE_GROWTH};
pub use collectives::COLLECTIVE_STREAM;
pub use config::{ClusterConfig, PlantSpec, TimingModel};
pub use ampnet_services::mpi::ReduceOp;
pub use ampnet_services::socket::{Received, SockAddr, SocketError};
pub use ampnet_packet::build::InterruptPayload;
pub use ampnet_services::files::{FileError, FileStore, FileStoreLayout};
pub use ampnet_services::threads::{TaskError, TaskKind};

// Re-export the vocabulary types callers need.
pub use ampnet_cache::seqlock_msg::{ReadOutcome, RecordLayout};
pub use ampnet_cache::{BackoffPolicy, SemaphoreAddr};
pub use ampnet_dk::{
    FailoverPolicy, Features, JoinRequest, RecoveryRule, Version,
};
pub use ampnet_sim::{SimDuration, SimTime};
pub use ampnet_telemetry::{MetricsSnapshot, Telemetry};
pub use ampnet_topo::montecarlo::Component;
pub use ampnet_topo::{HopRoute, NodeId, Plant, PlantRing, SwitchId};
