//! Deterministic observation journal.
//!
//! External harnesses (the chaos engine in `ampnet-chaos`, soak tests)
//! need to see *when* the cluster reacted to an injected fault without
//! reaching into its internals or installing callbacks — callbacks
//! would let observer code perturb the simulation. The cluster instead
//! appends an [`ObservedEvent`] to a journal at every externally
//! meaningful transition; the journal is part of the deterministic
//! simulation state, so two runs with the same config and seed produce
//! byte-identical journals.

use ampnet_topo::montecarlo::Component;

/// One externally visible cluster transition.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservedEvent {
    /// A component failure was applied to the plant.
    FailureInjected(Component),
    /// The failed component was spare: the ring is unaffected.
    SpareFault(Component),
    /// The failure left no viable ring.
    NoSurvivors(Component),
    /// A roster episode began (ring down until `RingRestored`).
    RosterStarted {
        /// Episode epoch.
        epoch: u64,
    },
    /// A roster episode committed a new ring.
    RingRestored {
        /// Episode epoch.
        epoch: u64,
        /// Members in the committed ring.
        ring_len: usize,
    },
    /// A switch or fiber was returned to service.
    RepairApplied(Component),
    /// A joining node failed assimilation.
    JoinRejected(u8),
    /// An assimilated node came online (roster episode follows).
    NodeOnline(u8),
    /// A phy-level bit-error burst hit a node's receive path.
    ErrorBurst {
        /// Victim node.
        node: u8,
        /// Bit errors injected.
        errors: u32,
        /// 8b/10b / disparity violations the receiver detected.
        detected: u32,
    },
    /// The receiver escalated a detected burst to a link failure
    /// (loss-of-sync → rostering, as on real hardware).
    ErrorBurstEscalated {
        /// Victim node.
        node: u8,
        /// The ring link declared dead.
        link: Component,
    },
    /// A burst arrived while the ring was already down, the node was
    /// outside the ring, or no error was detectable; nothing happened.
    ErrorBurstAbsorbed {
        /// Victim node.
        node: u8,
    },
}
