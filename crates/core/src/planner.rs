//! The adaptive slice planner for the sharded conservative-PDES
//! engine.
//!
//! PR 5's engine clamped every time slice to the minimum bridge
//! latency. That is the textbook conservative bound, but it charges
//! the *worst-case* synchronization price on every slice: the scale
//! bench measured two barrier crossings and a full exchange scan per
//! 5 µs of simulated time even when no bridge carried any traffic for
//! milliseconds. The APEnet status report's scaling argument (links
//! with no pending traffic cost nothing) applies directly: shards only
//! interact through bridge crossings, and a crossing's delivery
//! instant is known *exactly* the moment it is queued (`deliver_at =
//! boundary + latency`). So the planner:
//!
//! * **Grows the slice adaptively** — each boundary where the exchange
//!   moved no traffic doubles the next slice, up to
//!   [`MAX_SLICE_GROWTH`]× the base; any boundary that moved traffic
//!   resets it. Long quiet phases converge to a few cheap exchanges.
//! * **Clamps to crossing maturity** — while a crossing is in flight
//!   the boundary never passes `deliver_at`, so the far shard receives
//!   it at exactly its maturity instant. This is the invariant the
//!   `ampnet-check` `slice-planner` model proves exhaustively.
//! * **Skips dead air** — if every shard's next pending event lies
//!   beyond the tentative boundary, the boundary jumps straight to the
//!   earliest one (or the deadline): no shard can generate traffic
//!   before then, so the skipped boundaries were pure overhead.
//!
//! Why determinism survives: every decision is a pure function of
//! shard-visible state at a boundary (queue peeks, in-flight
//! crossings), all of which is itself a deterministic function of the
//! seed — no wall-clock, no thread identity. Serial and threaded modes
//! feed the planner identical inputs and therefore advance through
//! identical boundary sequences; `tests/parallel_equivalence.rs` pins
//! this for both policies.

use ampnet_sim::{SimDuration, SimTime};

/// How the engine sizes its lockstep time slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lookahead {
    /// Every slice is the base length (PR-5 behavior): boundary =
    /// `min(now + slice, deadline)`, clamped to crossing maturity.
    /// Kept for A/B comparison in the scale bench and as the simplest
    /// reference execution.
    Fixed,
    /// Adaptive slice sizing: quiet boundaries double the slice (up to
    /// [`MAX_SLICE_GROWTH`]× base), busy boundaries reset it, and dead
    /// air between events is skipped entirely. The default.
    #[default]
    Adaptive,
}

/// Cap on adaptive slice growth, as a multiple of the base slice.
///
/// The cap bounds how long a datagram can sit in a router inbox before
/// the next exchange (route-stream inboxes are only drained at
/// boundaries, so the base quantization argument in `multiseg.rs`
/// stretches to `MAX_SLICE_GROWTH × base` during quiet phases). 64
/// keeps that bound well under the millisecond scales the scenarios
/// assert on while still eliding ~98% of quiet exchanges.
pub const MAX_SLICE_GROWTH: u32 = 64;

/// Consecutive quiet exchanges required before the planner starts
/// fusing slices. Two in a row distinguishes a genuine quiet phase
/// from the single quiet boundary that trails every burst.
pub const FUSE_AFTER: u32 = 2;

/// Width of a fused window, in multiples of the current (grown) slice.
/// A fused boundary stands in for up to this many back-to-back quiet
/// slices: one plan, one publication, one exchange check instead of
/// `FUSE_FACTOR`. Only applied when no crossing is in flight, so no
/// maturity instant can fall inside the fused window (the
/// `slice-planner` model in `ampnet-check` proves the guard).
pub const FUSE_FACTOR: u32 = 8;

/// Pure boundary decision for one adaptive slice. Exhaustively checked
/// by the `slice-planner` model in `ampnet-check`; the engine calls it
/// through [`SlicePlanner::boundary`].
///
/// * `slice` — current (possibly grown) slice length.
/// * `earliest_event` — earliest pending local event across all
///   shards (`None` when every queue is empty); must be `> now`.
/// * `earliest_crossing` — earliest in-flight crossing maturity;
///   instants `<= now` are ignored (they are delivered at the current
///   boundary, not a future one).
///
/// Guarantees (for `deadline > now`): the result is in
/// `(now, deadline]`, and never past `earliest_crossing`.
pub fn plan_boundary(
    now: SimTime,
    slice: SimDuration,
    deadline: SimTime,
    earliest_event: Option<SimTime>,
    earliest_crossing: Option<SimTime>,
) -> SimTime {
    debug_assert!(deadline > now, "planning a slice after the deadline");
    let mut step = SimTime(now.0.saturating_add(slice.as_nanos())).min(deadline);
    match earliest_event {
        // Dead air: no shard has an event before the tentative
        // boundary, so nothing can happen until the first one — jump.
        Some(ev) if ev > step => step = ev.min(deadline),
        // No local events anywhere: only crossings or the deadline can
        // make anything happen.
        None => step = deadline,
        _ => {}
    }
    // Never overshoot an in-flight crossing's maturity: the exchange
    // delivers crossings at boundaries, so a boundary past `deliver_at`
    // would inject the datagram late.
    if let Some(x) = earliest_crossing {
        if x > now && x < step {
            step = x;
        }
    }
    step
}

/// Per-run slice-sizing state: the base slice, the current (grown)
/// slice and the [`Lookahead`] policy. Owned by
/// `MultiSegment::run_until`; fresh per call, so repeated runs of the
/// same scenario stay bit-identical. `Clone` so the `ampnet-check`
/// slice-planner model can carry one per explored state.
#[derive(Debug, Clone)]
pub struct SlicePlanner {
    base: SimDuration,
    cur: SimDuration,
    policy: Lookahead,
    /// Consecutive exchanges that moved no traffic. Drives slice
    /// fusion; reset by any boundary that moved traffic.
    quiet_streak: u32,
}

impl SlicePlanner {
    /// A planner starting at `base` under `policy`.
    pub fn new(base: SimDuration, policy: Lookahead) -> Self {
        SlicePlanner {
            base,
            cur: base,
            policy,
            quiet_streak: 0,
        }
    }

    /// The slice length the next boundary will be planned with.
    pub fn current_slice(&self) -> SimDuration {
        self.cur
    }

    /// Whether the next boundary would be planned as a fused window
    /// (given that no crossing is in flight at plan time).
    pub fn fusing(&self) -> bool {
        self.policy == Lookahead::Adaptive && self.quiet_streak >= FUSE_AFTER
    }

    /// Decide the next boundary. See [`plan_boundary`] for the
    /// adaptive semantics; [`Lookahead::Fixed`] reproduces the PR-5
    /// decision exactly (no growth, no dead-air skip).
    pub fn boundary(
        &self,
        now: SimTime,
        deadline: SimTime,
        earliest_event: Option<SimTime>,
        earliest_crossing: Option<SimTime>,
    ) -> SimTime {
        match self.policy {
            Lookahead::Fixed => {
                let mut step = SimTime(now.0.saturating_add(self.base.as_nanos())).min(deadline);
                if let Some(x) = earliest_crossing {
                    if x > now && x < step {
                        step = x;
                    }
                }
                step
            }
            Lookahead::Adaptive => {
                // Slice fusion: in an established quiet phase
                // (FUSE_AFTER+ consecutive exchanges moved nothing)
                // with no crossing in flight, plan one FUSE_FACTOR-wide
                // window instead of re-planning each slice. The guard
                // matters: with no crossing queued, no maturity instant
                // can fall inside the window, and any crossing *queued*
                // during it is, by the boundary-quantization rule,
                // picked up at the fused boundary — exactly where the
                // drain for these notional slices would have coalesced.
                let window = if self.fusing() && earliest_crossing.is_none() {
                    self.cur.saturating_mul(FUSE_FACTOR as u64)
                } else {
                    self.cur
                };
                plan_boundary(now, window, deadline, earliest_event, earliest_crossing)
            }
        }
    }

    /// Record whether the exchange at the boundary just reached moved
    /// any traffic (drained a route stream or delivered a crossing).
    /// Quiet boundaries double the adaptive slice up to
    /// [`MAX_SLICE_GROWTH`]× base and extend the quiet streak that
    /// arms slice fusion; busy ones reset both.
    pub fn note_exchange(&mut self, moved_traffic: bool) {
        if self.policy != Lookahead::Adaptive {
            return;
        }
        if moved_traffic {
            self.cur = self.base;
            self.quiet_streak = 0;
        } else {
            let cap = self.base.saturating_mul(MAX_SLICE_GROWTH as u64);
            self.cur = SimDuration(self.cur.as_nanos().saturating_mul(2)).min(cap);
            self.quiet_streak = self.quiet_streak.saturating_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000;

    #[test]
    fn fixed_policy_matches_pr5_decision() {
        let p = SlicePlanner::new(SimDuration(5 * US), Lookahead::Fixed);
        // Plain slice.
        assert_eq!(
            p.boundary(SimTime(0), SimTime(100 * US), Some(SimTime(1)), None),
            SimTime(5 * US)
        );
        // Deadline clamp.
        assert_eq!(
            p.boundary(SimTime(98 * US), SimTime(100 * US), None, None),
            SimTime(100 * US)
        );
        // Crossing clamp.
        assert_eq!(
            p.boundary(SimTime(0), SimTime(100 * US), None, Some(SimTime(3 * US))),
            SimTime(3 * US)
        );
        // Fixed never dead-air-skips, even with no events anywhere.
        assert_eq!(
            p.boundary(SimTime(0), SimTime(100 * US), None, None),
            SimTime(5 * US)
        );
    }

    #[test]
    fn adaptive_grows_on_quiet_and_resets_on_traffic() {
        let mut p = SlicePlanner::new(SimDuration(5 * US), Lookahead::Adaptive);
        assert_eq!(p.current_slice(), SimDuration(5 * US));
        p.note_exchange(false);
        assert_eq!(p.current_slice(), SimDuration(10 * US));
        p.note_exchange(false);
        assert_eq!(p.current_slice(), SimDuration(20 * US));
        for _ in 0..20 {
            p.note_exchange(false);
        }
        assert_eq!(
            p.current_slice(),
            SimDuration(5 * US * MAX_SLICE_GROWTH as u64),
            "growth caps at MAX_SLICE_GROWTH x base"
        );
        p.note_exchange(true);
        assert_eq!(p.current_slice(), SimDuration(5 * US), "traffic resets");
    }

    #[test]
    fn boundary_never_passes_a_crossing_maturity() {
        for slice in [US, 7 * US, 640 * US] {
            for cross in [2 * US, 6 * US, 50 * US] {
                let b = plan_boundary(
                    SimTime(0),
                    SimDuration(slice),
                    SimTime(1_000 * US),
                    Some(SimTime(100 * US)),
                    Some(SimTime(cross)),
                );
                assert!(b <= SimTime(cross), "slice {slice} overshot crossing {cross}");
                assert!(b > SimTime(0));
            }
        }
    }

    #[test]
    fn dead_air_jumps_to_earliest_event() {
        // Events far beyond the slice: jump straight to them.
        let b = plan_boundary(
            SimTime(10),
            SimDuration(5 * US),
            SimTime(1_000 * US),
            Some(SimTime(400 * US)),
            None,
        );
        assert_eq!(b, SimTime(400 * US));
        // No events at all: jump to the deadline.
        let b = plan_boundary(SimTime(10), SimDuration(5 * US), SimTime(1_000 * US), None, None);
        assert_eq!(b, SimTime(1_000 * US));
        // Events inside the slice: plain boundary.
        let b = plan_boundary(
            SimTime(0),
            SimDuration(5 * US),
            SimTime(1_000 * US),
            Some(SimTime(2 * US)),
            None,
        );
        assert_eq!(b, SimTime(5 * US));
    }

    #[test]
    fn fusion_arms_after_quiet_streak_and_disarms_on_traffic() {
        let mut p = SlicePlanner::new(SimDuration(5 * US), Lookahead::Adaptive);
        assert!(!p.fusing(), "fresh planner must not fuse");
        p.note_exchange(false);
        assert!(!p.fusing(), "one quiet exchange is not a quiet phase");
        p.note_exchange(false);
        assert!(p.fusing(), "FUSE_AFTER quiet exchanges arm fusion");
        // Armed + no crossing in flight: the window is FUSE_FACTOR x
        // the grown slice (here 20 µs after two doublings).
        let b = p.boundary(SimTime(0), SimTime(10_000 * US), Some(SimTime(1)), None);
        assert_eq!(b, SimTime(20 * US * FUSE_FACTOR as u64));
        // A crossing in flight suppresses fusion entirely: the plain
        // grown slice applies and the maturity clamp still wins.
        let b = p.boundary(SimTime(0), SimTime(10_000 * US), Some(SimTime(1)), Some(SimTime(7 * US)));
        assert_eq!(b, SimTime(7 * US));
        p.note_exchange(true);
        assert!(!p.fusing(), "traffic resets the quiet streak");
        let b = p.boundary(SimTime(0), SimTime(10_000 * US), Some(SimTime(1)), None);
        assert_eq!(b, SimTime(5 * US), "back to the base slice");
    }

    #[test]
    fn fused_window_respects_deadline_and_dead_air() {
        let mut p = SlicePlanner::new(SimDuration(5 * US), Lookahead::Adaptive);
        for _ in 0..FUSE_AFTER {
            p.note_exchange(false);
        }
        assert!(p.fusing());
        // Deadline clamp.
        let b = p.boundary(SimTime(0), SimTime(30 * US), Some(SimTime(1)), None);
        assert_eq!(b, SimTime(30 * US));
        // Dead-air jump still applies past the fused window.
        let b = p.boundary(SimTime(0), SimTime(10_000 * US), Some(SimTime(900 * US)), None);
        assert_eq!(b, SimTime(900 * US));
        // Fixed policy never fuses.
        let f = SlicePlanner::new(SimDuration(5 * US), Lookahead::Fixed);
        let b = f.boundary(SimTime(0), SimTime(10_000 * US), None, None);
        assert_eq!(b, SimTime(5 * US));
    }

    #[test]
    fn boundary_always_makes_progress() {
        // Saturation and clamp corners: the boundary is always > now.
        for now in [0, 5 * US, u64::MAX - 3] {
            for ev in [None, Some(SimTime(u64::MAX - 1))] {
                let b = plan_boundary(
                    SimTime(now),
                    SimDuration(5 * US),
                    SimTime(u64::MAX - 2).max(SimTime(now + 1)),
                    ev,
                    None,
                );
                assert!(b > SimTime(now), "stalled at {now}");
            }
        }
    }
}
