//! Cluster-level observability wiring.
//!
//! [`Cluster::enable_telemetry`](crate::Cluster::enable_telemetry)
//! hands one shared [`Telemetry`] to every layer — PHY/MAC/delivery via
//! the ring [`NodeStack`](ampnet_ring::NodeStack), the cache replicas,
//! the message endpoints — and registers the cluster-wide control-plane
//! instruments here. All record sites live next to the code they
//! observe; this module only owns the handles and the flight-event
//! glue for transitions the `Cluster` itself drives (rostering, smart
//! data recovery, stale-frame release, semaphore grants).

use ampnet_packet::FrameArena;
use ampnet_telemetry::{
    defs, CounterHandle, FlightEvent, FlightKind, GaugeHandle, HistHandle, Plane, Telemetry,
    GLOBAL,
};
use ampnet_sim::SimTime;

/// Handles for the cluster-wide (control-plane) instruments. The
/// default instance is disabled: every handle is `NONE` and the shared
/// `Telemetry` is a no-op, so the record sites below cost one branch.
#[derive(Default)]
pub(crate) struct CoreTelemetry {
    pub(crate) tel: Telemetry,
    replayed_bcast: CounterHandle,
    replayed_ucast: CounterHandle,
    stale_released: CounterHandle,
    arena_slots: GaugeHandle,
    arena_live: GaugeHandle,
    arena_reused: GaugeHandle,
    epoch: GaugeHandle,
    ring_size: GaugeHandle,
    roster_episodes: CounterHandle,
    joins_rejected: CounterHandle,
    bursts_escalated: CounterHandle,
    bursts_absorbed: CounterHandle,
    spare_faults: CounterHandle,
    sem_acquisitions: CounterHandle,
    sem_acquire_ns: HistHandle,
}

impl CoreTelemetry {
    pub(crate) fn new(tel: &Telemetry) -> Self {
        CoreTelemetry {
            tel: tel.clone(),
            replayed_bcast: tel.counter(&defs::TRANSPORT_REPLAYED_BROADCASTS, GLOBAL),
            replayed_ucast: tel.counter(&defs::TRANSPORT_REPLAYED_UNICASTS, GLOBAL),
            stale_released: tel.counter(&defs::TRANSPORT_STALE_FRAMES, GLOBAL),
            arena_slots: tel.gauge(&defs::ARENA_SLOTS, GLOBAL),
            arena_live: tel.gauge(&defs::ARENA_LIVE_FRAMES, GLOBAL),
            arena_reused: tel.gauge(&defs::ARENA_FRAMES_REUSED, GLOBAL),
            epoch: tel.gauge(&defs::MEMBERSHIP_EPOCH, GLOBAL),
            ring_size: tel.gauge(&defs::MEMBERSHIP_RING_SIZE, GLOBAL),
            roster_episodes: tel.counter(&defs::MEMBERSHIP_ROSTER_EPISODES, GLOBAL),
            joins_rejected: tel.counter(&defs::MEMBERSHIP_JOINS_REJECTED, GLOBAL),
            bursts_escalated: tel.counter(&defs::MEMBERSHIP_BURSTS_ESCALATED, GLOBAL),
            bursts_absorbed: tel.counter(&defs::MEMBERSHIP_BURSTS_ABSORBED, GLOBAL),
            spare_faults: tel.counter(&defs::MEMBERSHIP_SPARE_FAULTS, GLOBAL),
            sem_acquisitions: tel.counter(&defs::SERVICES_SEM_ACQUISITIONS, GLOBAL),
            sem_acquire_ns: tel.histogram(&defs::SERVICES_SEM_ACQUIRE_NS, GLOBAL),
        }
    }

    // ----- transport -----

    /// An in-flight frame arrived with a stale roster epoch and was
    /// released back to the arena.
    #[inline]
    pub(crate) fn stale_frame(&self, now: SimTime, node: u8, frame_epoch: u64) {
        self.tel.inc(self.stale_released);
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node,
            plane: Plane::Transport,
            kind: FlightKind::StaleFrame,
            a: frame_epoch,
            b: 0,
        });
    }

    /// Smart data recovery replayed `bcast` broadcasts and `ucast`
    /// unicasts from `node` after a roster episode.
    pub(crate) fn replayed(&self, now: SimTime, node: u8, bcast: u64, ucast: u64) {
        if bcast == 0 && ucast == 0 {
            return;
        }
        self.tel.add(self.replayed_bcast, bcast);
        self.tel.add(self.replayed_ucast, ucast);
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node,
            plane: Plane::Transport,
            kind: FlightKind::Replay,
            a: bcast,
            b: ucast,
        });
    }

    /// Refresh the arena occupancy gauges (called at snapshot time).
    pub(crate) fn publish_arena(&self, arena: &FrameArena) {
        let stats = arena.stats();
        self.tel.set(self.arena_slots, arena.capacity() as i64);
        self.tel.set(self.arena_live, stats.peak_live as i64);
        self.tel.set(self.arena_reused, stats.reused as i64);
    }

    // ----- membership -----

    pub(crate) fn roster_started(&self, now: SimTime, epoch: u64) {
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node: GLOBAL,
            plane: Plane::Membership,
            kind: FlightKind::RosterDown,
            a: epoch,
            b: 0,
        });
    }

    pub(crate) fn ring_restored(&self, now: SimTime, epoch: u64, ring_len: usize) {
        self.tel.inc(self.roster_episodes);
        self.tel.set(self.epoch, epoch as i64);
        self.tel.set(self.ring_size, ring_len as i64);
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node: GLOBAL,
            plane: Plane::Membership,
            kind: FlightKind::RosterUp,
            a: epoch,
            b: ring_len as u64,
        });
    }

    pub(crate) fn burst_escalated(&self) {
        self.tel.inc(self.bursts_escalated);
    }

    pub(crate) fn burst_absorbed(&self) {
        self.tel.inc(self.bursts_absorbed);
    }

    pub(crate) fn spare_fault(&self) {
        self.tel.inc(self.spare_faults);
    }

    pub(crate) fn join_rejected(&self, now: SimTime, node: u8) {
        self.tel.inc(self.joins_rejected);
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node: GLOBAL,
            plane: Plane::Membership,
            kind: FlightKind::JoinRejected,
            a: node as u64,
            b: 0,
        });
    }

    pub(crate) fn node_online(&self, now: SimTime, node: u8) {
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node: GLOBAL,
            plane: Plane::Membership,
            kind: FlightKind::NodeOnline,
            a: node as u64,
            b: 0,
        });
    }

    // ----- services -----

    /// A network semaphore was granted at `node` after `latency_ns`.
    pub(crate) fn sem_acquired(&self, now: SimTime, node: u8, sem_offset: u32, latency_ns: u64) {
        self.tel.inc(self.sem_acquisitions);
        self.tel.record(self.sem_acquire_ns, latency_ns);
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node,
            plane: Plane::Services,
            kind: FlightKind::SemAcquire,
            a: sem_offset as u64,
            b: latency_ns,
        });
    }

    /// A seqlock reader at `node` observed a writer mid-publish.
    #[inline]
    pub(crate) fn seqlock_busy(&self, now: SimTime, node: u8, region: u8, offset: u32) {
        self.tel.flight(FlightEvent {
            at_ns: now.0,
            node,
            plane: Plane::Cache,
            kind: FlightKind::SeqlockBusy,
            a: region as u64,
            b: offset as u64,
        });
    }
}
