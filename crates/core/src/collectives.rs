//! Cluster-level collectives: the `ampnet-services::mpi` rank engines
//! riding the simulated ring.
//!
//! Collective datagrams travel on a dedicated message stream
//! ([`COLLECTIVE_STREAM`]); the dispatcher feeds them to each node's
//! rank engine automatically, so applications just call
//! [`Cluster::coll_barrier`] / [`Cluster::coll_allreduce`] /
//! [`Cluster::coll_bcast`] / [`Cluster::coll_gather`] and poll the
//! result accessors after letting the simulation run.

use crate::cluster::Cluster;
use ampnet_services::mpi::{CollectiveMsg, Outgoing, Rank, ReduceOp};

/// The message stream carrying collective datagrams.
pub const COLLECTIVE_STREAM: u8 = 6;

impl Cluster {
    /// Enable collectives: every node becomes a rank (rank = node id).
    pub fn enable_collectives(&mut self) {
        let n = self.cfg.n_nodes as u8;
        for i in 0..n {
            self.nodes[i as usize].rank = Some(Rank::new(i, n));
        }
    }

    fn coll_send(&mut self, node: u8, out: Outgoing) {
        match out {
            Outgoing::Broadcast(msg) => {
                self.send_message(node, ampnet_packet::BROADCAST, COLLECTIVE_STREAM, &msg.to_bytes());
            }
            Outgoing::To(dst, msg) => {
                if dst == node {
                    return; // self-contribution already noted locally
                }
                self.send_message(node, dst, COLLECTIVE_STREAM, &msg.to_bytes());
            }
        }
    }

    /// Rank `node` enters barrier `tag`.
    pub fn coll_barrier(&mut self, node: u8, tag: u32) {
        let out = self.nodes[node as usize]
            .rank
            .as_mut()
            .expect("enable_collectives first") // lint: allow(panic-freedom): documented gate: collective calls require enable_collectives first
            .barrier(tag);
        self.coll_send(node, out);
    }

    /// Has rank `node` seen everyone at barrier `tag`?
    pub fn coll_barrier_done(&self, node: u8, tag: u32) -> bool {
        self.nodes[node as usize]
            .rank
            .as_ref()
            .map(|r| r.barrier_done(tag))
            .unwrap_or(false)
    }

    /// Rank `node` contributes `value` to all-reduce `tag`.
    pub fn coll_allreduce(&mut self, node: u8, tag: u32, value: u64) {
        let out = self.nodes[node as usize]
            .rank
            .as_mut()
            .expect("enable_collectives first") // lint: allow(panic-freedom): documented gate: collective calls require enable_collectives first
            .allreduce(tag, value);
        self.coll_send(node, out);
    }

    /// The reduction at rank `node`, once complete.
    pub fn coll_reduce_result(&self, node: u8, tag: u32, op: ReduceOp) -> Option<u64> {
        self.nodes[node as usize]
            .rank
            .as_ref()
            .and_then(|r| r.reduce_result(tag, op))
    }

    /// Rank `node` (the root) broadcasts `value` under `tag`.
    pub fn coll_bcast(&mut self, node: u8, tag: u32, value: u64) {
        let out = self.nodes[node as usize]
            .rank
            .as_mut()
            .expect("enable_collectives first") // lint: allow(panic-freedom): documented gate: collective calls require enable_collectives first
            .bcast(tag, value);
        self.coll_send(node, out);
    }

    /// The broadcast value at rank `node`, once arrived.
    pub fn coll_bcast_result(&self, node: u8, tag: u32) -> Option<u64> {
        self.nodes[node as usize]
            .rank
            .as_ref()
            .and_then(|r| r.bcast_result(tag))
    }

    /// Rank `node` contributes `value` to a gather rooted at `root`.
    pub fn coll_gather(&mut self, node: u8, tag: u32, root: u8, value: u64) {
        let out = self.nodes[node as usize]
            .rank
            .as_mut()
            .expect("enable_collectives first") // lint: allow(panic-freedom): documented gate: collective calls require enable_collectives first
            .gather(tag, root, value);
        self.coll_send(node, out);
    }

    /// At the root: the rank-ordered values, once complete.
    pub fn coll_gather_result(&self, node: u8, tag: u32) -> Option<Vec<u64>> {
        self.nodes[node as usize]
            .rank
            .as_ref()
            .and_then(|r| r.gather_result(tag))
    }

    /// Dispatcher hook: feed collective datagrams to the rank engine.
    /// Returns true when consumed.
    pub(crate) fn try_collective(&mut self, node: u8, stream: u8, payload: &[u8]) -> bool {
        if stream != COLLECTIVE_STREAM {
            return false;
        }
        let Some(msg) = CollectiveMsg::from_bytes(payload) else {
            return false;
        };
        if let Some(rank) = self.nodes[node as usize].rank.as_mut() {
            rank.on_message(msg);
            return true;
        }
        false
    }
}
