//! In-cluster application drivers for the paper's availability claims.
//!
//! Three applications run *inside* the simulated cluster:
//!
//! * **Replicated counter + failover** (E10, slides 18–19): a control
//!   group runs a counter service; the leader increments a seqlock
//!   record in the network cache and heartbeats; when the leader's
//!   node is killed, survivors detect, wait the application-definable
//!   failover period, and the best-qualified survivor resumes from its
//!   local replica. The app verifies *zero committed-data loss*.
//! * **Network semaphore stress** (E6, slide 10): M contenders loop
//!   acquire → critical section → release; the cluster asserts mutual
//!   exclusion and measures acquire latency under contention.
//! * **Seqlock probe** (E5 + ablation A2, slide 9): one writer streams
//!   record generations; readers poll their local replicas with the
//!   two-counter protocol (no torn reads, some retries) or unguarded
//!   (torn reads appear).

use crate::cluster::{Cluster, Ev};
use ampnet_cache::seqlock_msg::{self, ReadOutcome, RecordLayout};
use ampnet_cache::{
    BackoffPolicy, LockState, SemaphoreAction, SemaphoreAddr, SemaphoreClient,
};
use ampnet_dk::{ControlGroup, FailoverEngine, FailoverPolicy, FailoverReport, GroupId};
use ampnet_packet::MicroPacket;
use ampnet_sim::{Histogram, SimDuration, SimTime};
use std::collections::VecDeque;

/// Container for optional in-cluster applications.
#[derive(Default)]
pub(crate) struct AppState {
    pub(crate) counter: Option<CounterApp>,
    pub(crate) sem: Option<SemStress>,
    pub(crate) seq: Option<SeqProbe>,
}

// ===================== replicated counter / failover =====================

/// Configuration of the replicated-counter failover application.
#[derive(Debug, Clone)]
pub struct CounterAppConfig {
    /// (node, qualification) members of the control group.
    pub members: Vec<(u8, u32)>,
    /// Failover policy (detection, grace period, recovery rule).
    pub policy: FailoverPolicy,
    /// Where the counter record lives.
    pub counter_layout: RecordLayout,
    /// Where the leader heartbeat record lives.
    pub heartbeat_layout: RecordLayout,
    /// Stop issuing increments at this instant.
    pub deadline: SimTime,
}

/// Result of one completed failover inside the app.
#[derive(Debug, Clone, Copy)]
pub struct ResumeRecord {
    /// The member that took control.
    pub new_leader: u8,
    /// Counter value it resumed from (its local replica).
    pub resume_value: u64,
    /// Committed increments lost (paper: always 0).
    pub lost_committed: u64,
    /// The engine's timeline.
    pub report: FailoverReport,
}

/// Final report of the counter app.
#[derive(Debug, Clone)]
pub struct CounterAppReport {
    /// Increments issued by all leaders.
    pub increments_issued: u64,
    /// Highest counter value whose broadcast completed a full tour.
    pub committed: u64,
    /// Failovers that occurred.
    pub resumes: Vec<ResumeRecord>,
    /// Final counter value at each online member.
    pub final_values: Vec<(u8, u64)>,
}

pub(crate) struct CounterApp {
    cfg: CounterAppConfig,
    group: ControlGroup,
    engines: Vec<(u8, FailoverEngine)>,
    leader: u8,
    increments_issued: u64,
    committed: u64,
    /// Commit tags for the leader's in-flight broadcasts, FIFO with
    /// its `outstanding` queue: `Some(v)` marks the data packet of
    /// counter value `v`. This pairing assumes the leader node sends
    /// no other broadcast traffic while the app runs (true for the
    /// experiments; a production app would tag commits explicitly).
    leader_pending: VecDeque<Option<u64>>,
    resumes: Vec<ResumeRecord>,
}

impl Cluster {
    /// Start the replicated-counter failover application.
    pub fn start_counter_app(&mut self, cfg: CounterAppConfig) {
        let mut group = ControlGroup::new(GroupId(1));
        for &(node, q) in &cfg.members {
            group.join(node, q).expect("distinct members"); // lint: allow(panic-freedom): each node joins exactly once in this boot loop
        }
        let leader = group.leader().expect("non-empty group").node; // lint: allow(panic-freedom): the group was populated by the joins directly above
        let now = self.now();
        let engines = cfg
            .members
            .iter()
            .map(|&(node, _)| (node, FailoverEngine::new(cfg.policy, Some(leader), now)))
            .collect();
        let tick = cfg.policy.heartbeat_interval;
        let poll = cfg.policy.heartbeat_interval / 2;
        self.sim.schedule_in(tick, Ev::CounterTick);
        for &(node, _) in &cfg.members {
            self.sim.schedule_in(poll, Ev::FailoverPoll { node });
        }
        self.apps.counter = Some(CounterApp {
            cfg,
            group,
            engines,
            leader,
            increments_issued: 0,
            committed: 0,
            leader_pending: VecDeque::new(),
            resumes: vec![],
        });
    }

    /// Collect the counter app's report (valid once traffic quiesced).
    pub fn counter_report(&self) -> Option<CounterAppReport> {
        let app = self.apps.counter.as_ref()?;
        let final_values = app
            .cfg
            .members
            .iter()
            .filter(|&&(node, _)| self.node_online(node))
            .map(|&(node, _)| {
                let v = self
                    .cache(node)
                    .read_u64(
                        app.cfg.counter_layout.region,
                        app.cfg.counter_layout.offset + 8,
                    )
                    .unwrap_or(0);
                (node, v)
            })
            .collect();
        Some(CounterAppReport {
            increments_issued: app.increments_issued,
            committed: app.committed,
            resumes: app.resumes.clone(),
            final_values,
        })
    }
}

/// The app's full horizon: increments stop at the deadline, but
/// heartbeats and failover polling continue a little longer so a
/// failure near the deadline still resolves (and quiescence after the
/// deadline is not mistaken for a dead leader).
fn counter_horizon(app: &CounterApp) -> SimTime {
    app.cfg.deadline
        + app.cfg.policy.failover_period.saturating_mul(4)
        + app.cfg.policy.detection_latency().saturating_mul(4)
}

pub(crate) fn on_counter_tick(cluster: &mut Cluster) {
    let now = cluster.now();
    let Some(mut app) = cluster.apps.counter.take() else {
        return;
    };
    if now < counter_horizon(&app) {
        cluster
            .sim
            .schedule_in(app.cfg.policy.heartbeat_interval, Ev::CounterTick);
        let leader = app.leader;
        if cluster.node_online(leader) {
            if now < app.cfg.deadline {
                // Increment the replicated counter.
                let v = cluster
                    .cache(leader)
                    .read_u64(app.cfg.counter_layout.region, app.cfg.counter_layout.offset + 8)
                    .unwrap_or(0)
                    + 1;
                app.increments_issued += 1;
                // record_write broadcasts 3 packets; tag the data one.
                app.leader_pending.push_back(None);
                app.leader_pending.push_back(Some(v));
                app.leader_pending.push_back(None);
                cluster.record_write(leader, app.cfg.counter_layout, &v.to_be_bytes());
            }
            // Heartbeat record carries the tick time; heartbeats
            // continue through the horizon.
            app.leader_pending.extend([None, None, None]);
            cluster.record_write(
                leader,
                app.cfg.heartbeat_layout,
                &now.as_nanos().to_be_bytes(),
            );
            // Feed the leader's own engine (it sees itself alive).
            for (node, e) in &mut app.engines {
                if *node == leader {
                    e.on_heartbeat(now, leader);
                }
            }
        }
    }
    cluster.apps.counter = Some(app);
}

pub(crate) fn on_failover_poll(cluster: &mut Cluster, node: u8) {
    let now = cluster.now();
    let Some(mut app) = cluster.apps.counter.take() else {
        return;
    };
    if cluster.node_online(node) {
        let group = &app.group;
        let mut became_leader: Option<FailoverReport> = None;
        for (n, e) in &mut app.engines {
            if *n == node {
                if let Some(report) = e.poll(now, group) {
                    if report.new_leader == node {
                        became_leader = Some(report);
                    }
                }
            }
        }
        if let Some(report) = became_leader {
            cluster.log(
                ampnet_sim::Level::Warn,
                "failover",
                format!(
                    "node {} takes control of group {:?} (outage {})",
                    node,
                    app.group.id,
                    report.total_outage()
                ),
            );
            app.leader = node;
            app.leader_pending.clear();
            // Recovery rule: resume from the local replica.
            let resume_value = cluster
                .cache(node)
                .read_u64(app.cfg.counter_layout.region, app.cfg.counter_layout.offset + 8)
                .unwrap_or(0);
            let lost = app.committed.saturating_sub(resume_value);
            app.resumes.push(ResumeRecord {
                new_leader: node,
                resume_value,
                lost_committed: lost,
                report,
            });
            // Align every engine on the new leader.
            for (_, e) in &mut app.engines {
                e.on_heartbeat(now, node);
            }
        }
    }
    if now < counter_horizon(&app) {
        cluster.sim.schedule_in(
            app.cfg.policy.heartbeat_interval / 2,
            Ev::FailoverPoll { node },
        );
    }
    cluster.apps.counter = Some(app);
}

pub(crate) fn on_cache_update(cluster: &mut Cluster, node: u8, pkt: &MicroPacket) {
    let now = cluster.now();
    let Some(app) = cluster.apps.counter.as_mut() else {
        return;
    };
    // Heartbeat delivery: the record's data cell landing at a member
    // refreshes its engine.
    let hb = app.cfg.heartbeat_layout;
    if let ampnet_packet::Body::Variable { ctrl, .. } = &pkt.body {
        let is_heartbeat =
            ctrl.region == hb.region && ctrl.offset == hb.offset + 8 && pkt.ctrl.src == app.leader;
        if is_heartbeat {
            for (n, e) in &mut app.engines {
                if *n == node {
                    e.on_heartbeat(now, pkt.ctrl.src);
                }
            }
        }
    }
}

pub(crate) fn on_strip(cluster: &mut Cluster, node: u8) {
    let Some(app) = cluster.apps.counter.as_mut() else {
        return;
    };
    if node == app.leader {
        if let Some(Some(v)) = app.leader_pending.pop_front() {
            // The counter-value broadcast completed a full tour:
            // every online replica holds it. Committed.
            app.committed = app.committed.max(v);
        }
    }
}

pub(crate) fn on_node_death(cluster: &mut Cluster, node: u8) {
    let now = cluster.now();
    if let Some(app) = cluster.apps.counter.as_mut() {
        app.group.mark_offline(node);
        if node == app.leader {
            app.leader_pending.clear();
            for (_, e) in &mut app.engines {
                e.leader_died(now);
            }
        }
    }
    if let Some(sem) = cluster.apps.sem.as_mut() {
        if sem.holder == Some(node) {
            sem.holder = None; // lock dies with the holder's lease
        }
    }
}

pub(crate) fn on_ring_restored(_cluster: &mut Cluster) {
    // Traffic replay is handled by the cluster core; apps keep going.
}

// ===================== network semaphore stress =====================

/// Configuration of the semaphore stress application.
#[derive(Debug, Clone)]
pub struct SemStressConfig {
    /// Semaphore location (home node, region, offset).
    pub addr: SemaphoreAddr,
    /// Contending nodes.
    pub contenders: Vec<u8>,
    /// Acquire/release rounds per contender.
    pub rounds: u32,
    /// Simulated critical-section duration.
    pub crit: SimDuration,
    /// Client backoff policy.
    pub backoff: BackoffPolicy,
}

/// Report of the semaphore stress run.
#[derive(Debug, Clone)]
pub struct SemStressReport {
    /// Total successful acquisitions.
    pub acquisitions: u64,
    /// Mutual-exclusion violations (paper: always 0).
    pub violations: u64,
    /// Acquire latency (request → held), ns.
    pub acquire_latency: Histogram,
    /// TestAndSet attempts that found the lock held.
    pub contentions: u64,
    /// Rounds still unfinished when the report was taken.
    pub unfinished: u64,
}

pub(crate) struct SemStress {
    cfg: SemStressConfig,
    remaining: Vec<(u8, u32)>,
    pub(crate) holder: Option<u8>,
    violations: u64,
    acquisitions: u64,
    acquire_latency: Histogram,
}

impl Cluster {
    /// Start the semaphore stress application.
    pub fn start_sem_stress(&mut self, cfg: SemStressConfig) {
        let now = self.now();
        let mut remaining = vec![];
        for &c in &cfg.contenders {
            let mut client = SemaphoreClient::new(c, cfg.addr, cfg.backoff);
            let action = client.acquire(now);
            self.nodes[c as usize].sem = Some(client);
            if let SemaphoreAction::Send(p) = action {
                self.sem_send(c, p);
            }
            remaining.push((c, cfg.rounds));
        }
        self.apps.sem = Some(SemStress {
            cfg,
            remaining,
            holder: None,
            violations: 0,
            acquisitions: 0,
            acquire_latency: Histogram::new(),
        });
    }

    /// Collect the semaphore stress report.
    pub fn sem_report(&self) -> Option<SemStressReport> {
        let app = self.apps.sem.as_ref()?;
        let contentions = app
            .cfg
            .contenders
            .iter()
            .filter_map(|&c| self.nodes[c as usize].sem.as_ref())
            .map(|s| s.contentions())
            .sum();
        Some(SemStressReport {
            acquisitions: app.acquisitions,
            violations: app.violations,
            acquire_latency: app.acquire_latency.clone(),
            contentions,
            unfinished: app.remaining.iter().map(|&(_, r)| r as u64).sum(),
        })
    }
}

/// Called when a node's semaphore client reached a stable state after
/// a response (Held or Idle).
pub(crate) fn on_sem_transition(cluster: &mut Cluster, node: u8) {
    let now = cluster.now();
    let state = cluster.nodes[node as usize]
        .sem
        .as_ref()
        .map(|s| s.state());
    let Some(mut app) = cluster.apps.sem.take() else {
        return;
    };
    match state {
        Some(LockState::Held) => {
            if let Some(other) = app.holder {
                if other != node {
                    app.violations += 1;
                }
            }
            app.holder = Some(node);
            app.acquisitions += 1;
            if let Some(t0) = cluster.nodes[node as usize]
                .sem
                .as_ref()
                .and_then(|s| s.acquire_started())
            {
                let latency = (now - t0).as_nanos();
                app.acquire_latency.record(latency);
                cluster
                    .tel
                    .sem_acquired(now, node, app.cfg.addr.offset, latency);
            }
            cluster
                .sim
                .schedule_in(app.cfg.crit, Ev::SemCritDone { node });
        }
        Some(LockState::Idle) => {
            // Release completed (the holder flag was already cleared
            // when the critical section ended).
            for (c, r) in &mut app.remaining {
                if *c == node && *r > 0 {
                    *r -= 1;
                    if *r > 0 {
                        if let Some(sem) = cluster.nodes[node as usize].sem.as_mut() {
                            let action = sem.acquire(now);
                            if let SemaphoreAction::Send(p) = action {
                                cluster.sem_send(node, p);
                            }
                        }
                    }
                }
            }
        }
        _ => {}
    }
    cluster.apps.sem = Some(app);
}

pub(crate) fn on_crit_done(cluster: &mut Cluster, node: u8) {
    let Some(app) = cluster.apps.sem.as_mut() else {
        return;
    };
    // The critical section ends when the release is initiated; the
    // Clear still has to reach the home node, but the holder no
    // longer touches the protected state.
    if app.holder == Some(node) {
        app.holder = None;
    }
    if let Some(sem) = cluster.nodes[node as usize].sem.as_mut() {
        if sem.state() == LockState::Held {
            let action = sem.release();
            if let SemaphoreAction::Send(p) = action {
                cluster.sem_send(node, p);
            }
        }
    }
}

// ===================== seqlock probe =====================

/// Configuration of the seqlock consistency probe.
#[derive(Debug, Clone)]
pub struct SeqProbeConfig {
    /// Writing node.
    pub writer: u8,
    /// Reading nodes (poll their own replicas).
    pub readers: Vec<u8>,
    /// Record under test.
    pub layout: RecordLayout,
    /// Writer period.
    pub write_interval: SimDuration,
    /// Reader poll period.
    pub read_interval: SimDuration,
    /// `true` = slide-9 protocol; `false` = ablation A2 (unguarded).
    pub guarded: bool,
    /// Stop at this instant.
    pub deadline: SimTime,
}

/// Report of the seqlock probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqProbeReport {
    /// Generations written.
    pub writes: u64,
    /// Consistent snapshots obtained.
    pub reads_ok: u64,
    /// Read attempts that saw a write in progress (retried).
    pub reads_busy: u64,
    /// Torn snapshots returned to the application
    /// (guarded: must be 0; unguarded: the ablation's point).
    pub torn: u64,
}

pub(crate) struct SeqProbe {
    cfg: SeqProbeConfig,
    generation: u64,
    report: SeqProbeReport,
}

impl Cluster {
    /// Start the seqlock probe application.
    pub fn start_seqlock_probe(&mut self, cfg: SeqProbeConfig) {
        self.sim.schedule_in(cfg.write_interval, Ev::SeqWriterTick);
        for &r in &cfg.readers {
            self.sim
                .schedule_in(cfg.read_interval, Ev::SeqReaderTick { node: r });
        }
        self.apps.seq = Some(SeqProbe {
            cfg,
            generation: 0,
            report: SeqProbeReport::default(),
        });
    }

    /// Collect the probe report.
    pub fn seq_report(&self) -> Option<SeqProbeReport> {
        self.apps.seq.as_ref().map(|s| s.report)
    }
}

pub(crate) fn on_seq_writer_tick(cluster: &mut Cluster) {
    let now = cluster.now();
    let Some(mut app) = cluster.apps.seq.take() else {
        return;
    };
    if now < app.cfg.deadline {
        app.generation += 1;
        app.report.writes += 1;
        let pattern = (app.generation % 251 + 1) as u8;
        let data = vec![pattern; app.cfg.layout.data_len as usize];
        cluster.record_write(app.cfg.writer, app.cfg.layout, &data);
        cluster
            .sim
            .schedule_in(app.cfg.write_interval, Ev::SeqWriterTick);
    }
    cluster.apps.seq = Some(app);
}

pub(crate) fn on_seq_reader_tick(cluster: &mut Cluster, node: u8) {
    let now = cluster.now();
    let Some(mut app) = cluster.apps.seq.take() else {
        return;
    };
    if now < app.cfg.deadline {
        let uniform = |data: &[u8]| data.windows(2).all(|w| w[0] == w[1]);
        if app.cfg.guarded {
            match cluster.record_try_read(node, app.cfg.layout) {
                ReadOutcome::Ok { data, .. } => {
                    app.report.reads_ok += 1;
                    if !uniform(&data) {
                        app.report.torn += 1;
                    }
                }
                ReadOutcome::Busy => {
                    app.report.reads_busy += 1;
                    cluster.tel.seqlock_busy(
                        now,
                        node,
                        app.cfg.layout.region,
                        app.cfg.layout.offset,
                    );
                }
            }
        } else {
            let data = seqlock_msg::read_unguarded(cluster.cache(node), app.cfg.layout)
                .expect("valid layout"); // lint: allow(panic-freedom): layout was validated when the counter app was configured
            app.report.reads_ok += 1;
            if !uniform(&data) {
                app.report.torn += 1;
            }
        }
        cluster
            .sim
            .schedule_in(app.cfg.read_interval, Ev::SeqReaderTick { node });
    }
    cluster.apps.seq = Some(app);
}
