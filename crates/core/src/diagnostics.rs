//! Post-rostering diagnostics (slide 18): "Built-in diagnostics
//! certify new configuration".
//!
//! After every roster episode the master runs a certification sweep:
//! an Echo probe travels the new ring once (proving every hop really
//! forwards), then every member reports the CRC of each cache region
//! so divergent replicas are caught before applications resume. The
//! sweep runs *inside* the simulation (Diagnostic MicroPackets over
//! the fresh ring) and its verdict is recorded on the corresponding
//! [`RosterEvent`](crate::RosterEvent).

use crate::cluster::Cluster;
use ampnet_packet::build::{self, DiagOp};
use ampnet_packet::{MicroPacket, PacketType};
use ampnet_sim::SimTime;

/// Verdict of one certification sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certification {
    /// Roster epoch certified.
    pub epoch: u64,
    /// The Echo probe completed a full tour of the new ring.
    pub echo_completed: bool,
    /// Every pair of online replicas agreed on every region CRC.
    pub crc_uniform: bool,
    /// When the sweep finished.
    pub at: SimTime,
}

impl Certification {
    /// Overall pass/fail.
    pub fn passed(&self) -> bool {
        self.echo_completed && self.crc_uniform
    }
}

/// In-flight sweep state.
#[derive(Debug, Default)]
pub(crate) struct DiagState {
    /// Epoch of the running sweep, if any.
    pub(crate) running_epoch: Option<u64>,
    /// Completed certifications.
    pub(crate) certifications: Vec<Certification>,
}

impl Cluster {
    /// Completed certification sweeps, oldest first.
    pub fn certifications(&self) -> &[Certification] {
        &self.diag.certifications
    }

    /// Launch the certification sweep for the epoch just installed.
    /// Called from `restore_ring`.
    pub(crate) fn start_certification(&mut self) {
        if self.ring.is_empty() {
            return;
        }
        let master = self.ring.order[0].0;
        self.diag.running_epoch = Some(self.epoch);
        // Echo probe: a broadcast Diagnostic cell; when it returns to
        // the master (strip), the tour is proven. Payload tags the
        // epoch so stale probes are ignored.
        let mut payload = [0u8; 8];
        payload[..8].copy_from_slice(&self.epoch.to_be_bytes());
        let probe = build::diagnostic(master, ampnet_packet::BROADCAST, DiagOp::Echo, payload);
        self.enqueue_own(master, probe);
        self.kick(master);
    }

    /// A Diagnostic packet was stripped back at its source: if it is
    /// the current epoch's Echo probe, the tour completed — finish the
    /// sweep with the CRC audit.
    pub(crate) fn on_diag_strip(&mut self, node: u8, pkt: &MicroPacket) {
        if pkt.ctrl.ptype != PacketType::Diagnostic {
            return;
        }
        let Some(epoch) = self.diag.running_epoch else {
            return;
        };
        if self.ring.is_empty() || self.ring.order[0].0 != node {
            return;
        }
        let probe_epoch = u64::from_be_bytes(*pkt.fixed_payload());
        if probe_epoch != epoch {
            return;
        }
        // CRC audit: all online replicas must agree region-by-region.
        // (The master gathers CrcAudit responses; replica content is
        // already synchronously visible to the simulation, so we audit
        // directly — the packet cost of the audit is one fixed cell
        // per region per node, negligible next to the echo tour.)
        let crc_uniform = self.caches_converged();
        self.diag.running_epoch = None;
        self.log(
            ampnet_sim::Level::Info,
            "diag",
            format!(
                "epoch {epoch} certified: echo ok, replicas {}",
                if crc_uniform { "uniform" } else { "DIVERGED" }
            ),
        );
        self.diag.certifications.push(Certification {
            epoch,
            echo_completed: true,
            crc_uniform,
            at: self.now(),
        });
    }
}

/// Timer-based fallback: if an echo tour cannot complete (e.g. the
/// ring broke again mid-sweep), the sweep is abandoned when the next
/// episode starts.
pub(crate) fn abandon_if_running(cluster: &mut Cluster) {
    cluster.diag.running_epoch = None;
}
