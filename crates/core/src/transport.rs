//! Cluster data-plane: hop scheduling, packet dispatch, and the event
//! handler.
//!
//! Every hop moves a pooled [`FrameRef`](ampnet_packet::FrameRef)
//! through the destination's [`NodeStack`](ampnet_ring::NodeStack):
//! the packet was serialized exactly once, at its source, into the
//! cluster's shared `FrameArena`. Frames leave the pool when they
//! leave the ring (unicast delivery, source strip) or when a ring
//! reconfiguration invalidates them in flight (stale-epoch arrivals
//! are released, modelling the packet loss replay then repairs).

use crate::cluster::{Cluster, Ev};
use ampnet_cache::atomics;
use ampnet_cache::SemaphoreAction;
use ampnet_packet::{build, MicroPacket, PacketType};
use ampnet_ring::{MacTx, StackOutcome};
use ampnet_services::msg::{Datagram, MsgRx};
use ampnet_services::socket::AMPIP_STREAM;
use ampnet_services::threads::THREAD_VECTOR;
use ampnet_sim::SimDuration;

/// Memoized per-hop wire timing. Every hop with the same fiber run
/// and frame size has identical serialization/propagation delays, but
/// the f64 math that derives them (`LinkParams::serialize_time` +
/// `propagation`) used to run per transmission — a measurable slice of
/// the serial scale bench. One fiber run dominates a ring (all
/// node–switch links share `cfg.fiber_length_m`), so the cache keys on
/// the last-seen fiber length and memoizes serialize times by wire
/// size. Values are produced by the exact same `LinkParams` calls, so
/// event timing — and therefore every digest — is unchanged.
#[derive(Debug, Default)]
pub(crate) struct HopTimingCache {
    /// `f64::to_bits` of the cached fiber run (0 = nothing cached).
    key: u64,
    /// Propagation + per-node transit latency for that run, nanos.
    fixed_ns: u64,
    /// `serialize_time(bytes)` in nanos by wire size; `u64::MAX` =
    /// not yet computed.
    ser_ns: Vec<u64>,
}

impl Cluster {
    /// `(serialize_time, serialize_time + propagation + node_latency)`
    /// for one hop, memoized.
    fn hop_timing(&mut self, fiber_m: f64, wire_bytes: usize) -> (SimDuration, SimDuration) {
        let key = fiber_m.to_bits();
        let cache = &mut self.hop_timing;
        let timing = &self.cfg.timing;
        if cache.key != key || cache.ser_ns.is_empty() {
            cache.key = key;
            cache.fixed_ns =
                (timing.link(fiber_m).propagation() + timing.node_latency).as_nanos();
            cache.ser_ns.clear();
        }
        if wire_bytes >= cache.ser_ns.len() {
            cache.ser_ns.resize(wire_bytes + 1, u64::MAX);
        }
        if cache.ser_ns[wire_bytes] == u64::MAX {
            cache.ser_ns[wire_bytes] = timing.link(fiber_m).serialize_time(wire_bytes).as_nanos();
        }
        let ser = cache.ser_ns[wire_bytes];
        (
            SimDuration::from_nanos(ser),
            SimDuration::from_nanos(ser + cache.fixed_ns),
        )
    }

    // ----- insertion -----

    pub(crate) fn enqueue_own(&mut self, node: u8, pkt: MicroPacket) {
        // Streams are spread by tag — except D64 atomics, whose tag is
        // the opcode. The semaphore protocol is only safe under
        // per-source FIFO delivery (verified by `check`'s semaphore
        // model with FIFO channels): spreading TestAndSet and Clear
        // over different DRR streams lets a delayed TAS response
        // overtake the Clear response that ends the round, and the
        // requester mistakes it for a grant of its *next* acquire —
        // two holders. All atomic ops therefore share one stream.
        let stream = match pkt.ctrl.ptype {
            PacketType::D64Atomic => 1 % self.cfg.mac.n_streams as u8,
            _ => pkt.ctrl.tag % self.cfg.mac.n_streams as u8,
        };
        let ctx = &mut self.nodes[node as usize];
        if pkt.ctrl.flags.contains(ampnet_packet::Flags::URGENT) {
            ctx.stack.enqueue_urgent_packet(&mut self.arena, &pkt);
        } else {
            ctx.stack.enqueue_packet(&mut self.arena, stream, &pkt);
        }
    }

    #[inline]
    fn ring_successor(&self, node: u8) -> Option<(u8, f64)> {
        // Memoized in `install_ring`: the successor and its fiber run
        // are fixed between roster episodes.
        self.ring_succ[node as usize]
    }

    pub(crate) fn kick(&mut self, node: u8) {
        let i = node as usize;
        if !self.ring_up || !self.nodes[i].online || self.tx_busy[i] {
            return;
        }
        let Some((succ, fiber_m)) = self.ring_successor(node) else {
            return;
        };
        let now = self.sim.now();
        match self.nodes[i].stack.next_tx(now, &self.arena) {
            Some(MacTx { frame, own, .. }) => {
                if own {
                    // Smart-data-recovery bookkeeping wants the packet
                    // itself (it is re-encoded if replayed): one decode
                    // per own insertion, not per hop.
                    let packet = self.arena.decode(frame.frame);
                    if packet.ctrl.is_broadcast() {
                        self.nodes[i].outstanding.push_back(packet);
                    } else {
                        self.nodes[i].outstanding_unicast.push_back((now, packet));
                    }
                }
                let (ser, latency) = self.hop_timing(fiber_m, frame.wire_bytes as usize);
                self.tx_busy[i] = true;
                let epoch = self.epoch;
                self.sim.schedule_in(ser, Ev::TxDone { epoch, node });
                self.sim.schedule_in(
                    latency,
                    Ev::Arrival {
                        epoch,
                        node: succ,
                        frame: frame.frame,
                    },
                );
            }
            None => {
                if self.nodes[i].stack.mac.streams_ref().has_traffic() && !self.retry_pending[i] {
                    let at = self.nodes[i].stack.mac.next_insert_allowed().max(now);
                    if at > now {
                        self.retry_pending[i] = true;
                        self.sim.schedule_at(at, Ev::Retry { node });
                    }
                }
            }
        }
    }

    pub(crate) fn kick_all(&mut self) {
        for node in 0..self.cfg.n_nodes as u8 {
            self.kick(node);
        }
    }

    /// One quiet roster-speed tour (for unicast replay expiry).
    pub(crate) fn quiet_tour(&self) -> SimDuration {
        let n = self.ring.order.len().max(1) as u64;
        let link = self.cfg.timing.link(self.cfg.fiber_length_m * 2.0);
        (link.serialize_time(84) + link.propagation() + self.cfg.timing.node_latency)
            .saturating_mul(n)
    }

    // ----- packet dispatch -----

    fn dispatch(&mut self, node: u8, pkt: MicroPacket) {
        let i = node as usize;
        match pkt.ctrl.ptype {
            PacketType::Dma => {
                if MsgRx::is_message(&pkt) {
                    if let Some(d) = self.nodes[i].msg_rx.on_packet(&pkt) {
                        if d.stream == AMPIP_STREAM {
                            self.nodes[i].ampip.on_datagram(d);
                        } else if !self.try_collective(node, d.stream, &d.payload) {
                            self.stream_backlog[d.stream as usize] += 1;
                            self.nodes[i].inbox.push_back(d);
                        }
                    }
                } else {
                    // Cache update; tolerate regions this replica has
                    // not defined (e.g. a node that joined later).
                    let _ = self.nodes[i].cache.apply_packet(&pkt);
                    crate::apps::on_cache_update(self, node, &pkt);
                }
            }
            PacketType::Data => {
                // Raw data cells: surfaced via the interrupt-style
                // inbox as 8-byte datagrams.
                self.stream_backlog[pkt.ctrl.tag as usize] += 1;
                self.nodes[i].inbox.push_back(Datagram {
                    src: pkt.ctrl.src,
                    stream: pkt.ctrl.tag,
                    payload: pkt.fixed_payload().to_vec(),
                });
            }
            PacketType::D64Atomic => {
                if pkt.ctrl.flags.contains(ampnet_packet::Flags::RESPONSE) {
                    self.on_atomic_response(node, &pkt);
                } else if let Some(req) = build::parse_atomic_request(&pkt) {
                    let requester = pkt.ctrl.src;
                    if let Ok(effect) =
                        atomics::execute(&mut self.nodes[i].cache, requester, req)
                    {
                        self.enqueue_own(node, effect.response);
                        for u in effect.updates {
                            self.enqueue_own(node, u);
                        }
                        self.kick(node);
                    }
                }
            }
            PacketType::Interrupt => {
                if let Some(ip) = build::parse_interrupt(&pkt) {
                    if ip.vector == THREAD_VECTOR && self.task_table.is_some() {
                        self.on_thread_interrupt(node, ip.cookie as u32);
                    } else {
                        self.nodes[i].interrupts.push_back(ip);
                    }
                }
            }
            PacketType::Diagnostic | PacketType::Rostering => {
                // Rostering runs out-of-band (see inject_failure);
                // diagnostics echo handled at the app layer.
            }
        }
    }

    /// A THREAD_VECTOR doorbell arrived: run the task against this
    /// node's replica and publish the result. The doorbell is an
    /// urgent cell and can overtake the task-entry DMA packets, so a
    /// miss re-checks after a short delay (bounded retries).
    fn on_thread_interrupt(&mut self, node: u8, slot: u32) {
        self.try_thread_execute(node, slot, 0);
    }

    pub(crate) fn try_thread_execute(&mut self, node: u8, slot: u32, tries: u8) {
        let Some(table) = self.task_table else {
            return;
        };
        match table.execute(&mut self.nodes[node as usize].cache, slot) {
            Ok(Some((_result, pkts, completion))) => {
                for p in pkts {
                    self.enqueue_own(node, p);
                }
                self.enqueue_own(node, completion);
                self.kick(node);
            }
            _ if tries < 10 => {
                self.sim.schedule_in(
                    SimDuration::from_micros(5),
                    Ev::ThreadRetry {
                        node,
                        slot,
                        tries: tries + 1,
                    },
                );
            }
            _ => {} // entry never materialized; drop the doorbell
        }
    }

    /// Send a semaphore protocol packet and arm its retransmission
    /// timer. The tagged D64 operations are idempotent, so a spurious
    /// resend (packet survived after all) is harmless.
    pub(crate) fn sem_send(&mut self, node: u8, pkt: MicroPacket) {
        let i = node as usize;
        self.nodes[i].sem_seq += 1;
        let seq = self.nodes[i].sem_seq;
        self.enqueue_own(node, pkt);
        self.kick(node);
        self.sim.schedule_in(
            SimDuration::from_micros(500),
            Ev::SemTimeout { node, seq },
        );
    }

    fn on_atomic_response(&mut self, node: u8, pkt: &MicroPacket) {
        let now = self.sim.now();
        let i = node as usize;
        if self.nodes[i].sem.is_some() {
            // Any response settles the in-flight request: invalidate
            // the pending retransmission timer.
            self.nodes[i].sem_seq += 1;
            let sem = self.nodes[i].sem.as_mut().expect("checked"); // lint: allow(panic-freedom): presence checked by the enclosing match on sem_enabled
            match sem.on_response(now, pkt) {
                SemaphoreAction::Send(p) => {
                    self.sem_send(node, p);
                }
                SemaphoreAction::WaitUntil(t) => {
                    self.sim.schedule_at(t, Ev::SemPoll { node });
                }
                SemaphoreAction::None => {
                    crate::apps::on_sem_transition(self, node);
                }
            }
        }
    }

    // ----- the event handler -----

    pub(crate) fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival { epoch, node, frame } => {
                if epoch != self.epoch || !self.nodes[node as usize].online {
                    // Packet lost in a ring reconfiguration: recycle
                    // the in-flight frame.
                    self.arena.release(frame);
                    self.tel.stale_frame(self.sim.now(), node, epoch);
                    return;
                }
                let now = self.sim.now();
                let i = node as usize;
                match self.nodes[i].stack.on_wire_arrival(now, &mut self.arena, frame) {
                    StackOutcome::Delivered | StackOutcome::DeliveredAndForwarded => {
                        if let Some(p) = self.nodes[i].stack.delivery.pending.pop_front() {
                            self.dispatch(node, p);
                        }
                    }
                    StackOutcome::Stripped => {
                        crate::apps::on_strip(self, node);
                        // Retire the acknowledged broadcast (oldest
                        // outstanding entry — strips come back in
                        // insertion order).
                        if let Some(acked) = self.nodes[i].outstanding.pop_front() {
                            self.on_diag_strip(node, &acked);
                        }
                    }
                    StackOutcome::Forwarded => {}
                }
                // Expire confirmed unicasts (anything older than two
                // tours has certainly reached its destination). The
                // window only changes with the ring, so it is cached
                // keyed on ring length rather than recomputed (four
                // f64 rounds) on every arrival. Insertion times are
                // monotone, so expiry is a pop of the aged prefix —
                // O(expired), not a scan of every live entry.
                let ring_len = self.ring.order.len();
                if self.unicast_expiry.0 != ring_len {
                    self.unicast_expiry = (ring_len, self.quiet_tour().saturating_mul(2));
                }
                let expiry = self.unicast_expiry.1;
                let now = self.sim.now();
                while let Some((t, _)) = self.nodes[i].outstanding_unicast.front() {
                    if now.saturating_since(*t) <= expiry {
                        break;
                    }
                    self.nodes[i].outstanding_unicast.pop_front();
                }
                self.kick(node);
            }
            Ev::TxDone { epoch, node } => {
                if epoch != self.epoch {
                    return;
                }
                self.tx_busy[node as usize] = false;
                self.kick(node);
            }
            Ev::Retry { node } => {
                self.retry_pending[node as usize] = false;
                self.kick(node);
            }
            Ev::Fail(c) => self.inject_failure(c),
            Ev::Repair(c) => self.apply_repair(c),
            Ev::RingRestored { epoch } => self.restore_ring(epoch),
            Ev::Join { node, req } => self.handle_join(node, req),
            Ev::NodeOnline { node } => self.handle_node_online(node),
            Ev::SemPoll { node } => {
                let now = self.sim.now();
                if let Some(sem) = self.nodes[node as usize].sem.as_mut() {
                    match sem.poll(now) {
                        SemaphoreAction::Send(p) => {
                            self.sem_send(node, p);
                        }
                        SemaphoreAction::WaitUntil(t) => {
                            self.sim.schedule_at(t, Ev::SemPoll { node });
                        }
                        SemaphoreAction::None => {}
                    }
                }
            }
            Ev::SemTimeout { node, seq } => {
                let i = node as usize;
                if self.nodes[i].sem_seq != seq || !self.nodes[i].online {
                    return; // settled or superseded
                }
                if let Some(pkt) = self.nodes[i].sem.as_ref().and_then(|s| s.resend()) {
                    self.sem_send(node, pkt);
                }
            }
            Ev::SemCritDone { node } => crate::apps::on_crit_done(self, node),
            Ev::CounterTick => crate::apps::on_counter_tick(self),
            Ev::FailoverPoll { node } => crate::apps::on_failover_poll(self, node),
            Ev::SeqWriterTick => crate::apps::on_seq_writer_tick(self),
            Ev::SeqReaderTick { node } => crate::apps::on_seq_reader_tick(self, node),
            Ev::ThreadRetry { node, slot, tries } => {
                if self.nodes[node as usize].online {
                    self.try_thread_execute(node, slot, tries);
                }
            }
            Ev::DiagSweep => self.run_diag_sweep(),
            Ev::ErrorBurst { node, seed, errors } => self.apply_error_burst(node, seed, errors),
        }
    }
}
