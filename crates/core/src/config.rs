//! Cluster configuration and the calibrated timing model.

use ampnet_cache::RegionId;
use ampnet_dk::{AssimilationParams, CompatPolicy, Features};
use ampnet_phy::LinkParams;
use ampnet_ring::{PacingMode, RingNodeParams};
use ampnet_roster::RosterParams;
use ampnet_sim::SimDuration;

/// Every timing constant of the simulation in one place (DESIGN.md §5).
/// Experiments print the model they ran under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Serial line rate in baud (8b/10b encoded bits per second).
    pub baud: u64,
    /// Register-insertion transit latency per node (hardware path).
    pub node_latency: SimDuration,
    /// Rostering protocol constants.
    pub roster: RosterParams,
    /// Assimilation phase costs.
    pub assimilation: AssimilationParams,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            baud: ampnet_phy::FC_GIGABIT_BAUD,
            node_latency: SimDuration::from_nanos(60),
            roster: RosterParams::default(),
            assimilation: AssimilationParams::default(),
        }
    }
}

impl TimingModel {
    /// Link parameters for a hop of `length_m` metres of fiber.
    pub fn link(&self, length_m: f64) -> LinkParams {
        LinkParams {
            baud: self.baud,
            length_m,
            ..LinkParams::default()
        }
    }
}

/// Which plant family the cluster is built on.
///
/// `Crossbar` (the default) reproduces the paper's plant exactly;
/// `Torus3d` and `FoldedClos` swap in the topology-zoo families from
/// `ampnet-topo` while the entire stack above (rostering, transport,
/// chaos) runs unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantSpec {
    /// Node×switch crossbar, `n_nodes` × `n_switches`.
    Crossbar,
    /// 3D torus of the given dimensions (their product must equal
    /// `n_nodes`); `n_switches` is ignored.
    Torus3d {
        /// Torus extent per dimension.
        dims: [usize; 3],
    },
    /// Folded Clos with `leaves` leaf and `spines` spine switches;
    /// `n_switches` is ignored.
    FoldedClos {
        /// Leaf switch count (nodes attach round-robin).
        leaves: usize,
        /// Spine switch count.
        spines: usize,
    },
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of host nodes (2..=255).
    pub n_nodes: usize,
    /// Redundant switches: 2 (dual) or 4 (quad) per slides 14–15.
    pub n_switches: usize,
    /// Plant family (default: the paper's crossbar).
    pub plant: PlantSpec,
    /// Fiber length of every node–switch link, metres.
    pub fiber_length_m: f64,
    /// Deterministic seed.
    pub seed: u64,
    /// Network cache regions every node defines at boot.
    pub cache_regions: Vec<(RegionId, u32)>,
    /// Timing constants.
    pub timing: TimingModel,
    /// MAC configuration (insertion buffer, pacing, streams).
    pub mac: RingNodeParams,
    /// Version policy the network enforces on joiners.
    pub compat: CompatPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_nodes: 8,
            n_switches: 4,
            plant: PlantSpec::Crossbar,
            fiber_length_m: 100.0,
            seed: 0xA3B1,
            cache_regions: vec![(0, 64 * 1024)],
            timing: TimingModel::default(),
            mac: RingNodeParams {
                n_streams: 8,
                pacing: PacingMode::Adaptive(Default::default()),
                ..Default::default()
            },
            compat: CompatPolicy {
                required_major: 1,
                min_minor: 0,
                required_features: Features::NONE,
            },
        }
    }
}

impl ClusterConfig {
    /// A quick small cluster for tests.
    pub fn small(n_nodes: usize) -> Self {
        ClusterConfig {
            n_nodes,
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style fiber length override.
    pub fn with_fiber(mut self, m: f64) -> Self {
        self.fiber_length_m = m;
        self
    }

    /// Builder-style switch count override.
    pub fn with_switches(mut self, s: usize) -> Self {
        self.n_switches = s;
        self
    }

    /// Builder-style region override.
    pub fn with_regions(mut self, regions: Vec<(RegionId, u32)>) -> Self {
        self.cache_regions = regions;
        self
    }

    /// Builder-style plant-family override. For `Torus3d`, `n_nodes`
    /// is set to the product of the dimensions.
    pub fn with_plant(mut self, plant: PlantSpec) -> Self {
        if let PlantSpec::Torus3d { dims } = plant {
            self.n_nodes = dims[0] * dims[1] * dims[2];
        }
        self.plant = plant;
        self
    }

    /// Build the physical plant this configuration describes.
    pub fn build_plant(&self) -> ampnet_topo::Plant {
        match self.plant {
            PlantSpec::Crossbar => {
                ampnet_topo::Plant::crossbar(self.n_nodes, self.n_switches, self.fiber_length_m)
            }
            PlantSpec::Torus3d { dims } => {
                assert_eq!(
                    dims[0] * dims[1] * dims[2],
                    self.n_nodes,
                    "torus dims must multiply to n_nodes"
                );
                ampnet_topo::Plant::torus3d(dims, self.fiber_length_m)
            }
            PlantSpec::FoldedClos { leaves, spines } => {
                ampnet_topo::Plant::folded_clos(self.n_nodes, leaves, spines, self.fiber_length_m)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ClusterConfig::default();
        assert_eq!(c.n_nodes, 8);
        assert_eq!(c.n_switches, 4);
        assert_eq!(c.mac.n_streams, 8);
    }

    #[test]
    fn builders() {
        let c = ClusterConfig::small(4)
            .with_seed(7)
            .with_fiber(1000.0)
            .with_switches(2)
            .with_regions(vec![(1, 128)]);
        assert_eq!(c.n_nodes, 4);
        assert_eq!(c.seed, 7);
        assert_eq!(c.fiber_length_m, 1000.0);
        assert_eq!(c.n_switches, 2);
        assert_eq!(c.cache_regions, vec![(1, 128)]);
    }

    #[test]
    fn plant_spec_builds_each_family() {
        let c = ClusterConfig::default();
        assert_eq!(c.plant, PlantSpec::Crossbar);
        assert_eq!(c.build_plant().family(), "crossbar");

        let t = ClusterConfig::small(4).with_plant(PlantSpec::Torus3d { dims: [2, 2, 2] });
        assert_eq!(t.n_nodes, 8, "torus dims set the node count");
        assert_eq!(t.build_plant().family(), "torus3d");

        let f = ClusterConfig::small(6).with_plant(PlantSpec::FoldedClos {
            leaves: 2,
            spines: 2,
        });
        assert_eq!(f.build_plant().family(), "folded-clos");
        assert_eq!(f.build_plant().n_switches(), 4);
    }

    #[test]
    fn link_derivation() {
        let t = TimingModel::default();
        let l = t.link(500.0);
        assert_eq!(l.baud, ampnet_phy::FC_GIGABIT_BAUD);
        assert_eq!(l.length_m, 500.0);
    }
}
