//! Cluster control-plane: failure detection, rostering episodes,
//! repairs, joins, and the background diagnostic sweep.
//!
//! Faults address a *plane* of the layered data-plane where they can:
//! a bit-error burst is assessed by the target node's PHY plane
//! ([`PlaneFault::Phy`]) and escalates to a topology-level link failure
//! only if the 8b/10b checker flags violations. Topology faults
//! (crashed nodes, cut fibers, dead switches) hit the plant directly
//! and trigger rostering through loss of light, as on slides 16/18.

use crate::cluster::{Cluster, Ev, RosterEvent, RosterReason};
use crate::observe::ObservedEvent;
use ampnet_cache::NetworkCache;
use ampnet_dk::{assimilate, JoinRequest};
use ampnet_packet::MicroPacket;
use ampnet_ring::PlaneFault;
use ampnet_roster::{initial_rostering, run_rostering, RosterOutcome, RosterSkip};
use ampnet_sim::{Level, SimDuration, SimTime};
use ampnet_topo::montecarlo::Component;
use ampnet_topo::{NodeId, PlantRing};

impl Cluster {
    pub(crate) fn apply_error_burst(&mut self, node: u8, seed: u64, errors: u32) {
        // Hand the burst to the PHY plane of the afflicted node; its
        // 8b/10b checker decides whether anything is detectable.
        let now = self.sim.now();
        let detected = self.nodes[node as usize]
            .stack
            .inject_fault_at(now, PlaneFault::Phy { seed, errors });
        self.observe(ObservedEvent::ErrorBurst { node, errors, detected });
        self.log(
            Level::Warn,
            "phy",
            format!("node {node}: bit-error burst, {errors} injected, {detected} violations"),
        );
        let pos = self.ring_pos[node as usize];
        if detected == 0 || !self.ring_up || pos == usize::MAX || self.ring.order.len() < 2 {
            // Nothing detectable, or the lasers are already down /
            // re-syncing: the burst changes nothing.
            self.observe(ObservedEvent::ErrorBurstAbsorbed { node });
            return;
        }
        // Loss-of-sync on the incoming fiber: the final segment of the
        // upstream hop's route into this node is declared dead.
        let n = self.ring.order.len();
        let up = (pos + n - 1) % n;
        let link =
            self.topo
                .hop_last_link(self.ring.order[up], NodeId(node), &self.ring.hops[up]);
        self.observe(ObservedEvent::ErrorBurstEscalated { node, link });
        self.log(
            Level::Warn,
            "phy",
            format!("node {node}: burst escalated, {link:?} lost sync"),
        );
        self.inject_failure(link);
    }

    pub(crate) fn inject_failure(&mut self, c: Component) {
        crate::diagnostics::abandon_if_running(self);
        self.observe(ObservedEvent::FailureInjected(c));
        self.topo.apply(c);
        if let Component::Node(n) = c {
            self.nodes[n.0 as usize].online = false;
            crate::apps::on_node_death(self, n.0);
        }
        let now = self.sim.now();
        match run_rostering(&self.topo, &self.ring, c, now, self.epoch, &self.cfg.timing.roster)
        {
            Ok(outcome) => {
                self.ring_up = false;
                self.ring_down_at = now;
                self.epoch = outcome.epoch;
                self.log(
                    Level::Warn,
                    "roster",
                    format!(
                        "{c:?} failed; epoch {} rostering, ETA {}",
                        outcome.epoch, outcome.completed_at
                    ),
                );
                self.sim.schedule_at(
                    outcome.completed_at,
                    Ev::RingRestored {
                        epoch: outcome.epoch,
                    },
                );
                self.pending_roster = Some((RosterReason::Failure(c), outcome));
                self.observe(ObservedEvent::RosterStarted { epoch: self.epoch });
            }
            Err(RosterSkip::SpareComponent) => {
                self.log(
                    Level::Info,
                    "roster",
                    format!("{c:?} failed but is spare; ring unaffected"),
                );
                self.observe(ObservedEvent::SpareFault(c));
            }
            Err(RosterSkip::NoSurvivors) => {
                self.ring_up = false;
                self.ring = PlantRing::empty();
                self.ring_pos.fill(usize::MAX);
                self.ring_succ.fill(None);
                self.log(Level::Warn, "roster", format!("{c:?} failed; no survivors"));
                self.observe(ObservedEvent::NoSurvivors(c));
            }
        }
    }

    fn install_ring(&mut self, outcome: &RosterOutcome) {
        self.ring = outcome.ring.clone();
        self.ring_pos.fill(usize::MAX);
        for (pos, n) in self.ring.order.iter().enumerate() {
            self.ring_pos[n.0 as usize] = pos;
        }
        // Refresh the per-node successor memo (see `Cluster::ring_succ`).
        self.ring_succ.fill(None);
        let len = self.ring.order.len();
        for (pos, n) in self.ring.order.iter().enumerate() {
            let v = self.ring.order[(pos + 1) % len];
            let fiber = self
                .topo
                .hop_fiber_m(*n, v, &self.ring.hops[pos]);
            self.ring_succ[n.0 as usize] = Some((v.0, fiber));
        }
    }

    pub(crate) fn restore_ring(&mut self, epoch: u64) {
        if epoch != self.epoch {
            return; // superseded by a newer episode
        }
        let Some((reason, outcome)) = self.pending_roster.take() else {
            return;
        };
        self.install_ring(&outcome);
        self.log(
            Level::Info,
            "roster",
            format!(
                "epoch {} live: {} nodes in {:.2} ring tours ({:?})",
                epoch,
                outcome.ring.len(),
                outcome.recovery_in_tours(),
                reason
            ),
        );
        self.history.push(RosterEvent {
            reason,
            outcome,
        });
        self.observe(ObservedEvent::RingRestored {
            epoch,
            ring_len: self.ring.len(),
        });
        self.ring_up = true;
        self.tx_busy.fill(false);
        self.retry_pending.fill(false);
        // Smart data recovery: every surviving member replays its
        // unacknowledged traffic (idempotent at the receivers). A
        // unicast is possibly-lost — and therefore replayed — if it
        // was inserted within two quiet tours of the instant the ring
        // went down; anything older had certainly been delivered. The
        // outage duration itself must not count against the window.
        let expiry = self.quiet_tour().saturating_mul(2);
        let replay_after = self.ring_down_at - expiry.min(SimDuration::from_nanos(self.ring_down_at.as_nanos()));
        let now = self.sim.now();
        for i in 0..self.nodes.len() {
            if !self.nodes[i].online {
                self.nodes[i].outstanding.clear();
                self.nodes[i].outstanding_unicast.clear();
                continue;
            }
            let replay: Vec<MicroPacket> = self.nodes[i].outstanding.drain(..).collect();
            let unicast: Vec<(SimTime, MicroPacket)> =
                self.nodes[i].outstanding_unicast.drain(..).collect();
            let bcast_count = replay.len() as u64;
            let mut ucast_count = 0u64;
            for p in replay {
                self.enqueue_own(i as u8, p);
            }
            for (t, p) in unicast {
                if t >= replay_after {
                    ucast_count += 1;
                    self.enqueue_own(i as u8, p);
                }
            }
            self.tel.replayed(now, i as u8, bcast_count, ucast_count);
        }
        self.kick_all();
        self.start_certification();
        crate::apps::on_ring_restored(self);
    }

    /// Restore a failed switch or fiber. A repair that would let a
    /// strictly larger ring exist (some node was excluded) triggers a
    /// roster episode to capture the capacity; otherwise it silently
    /// returns the component to the spare pool.
    pub(crate) fn apply_repair(&mut self, c: Component) {
        if matches!(c, Component::Node(_)) {
            return;
        }
        self.topo.restore(c);
        self.log(
            Level::Info,
            "repair",
            format!("{c:?} repaired"),
        );
        self.observe(ObservedEvent::RepairApplied(c));
        let best = self.topo.largest_ring();
        if best.len() > self.ring.len() && self.ring_up {
            // Re-roster to absorb the recovered capacity.
            if let Ok(mut outcome) = initial_rostering(&self.topo, &self.cfg.timing.roster) {
                let now = self.sim.now();
                self.epoch += 1;
                outcome.epoch = self.epoch;
                outcome.failed_at = now;
                let cost = outcome.explore_time + outcome.commit_time;
                outcome.completed_at = now + cost;
                self.ring_up = false;
                self.sim
                    .schedule_at(outcome.completed_at, Ev::RingRestored { epoch: self.epoch });
                self.pending_roster = Some((RosterReason::Repair(c), outcome));
            }
        }
    }

    pub(crate) fn handle_join(&mut self, node: u8, req: JoinRequest) {
        let cache_bytes: u64 = self
            .cfg
            .cache_regions
            .iter()
            .map(|&(_, sz)| sz as u64)
            .sum();
        match assimilate(req, self.cfg.compat, cache_bytes, &self.cfg.timing.assimilation) {
            Ok(timeline) => {
                // The node becomes ring-eligible (lasers up, conforming
                // to the assimilation rules) only when it comes online.
                self.sim
                    .schedule_in(timeline.total(), Ev::NodeOnline { node });
            }
            Err(f) => {
                self.rejections.push((node, f));
                self.observe(ObservedEvent::JoinRejected(node));
            }
        }
    }

    pub(crate) fn handle_node_online(&mut self, node: u8) {
        self.topo.restore(Component::Node(NodeId(node)));
        // Cache refresh completed (time already charged): copy the
        // sponsor's replica. The packet-level protocol is validated in
        // ampnet-cache::refresh.
        let sponsor = (0..self.nodes.len())
            .find(|&i| i != node as usize && self.nodes[i].online);
        if let Some(s) = sponsor {
            let snapshot = self.nodes[s].cache.clone();
            let tel = self.tel.tel.clone();
            let me = &mut self.nodes[node as usize];
            let id = me.cache.node();
            me.cache = snapshot;
            // Re-home the replica.
            let mut rehomed = NetworkCache::new(id);
            for region in me.cache.region_ids() {
                let size = me.cache.region_size(region).expect("listed"); // lint: allow(panic-freedom): region was listed by the donor cache in this same loop
                rehomed.define_region(region, size).expect("fresh"); // lint: allow(panic-freedom): the rehomed cache is freshly created; listed ids are unique
                let data = me.cache.read(region, 0, size).expect("whole region"); // lint: allow(panic-freedom): size came from region_size on the same region above
                let _ = rehomed.write(region, 0, data, 0, 0);
            }
            me.cache = rehomed;
            // The rehomed replica carries the sponsor's (or default)
            // telemetry handles; re-register under this node's label.
            me.cache.set_telemetry(&tel);
        }
        self.nodes[node as usize].online = true;
        self.observe(ObservedEvent::NodeOnline(node));
        // Extend the ring: a join-triggered roster episode.
        if let Ok(mut outcome) = initial_rostering(&self.topo, &self.cfg.timing.roster) {
            let now = self.sim.now();
            self.epoch += 1;
            outcome.epoch = self.epoch;
            outcome.failed_at = now;
            let cost = outcome.explore_time + outcome.commit_time;
            outcome.completed_at = now + cost;
            self.ring_up = false;
            self.sim
                .schedule_at(outcome.completed_at, Ev::RingRestored { epoch: self.epoch });
            self.pending_roster = Some((RosterReason::Join(NodeId(node)), outcome));
        }
    }

    pub(crate) fn run_diag_sweep(&mut self) {
        let Some(interval) = self.sweep_interval else {
            return;
        };
        let now = self.sim.now();
        // Scan: failed links/switches that are not on the current ring
        // (ring faults trigger rostering through loss of light).
        // `failed_components` reports dead switching elements first,
        // then dark fibers in enumeration order.
        for c in self.topo.failed_components() {
            let key = format!("{c:?}");
            if self.known_spare_faults.insert(key) {
                self.log(
                    Level::Warn,
                    "diag",
                    format!("background sweep found failed spare {c:?}"),
                );
                self.spare_faults.push((now, c));
            }
        }
        self.sim.schedule_in(interval, Ev::DiagSweep);
    }
}
