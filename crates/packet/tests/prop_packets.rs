//! Property tests: MicroPacket encode/decode is a bijection on valid
//! packets, and wire sizes always match the slide-5/6 formats.

// The roundtrip properties deliberately exercise the deprecated
// heap-serializing `to_vec` (it is the reference encoding the
// zero-copy paths must match).
#![allow(deprecated)]

use ampnet_packet::build::{self, AtomicOp, AtomicRequest, InterruptPayload};
use ampnet_packet::{Body, ControlWord, DmaCtrl, MicroPacket, PacketType, FIXED_PAYLOAD};
use proptest::prelude::*;

fn arb_fixed_type() -> impl Strategy<Value = PacketType> {
    prop::sample::select(vec![
        PacketType::Rostering,
        PacketType::Data,
        PacketType::Interrupt,
        PacketType::Diagnostic,
        PacketType::D64Atomic,
    ])
}

proptest! {
    #[test]
    fn fixed_roundtrip(
        t in arb_fixed_type(),
        src in any::<u8>(),
        dst in any::<u8>(),
        tag in any::<u8>(),
        payload in any::<[u8; FIXED_PAYLOAD]>(),
    ) {
        let p = MicroPacket::new(ControlWord::new(t, src, dst, tag), Body::Fixed(payload)).unwrap();
        let bytes = p.to_vec();
        prop_assert_eq!(bytes.len(), 12);
        prop_assert_eq!(MicroPacket::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn variable_roundtrip(
        src in any::<u8>(),
        dst in any::<u8>(),
        stream in any::<u8>(),
        channel in 0u8..16,
        region in any::<u8>(),
        offset in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 1..=64),
    ) {
        let ctrl = DmaCtrl { channel, region, offset, len: 0 };
        let p = build::dma(src, dst, stream, ctrl, &payload).unwrap();
        let bytes = p.to_vec();
        prop_assert_eq!(bytes.len() % 4, 0);
        let back = MicroPacket::decode(&bytes).unwrap();
        prop_assert_eq!(back.dma_payload().unwrap(), &payload[..]);
        prop_assert_eq!(back.ctrl, p.ctrl);
        // Wire size: SOF + control + 2 DMA + ceil(len/4) payload + EOF.
        let expect_words = 3 + payload.len().div_ceil(4);
        prop_assert_eq!(p.wire_bytes(), (expect_words + 2) * 4);
    }

    #[test]
    fn efficiency_bounds(
        payload in proptest::collection::vec(any::<u8>(), 1..=64),
    ) {
        let ctrl = DmaCtrl { channel: 0, region: 0, offset: 0, len: 0 };
        let p = build::dma(0, 1, 0, ctrl, &payload).unwrap();
        let e = p.efficiency();
        prop_assert!(e > 0.0 && e < 1.0);
        // Full DMA packets are the most efficient micropacket.
        if payload.len() == 64 {
            prop_assert!(e > 0.75);
        }
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = MicroPacket::decode(&bytes);
    }

    #[test]
    fn decode_garbage_with_valid_sizes(words in 3usize..20, fill in any::<u8>()) {
        let bytes = vec![fill; words * 4];
        let _ = MicroPacket::decode(&bytes);
    }

    #[test]
    fn atomic_payload_bijection(
        op_idx in 0usize..5,
        region in any::<u8>(),
        word_index in 0u32..(1 << 24),
        operand in any::<u32>(),
        src in any::<u8>(),
        home in any::<u8>(),
    ) {
        let ops = [AtomicOp::TestAndSet, AtomicOp::Clear, AtomicOp::FetchAdd, AtomicOp::Swap, AtomicOp::Read];
        let req = AtomicRequest { op: ops[op_idx], region, offset: word_index * 8, operand };
        let p = build::atomic_request(src, home, req);
        prop_assert_eq!(build::parse_atomic_request(&p), Some(req));
        // And the encoded packet survives the wire.
        let back = MicroPacket::decode(&p.to_vec()).unwrap();
        prop_assert_eq!(build::parse_atomic_request(&back), Some(req));
    }

    #[test]
    fn interrupt_payload_bijection(
        vector in any::<u16>(),
        cookie in any::<u16>(),
        arg in any::<u32>(),
    ) {
        let ip = InterruptPayload { vector, cookie, arg };
        let p = build::interrupt(1, 2, ip);
        prop_assert_eq!(build::parse_interrupt(&p), Some(ip));
    }

    #[test]
    fn atomic_response_bijection(prev in any::<u64>(), op_idx in 0usize..5) {
        let ops = [AtomicOp::TestAndSet, AtomicOp::Clear, AtomicOp::FetchAdd, AtomicOp::Swap, AtomicOp::Read];
        let p = build::atomic_response(3, 4, ops[op_idx], prev);
        prop_assert_eq!(build::parse_atomic_response(&p), Some((ops[op_idx], prev)));
    }
}
