//! MicroPacket bodies and wire encoding (slides 5–6).
//!
//! Fixed format (3 words between SOF and EOF):
//!
//! ```text
//! Word 0: Control 0..3
//! Word 1: Payload 0..3
//! Word 2: Payload 4..7
//! ```
//!
//! Variable format (DMA; 4..=19 words):
//!
//! ```text
//! Word 0:      Control 0..3
//! Word 1..2:   DMA Ctrl 0..7
//! Word 3..18:  Payload 0..63  (only ceil(len/4) words transmitted)
//! ```
//!
//! On the wire each packet is framed by one SOF and one EOF ordered
//! set (one transmission word each), so a fixed MicroPacket occupies
//! 5 words = 20 line bytes and a full DMA MicroPacket 21 words = 84
//! line bytes.

use crate::control::{ControlError, ControlWord};
use crate::types::LengthClass;

/// Bytes in one transmission word.
pub const WORD: usize = 4;
/// Payload bytes in a fixed MicroPacket.
pub const FIXED_PAYLOAD: usize = 8;
/// Maximum payload bytes in a variable (DMA) MicroPacket.
pub const MAX_DMA_PAYLOAD: usize = 64;
/// Wire overhead per packet: SOF + control word + EOF.
pub const FRAME_OVERHEAD: usize = 3 * WORD;

/// DMA control words 1–2 (DMA Ctrl 0..7): which channel, which network
/// cache region, where in it, and how many payload bytes are valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DmaCtrl {
    /// One of the sixteen multiplexed DMA channels (0..=15, slide 11).
    pub channel: u8,
    /// Target network cache region id.
    pub region: u8,
    /// Byte offset within the region.
    pub offset: u32,
    /// Valid payload bytes (1..=64).
    pub len: u16,
}

impl DmaCtrl {
    /// Serialize to the 8 DMA control bytes.
    pub fn to_bytes(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = self.channel;
        b[1] = self.region;
        b[2..6].copy_from_slice(&self.offset.to_be_bytes());
        b[6..8].copy_from_slice(&self.len.to_be_bytes());
        b
    }

    /// Parse from the 8 DMA control bytes.
    pub fn from_bytes(b: [u8; 8]) -> DmaCtrl {
        DmaCtrl {
            channel: b[0],
            region: b[1],
            offset: u32::from_be_bytes(b[2..6].try_into().expect("4 bytes")), // lint: allow(panic-freedom): header length was checked at function entry
            len: u16::from_be_bytes(b[6..8].try_into().expect("2 bytes")), // lint: allow(panic-freedom): header length was checked at function entry
        }
    }
}

/// A MicroPacket body: fixed 8-byte payload or DMA block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Body {
    /// Fixed-format payload (Payload 0..7).
    Fixed([u8; FIXED_PAYLOAD]),
    /// Variable-format DMA block.
    Variable {
        /// DMA control words.
        ctrl: DmaCtrl,
        /// Payload bytes; `ctrl.len` of these are valid.
        data: [u8; MAX_DMA_PAYLOAD],
    },
}

/// A complete MicroPacket.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MicroPacket {
    /// Word 0.
    pub ctrl: ControlWord,
    /// Words 1..N.
    pub body: Body,
}

/// Errors from packet encode/decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Control word did not parse.
    Control(ControlError),
    /// The body class does not match the packet type (e.g. a DMA type
    /// with a fixed body).
    ClassMismatch,
    /// DMA payload length out of 1..=64.
    BadDmaLen(u16),
    /// Truncated or oversized byte buffer.
    BadSize(usize),
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Control(e) => write!(f, "control word: {e}"),
            PacketError::ClassMismatch => write!(f, "body does not match packet type class"),
            PacketError::BadDmaLen(l) => write!(f, "DMA payload length {l} out of 1..=64"),
            PacketError::BadSize(n) => write!(f, "buffer of {n} bytes is not a MicroPacket"),
        }
    }
}

impl std::error::Error for PacketError {}

impl From<ControlError> for PacketError {
    fn from(e: ControlError) -> Self {
        PacketError::Control(e)
    }
}

impl MicroPacket {
    /// Construct, validating that the body class matches the type.
    pub fn new(ctrl: ControlWord, body: Body) -> Result<MicroPacket, PacketError> {
        let class_ok = matches!(
            (&body, ctrl.ptype.length_class()),
            (Body::Fixed(_), LengthClass::Fixed) | (Body::Variable { .. }, LengthClass::Variable)
        );
        if !class_ok {
            return Err(PacketError::ClassMismatch);
        }
        if let Body::Variable { ctrl: dma, .. } = &body {
            if dma.len == 0 || dma.len as usize > MAX_DMA_PAYLOAD {
                return Err(PacketError::BadDmaLen(dma.len));
            }
        }
        Ok(MicroPacket { ctrl, body })
    }

    /// Fixed-payload accessor; panics if called on a DMA packet (the
    /// type system of callers guarantees the class).
    pub fn fixed_payload(&self) -> &[u8; FIXED_PAYLOAD] {
        match &self.body {
            Body::Fixed(p) => p,
            Body::Variable { .. } => panic!("fixed_payload on a variable packet"), // lint: allow(panic-freedom): documented contract: callers match Fixed before calling fixed_payload
        }
    }

    /// DMA payload slice (only the valid bytes).
    pub fn dma_payload(&self) -> Option<&[u8]> {
        match &self.body {
            Body::Variable { ctrl, data } => Some(&data[..ctrl.len as usize]),
            Body::Fixed(_) => None,
        }
    }

    /// Number of payload-bearing transmission words (excluding SOF/EOF
    /// but including the control word): 3 for fixed, 3 + ceil(len/4)
    /// for variable.
    pub fn words(&self) -> usize {
        match &self.body {
            Body::Fixed(_) => 3,
            Body::Variable { ctrl, .. } => 3 + (ctrl.len as usize).div_ceil(WORD),
        }
    }

    /// Total line bytes including SOF and EOF ordered sets — the
    /// number that determines serialization time.
    pub fn wire_bytes(&self) -> usize {
        (self.words() + 2) * WORD
    }

    /// Application payload bytes carried.
    pub fn payload_bytes(&self) -> usize {
        match &self.body {
            Body::Fixed(_) => FIXED_PAYLOAD,
            Body::Variable { ctrl, .. } => ctrl.len as usize,
        }
    }

    /// Wire efficiency: payload bytes over total line bytes.
    pub fn efficiency(&self) -> f64 {
        self.payload_bytes() as f64 / self.wire_bytes() as f64
    }

    /// Serialize the packet words (without SOF/EOF framing, which the
    /// PHY adds) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ctrl.to_bytes());
        match &self.body {
            Body::Fixed(p) => out.extend_from_slice(p),
            Body::Variable { ctrl, data } => {
                out.extend_from_slice(&ctrl.to_bytes());
                let words = (ctrl.len as usize).div_ceil(WORD);
                out.extend_from_slice(&data[..words * WORD]);
            }
        }
    }

    /// Serialize the packet into transmission words without touching
    /// the heap. Writes [`MicroPacket::words`] words into the front of
    /// `out` and returns how many; the slice is typically a
    /// [`FrameArena`](crate::FrameArena) slot.
    pub fn encode_into(&self, out: &mut [u32]) -> Result<usize, PacketError> {
        let n = self.words();
        if out.len() < n {
            return Err(PacketError::BadSize(out.len() * WORD));
        }
        out[0] = u32::from_be_bytes(self.ctrl.to_bytes());
        match &self.body {
            Body::Fixed(p) => {
                out[1] = u32::from_be_bytes(p[..4].try_into().expect("4 bytes")); // lint: allow(panic-freedom): payload length was validated by the packet class at build time
                out[2] = u32::from_be_bytes(p[4..].try_into().expect("4 bytes")); // lint: allow(panic-freedom): payload length was validated by the packet class at build time
            }
            Body::Variable { ctrl, data } => {
                let d = ctrl.to_bytes();
                out[1] = u32::from_be_bytes(d[..4].try_into().expect("4 bytes")); // lint: allow(panic-freedom): payload length was validated by the packet class at build time
                out[2] = u32::from_be_bytes(d[4..].try_into().expect("4 bytes")); // lint: allow(panic-freedom): payload length was validated by the packet class at build time
                for (w, chunk) in out[3..n].iter_mut().zip(data.chunks_exact(WORD)) {
                    *w = u32::from_be_bytes(chunk.try_into().expect("4 bytes")); // lint: allow(panic-freedom): payload length was validated by the packet class at build time
                }
            }
        }
        Ok(n)
    }

    /// Serialized words as a fresh vector.
    ///
    /// Heap-allocates per call; the data-plane serializes into a
    /// [`FrameArena`](crate::FrameArena) slot via
    /// [`MicroPacket::encode_into`] instead. Kept for tests and debug
    /// tooling.
    #[deprecated(
        since = "0.2.0",
        note = "hot paths use encode_into / FrameArena; to_vec is for tests and debug only"
    )]
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.words() * WORD);
        self.encode(&mut v);
        v
    }

    /// Parse serialized transmission words into a borrowing
    /// [`FrameView`](crate::FrameView) — no payload copy.
    pub fn decode_ref(words: &[u32]) -> Result<crate::FrameView<'_>, PacketError> {
        crate::FrameView::parse(words)
    }

    /// Parse packet words produced by [`MicroPacket::encode`].
    pub fn decode(bytes: &[u8]) -> Result<MicroPacket, PacketError> {
        if bytes.len() < 3 * WORD || !bytes.len().is_multiple_of(WORD) {
            return Err(PacketError::BadSize(bytes.len()));
        }
        let ctrl = ControlWord::from_bytes(bytes[..4].try_into().expect("4 bytes"))?; // lint: allow(panic-freedom): the length guard at entry ensures at least 4 header bytes
        match ctrl.ptype.length_class() {
            LengthClass::Fixed => {
                if bytes.len() != 3 * WORD {
                    return Err(PacketError::BadSize(bytes.len()));
                }
                let mut p = [0u8; FIXED_PAYLOAD];
                p.copy_from_slice(&bytes[4..12]);
                MicroPacket::new(ctrl, Body::Fixed(p))
            }
            LengthClass::Variable => {
                if bytes.len() < 4 * WORD {
                    return Err(PacketError::BadSize(bytes.len()));
                }
                let dma = DmaCtrl::from_bytes(bytes[4..12].try_into().expect("8 bytes")); // lint: allow(panic-freedom): the Dma class implies a 12-byte header, checked above
                if dma.len == 0 || dma.len as usize > MAX_DMA_PAYLOAD {
                    return Err(PacketError::BadDmaLen(dma.len));
                }
                let words = (dma.len as usize).div_ceil(WORD);
                if bytes.len() != (3 + words) * WORD {
                    return Err(PacketError::BadSize(bytes.len()));
                }
                let mut data = [0u8; MAX_DMA_PAYLOAD];
                data[..words * WORD].copy_from_slice(&bytes[12..]);
                MicroPacket::new(ctrl, Body::Variable { ctrl: dma, data })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::BROADCAST;
    use crate::types::PacketType;

    fn fixed(ptype: PacketType) -> MicroPacket {
        MicroPacket::new(
            ControlWord::new(ptype, 1, 2, 7),
            Body::Fixed([1, 2, 3, 4, 5, 6, 7, 8]),
        )
        .unwrap()
    }

    #[test]
    fn fixed_sizes_match_slide_5() {
        let p = fixed(PacketType::Data);
        assert_eq!(p.words(), 3, "3 words: control + 2 payload");
        assert_eq!(p.wire_bytes(), 20, "SOF + 3 words + EOF");
        assert_eq!(p.payload_bytes(), 8);
        assert!((p.efficiency() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn variable_sizes_match_slide_6() {
        let dma = DmaCtrl {
            channel: 3,
            region: 1,
            offset: 4096,
            len: 64,
        };
        let p = MicroPacket::new(
            ControlWord::new(PacketType::Dma, 1, BROADCAST, 0),
            Body::Variable {
                ctrl: dma,
                data: [0xAB; 64],
            },
        )
        .unwrap();
        assert_eq!(p.words(), 19, "control + 2 DMA ctrl + 16 payload");
        assert_eq!(p.wire_bytes(), 84);
        assert_eq!(p.payload_bytes(), 64);
        assert!(p.efficiency() > 0.75);
    }

    #[test]
    fn variable_partial_payload_rounds_to_words() {
        for (len, words) in [(1u16, 4usize), (4, 4), (5, 5), (63, 19), (64, 19)] {
            let p = MicroPacket::new(
                ControlWord::new(PacketType::Dma, 1, 2, 0),
                Body::Variable {
                    ctrl: DmaCtrl {
                        channel: 0,
                        region: 0,
                        offset: 0,
                        len,
                    },
                    data: [0; 64],
                },
            )
            .unwrap();
            assert_eq!(p.words(), words, "len {len}");
        }
    }

    #[test]
    fn class_mismatch_rejected() {
        let r = MicroPacket::new(
            ControlWord::new(PacketType::Dma, 1, 2, 0),
            Body::Fixed([0; 8]),
        );
        assert_eq!(r.unwrap_err(), PacketError::ClassMismatch);
        let r = MicroPacket::new(
            ControlWord::new(PacketType::Data, 1, 2, 0),
            Body::Variable {
                ctrl: DmaCtrl {
                    channel: 0,
                    region: 0,
                    offset: 0,
                    len: 8,
                },
                data: [0; 64],
            },
        );
        assert_eq!(r.unwrap_err(), PacketError::ClassMismatch);
    }

    #[test]
    fn dma_len_bounds() {
        for len in [0u16, 65, 1000] {
            let r = MicroPacket::new(
                ControlWord::new(PacketType::Dma, 1, 2, 0),
                Body::Variable {
                    ctrl: DmaCtrl {
                        channel: 0,
                        region: 0,
                        offset: 0,
                        len,
                    },
                    data: [0; 64],
                },
            );
            assert_eq!(r.unwrap_err(), PacketError::BadDmaLen(len));
        }
    }

    #[test]
    #[allow(deprecated)]
    fn encode_decode_roundtrip_fixed() {
        for t in [
            PacketType::Rostering,
            PacketType::Data,
            PacketType::Interrupt,
            PacketType::Diagnostic,
            PacketType::D64Atomic,
        ] {
            let p = fixed(t);
            let bytes = p.to_vec();
            assert_eq!(bytes.len(), 12);
            assert_eq!(MicroPacket::decode(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn encode_into_matches_encode() {
        let mut data = [0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        let packets = [1u16, 7, 32, 64]
            .map(|len| {
                MicroPacket::new(
                    ControlWord::new(PacketType::Dma, 9, 4, 2),
                    Body::Variable {
                        ctrl: DmaCtrl {
                            channel: 15,
                            region: 200,
                            offset: 0xDEAD_BEEF,
                            len,
                        },
                        data,
                    },
                )
                .unwrap()
            })
            .into_iter()
            .chain([fixed(PacketType::Data)]);
        for p in packets {
            let mut words = [0u32; 19];
            let n = p.encode_into(&mut words).unwrap();
            assert_eq!(n, p.words());
            let mut bytes = Vec::new();
            p.encode(&mut bytes);
            let flat: Vec<u8> = words[..n]
                .iter()
                .flat_map(|w| w.to_be_bytes())
                .collect();
            assert_eq!(flat, bytes, "word encoding matches byte encoding");
            // And the borrowing decode path sees the same wire content
            // (payload beyond ctrl.len is not transmitted).
            let back = MicroPacket::decode_ref(&words[..n]).unwrap().to_packet();
            assert_eq!(back.ctrl, p.ctrl);
            assert_eq!(back.dma_payload(), p.dma_payload());
        }
        // Undersized buffers are rejected, not truncated.
        let p = fixed(PacketType::Data);
        assert_eq!(
            p.encode_into(&mut [0u32; 2]),
            Err(PacketError::BadSize(8))
        );
    }

    #[test]
    #[allow(deprecated)]
    fn encode_decode_roundtrip_variable() {
        let mut data = [0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        for len in [1u16, 7, 32, 64] {
            let p = MicroPacket::new(
                ControlWord::new(PacketType::Dma, 9, 4, 2),
                Body::Variable {
                    ctrl: DmaCtrl {
                        channel: 15,
                        region: 200,
                        offset: 0xDEAD_BEEF,
                        len,
                    },
                    data,
                },
            )
            .unwrap();
            let bytes = p.to_vec();
            let back = MicroPacket::decode(&bytes).unwrap();
            assert_eq!(back.ctrl, p.ctrl);
            assert_eq!(back.dma_payload().unwrap(), &data[..len as usize]);
        }
    }

    #[test]
    fn decode_rejects_bad_sizes() {
        assert!(matches!(
            MicroPacket::decode(&[]),
            Err(PacketError::BadSize(0))
        ));
        assert!(matches!(
            MicroPacket::decode(&[0; 13]),
            Err(PacketError::BadSize(13))
        ));
        // Fixed packet with trailing words (encode once into a
        // pre-sized buffer instead of the old to_vec + extend copy).
        let p = fixed(PacketType::Data);
        let mut bytes = Vec::with_capacity(p.words() * WORD + WORD);
        p.encode(&mut bytes);
        bytes.extend_from_slice(&[0; 4]);
        assert!(matches!(
            MicroPacket::decode(&bytes),
            Err(PacketError::BadSize(16))
        ));
    }

    #[test]
    fn dma_ctrl_roundtrip() {
        let d = DmaCtrl {
            channel: 7,
            region: 42,
            offset: 123_456,
            len: 33,
        };
        assert_eq!(DmaCtrl::from_bytes(d.to_bytes()), d);
    }

    #[test]
    fn fixed_payload_accessor() {
        let p = fixed(PacketType::Data);
        assert_eq!(p.fixed_payload(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(p.dma_payload().is_none());
    }
}
