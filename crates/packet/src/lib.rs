//! # ampnet-packet — MicroPacket technology
//!
//! AmpNet multiplexes all traffic — bulk data, cache updates, remote
//! interrupts, atomics, and the self-healing control plane — into small
//! *MicroPackets* (paper slides 3–6). Two wire formats exist: a fixed
//! 3-word cell and a variable DMA cell of up to 19 words, both framed
//! by SOF/EOF ordered sets from [`ampnet-phy`](ampnet_phy).
//!
//! * [`PacketType`] — the slide-4 type table (Rostering, Data, DMA,
//!   Interrupt, Diagnostic, D64 Atomic).
//! * [`ControlWord`] — Word 0 layout: type, flags, source,
//!   destination, tag.
//! * [`MicroPacket`]/[`Body`]/[`DmaCtrl`] — bodies and byte-exact
//!   encode/decode.
//! * [`build`] — typed constructors and payload views per type
//!   (atomic requests/responses, interrupts, diagnostics).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
mod control;
mod frame;
mod types;
mod wire;

pub use control::{ControlError, ControlWord, Flags, BROADCAST};
pub use frame::{ArenaStats, FrameArena, FrameRef, FrameView, MAX_FRAME_WORDS};
pub use types::{LengthClass, PacketType};
pub use wire::{
    Body, DmaCtrl, MicroPacket, PacketError, FIXED_PAYLOAD, FRAME_OVERHEAD, MAX_DMA_PAYLOAD, WORD,
};
