//! MicroPacket types — the slide-4 table.
//!
//! | MicroPacket | Length   | Mandatory |
//! |-------------|----------|-----------|
//! | Rostering   | Fixed    | Yes       |
//! | Data        | Fixed    | Yes       |
//! | DMA         | Variable | Yes       |
//! | Interrupt   | Fixed    | Yes       |
//! | Diagnostic  | Fixed    | Yes       |
//! | D64 Atomic  | Fixed    | No        |

use std::fmt;

/// The six MicroPacket types defined by AmpNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum PacketType {
    /// Ring maintenance: heartbeats, flooding exploration, roster
    /// distribution. Drives the self-healing algorithm of slide 16.
    Rostering = 0x1,
    /// Small data transfer: 8-byte payload, the workhorse for network
    /// cache word writes and short messages.
    Data = 0x2,
    /// Block transfer on one of the sixteen multiplexed DMA channels;
    /// the only variable-length type (up to 64 payload bytes).
    Dma = 0x3,
    /// Remote interrupt delivery (vector + argument).
    Interrupt = 0x4,
    /// Built-in diagnostics: loopback probes, region CRC audit,
    /// configuration certification after rostering.
    Diagnostic = 0x5,
    /// Optional 64-bit remote atomic operation — the hardware substrate
    /// for AmpNet network semaphores (slide 10).
    D64Atomic = 0x6,
}

/// Whether a packet type uses the fixed (3-word) or variable
/// (up to 19-word) wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthClass {
    /// 3 payload-bearing words: control + 2 payload words.
    Fixed,
    /// Control + 2 DMA control words + 1..=16 payload words.
    Variable,
}

impl PacketType {
    /// Every type, in slide-4 order.
    pub const ALL: [PacketType; 6] = [
        PacketType::Rostering,
        PacketType::Data,
        PacketType::Dma,
        PacketType::Interrupt,
        PacketType::Diagnostic,
        PacketType::D64Atomic,
    ];

    /// Fixed or variable wire format (slide 4, "Length").
    pub fn length_class(self) -> LengthClass {
        match self {
            PacketType::Dma => LengthClass::Variable,
            _ => LengthClass::Fixed,
        }
    }

    /// Whether every conforming implementation must support the type
    /// (slide 4, "Mandatory"). D64 Atomic is the only optional one.
    pub fn is_mandatory(self) -> bool {
        !matches!(self, PacketType::D64Atomic)
    }

    /// Parse the 4-bit type code from a control word.
    pub fn from_code(code: u8) -> Option<PacketType> {
        match code {
            0x1 => Some(PacketType::Rostering),
            0x2 => Some(PacketType::Data),
            0x3 => Some(PacketType::Dma),
            0x4 => Some(PacketType::Interrupt),
            0x5 => Some(PacketType::Diagnostic),
            0x6 => Some(PacketType::D64Atomic),
            _ => None,
        }
    }

    /// The 4-bit wire code.
    pub fn code(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for PacketType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketType::Rostering => "Rostering",
            PacketType::Data => "Data",
            PacketType::Dma => "DMA",
            PacketType::Interrupt => "Interrupt",
            PacketType::Diagnostic => "Diagnostic",
            PacketType::D64Atomic => "D64 Atomic",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slide_4_table() {
        use LengthClass::*;
        let expect = [
            (PacketType::Rostering, Fixed, true),
            (PacketType::Data, Fixed, true),
            (PacketType::Dma, Variable, true),
            (PacketType::Interrupt, Fixed, true),
            (PacketType::Diagnostic, Fixed, true),
            (PacketType::D64Atomic, Fixed, false),
        ];
        for (t, class, mandatory) in expect {
            assert_eq!(t.length_class(), class, "{t}");
            assert_eq!(t.is_mandatory(), mandatory, "{t}");
        }
    }

    #[test]
    fn code_roundtrip() {
        for t in PacketType::ALL {
            assert_eq!(PacketType::from_code(t.code()), Some(t));
        }
        assert_eq!(PacketType::from_code(0x0), None);
        assert_eq!(PacketType::from_code(0x7), None);
        assert_eq!(PacketType::from_code(0xF), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(PacketType::D64Atomic.to_string(), "D64 Atomic");
        assert_eq!(PacketType::Dma.to_string(), "DMA");
    }
}
