//! Pooled zero-copy wire buffers for the node data-plane.
//!
//! The simulators used to pass whole [`MicroPacket`] values through
//! every hop of the ring, re-serializing them with the now-deprecated
//! `MicroPacket::to_vec` each time. The [`FrameArena`] replaces that
//! with the register-insertion pipeline the paper describes: a packet
//! is serialized **once** at its source into a pooled frame slot
//! ([`MicroPacket::encode_into`]), transit nodes forward the 8-byte
//! [`FrameRef`] handle, and only the delivery plane materializes a
//! packet again — via the borrowing [`FrameView`] /
//! [`MicroPacket::decode_ref`] path.
//!
//! Slots are recycled through a free list, so a steady-state ring
//! forwards packets with zero heap allocations. Frames carry a
//! generation counter: using a released [`FrameRef`] panics
//! deterministically instead of aliasing another packet's bytes.
//!
//! ```
//! use ampnet_packet::{Body, ControlWord, FrameArena, MicroPacket, PacketType};
//!
//! let mut arena = FrameArena::new();
//! let ctrl = ControlWord::new(PacketType::Data, 2, 5, 7);
//! let pkt = MicroPacket::new(ctrl, Body::Fixed([0xAB; 8])).unwrap();
//!
//! // Source: serialize once into a pooled slot.
//! let frame = arena.insert(&pkt);
//!
//! // Transit/delivery: borrow the words, never copy the payload.
//! let view = arena.view(frame);
//! assert_eq!(view.ctrl.dst, 5);
//! assert_eq!(view.to_packet(), pkt);
//!
//! // Strip: the slot returns to the free list for the next insert.
//! arena.release(frame);
//! assert_eq!(arena.live(), 0);
//! ```

use crate::control::ControlWord;
use crate::types::LengthClass;
use crate::wire::{DmaCtrl, MicroPacket, PacketError, FIXED_PAYLOAD, WORD};

/// Largest MicroPacket in transmission words (control + 2 DMA control
/// + 16 payload words): the size of one arena slot.
pub const MAX_FRAME_WORDS: usize = 19;

/// Handle to one serialized packet inside a [`FrameArena`].
///
/// Copyable and 8 bytes wide — this is what transit buffers and the
/// event queue carry instead of ~100-byte packet values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRef {
    slot: u32,
    gen: u32,
}

/// A borrowed, decoded view over serialized packet words.
///
/// Parsing validates the header exactly like [`MicroPacket::decode`]
/// but borrows the payload instead of copying it into fresh arrays.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    /// Word 0, decoded.
    pub ctrl: ControlWord,
    /// DMA control words for variable frames.
    pub dma: Option<DmaCtrl>,
    /// Payload words (2 for fixed frames, `ceil(len/4)` for DMA).
    payload: &'a [u32],
}

impl<'a> FrameView<'a> {
    /// Parse serialized words (as produced by
    /// [`MicroPacket::encode_into`]) without copying the payload.
    pub fn parse(words: &'a [u32]) -> Result<FrameView<'a>, PacketError> {
        if words.len() < 3 {
            return Err(PacketError::BadSize(words.len() * WORD));
        }
        let ctrl = ControlWord::from_bytes(words[0].to_be_bytes())?;
        match ctrl.ptype.length_class() {
            LengthClass::Fixed => {
                if words.len() != 3 {
                    return Err(PacketError::BadSize(words.len() * WORD));
                }
                Ok(FrameView {
                    ctrl,
                    dma: None,
                    payload: &words[1..3],
                })
            }
            LengthClass::Variable => {
                if words.len() < 4 {
                    return Err(PacketError::BadSize(words.len() * WORD));
                }
                let mut dma_bytes = [0u8; 8];
                dma_bytes[..4].copy_from_slice(&words[1].to_be_bytes());
                dma_bytes[4..].copy_from_slice(&words[2].to_be_bytes());
                let dma = DmaCtrl::from_bytes(dma_bytes);
                if dma.len == 0 || dma.len as usize > crate::wire::MAX_DMA_PAYLOAD {
                    return Err(PacketError::BadDmaLen(dma.len));
                }
                let n = (dma.len as usize).div_ceil(WORD);
                if words.len() != 3 + n {
                    return Err(PacketError::BadSize(words.len() * WORD));
                }
                Ok(FrameView {
                    ctrl,
                    dma: Some(dma),
                    payload: &words[3..],
                })
            }
        }
    }

    /// Payload-bearing transmission words (control word included).
    pub fn words(&self) -> usize {
        1 + self.dma.is_some() as usize * 2 + self.payload.len()
    }

    /// Total line bytes including SOF/EOF framing.
    pub fn wire_bytes(&self) -> usize {
        (self.words() + 2) * WORD
    }

    /// Application payload bytes carried.
    pub fn payload_bytes(&self) -> usize {
        match self.dma {
            Some(d) => d.len as usize,
            None => FIXED_PAYLOAD,
        }
    }

    /// One payload byte without materializing the packet.
    pub fn payload_byte(&self, i: usize) -> u8 {
        self.payload[i / WORD].to_be_bytes()[i % WORD]
    }

    /// Materialize a [`MicroPacket`] — the delivery-plane boundary,
    /// where a real NIU would DMA the frame into host memory.
    pub fn to_packet(&self) -> MicroPacket {
        match self.dma {
            None => {
                let mut p = [0u8; FIXED_PAYLOAD];
                p[..4].copy_from_slice(&self.payload[0].to_be_bytes());
                p[4..].copy_from_slice(&self.payload[1].to_be_bytes());
                MicroPacket::new(self.ctrl, crate::wire::Body::Fixed(p)).expect("parsed frame") // lint: allow(panic-freedom): the words were written by encode_into, so re-parsing is total
            }
            Some(dma) => {
                let mut data = [0u8; crate::wire::MAX_DMA_PAYLOAD];
                for (w, chunk) in self.payload.iter().zip(data.chunks_exact_mut(WORD)) {
                    chunk.copy_from_slice(&w.to_be_bytes());
                }
                MicroPacket::new(
                    self.ctrl,
                    crate::wire::Body::Variable { ctrl: dma, data },
                )
                .expect("parsed frame") // lint: allow(panic-freedom): the frame was produced by encode_into, so rebuilding the packet is total
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    words: [u32; MAX_FRAME_WORDS],
    len: u8,
    gen: u32,
    live: bool,
}

/// Allocation/reuse counters of a [`FrameArena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Frames handed out in total.
    pub acquired: u64,
    /// Frames that reused a recycled slot (no heap growth).
    pub reused: u64,
    /// Frames released back to the pool.
    pub released: u64,
    /// Most frames simultaneously live.
    pub peak_live: usize,
}

/// A pool of fixed-size wire-frame slots with O(1) acquire/release.
#[derive(Debug, Clone)]
pub struct FrameArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    /// Hard slot cap; `None` grows on demand.
    max_slots: Option<usize>,
    stats: ArenaStats,
}

impl Default for FrameArena {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameArena {
    /// An arena that grows on demand.
    pub fn new() -> Self {
        FrameArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            max_slots: None,
            stats: ArenaStats::default(),
        }
    }

    /// An arena pre-sized to `n` slots (still grows past it).
    pub fn with_capacity(n: usize) -> Self {
        let mut a = Self::new();
        a.slots.reserve(n);
        a.free.reserve(n);
        a
    }

    /// An arena hard-capped at `n` slots: [`FrameArena::try_insert`]
    /// returns `None` once every slot is live (exhaustion).
    pub fn bounded(n: usize) -> Self {
        let mut a = Self::with_capacity(n);
        a.max_slots = Some(n);
        a
    }

    /// Frames currently live.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Slots ever created (live + recycled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    fn acquire(&mut self) -> Option<u32> {
        if let Some(i) = self.free.pop() {
            self.stats.reused += 1;
            return Some(i);
        }
        if let Some(cap) = self.max_slots {
            if self.slots.len() >= cap {
                return None;
            }
        }
        self.slots.push(Slot {
            words: [0; MAX_FRAME_WORDS],
            len: 0,
            gen: 0,
            live: false,
        });
        Some(self.slots.len() as u32 - 1)
    }

    fn commit(&mut self, i: u32, len: usize) -> FrameRef {
        let slot = &mut self.slots[i as usize];
        slot.len = len as u8;
        slot.live = true;
        self.live += 1;
        self.stats.acquired += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        FrameRef { slot: i, gen: slot.gen }
    }

    /// Serialize `pkt` into a pooled slot. `None` only for a
    /// [`FrameArena::bounded`] arena with every slot live.
    pub fn try_insert(&mut self, pkt: &MicroPacket) -> Option<FrameRef> {
        let i = self.acquire()?;
        let len = pkt
            .encode_into(&mut self.slots[i as usize].words)
            .expect("slot fits the largest MicroPacket"); // lint: allow(panic-freedom): slots are sized to MAX_PACKET_WIRE by construction
        Some(self.commit(i, len))
    }

    /// Serialize `pkt` into a pooled slot; panics on exhaustion.
    pub fn insert(&mut self, pkt: &MicroPacket) -> FrameRef {
        self.try_insert(pkt).expect("frame arena exhausted") // lint: allow(panic-freedom): arena exhaustion is a sizing bug caught at boot, not a runtime state; fail loud
    }

    /// Adopt already-serialized packet bytes — for ingesting frames
    /// off a real deserializer, and for the legacy serialize-per-hop
    /// cost model the before/after bench replays.
    pub fn insert_bytes(&mut self, bytes: &[u8]) -> Result<FrameRef, PacketError> {
        if bytes.is_empty()
            || !bytes.len().is_multiple_of(WORD)
            || bytes.len() / WORD > MAX_FRAME_WORDS
        {
            return Err(PacketError::BadSize(bytes.len()));
        }
        let n = bytes.len() / WORD;
        let i = self.acquire().ok_or(PacketError::BadSize(bytes.len()))?;
        for (w, chunk) in self.slots[i as usize].words[..n]
            .iter_mut()
            .zip(bytes.chunks_exact(WORD))
        {
            *w = u32::from_be_bytes(chunk.try_into().expect("4 bytes")); // lint: allow(panic-freedom): chunks(4) over a length-checked slice yields exact 4-byte windows
        }
        // Validate before committing so a bad frame never goes live.
        let fr = self.commit(i, n);
        match FrameView::parse(self.words(fr)) {
            Ok(_) => Ok(fr),
            Err(e) => {
                self.release(fr);
                Err(e)
            }
        }
    }

    fn slot(&self, f: FrameRef) -> &Slot {
        let s = &self.slots[f.slot as usize];
        assert!(
            s.live && s.gen == f.gen,
            "stale FrameRef: frame was released (slot {}, gen {} vs {})",
            f.slot,
            f.gen,
            s.gen
        );
        s
    }

    /// The serialized words of a live frame.
    pub fn words(&self, f: FrameRef) -> &[u32] {
        let s = self.slot(f);
        &s.words[..s.len as usize]
    }

    /// Borrowing decoded view of a live frame.
    pub fn view(&self, f: FrameRef) -> FrameView<'_> {
        FrameView::parse(self.words(f)).expect("live frames hold valid packets") // lint: allow(panic-freedom): live generation-checked frames were encoded by this arena; parse is total on them
    }

    /// Materialize the packet (delivery boundary; frame stays live).
    pub fn decode(&self, f: FrameRef) -> MicroPacket {
        self.view(f).to_packet()
    }

    /// Return a frame's slot to the pool. Panics on double release.
    pub fn release(&mut self, f: FrameRef) {
        {
            let s = &self.slots[f.slot as usize];
            assert!(
                s.live && s.gen == f.gen,
                "double release of FrameRef (slot {})",
                f.slot
            );
        }
        let s = &mut self.slots[f.slot as usize];
        s.live = false;
        s.gen = s.gen.wrapping_add(1);
        self.live -= 1;
        self.stats.released += 1;
        self.free.push(f.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use crate::control::BROADCAST;

    fn fixed(tag: u8) -> MicroPacket {
        build::data(1, 2, tag, [tag; 8])
    }

    fn dma(len: u16) -> MicroPacket {
        let payload: Vec<u8> = (0..len as usize).map(|i| i as u8).collect();
        build::dma(
            3,
            BROADCAST,
            0,
            DmaCtrl { channel: 2, region: 7, offset: 640, len: 0 },
            &payload,
        )
        .unwrap()
    }

    #[test]
    fn insert_view_decode_roundtrip() {
        let mut a = FrameArena::new();
        for pkt in [fixed(9), dma(1), dma(13), dma(64)] {
            let f = a.insert(&pkt);
            let v = a.view(f);
            assert_eq!(v.ctrl, pkt.ctrl);
            assert_eq!(v.words(), pkt.words());
            assert_eq!(v.wire_bytes(), pkt.wire_bytes());
            assert_eq!(v.payload_bytes(), pkt.payload_bytes());
            assert_eq!(a.decode(f), pkt, "materialized packet bit-identical");
            a.release(f);
        }
    }

    #[test]
    fn payload_byte_matches_packet() {
        let mut a = FrameArena::new();
        let pkt = dma(29);
        let f = a.insert(&pkt);
        let v = a.view(f);
        for (i, &b) in pkt.dma_payload().unwrap().iter().enumerate() {
            assert_eq!(v.payload_byte(i), b);
        }
        let fx = a.insert(&fixed(5));
        assert_eq!(a.view(fx).payload_byte(3), 5);
    }

    #[test]
    fn slots_are_reused_after_release() {
        let mut a = FrameArena::new();
        let f0 = a.insert(&fixed(0));
        a.release(f0);
        for tag in 1..100u8 {
            let f = a.insert(&fixed(tag));
            assert_eq!(a.view(f).ctrl.tag, tag);
            a.release(f);
        }
        assert_eq!(a.capacity(), 1, "steady-state traffic reuses one slot");
        assert_eq!(a.stats().reused, 99);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn bounded_arena_exhausts_and_recovers() {
        let mut a = FrameArena::bounded(2);
        let f0 = a.try_insert(&fixed(0)).unwrap();
        let _f1 = a.try_insert(&fixed(1)).unwrap();
        assert!(a.try_insert(&fixed(2)).is_none(), "exhausted at the cap");
        a.release(f0);
        assert!(a.try_insert(&fixed(3)).is_some(), "release frees a slot");
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "stale FrameRef")]
    fn use_after_release_panics() {
        let mut a = FrameArena::new();
        let f = a.insert(&fixed(0));
        a.release(f);
        a.insert(&fixed(1)); // recycles the slot under a new generation
        a.view(f);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut a = FrameArena::new();
        let f = a.insert(&fixed(0));
        a.release(f);
        a.release(f);
    }

    #[test]
    fn insert_bytes_matches_encode_into() {
        let mut a = FrameArena::new();
        for pkt in [fixed(1), dma(7), dma(64)] {
            #[allow(deprecated)]
            let bytes = pkt.to_vec();
            let via_bytes = a.insert_bytes(&bytes).unwrap();
            let direct = a.insert(&pkt);
            assert_eq!(a.words(via_bytes), a.words(direct));
        }
        assert!(a.insert_bytes(&[0; 3]).is_err(), "non-word-multiple");
        assert!(a.insert_bytes(&[0; 21 * 4]).is_err(), "oversized");
    }

    #[test]
    fn view_parse_rejects_garbage() {
        assert!(FrameView::parse(&[]).is_err());
        assert!(FrameView::parse(&[0xFFFF_FFFF, 0, 0]).is_err(), "bad control");
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let mut a = FrameArena::new();
        let fs: Vec<FrameRef> = (0..5).map(|i| a.insert(&fixed(i))).collect();
        for f in fs {
            a.release(f);
        }
        a.insert(&fixed(9));
        assert_eq!(a.stats().peak_live, 5);
        assert_eq!(a.live(), 1);
    }
}
