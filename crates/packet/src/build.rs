//! Typed constructors and payload views for each MicroPacket type.
//!
//! The raw 8-byte fixed payload is untyped on the wire; this module
//! defines how each packet type lays out those bytes, so higher layers
//! (network cache, rostering, DK) never touch raw offsets.

use crate::control::{ControlWord, Flags, BROADCAST};
use crate::types::PacketType;
use crate::wire::{Body, DmaCtrl, MicroPacket, FIXED_PAYLOAD, MAX_DMA_PAYLOAD};

/// D64 Atomic opcodes (Control 3 tag of a D64 packet).
///
/// These are the primitives AmpNet's network semaphores are built on
/// (slide 10): a test-and-set for locks, add for counting semaphores,
/// swap/read for state words. All operate on one 64-bit word of a
/// network cache region, executed at the word's home node, with the
/// *previous* value returned in a RESPONSE packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AtomicOp {
    /// Set the word to 1; return previous value.
    TestAndSet = 0x1,
    /// Set the word to 0; return previous value.
    Clear = 0x2,
    /// Add the sign-extended 32-bit operand; return previous value.
    FetchAdd = 0x3,
    /// Replace low 32 bits with the operand (zero-extended); return
    /// previous value.
    Swap = 0x4,
    /// Return current value without modifying.
    Read = 0x5,
}

impl AtomicOp {
    /// Parse from the tag byte.
    pub fn from_tag(tag: u8) -> Option<AtomicOp> {
        match tag {
            0x1 => Some(AtomicOp::TestAndSet),
            0x2 => Some(AtomicOp::Clear),
            0x3 => Some(AtomicOp::FetchAdd),
            0x4 => Some(AtomicOp::Swap),
            0x5 => Some(AtomicOp::Read),
            _ => None,
        }
    }
}

/// Decoded D64 Atomic request payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicRequest {
    /// Operation to perform.
    pub op: AtomicOp,
    /// Target network cache region.
    pub region: u8,
    /// Word-aligned byte offset within the region (must be 8-aligned).
    pub offset: u32,
    /// 32-bit operand (addend for FetchAdd, new value for Swap).
    pub operand: u32,
}

/// Decoded interrupt payload: a vector number and a 32-bit argument,
/// with a 16-bit cookie for request/response matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptPayload {
    /// Interrupt vector at the destination node.
    pub vector: u16,
    /// Correlation cookie.
    pub cookie: u16,
    /// Argument word.
    pub arg: u32,
}

/// Diagnostic sub-operations (Control 3 tag of a Diagnostic packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DiagOp {
    /// Echo request: destination must return the payload unchanged.
    Echo = 0x1,
    /// Region CRC audit request: payload names region + expected CRC.
    CrcAudit = 0x2,
    /// Certification sweep after rostering (slide 18): node reports
    /// its self-test verdict.
    Certify = 0x3,
}

impl DiagOp {
    /// Parse from the tag byte.
    pub fn from_tag(tag: u8) -> Option<DiagOp> {
        match tag {
            0x1 => Some(DiagOp::Echo),
            0x2 => Some(DiagOp::CrcAudit),
            0x3 => Some(DiagOp::Certify),
            _ => None,
        }
    }
}

/// Build a Data MicroPacket carrying 8 payload bytes on `stream`.
pub fn data(src: u8, dst: u8, stream: u8, payload: [u8; FIXED_PAYLOAD]) -> MicroPacket {
    MicroPacket::new(
        ControlWord::new(PacketType::Data, src, dst, stream),
        Body::Fixed(payload),
    )
    .expect("data packet is fixed-class") // lint: allow(panic-freedom): Data is a fixed-class type; new() never rejects a fixed body for it
}

/// Build a broadcast Data packet.
pub fn data_broadcast(src: u8, stream: u8, payload: [u8; FIXED_PAYLOAD]) -> MicroPacket {
    data(src, BROADCAST, stream, payload)
}

/// Build a DMA MicroPacket. `payload` must be 1..=64 bytes.
pub fn dma(
    src: u8,
    dst: u8,
    stream: u8,
    ctrl: DmaCtrl,
    payload: &[u8],
) -> Result<MicroPacket, crate::wire::PacketError> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_DMA_PAYLOAD,
        "dma payload {} out of range",
        payload.len()
    );
    let mut data = [0u8; MAX_DMA_PAYLOAD];
    data[..payload.len()].copy_from_slice(payload);
    let ctrl = DmaCtrl {
        len: payload.len() as u16,
        ..ctrl
    };
    MicroPacket::new(
        ControlWord::new(PacketType::Dma, src, dst, stream),
        Body::Variable { ctrl, data },
    )
}

/// Build a Rostering MicroPacket; `kind` goes in the tag, `payload`
/// carries the roster protocol message (defined by `ampnet-roster`).
pub fn rostering(src: u8, kind: u8, payload: [u8; FIXED_PAYLOAD]) -> MicroPacket {
    MicroPacket::new(
        ControlWord::new(PacketType::Rostering, src, BROADCAST, kind)
            .with_flags(Flags::URGENT),
        Body::Fixed(payload),
    )
    .expect("rostering packet is fixed-class") // lint: allow(panic-freedom): Rostering is a fixed-class type; new() never rejects a fixed body for it
}

/// Build an Interrupt MicroPacket.
pub fn interrupt(src: u8, dst: u8, p: InterruptPayload) -> MicroPacket {
    let mut payload = [0u8; FIXED_PAYLOAD];
    payload[..2].copy_from_slice(&p.vector.to_be_bytes());
    payload[2..4].copy_from_slice(&p.cookie.to_be_bytes());
    payload[4..8].copy_from_slice(&p.arg.to_be_bytes());
    MicroPacket::new(
        ControlWord::new(PacketType::Interrupt, src, dst, 0).with_flags(Flags::URGENT),
        Body::Fixed(payload),
    )
    .expect("interrupt packet is fixed-class") // lint: allow(panic-freedom): Interrupt is a fixed-class type; new() never rejects a fixed body for it
}

/// Parse an Interrupt payload.
pub fn parse_interrupt(p: &MicroPacket) -> Option<InterruptPayload> {
    if p.ctrl.ptype != PacketType::Interrupt {
        return None;
    }
    let b = p.fixed_payload();
    Some(InterruptPayload {
        vector: u16::from_be_bytes([b[0], b[1]]),
        cookie: u16::from_be_bytes([b[2], b[3]]),
        arg: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
    })
}

/// Build a D64 Atomic request.
pub fn atomic_request(src: u8, home: u8, req: AtomicRequest) -> MicroPacket {
    debug_assert_eq!(req.offset % 8, 0, "D64 offsets are word-aligned");
    let mut payload = [0u8; FIXED_PAYLOAD];
    payload[0] = req.region;
    // Offsets are stored as word indices so 24 bits cover 128 MB.
    let word_index = req.offset / 8;
    payload[1..4].copy_from_slice(&word_index.to_be_bytes()[1..4]);
    payload[4..8].copy_from_slice(&req.operand.to_be_bytes());
    MicroPacket::new(
        ControlWord::new(PacketType::D64Atomic, src, home, req.op as u8),
        Body::Fixed(payload),
    )
    .expect("atomic packet is fixed-class") // lint: allow(panic-freedom): Atomic is a fixed-class type; new() never rejects a fixed body for it
}

/// Parse a D64 Atomic request.
pub fn parse_atomic_request(p: &MicroPacket) -> Option<AtomicRequest> {
    if p.ctrl.ptype != PacketType::D64Atomic || p.ctrl.flags.contains(Flags::RESPONSE) {
        return None;
    }
    let op = AtomicOp::from_tag(p.ctrl.tag)?;
    let b = p.fixed_payload();
    let word_index = u32::from_be_bytes([0, b[1], b[2], b[3]]);
    Some(AtomicRequest {
        op,
        region: b[0],
        offset: word_index * 8,
        operand: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
    })
}

/// Build a D64 Atomic response carrying the previous 64-bit value.
pub fn atomic_response(src: u8, dst: u8, op: AtomicOp, previous: u64) -> MicroPacket {
    MicroPacket::new(
        ControlWord::new(PacketType::D64Atomic, src, dst, op as u8).with_flags(Flags::RESPONSE),
        Body::Fixed(previous.to_be_bytes()),
    )
    .expect("atomic response is fixed-class") // lint: allow(panic-freedom): AtomicResponse is a fixed-class type; new() never rejects a fixed body for it
}

/// Parse a D64 Atomic response into (op, previous value).
pub fn parse_atomic_response(p: &MicroPacket) -> Option<(AtomicOp, u64)> {
    if p.ctrl.ptype != PacketType::D64Atomic || !p.ctrl.flags.contains(Flags::RESPONSE) {
        return None;
    }
    let op = AtomicOp::from_tag(p.ctrl.tag)?;
    Some((op, u64::from_be_bytes(*p.fixed_payload())))
}

/// Build a Diagnostic MicroPacket.
pub fn diagnostic(src: u8, dst: u8, op: DiagOp, payload: [u8; FIXED_PAYLOAD]) -> MicroPacket {
    MicroPacket::new(
        ControlWord::new(PacketType::Diagnostic, src, dst, op as u8),
        Body::Fixed(payload),
    )
    .expect("diagnostic packet is fixed-class") // lint: allow(panic-freedom): Diagnostic is a fixed-class type; new() never rejects a fixed body for it
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_constructor() {
        let p = data(1, 2, 5, [9; 8]);
        assert_eq!(p.ctrl.ptype, PacketType::Data);
        assert_eq!(p.ctrl.tag, 5);
        assert_eq!(p.fixed_payload(), &[9; 8]);
        assert!(data_broadcast(1, 0, [0; 8]).ctrl.is_broadcast());
    }

    #[test]
    fn dma_constructor_sets_len() {
        let ctrl = DmaCtrl {
            channel: 2,
            region: 7,
            offset: 64,
            len: 0, // overwritten
        };
        let p = dma(1, 2, 0, ctrl, &[1, 2, 3]).unwrap();
        assert_eq!(p.dma_payload().unwrap(), &[1, 2, 3]);
        assert_eq!(p.words(), 4);
    }

    #[test]
    fn interrupt_roundtrip() {
        let ip = InterruptPayload {
            vector: 0x1234,
            cookie: 77,
            arg: 0xCAFE_F00D,
        };
        let p = interrupt(3, 4, ip);
        assert!(p.ctrl.flags.contains(Flags::URGENT));
        assert_eq!(parse_interrupt(&p), Some(ip));
        // Wrong type parses to None.
        assert_eq!(parse_interrupt(&data(1, 2, 0, [0; 8])), None);
    }

    #[test]
    fn atomic_request_roundtrip() {
        for op in [
            AtomicOp::TestAndSet,
            AtomicOp::Clear,
            AtomicOp::FetchAdd,
            AtomicOp::Swap,
            AtomicOp::Read,
        ] {
            let req = AtomicRequest {
                op,
                region: 9,
                offset: 8 * 12345,
                operand: 0xFFFF_FFFE,
            };
            let p = atomic_request(1, 6, req);
            assert_eq!(parse_atomic_request(&p), Some(req));
        }
    }

    #[test]
    fn atomic_offset_range_24_bit_words() {
        // Largest representable offset: (2^24 - 1) * 8 bytes = 128 MB - 8.
        let req = AtomicRequest {
            op: AtomicOp::Read,
            region: 0,
            offset: ((1 << 24) - 1) * 8,
            operand: 0,
        };
        let p = atomic_request(0, 1, req);
        assert_eq!(parse_atomic_request(&p).unwrap().offset, req.offset);
    }

    #[test]
    fn atomic_response_roundtrip() {
        let p = atomic_response(6, 1, AtomicOp::TestAndSet, u64::MAX - 3);
        assert_eq!(
            parse_atomic_response(&p),
            Some((AtomicOp::TestAndSet, u64::MAX - 3))
        );
        // A request does not parse as a response.
        let req = atomic_request(
            1,
            6,
            AtomicRequest {
                op: AtomicOp::Read,
                region: 0,
                offset: 0,
                operand: 0,
            },
        );
        assert_eq!(parse_atomic_response(&req), None);
        assert_eq!(parse_atomic_request(&p), None);
    }

    #[test]
    fn rostering_is_urgent_broadcast() {
        let p = rostering(4, 2, [1; 8]);
        assert!(p.ctrl.is_broadcast());
        assert!(p.ctrl.flags.contains(Flags::URGENT));
        assert_eq!(p.ctrl.tag, 2);
    }

    #[test]
    fn ops_parse_from_tags() {
        assert_eq!(AtomicOp::from_tag(0x3), Some(AtomicOp::FetchAdd));
        assert_eq!(AtomicOp::from_tag(0x9), None);
        assert_eq!(DiagOp::from_tag(0x2), Some(DiagOp::CrcAudit));
        assert_eq!(DiagOp::from_tag(0x0), None);
    }

    #[test]
    fn diagnostic_constructor() {
        let p = diagnostic(1, 2, DiagOp::Echo, [5; 8]);
        assert_eq!(p.ctrl.ptype, PacketType::Diagnostic);
        assert_eq!(DiagOp::from_tag(p.ctrl.tag), Some(DiagOp::Echo));
    }
}
