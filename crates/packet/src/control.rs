//! Word 0 — the MicroPacket control word (Control 0..Control 3).
//!
//! Layout (4 bytes, slide 5/6 "Word 0"):
//!
//! ```text
//! Control 0: [7:4] packet type code   [3:0] flags
//! Control 1: source node id
//! Control 2: destination node id (0xFF = broadcast)
//! Control 3: tag (stream id / atomic op / roster discriminator)
//! ```

use crate::types::PacketType;

/// Destination id meaning "all nodes on the segment".
pub const BROADCAST: u8 = 0xFF;

// A tiny local bitflags implementation: one dependency fewer, and the
// generated API is the subset we use (empty, contains, insert, bits).
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $($(#[$fmeta:meta])* const $flag:ident = $value:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name($ty);

        impl $name {
            $($(#[$fmeta])* pub const $flag: $name = $name($value);)*

            /// No flags set.
            pub const fn empty() -> Self { $name(0) }

            /// Raw bit pattern.
            pub const fn bits(self) -> $ty { self.0 }

            /// Reconstruct from raw bits, masking unknown bits away.
            pub const fn from_bits_truncate(bits: $ty) -> Self {
                $name(bits & ($($value |)* 0))
            }

            /// Whether every bit of `other` is set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// Set the bits of `other`.
            pub fn insert(&mut self, other: $name) { self.0 |= other.0; }

            /// Union.
            pub const fn union(self, other: $name) -> $name { $name(self.0 | other.0) }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
    };
}

bitflags_lite! {
    /// Control-word flag bits (Control 0 low nibble).
    pub struct Flags: u8 {
        /// Reply half of a request/response exchange (D64 Atomic
        /// responses, diagnostic echoes).
        const RESPONSE = 0b0001;
        /// Expedited handling: bypasses stream queues (Interrupt and
        /// Rostering packets are implicitly urgent).
        const URGENT = 0b0010;
        /// Packet inserted while the ring was in a rostering epoch.
        const ROSTER_EPOCH = 0b0100;
        /// Reserved (must be zero today).
        const RESERVED = 0b1000;
    }
}

/// The decoded control word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlWord {
    /// Packet type (Control 0 high nibble).
    pub ptype: PacketType,
    /// Flag bits (Control 0 low nibble).
    pub flags: Flags,
    /// Source node id (Control 1).
    pub src: u8,
    /// Destination node id (Control 2); [`BROADCAST`] for all.
    pub dst: u8,
    /// Type-specific tag (Control 3): stream id for Data/DMA, atomic
    /// opcode for D64, message discriminator for Rostering/Diagnostic.
    pub tag: u8,
}

/// Error decoding a control word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlError {
    /// Unknown packet type code.
    BadType(u8),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::BadType(c) => write!(f, "unknown packet type code {c:#03x}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl ControlWord {
    /// Build a control word.
    pub fn new(ptype: PacketType, src: u8, dst: u8, tag: u8) -> Self {
        ControlWord {
            ptype,
            flags: Flags::empty(),
            src,
            dst,
            tag,
        }
    }

    /// Builder-style flag setter.
    pub fn with_flags(mut self, flags: Flags) -> Self {
        self.flags = flags;
        self
    }

    /// Is this packet addressed to every node?
    pub fn is_broadcast(&self) -> bool {
        self.dst == BROADCAST
    }

    /// Serialize to the 4 wire bytes.
    pub fn to_bytes(&self) -> [u8; 4] {
        [
            (self.ptype.code() << 4) | self.flags.bits(),
            self.src,
            self.dst,
            self.tag,
        ]
    }

    /// Parse from the 4 wire bytes.
    pub fn from_bytes(b: [u8; 4]) -> Result<ControlWord, ControlError> {
        let code = b[0] >> 4;
        let ptype = PacketType::from_code(code).ok_or(ControlError::BadType(code))?;
        Ok(ControlWord {
            ptype,
            flags: Flags::from_bits_truncate(b[0] & 0x0F),
            src: b[1],
            dst: b[2],
            tag: b[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        for t in PacketType::ALL {
            let cw = ControlWord::new(t, 3, 9, 0x5A).with_flags(Flags::URGENT | Flags::RESPONSE);
            let back = ControlWord::from_bytes(cw.to_bytes()).unwrap();
            assert_eq!(cw, back);
        }
    }

    #[test]
    fn bad_type_rejected() {
        // Type code 0 is reserved.
        assert_eq!(
            ControlWord::from_bytes([0x00, 1, 2, 3]),
            Err(ControlError::BadType(0))
        );
        assert_eq!(
            ControlWord::from_bytes([0xF0, 1, 2, 3]),
            Err(ControlError::BadType(0xF))
        );
    }

    #[test]
    fn broadcast_detection() {
        let cw = ControlWord::new(PacketType::Data, 1, BROADCAST, 0);
        assert!(cw.is_broadcast());
        let cw = ControlWord::new(PacketType::Data, 1, 5, 0);
        assert!(!cw.is_broadcast());
    }

    #[test]
    fn flags_ops() {
        let mut f = Flags::empty();
        assert!(!f.contains(Flags::URGENT));
        f.insert(Flags::URGENT);
        assert!(f.contains(Flags::URGENT));
        assert!(!f.contains(Flags::RESPONSE));
        let u = f.union(Flags::RESPONSE);
        assert!(u.contains(Flags::URGENT) && u.contains(Flags::RESPONSE));
        assert_eq!(Flags::from_bits_truncate(0xFF).bits(), 0x0F);
    }

    #[test]
    fn wire_layout_matches_slide() {
        let cw = ControlWord::new(PacketType::Data, 0x11, 0x22, 0x33);
        let b = cw.to_bytes();
        assert_eq!(b[0] >> 4, 0x2, "Control 0 high nibble is the type");
        assert_eq!(b[1], 0x11, "Control 1 is source");
        assert_eq!(b[2], 0x22, "Control 2 is destination");
        assert_eq!(b[3], 0x33, "Control 3 is the tag");
    }
}
