//! Exhaustive runs of the four shipped protocol models.
//!
//! Each test explores the model's full bounded state space (asserting
//! `complete`, i.e. the budget was not hit) and prints the
//! visited-state count so CI logs double as a state-space size record.

use ampnet_check::models::{arena, roster, semaphore, seqlock};

/// Generous budget: every model must finish well under it.
const BUDGET: usize = 2_000_000;

#[test]
fn seqlock_two_counter_no_torn_reads() {
    let report = seqlock::check_seqlock(BUDGET);
    println!("{}", report.summary("seqlock"));
    if let Some(cx) = &report.violation {
        panic!("unexpected violation:\n{}", cx.render());
    }
    assert!(report.passed(), "state space must be fully explored");
    assert!(report.visited > 50, "model is not trivially small");
    // No terminal assertion: the reader polls forever by design, so
    // every state has an enabled ReaderStep.
    assert_eq!(report.terminals, 0, "free-running reader never deadlocks");
}

#[test]
fn semaphore_mutual_exclusion_under_loss() {
    let report = semaphore::check_semaphore(BUDGET);
    println!("{}", report.summary("semaphore"));
    if let Some(cx) = &report.violation {
        panic!("unexpected violation:\n{}", cx.render());
    }
    assert!(report.passed(), "state space must be fully explored");
    assert!(report.visited > 200, "loss + backoff interleavings explored");
    assert!(report.terminals > 0, "all rounds completable");
}

#[test]
fn roster_single_master_and_recovery() {
    let report = roster::check_roster(BUDGET);
    println!("{}", report.summary("roster"));
    if let Some(cx) = &report.violation {
        panic!("unexpected violation:\n{}", cx.render());
    }
    assert!(report.passed(), "state space must be fully explored");
    assert!(report.visited > 100, "token interleavings explored");
    assert!(report.terminals > 0, "every scenario recovers");
}

#[test]
fn roster_recovers_on_torus() {
    let report = roster::check_roster_torus(BUDGET);
    println!("{}", report.summary("roster-torus"));
    if let Some(cx) = &report.violation {
        panic!("unexpected violation:\n{}", cx.render());
    }
    assert!(report.passed(), "state space must be fully explored");
    assert!(report.visited > 100, "token interleavings explored");
    assert!(report.terminals > 0, "every scenario recovers");
}

#[test]
fn roster_recovers_on_clos() {
    let report = roster::check_roster_clos(BUDGET);
    println!("{}", report.summary("roster-clos"));
    if let Some(cx) = &report.violation {
        panic!("unexpected violation:\n{}", cx.render());
    }
    assert!(report.passed(), "state space must be fully explored");
    assert!(report.visited > 100, "token interleavings explored");
    assert!(report.terminals > 0, "every scenario recovers");
}

#[test]
fn arena_ownership_protocol_is_sound() {
    let report = arena::check_arena(BUDGET);
    println!("{}", report.summary("arena"));
    if let Some(cx) = &report.violation {
        panic!("unexpected violation:\n{}", cx.render());
    }
    assert!(report.passed(), "state space must be fully explored");
    assert!(report.visited > 50, "hop interleavings explored");
    assert!(report.terminals > 0, "all frames retire");
}
