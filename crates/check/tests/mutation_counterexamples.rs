//! Mutation self-tests: deliberately broken protocol variants must
//! each produce a counterexample with a printed shortest trace.
//!
//! These are the checker's own regression suite — if a mutant stops
//! failing, either the mutant stopped modeling the bug or the checker
//! went blind, and both are defects.

use ampnet_check::models::{arena, planner, semaphore, seqlock};
use ampnet_check::Counterexample;

const BUDGET: usize = 2_000_000;

/// Every mutant counterexample must be a genuine rendered trace.
fn assert_trace(cx: &Counterexample, min_steps: usize) {
    let rendered = cx.render();
    println!("{rendered}");
    assert!(
        cx.steps.len() > min_steps,
        "trace has {} steps, expected more than {min_steps}",
        cx.steps.len()
    );
    assert!(rendered.contains("=== counterexample:"));
    assert!(rendered.contains("violation:"));
}

#[test]
fn single_counter_seqlock_tears() {
    let report = seqlock::check_seqlock_single_counter(BUDGET);
    println!("{}", report.summary("seqlock/single-counter"));
    let cx = report.violation.expect("mutant must be caught");
    assert_eq!(cx.property, "no-torn-read");
    assert_trace(&cx, 3);
}

#[test]
fn split_test_then_set_breaks_mutual_exclusion() {
    let report = semaphore::check_semaphore_split_tas(BUDGET);
    println!("{}", report.summary("semaphore/split-tas"));
    let cx = report.violation.expect("mutant must be caught");
    assert_eq!(cx.property, "mutual-exclusion");
    assert_trace(&cx, 5);
}

#[test]
fn deliver_also_forwards_panics_on_stale_ref() {
    let report = arena::check_arena_deliver_forwards(BUDGET);
    println!("{}", report.summary("arena/deliver-forwards"));
    let cx = report.violation.expect("mutant must be caught");
    assert!(
        cx.reason.contains("stale FrameRef"),
        "the real arena's generation check must fire: {}",
        cx.reason
    );
    assert_trace(&cx, 2);
}

#[test]
fn crossing_clamp_dropped_delivers_late() {
    let report = planner::check_planner_ignores_crossings(BUDGET);
    println!("{}", report.summary("planner/ignore-crossings"));
    let cx = report.violation.expect("mutant must be caught");
    assert_eq!(cx.property, "crossing-delivered-at-maturity");
    assert_trace(&cx, 2);
}

#[test]
fn missing_generation_bump_aliases_silently() {
    let report = arena::check_arena_no_gen_bump(BUDGET);
    println!("{}", report.summary("arena/no-gen-bump"));
    let cx = report.violation.expect("mutant must be caught");
    assert_eq!(
        cx.property, "frames-intact",
        "no panic fires — only the checker sees the aliasing"
    );
    assert_trace(&cx, 3);
}
