//! The five shipped protocol models (and their mutation variants).

pub mod arena;
pub mod planner;
pub mod roster;
pub mod semaphore;
pub mod seqlock;
