//! Model 1: the slide-9 two-counter message seqlock.
//!
//! A writer updates a replicated record with
//! [`ampnet_cache::seqlock_msg::write_record`] — bump counter₁, write
//! the data, write counter₂ — and the broadcast MicroPackets apply at
//! a replica **in order** (per-source FIFO is the fabric guarantee).
//! A reader runs the slide-9 protocol *one micro-step at a time*
//! against the replica, using the real [`RecordLayout`] offsets, while
//! update packets keep landing between its steps. That stepping is the
//! whole point: on hardware the four reads of the protocol interleave
//! arbitrarily with DMA application, and this model enumerates every
//! such interleaving.
//!
//! The safety property: a read that completes `Ok` never exposes a
//! torn record (bytes from two generations, or bytes disagreeing with
//! the generation counters).
//!
//! The [`SeqlockVariant::SingleCounter`] mutant drops counter₂ —
//! writers publish counter₁ and the data only, readers validate
//! against counter₁ twice. Because counter₁ travels *ahead of* the
//! data, it is stable while the data packets land, and the checker
//! finds a torn `Ok` read in a handful of steps.

use crate::model::{FnvHasher, Model, Property, PropertyKind};
use crate::{CheckOptions, CheckReport};
use ampnet_cache::seqlock_msg::{write_record, RecordLayout};
use ampnet_cache::NetworkCache;
use ampnet_packet::MicroPacket;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// Record region id.
const REGION: u8 = 1;
/// Record payload length: spans a 64-byte DMA cell boundary, so one
/// `write_record` emits two data packets — tearing is only observable
/// when the data itself is multi-packet.
const DATA_LEN: u32 = 96;

/// Which write protocol the model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqlockVariant {
    /// The real protocol: counter₁, data, counter₂.
    TwoCounter,
    /// Mutant: no counter₂; the reader checks counter₁ twice.
    SingleCounter,
}

/// Reader protocol position (the four micro-steps of `try_read`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReaderPhase {
    /// About to read counter₁.
    Start,
    /// Read counter₁; about to read counter₂.
    GotC1(u64),
    /// Counters matched; about to read the data.
    GotC2(u64),
    /// Data in hand; about to re-read counter₁.
    GotData(u64, Vec<u8>),
}

/// One global state: writer replica, reader replica, in-flight update
/// packets, and the reader's position in the protocol.
#[derive(Debug, Clone)]
pub struct SeqState {
    writer: NetworkCache,
    replica: NetworkCache,
    pending: VecDeque<MicroPacket>,
    writes_done: u8,
    reader: ReaderPhase,
    /// Last completed read: (generation, torn?).
    last_read: Option<(u64, bool)>,
}

/// One atomic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqAction {
    /// Writer publishes the next generation.
    Write,
    /// The replica applies the oldest in-flight update packet.
    Apply,
    /// The reader advances one protocol micro-step.
    ReaderStep,
}

/// The seqlock model.
#[derive(Debug, Clone)]
pub struct SeqlockModel {
    /// Protocol variant under check.
    pub variant: SeqlockVariant,
    /// Generations the writer publishes.
    pub writes: u8,
}

impl SeqlockModel {
    /// The record layout shared by writer and reader.
    pub fn layout() -> RecordLayout {
        RecordLayout {
            region: REGION,
            offset: 0,
            data_len: DATA_LEN,
        }
    }

    fn fresh_cache(node: u8) -> NetworkCache {
        let mut c = NetworkCache::new(node);
        c.define_region(REGION, 256).expect("region fits");
        c
    }

    /// Offset the reader uses for its second counter probe.
    fn c2_probe_offset(&self) -> u32 {
        match self.variant {
            SeqlockVariant::TwoCounter => Self::layout().counter2_offset(),
            SeqlockVariant::SingleCounter => Self::layout().offset,
        }
    }

    fn publish(&self, writer: &mut NetworkCache) -> Vec<MicroPacket> {
        let layout = Self::layout();
        let generation = writer.read_u64(REGION, layout.offset).expect("region") + 1;
        let data = vec![generation as u8; DATA_LEN as usize];
        match self.variant {
            SeqlockVariant::TwoCounter => {
                write_record(writer, layout, &data, 0, 0).expect("write fits")
            }
            SeqlockVariant::SingleCounter => {
                // The mutant: counter₁ and the data, no trailing
                // counter — the two-counter discipline is the thing
                // under test, so the broken variant bypasses
                // `write_record`.
                let mut pkts = writer
                    .write(REGION, layout.offset, &generation.to_be_bytes(), 0, 0)
                    .expect("write fits");
                pkts.extend(
                    writer
                        .write(REGION, layout.data_offset(), &data, 0, 0)
                        .expect("write fits"),
                );
                pkts
            }
        }
    }
}

impl Model for SeqlockModel {
    type State = SeqState;
    type Action = SeqAction;

    fn initial_states(&self) -> Vec<SeqState> {
        vec![SeqState {
            writer: Self::fresh_cache(0),
            replica: Self::fresh_cache(9),
            pending: VecDeque::new(),
            writes_done: 0,
            reader: ReaderPhase::Start,
            last_read: None,
        }]
    }

    fn actions(&self, s: &SeqState, out: &mut Vec<SeqAction>) {
        if s.writes_done < self.writes {
            out.push(SeqAction::Write);
        }
        if !s.pending.is_empty() {
            out.push(SeqAction::Apply);
        }
        out.push(SeqAction::ReaderStep);
    }

    fn next_state(&self, s: &SeqState, a: &SeqAction) -> SeqState {
        let mut n = s.clone();
        let layout = Self::layout();
        match a {
            SeqAction::Write => {
                let pkts = self.publish(&mut n.writer);
                n.pending.extend(pkts);
                n.writes_done += 1;
            }
            SeqAction::Apply => {
                let pkt = n.pending.pop_front().expect("enabled only when pending");
                n.replica.apply_packet(&pkt).expect("valid update");
            }
            SeqAction::ReaderStep => {
                n.reader = match &s.reader {
                    ReaderPhase::Start => {
                        ReaderPhase::GotC1(n.replica.read_u64(REGION, layout.offset).expect("c1"))
                    }
                    ReaderPhase::GotC1(c1) => {
                        let c2 = n
                            .replica
                            .read_u64(REGION, self.c2_probe_offset())
                            .expect("c2");
                        if c2 != *c1 {
                            ReaderPhase::Start // busy: retry
                        } else {
                            ReaderPhase::GotC2(*c1)
                        }
                    }
                    ReaderPhase::GotC2(c1) => ReaderPhase::GotData(
                        *c1,
                        n.replica
                            .read(REGION, layout.data_offset(), DATA_LEN)
                            .expect("data")
                            .to_vec(),
                    ),
                    ReaderPhase::GotData(c1, data) => {
                        let again = n.replica.read_u64(REGION, layout.offset).expect("c1 again");
                        if again != *c1 {
                            ReaderPhase::Start // busy: retry
                        } else {
                            let torn = data.iter().any(|&b| b != *c1 as u8);
                            n.last_read = Some((*c1, torn));
                            ReaderPhase::Start
                        }
                    }
                };
            }
        }
        n
    }

    fn fingerprint(&self, s: &SeqState) -> u64 {
        let layout = Self::layout();
        let mut h = FnvHasher::new();
        h.write(s.replica.read(REGION, 0, layout.footprint()).expect("record"));
        h.write_u8(s.writes_done);
        // Per-source FIFO: the in-flight queue is a suffix of the
        // deterministic packet stream, so its length pins its content.
        h.write_usize(s.pending.len());
        s.reader.hash(&mut h);
        s.last_read.hash(&mut h);
        h.finish()
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            Property {
                name: "no-torn-read",
                kind: PropertyKind::Always,
                check: |_m, s| s.last_read.is_none_or(|(_, torn)| !torn),
            },
            Property {
                name: "final-generation-readable",
                kind: PropertyKind::Eventually,
                check: |m, s| s.last_read == Some((m.writes as u64, false)),
            },
        ]
    }

    fn format_action(&self, a: &SeqAction) -> String {
        match a {
            SeqAction::Write => "write-record".into(),
            SeqAction::Apply => "apply-update".into(),
            SeqAction::ReaderStep => "reader-step".into(),
        }
    }

    fn format_state(&self, s: &SeqState) -> String {
        let phase = match &s.reader {
            ReaderPhase::Start => "start".into(),
            ReaderPhase::GotC1(c) => format!("c1={c}"),
            ReaderPhase::GotC2(c) => format!("c1=c2={c}"),
            ReaderPhase::GotData(c, d) => {
                format!("c1={c} data=[{:x}..{:x}]", d[0], d[d.len() - 1])
            }
        };
        format!(
            "gen={} in-flight={} reader:{} last={:?}",
            s.writes_done,
            s.pending.len(),
            phase,
            s.last_read
        )
    }
}

/// Check the healthy two-counter protocol exhaustively.
pub fn check_seqlock(max_states: usize) -> CheckReport {
    crate::check(
        &SeqlockModel {
            variant: SeqlockVariant::TwoCounter,
            writes: 2,
        },
        CheckOptions { max_states },
    )
}

/// Check the single-counter mutant (must yield a counterexample).
pub fn check_seqlock_single_counter(max_states: usize) -> CheckReport {
    crate::check(
        &SeqlockModel {
            variant: SeqlockVariant::SingleCounter,
            writes: 2,
        },
        CheckOptions { max_states },
    )
}
