//! Exhaustive check of the adaptive slice-planner decision
//! ([`ampnet_core::plan_boundary`] via [`ampnet_core::SlicePlanner`]).
//!
//! The multi-segment engine only synchronizes shards at slice
//! boundaries: route-stream inboxes are drained there, and an
//! in-flight crossing queued at boundary `b` matures at exactly
//! `b + latency`. The adaptive planner (PR 6) grows slices through
//! quiet phases, skips dead air between events and still must never
//! plan a boundary *past* a pending crossing's maturity — otherwise
//! the far shard would receive the datagram late and the parallel
//! modes would diverge from the serial reference.
//!
//! This model drives the **real planner** — the same
//! [`SlicePlanner::boundary`] / [`SlicePlanner::note_exchange`] calls
//! `MultiSegment::run_until` makes — over a two-shard abstraction of
//! the engine: each shard owns at most one pending local event
//! (seeded by the adversary at a choice of offsets, optionally
//! emitting a bridge crossing when it fires), crossings mature
//! `latency` after the boundary that drained them, and a delivered
//! crossing wakes the destination shard with a follow-up event. The
//! adversary interleaves seeding freely with engine advances, so the
//! explored graph covers every phasing of traffic against slice
//! growth, dead-air jumps and crossing clamps up to the horizon.
//!
//! Checked properties:
//!
//! * `crossing-delivered-at-maturity` (safety) — no crossing is ever
//!   delivered at a boundary later than its `deliver_at`.
//! * `boundary-makes-progress` (safety) — every planned boundary
//!   strictly advances and never overshoots the deadline.
//! * `no-shard-starves` (terminal) — the run only ends at the deadline
//!   with every in-horizon event fired and every in-horizon crossing
//!   delivered; no shard's work is silently skipped by a grown slice.
//! * `quiescent-shard-woken-by-crossing` (reachability) — a shard with
//!   an empty queue receives a crossing and resumes; pins that
//!   quiescent-shard skipping never sleeps through a wake-up.
//! * `dead-air-skip-exercised` (reachability) — at least one boundary
//!   jumps past `now + slice` straight to the earliest event, so the
//!   explored space genuinely contains the skip path.
//!
//! * `fused-slice-exercised` (reachability, adaptive only) — at least
//!   one boundary is planned while the planner is fusing (two or more
//!   consecutive quiet exchanges), so the widened-window path is
//!   genuinely explored.
//! * `fusion-clamped-by-crossing` (reachability, adaptive only) — a
//!   fused plan happens while a crossing is in flight, so the fused
//!   window is proven to interact with (and, by the safety property,
//!   respect) the maturity clamp.
//!
//! Exchange/barrier elision in the engine corresponds to boundaries
//! here at which nothing drains and nothing matures: the safety
//! property (`crossing-delivered-at-maturity`) plus the terminal
//! property (`no-shard-starves`) together prove that skipping those
//! boundaries' synchronization neither reorders, delays nor loses a
//! delivery.
//!
//! The [`PlannerVariant::IgnoreCrossings`] mutant plans with
//! `earliest_crossing = None` — the exact bug of forgetting the
//! crossing clamp — and the checker finds the late-delivery trace.
//! The [`PlannerVariant::FuseThroughCrossings`] mutant keeps the clamp
//! on ordinary plans but drops it exactly when the planner is fusing —
//! the bug of letting a fused quiet window sail past a maturing
//! crossing — and the checker finds that trace too.

use crate::model::{Model, Property, PropertyKind};
use crate::{check, CheckOptions, CheckReport};
use ampnet_core::{Lookahead, SlicePlanner};
use ampnet_sim::{Fnv64, SimDuration, SimTime};

/// Which planner wiring the model drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerVariant {
    /// The real decision: crossings clamp the boundary.
    Exact,
    /// Mutant: plans with `earliest_crossing = None`, so a grown slice
    /// or dead-air jump can overshoot a maturing crossing.
    IgnoreCrossings,
    /// Mutant: honors the crossing clamp on ordinary plans but drops
    /// it while fusing, so a fused quiet window overshoots a maturing
    /// crossing.
    FuseThroughCrossings,
}

/// Event-seeding offsets the adversary may pick (ticks after `now`).
/// One inside the base slice, one beyond it (forces dead-air jumps).
const OFFSETS: [u64; 2] = [1, 5];

/// The two-shard planner world.
#[derive(Debug)]
pub struct PlannerModel {
    /// Simulated-time horizon (ticks); the run always ends here.
    pub deadline: u64,
    /// Base slice length (ticks).
    pub base: u64,
    /// Bridge latency (ticks): a crossing drained at boundary `b`
    /// matures at `b + latency`.
    pub latency: u64,
    /// Work tokens per shard: each token is one adversary-seeded event.
    pub tokens: u8,
    /// Exact planner or the clamp-dropping mutant.
    pub variant: PlannerVariant,
    /// Slice policy under check.
    pub policy: Lookahead,
}

impl PlannerModel {
    /// The standard small world: 16-tick horizon, 2-tick base slice,
    /// 7-tick bridge, two events per shard. The bridge is long enough
    /// that two quiet boundaries (base, then doubled) fit inside a
    /// crossing's flight window, so slice fusion can arm while a
    /// crossing is in flight and the fused-window/maturity-clamp
    /// interaction is explored.
    pub fn small(variant: PlannerVariant, policy: Lookahead) -> Self {
        PlannerModel {
            deadline: 16,
            base: 2,
            latency: 7,
            tokens: 2,
            variant,
            policy,
        }
    }
}

/// One pending local event on a shard: fire time and whether firing
/// emits a bridge crossing (a route-stream datagram drained at the
/// next boundary).
type PendingEvent = (u64, bool);

/// One explored state of the planner world.
#[derive(Debug, Clone)]
pub struct PlannerState {
    /// The real planner (base, grown slice, policy).
    planner: SlicePlanner,
    /// Current boundary time.
    now: u64,
    /// Per-shard pending event (at most one; `None` = quiescent).
    next_event: [Option<PendingEvent>; 2],
    /// Unseeded work tokens per shard.
    tokens: [u8; 2],
    /// In-flight crossings, sorted: `(deliver_at, destination shard)`.
    crossings: Vec<(u64, usize)>,
    /// A crossing was delivered at a boundary past its maturity.
    late_delivery: bool,
    /// A planned boundary failed to advance or overshot the deadline.
    stalled: bool,
    /// A crossing arrived at a shard whose queue was empty.
    woke_quiescent: bool,
    /// Some boundary jumped past `now + slice` (dead-air skip).
    dead_air_jumped: bool,
    /// Some boundary was planned while the planner was fusing.
    fused_planned: bool,
    /// Some boundary was planned while fusing with a crossing in
    /// flight (the fused window met the maturity clamp).
    fused_with_crossing: bool,
}

/// One atomic transition.
#[derive(Debug, Clone)]
pub enum PlannerAction {
    /// The adversary schedules a shard's next event `offset` ticks out;
    /// `cross` makes it emit a bridge crossing when it fires.
    Seed {
        /// Shard being seeded.
        shard: usize,
        /// Ticks after `now` the event fires.
        offset: u64,
        /// Whether firing emits a crossing to the other shard.
        cross: bool,
    },
    /// The engine plans the next boundary with the real planner and
    /// advances to it: fires due events, drains their crossings,
    /// delivers matured crossings, notes traffic for slice growth.
    Advance,
}

impl Model for PlannerModel {
    type State = PlannerState;
    type Action = PlannerAction;

    fn initial_states(&self) -> Vec<PlannerState> {
        vec![PlannerState {
            planner: SlicePlanner::new(SimDuration(self.base), self.policy),
            now: 0,
            next_event: [None, None],
            tokens: [self.tokens, self.tokens],
            crossings: Vec::new(),
            late_delivery: false,
            stalled: false,
            woke_quiescent: false,
            dead_air_jumped: false,
            fused_planned: false,
            fused_with_crossing: false,
        }]
    }

    fn actions(&self, s: &PlannerState, out: &mut Vec<PlannerAction>) {
        if s.now >= self.deadline {
            return; // terminal: the run is over
        }
        for shard in 0..2 {
            if s.tokens[shard] > 0 && s.next_event[shard].is_none() {
                for offset in OFFSETS {
                    for cross in [false, true] {
                        out.push(PlannerAction::Seed {
                            shard,
                            offset,
                            cross,
                        });
                    }
                }
            }
        }
        out.push(PlannerAction::Advance);
    }

    fn next_state(&self, s: &PlannerState, action: &PlannerAction) -> PlannerState {
        let mut s = s.clone();
        match *action {
            PlannerAction::Seed {
                shard,
                offset,
                cross,
            } => {
                s.tokens[shard] -= 1;
                s.next_event[shard] = Some((s.now + offset, cross));
            }
            PlannerAction::Advance => {
                let earliest_event = s
                    .next_event
                    .iter()
                    .flatten()
                    .map(|&(t, _)| SimTime(t))
                    .min();
                let exact_crossing = s
                    .crossings
                    .iter()
                    .map(|&(t, _)| t)
                    .filter(|&t| t > s.now)
                    .min()
                    .map(SimTime);
                let fusing = s.planner.fusing();
                if fusing {
                    s.fused_planned = true;
                    if exact_crossing.is_some() {
                        s.fused_with_crossing = true;
                    }
                }
                let earliest_crossing = match self.variant {
                    PlannerVariant::Exact => exact_crossing,
                    PlannerVariant::IgnoreCrossings => None,
                    PlannerVariant::FuseThroughCrossings => {
                        if fusing {
                            None
                        } else {
                            exact_crossing
                        }
                    }
                };
                let b = s
                    .planner
                    .boundary(
                        SimTime(s.now),
                        SimTime(self.deadline),
                        earliest_event,
                        earliest_crossing,
                    )
                    .0;
                if b <= s.now || b > self.deadline {
                    s.stalled = true;
                }
                if b > s.now.saturating_add(s.planner.current_slice().as_nanos()) {
                    s.dead_air_jumped = true;
                }
                s.now = b;

                // Fire due local events; route datagrams they emit are
                // drained by this boundary's exchange and cross with
                // `deliver_at = b + latency`.
                let mut moved = false;
                for shard in 0..2 {
                    if let Some((t, cross)) = s.next_event[shard] {
                        if t <= b {
                            s.next_event[shard] = None;
                            if cross {
                                s.crossings.push((b + self.latency, 1 - shard));
                                moved = true;
                            }
                        }
                    }
                }

                // Deliver matured crossings. The destination processes
                // the datagram one tick later; a quiescent destination
                // being woken here is the reachability property.
                let mut still_in_flight = Vec::new();
                for (t, dst) in s.crossings.drain(..) {
                    if t <= b {
                        moved = true;
                        if t < b {
                            s.late_delivery = true;
                        }
                        if s.next_event[dst].is_none() {
                            s.woke_quiescent = true;
                            s.next_event[dst] = Some((b + 1, false));
                        }
                    } else {
                        still_in_flight.push((t, dst));
                    }
                }
                still_in_flight.sort_unstable();
                s.crossings = still_in_flight;

                s.planner.note_exchange(moved);
            }
        }
        s
    }

    fn fingerprint(&self, s: &PlannerState) -> u64 {
        let mut h = Fnv64::new();
        h.fold_u64(s.now);
        h.fold_u64(s.planner.current_slice().as_nanos());
        for shard in 0..2 {
            match s.next_event[shard] {
                None => {
                    h.fold_u64(u64::MAX);
                }
                Some((t, cross)) => {
                    h.fold_u64(t);
                    h.fold_u64(cross as u64);
                }
            }
            h.fold_u64(s.tokens[shard] as u64);
        }
        h.fold_u64(s.crossings.len() as u64);
        for &(t, dst) in &s.crossings {
            h.fold_u64(t);
            h.fold_u64(dst as u64);
        }
        h.fold_u64(
            (s.late_delivery as u64)
                | (s.stalled as u64) << 1
                | (s.woke_quiescent as u64) << 2
                | (s.dead_air_jumped as u64) << 3
                | (s.fused_planned as u64) << 4
                | (s.fused_with_crossing as u64) << 5,
        );
        h.finish()
    }

    fn properties(&self) -> Vec<Property<Self>> {
        let mut props: Vec<Property<Self>> = vec![
            Property {
                name: "crossing-delivered-at-maturity",
                kind: PropertyKind::Always,
                check: |_, s| !s.late_delivery,
            },
            Property {
                name: "boundary-makes-progress",
                kind: PropertyKind::Always,
                check: |m, s| !s.stalled && s.now <= m.deadline,
            },
            Property {
                name: "no-shard-starves",
                kind: PropertyKind::AlwaysTerminal,
                check: |m, s| {
                    s.now == m.deadline
                        && s.next_event
                            .iter()
                            .flatten()
                            .all(|&(t, _)| t > m.deadline)
                        && s.crossings.iter().all(|&(t, _)| t > m.deadline)
                },
            },
            Property {
                name: "quiescent-shard-woken-by-crossing",
                kind: PropertyKind::Eventually,
                check: |_, s| s.woke_quiescent,
            },
        ];
        // Fixed lookahead never skips dead air by design, so the skip
        // path is only required reachable under the adaptive policy.
        if self.policy == Lookahead::Adaptive {
            props.push(Property {
                name: "dead-air-skip-exercised",
                kind: PropertyKind::Eventually,
                check: |_, s| s.dead_air_jumped,
            });
            props.push(Property {
                name: "fused-slice-exercised",
                kind: PropertyKind::Eventually,
                check: |_, s| s.fused_planned,
            });
            props.push(Property {
                name: "fusion-clamped-by-crossing",
                kind: PropertyKind::Eventually,
                check: |_, s| s.fused_with_crossing,
            });
        }
        props
    }

    fn format_action(&self, action: &PlannerAction) -> String {
        match *action {
            PlannerAction::Seed {
                shard,
                offset,
                cross,
            } => format!(
                "seed shard{shard} event at now+{offset}{}",
                if cross { " (emits crossing)" } else { "" }
            ),
            PlannerAction::Advance => "advance to planned boundary".into(),
        }
    }

    fn format_state(&self, s: &PlannerState) -> String {
        let events: Vec<String> = s
            .next_event
            .iter()
            .enumerate()
            .map(|(i, e)| match e {
                None => format!("s{i}:idle"),
                Some((t, true)) => format!("s{i}:ev@{t}→x"),
                Some((t, false)) => format!("s{i}:ev@{t}"),
            })
            .collect();
        let crossings: Vec<String> = s
            .crossings
            .iter()
            .map(|(t, d)| format!("x@{t}→s{d}"))
            .collect();
        format!(
            "now={} slice={} [{}] crossings=[{}]{}",
            s.now,
            s.planner.current_slice().as_nanos(),
            events.join(" "),
            crossings.join(" "),
            if s.late_delivery { " LATE" } else { "" }
        )
    }
}

/// Check the real adaptive planner exhaustively.
pub fn check_planner(max_states: usize) -> CheckReport {
    check(
        &PlannerModel::small(PlannerVariant::Exact, Lookahead::Adaptive),
        CheckOptions { max_states },
    )
}

/// Check the fixed-lookahead (PR-5 reference) decision exhaustively.
pub fn check_planner_fixed(max_states: usize) -> CheckReport {
    check(
        &PlannerModel::small(PlannerVariant::Exact, Lookahead::Fixed),
        CheckOptions { max_states },
    )
}

/// Check the crossing-clamp-dropping mutant (must deliver late).
pub fn check_planner_ignores_crossings(max_states: usize) -> CheckReport {
    check(
        &PlannerModel::small(PlannerVariant::IgnoreCrossings, Lookahead::Adaptive),
        CheckOptions { max_states },
    )
}

/// Check the fuse-through-crossings mutant (must deliver late): the
/// clamp holds everywhere except fused plans, so any violation found
/// is specifically a fused window overshooting a maturing crossing.
pub fn check_planner_fuses_through_crossings(max_states: usize) -> CheckReport {
    check(
        &PlannerModel::small(PlannerVariant::FuseThroughCrossings, Lookahead::Adaptive),
        CheckOptions { max_states },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_planner_is_exhaustively_green() {
        let report = check_planner(2_000_000);
        println!("{}", report.summary("planner/adaptive"));
        assert!(report.complete, "state space must fit the budget");
        assert!(report.passed(), "{:?}", report.violation.map(|v| v.render()));
        assert!(report.terminals > 0);
    }

    #[test]
    fn fixed_planner_is_exhaustively_green() {
        let report = check_planner_fixed(2_000_000);
        println!("{}", report.summary("planner/fixed"));
        assert!(report.complete);
        assert!(report.passed(), "{:?}", report.violation.map(|v| v.render()));
    }

    #[test]
    fn fixed_planner_never_dead_air_jumps() {
        // The flag itself must stay false everywhere under Fixed — the
        // property is omitted, so pin the behavior directly.
        let model = PlannerModel::small(PlannerVariant::Exact, Lookahead::Fixed);
        let mut frontier = model.initial_states();
        let mut out = Vec::new();
        for _ in 0..5 {
            let mut next = Vec::new();
            for s in &frontier {
                assert!(!s.dead_air_jumped);
                out.clear();
                model.actions(s, &mut out);
                for a in &out {
                    next.push(model.next_state(s, a));
                }
            }
            frontier = next;
        }
    }

    #[test]
    fn fusion_mutant_delivers_late() {
        let report = check_planner_fuses_through_crossings(2_000_000);
        println!("{}", report.summary("planner/fuse-through-crossings"));
        let cx = report.violation.expect("fusion mutant must be caught");
        assert_eq!(cx.property, "crossing-delivered-at-maturity");
    }

    #[test]
    fn mutant_delivers_late() {
        let report = check_planner_ignores_crossings(2_000_000);
        println!("{}", report.summary("planner/ignore-crossings"));
        let cx = report.violation.expect("mutant must be caught");
        assert_eq!(cx.property, "crossing-delivered-at-maturity");
    }
}
