//! Model 4: the frame-loan ownership protocol on the ring.
//!
//! The node data-plane serializes each MicroPacket once into a pooled
//! [`FrameArena`] slot and forwards the 8-byte [`FrameRef`] handle
//! from node to node; the slot is released exactly once, when the real
//! MAC classification ([`ampnet_ring::classify`]) says `Strip` (frame
//! returned to its source) or `Deliver` (unicast consumed). The model
//! drives a small traffic script — unicasts and a broadcast — through
//! every interleaving of per-frame ring hops over a **bounded** arena,
//! so released slots get reused under new generations while stale
//! handles may still be around to observe it.
//!
//! Properties: every in-flight handle still views the packet it was
//! loaned for (no use-after-release aliasing — on the real arena a
//! stale view *panics deterministically*, which the checker converts
//! into a counterexample); the arena's live count always equals the
//! number of in-flight frames; and terminal states hold zero live
//! slots (no leak).
//!
//! Two mutants share one protocol bug — `Deliver` releases the slot
//! but erroneously keeps forwarding the handle:
//!
//! * [`ArenaVariant::DeliverAlsoForwards`] runs it against the real
//!   generation-checked [`FrameArena`]: the next hop's view panics
//!   with "stale FrameRef" — a crash, but a deterministic, debuggable
//!   one at the first wrong access.
//! * [`ArenaVariant::NoGenBump`] runs the same bug against a raw pool
//!   whose release skips the generation bump (and the liveness
//!   check): nothing panics; the stale handle silently reads whatever
//!   packet reused the slot, and the checker exhibits the
//!   corruption — the exact failure mode the generation counter
//!   exists to prevent.

use crate::model::{FnvHasher, Model, Property, PropertyKind};
use crate::{CheckOptions, CheckReport};
use ampnet_packet::{build, FrameArena, FrameRef, MicroPacket, BROADCAST};
use ampnet_ring::{classify, FrameClass};
use std::hash::{Hash, Hasher};

/// Ring size (node ids 0, 1, 2).
const NODES: u8 = 3;
/// Arena slot cap: smaller than the traffic script, forcing reuse.
const CAP: usize = 2;

/// Which arena/protocol combination runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaVariant {
    /// Real arena, correct protocol.
    Real,
    /// Real arena; `Deliver` releases but erroneously keeps
    /// forwarding the handle (panics at the next view).
    DeliverAlsoForwards,
    /// Same protocol bug over a pool whose release skips the
    /// generation bump: the stale handle silently aliases.
    NoGenBump,
}

/// A pool without generation protection: `release` marks the slot free
/// but hands out the same handle value again, and `view` never checks
/// liveness. This is the arena-without-a-generation-counter that
/// [`FrameArena`] deliberately is not.
#[derive(Debug, Clone)]
pub struct RawArena {
    slots: Vec<(MicroPacket, bool)>,
    free: Vec<u32>,
}

impl RawArena {
    fn new() -> Self {
        RawArena {
            slots: vec![],
            free: vec![],
        }
    }

    fn live(&self) -> usize {
        self.slots.iter().filter(|(_, live)| *live).count()
    }

    fn try_insert(&mut self, pkt: &MicroPacket) -> Option<u32> {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = (pkt.clone(), true);
            return Some(i);
        }
        if self.slots.len() >= CAP {
            return None;
        }
        self.slots.push((pkt.clone(), true));
        Some(self.slots.len() as u32 - 1)
    }

    /// The bug under test: no liveness assertion, no generation.
    fn view(&self, i: u32) -> &MicroPacket {
        &self.slots[i as usize].0
    }

    fn release(&mut self, i: u32) {
        let s = &mut self.slots[i as usize];
        if s.1 {
            s.1 = false;
            self.free.push(i);
        }
    }
}

/// The frame pool in use.
#[derive(Debug, Clone)]
enum Pool {
    Real(FrameArena),
    Raw(RawArena),
}

/// A loaned frame handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Handle {
    Real(FrameRef),
    Raw(u32),
}

/// One frame travelling the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Flight {
    handle: Handle,
    /// Index into the traffic script (names the expected packet).
    idx: u8,
    /// Node about to process the frame.
    at: u8,
}

/// One global state.
#[derive(Debug, Clone)]
pub struct ArenaState {
    pool: Pool,
    flights: Vec<Flight>,
    next_inject: u8,
    delivered: u8,
    /// A stale handle viewed a packet other than its own.
    corrupt: bool,
}

/// One atomic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaAction {
    /// The next script packet is serialized into the pool at its
    /// source (enabled only while the pool has a free slot —
    /// backpressure).
    Inject,
    /// Flight `k` is processed by the node it sits at: view, classify
    /// with the real MAC rule, then strip/deliver/forward.
    Arrive(u8),
}

/// The frame-ownership model.
#[derive(Debug, Clone)]
pub struct ArenaModel {
    /// Arena/protocol combination under check.
    pub variant: ArenaVariant,
    traffic: Vec<MicroPacket>,
}

impl ArenaModel {
    /// The standard script: two crossing unicasts, one broadcast, one
    /// return unicast; tags are script indices so payloads identify
    /// their packet.
    pub fn new(variant: ArenaVariant) -> Self {
        ArenaModel {
            variant,
            traffic: vec![
                build::data(0, 2, 0, [0xA0; 8]),
                build::data(1, BROADCAST, 1, [0xA1; 8]),
                build::data(2, 1, 2, [0xA2; 8]),
                build::data(1, 0, 3, [0xA3; 8]),
            ],
        }
    }

    /// Deliveries the script produces: one per unicast, `NODES - 1`
    /// per broadcast.
    fn expected_deliveries(&self) -> u8 {
        self.traffic
            .iter()
            .map(|p| {
                if p.ctrl.is_broadcast() {
                    NODES - 1
                } else {
                    1
                }
            })
            .sum()
    }

    fn has_capacity(pool: &Pool) -> bool {
        match pool {
            Pool::Real(a) => a.live() < CAP,
            Pool::Raw(a) => a.live() < CAP,
        }
    }
}

impl Model for ArenaModel {
    type State = ArenaState;
    type Action = ArenaAction;

    fn initial_states(&self) -> Vec<ArenaState> {
        let pool = match self.variant {
            ArenaVariant::Real | ArenaVariant::DeliverAlsoForwards => {
                Pool::Real(FrameArena::bounded(CAP))
            }
            ArenaVariant::NoGenBump => Pool::Raw(RawArena::new()),
        };
        vec![ArenaState {
            pool,
            flights: vec![],
            next_inject: 0,
            delivered: 0,
            corrupt: false,
        }]
    }

    fn actions(&self, s: &ArenaState, out: &mut Vec<ArenaAction>) {
        if (s.next_inject as usize) < self.traffic.len() && Self::has_capacity(&s.pool) {
            out.push(ArenaAction::Inject);
        }
        for k in 0..s.flights.len() {
            out.push(ArenaAction::Arrive(k as u8));
        }
    }

    fn next_state(&self, s: &ArenaState, a: &ArenaAction) -> ArenaState {
        let mut n = s.clone();
        match *a {
            ArenaAction::Inject => {
                let pkt = &self.traffic[n.next_inject as usize];
                let handle = match &mut n.pool {
                    Pool::Real(arena) => {
                        Handle::Real(arena.try_insert(pkt).expect("capacity checked"))
                    }
                    Pool::Raw(arena) => {
                        Handle::Raw(arena.try_insert(pkt).expect("capacity checked"))
                    }
                };
                n.flights.push(Flight {
                    handle,
                    idx: n.next_inject,
                    // The source's register insertion puts the frame on
                    // the wire toward its downstream neighbour.
                    at: (pkt.ctrl.src + 1) % NODES,
                });
                n.next_inject += 1;
            }
            ArenaAction::Arrive(k) => {
                let flight = n.flights[k as usize];
                // View the frame exactly as the transit plane would.
                // On the real arena a stale handle panics here; the
                // raw pool silently returns whatever occupies the slot.
                let ctrl = match &n.pool {
                    Pool::Real(arena) => {
                        let Handle::Real(f) = flight.handle else {
                            unreachable!("real pool holds real handles");
                        };
                        arena.view(f).ctrl
                    }
                    Pool::Raw(arena) => {
                        let Handle::Raw(i) = flight.handle else {
                            unreachable!("raw pool holds raw handles");
                        };
                        arena.view(i).ctrl
                    }
                };
                if ctrl != self.traffic[flight.idx as usize].ctrl {
                    n.corrupt = true;
                }
                let release = |pool: &mut Pool, h: Handle| match (pool, h) {
                    (Pool::Real(arena), Handle::Real(f)) => arena.release(f),
                    (Pool::Raw(arena), Handle::Raw(i)) => arena.release(i),
                    _ => unreachable!("pool/handle kinds match"),
                };
                match classify(flight.at, &ctrl) {
                    FrameClass::Strip => {
                        release(&mut n.pool, flight.handle);
                        n.flights.remove(k as usize);
                    }
                    FrameClass::Deliver => {
                        n.delivered += 1;
                        release(&mut n.pool, flight.handle);
                        match self.variant {
                            ArenaVariant::Real => {
                                n.flights.remove(k as usize);
                            }
                            // The bug: the slot is released, but the
                            // handle keeps riding the ring.
                            ArenaVariant::DeliverAlsoForwards | ArenaVariant::NoGenBump => {
                                n.flights[k as usize].at = (flight.at + 1) % NODES;
                            }
                        }
                    }
                    FrameClass::DeliverAndForward => {
                        n.delivered += 1;
                        n.flights[k as usize].at = (flight.at + 1) % NODES;
                    }
                    FrameClass::Forward => {
                        n.flights[k as usize].at = (flight.at + 1) % NODES;
                    }
                }
            }
        }
        n
    }

    fn fingerprint(&self, s: &ArenaState) -> u64 {
        let mut h = FnvHasher::new();
        s.flights.hash(&mut h);
        h.write_u8(s.next_inject);
        h.write_u8(s.delivered);
        h.write_u8(u8::from(s.corrupt));
        // Pool internals beyond what the handles pin: the free-list
        // order decides which slot the next insert picks. Slot ids are
        // interchangeable labels (no property mentions them), so
        // folding the free list directly is a sound slot-symmetric
        // quotient; monotone stats counters are deliberately excluded.
        match &s.pool {
            Pool::Real(a) => {
                h.write_u8(0);
                h.write_usize(a.live());
            }
            Pool::Raw(a) => {
                h.write_u8(1);
                h.write_usize(a.live());
                h.write(&a.free.iter().map(|&i| i as u8).collect::<Vec<_>>());
            }
        }
        h.finish()
    }

    fn properties(&self) -> Vec<Property<Self>> {
        let mut props = vec![
            Property {
                name: "frames-intact",
                kind: PropertyKind::Always,
                check: |_m, s: &ArenaState| !s.corrupt,
            },
            Property {
                name: "no-slot-leak",
                kind: PropertyKind::AlwaysTerminal,
                check: |_m, s: &ArenaState| match &s.pool {
                    Pool::Real(a) => a.live() == 0,
                    Pool::Raw(a) => a.live() == 0,
                },
            },
            Property {
                name: "all-traffic-delivered",
                kind: PropertyKind::Eventually,
                check: |m: &ArenaModel, s: &ArenaState| {
                    s.delivered == m.expected_deliveries() && s.flights.is_empty()
                },
            },
        ];
        // Accounting only holds for the correct protocol; the mutants
        // break it by design (a released slot still has a flight).
        if self.variant == ArenaVariant::Real {
            props.push(Property {
                name: "live-equals-in-flight",
                kind: PropertyKind::Always,
                check: |_m, s: &ArenaState| match &s.pool {
                    Pool::Real(a) => a.live() == s.flights.len(),
                    Pool::Raw(a) => a.live() == s.flights.len(),
                },
            });
        }
        props
    }

    fn format_action(&self, a: &ArenaAction) -> String {
        match *a {
            ArenaAction::Inject => "inject-frame".into(),
            ArenaAction::Arrive(k) => format!("ring-hop(f{k})"),
        }
    }

    fn format_state(&self, s: &ArenaState) -> String {
        let flights: Vec<String> = s
            .flights
            .iter()
            .map(|f| format!("p{}@n{}", f.idx, f.at))
            .collect();
        let live = match &s.pool {
            Pool::Real(a) => a.live(),
            Pool::Raw(a) => a.live(),
        };
        format!(
            "injected={} delivered={} live={} [{}]{}",
            s.next_inject,
            s.delivered,
            live,
            flights.join(" "),
            if s.corrupt { " CORRUPT" } else { "" }
        )
    }
}

/// Check the real arena + correct protocol exhaustively.
pub fn check_arena(max_states: usize) -> CheckReport {
    crate::check(
        &ArenaModel::new(ArenaVariant::Real),
        CheckOptions { max_states },
    )
}

/// Check the deliver-also-forwards mutant (must panic-counterexample).
pub fn check_arena_deliver_forwards(max_states: usize) -> CheckReport {
    crate::check(
        &ArenaModel::new(ArenaVariant::DeliverAlsoForwards),
        CheckOptions { max_states },
    )
}

/// Check the no-generation-bump mutant (must yield silent aliasing).
pub fn check_arena_no_gen_bump(max_states: usize) -> CheckReport {
    crate::check(
        &ArenaModel::new(ArenaVariant::NoGenBump),
        CheckOptions { max_states },
    )
}
