//! Model 2: slide-10 D64 network semaphores under message loss.
//!
//! Each client is a real [`ampnet_cache::SemaphoreClient`]; the home
//! node executes requests with the real [`ampnet_cache::atomics`]
//! engine. Channels are per-client FIFOs (the fabric's per-source
//! ordering guarantee — see [`crate::FifoChannel`]); the adversary
//! interleaves clients, drops packets against a bounded budget, and
//! triggers the client's idempotent retransmission path
//! ([`SemaphoreClient::resend`]), which doubles as the duplication
//! model.
//!
//! Properties: **mutual exclusion** (never two `Held` clients),
//! **home-word integrity** (the lock word only ever holds 0 or a
//! client's tag), and **completion** (termination implies every client
//! finished all its rounds and the lock is free — deadlock-freedom,
//! since `resend`/`poll` actions stay enabled while anything is
//! unfinished).
//!
//! Time abstraction: `SimTime`s inside client backoff state are
//! excluded from fingerprints (see [`Model::fingerprint`]), and
//! node-id symmetry is folded out with [`symmetric_fingerprint`] —
//! clients are interchangeable once tags are reduced to
//! self/other/free roles.
//!
//! The [`SemVariant::SplitTestThenSet`] mutant executes TestAndSet in
//! two home-side phases (read the word, *later* write it based on the
//! stale read). Two clients' tests interleave, both observe 0, both
//! acquire: the checker prints the classic lost-update trace.

use crate::model::{symmetric_fingerprint, FnvHasher, Model, Property, PropertyKind};
use crate::{CheckOptions, CheckReport, FifoChannel};
use ampnet_cache::atomics::execute;
use ampnet_cache::{
    BackoffPolicy, LockState, NetworkCache, SemaphoreAction, SemaphoreAddr, SemaphoreClient,
};
use ampnet_packet::build::{self, AtomicOp};
use ampnet_packet::MicroPacket;
use ampnet_sim::SimTime;
use std::hash::Hasher;

const REGION: u8 = 1;
const OFFSET: u32 = 0;
const HOME: u8 = 0;

/// Home-node execution discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemVariant {
    /// The real engine: one atomic `execute` per request.
    AtomicTas,
    /// Mutant: TestAndSet split into a read phase and a later write
    /// phase using the stale read.
    SplitTestThenSet,
}

/// A request popped by the mutant's read phase, waiting for its write
/// phase: the packet and the (stale) value it observed.
type PendingHome = Option<(MicroPacket, u64)>;

/// One global state.
#[derive(Debug, Clone)]
pub struct SemState {
    home: NetworkCache,
    clients: Vec<SemaphoreClient>,
    rounds_done: Vec<u8>,
    req: Vec<FifoChannel<MicroPacket>>,
    resp: Vec<FifoChannel<MicroPacket>>,
    pending_home: Vec<PendingHome>,
    drops_left: u8,
    /// Logical clock driving `SimTime` arguments; excluded from
    /// fingerprints (time abstraction).
    tick: u64,
}

/// One atomic step. The `u8` is the client index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemAction {
    /// Client begins an acquire round.
    Acquire(u8),
    /// Client releases the held lock.
    Release(u8),
    /// Home pops and atomically executes the client's oldest request.
    HomeStep(u8),
    /// Mutant read phase: pop the request, observe the word.
    HomeTest(u8),
    /// Mutant write phase: apply the stale decision, respond.
    HomeSet(u8),
    /// Client consumes its oldest response.
    Deliver(u8),
    /// Client's backoff expires; it retransmits TestAndSet.
    Poll(u8),
    /// Client retransmits its in-flight request (loss recovery, and
    /// the duplication source — the resent copy may race the original).
    Resend(u8),
    /// The wire drops the client's oldest request (budgeted).
    DropReq(u8),
    /// The wire drops the client's oldest response (budgeted).
    DropResp(u8),
}

/// The semaphore model.
#[derive(Debug, Clone)]
pub struct SemaphoreModel {
    /// Number of competing clients.
    pub clients: u8,
    /// Acquire/release rounds each client must complete.
    pub rounds: u8,
    /// Total message drops the adversary may spend.
    pub drop_budget: u8,
    /// Home-node execution discipline.
    pub variant: SemVariant,
}

impl SemaphoreModel {
    fn addr() -> SemaphoreAddr {
        SemaphoreAddr {
            home: HOME,
            region: REGION,
            offset: OFFSET,
        }
    }

    fn tag(i: u8) -> u64 {
        // SemaphoreClient node ids are 1-based here; tag = node + 1.
        (i + 1) as u64 + 1
    }

    fn word(s: &SemState) -> u64 {
        s.home.read_u64(REGION, OFFSET).expect("region defined")
    }

    /// Map a lock-word value to a role relative to client `i`:
    /// 0 = free, 1 = self, 2 = other (for symmetric fingerprints).
    fn role(i: u8, v: u64) -> u8 {
        if v == 0 {
            0
        } else if v == Self::tag(i) {
            1
        } else {
            2
        }
    }
}

impl Model for SemaphoreModel {
    type State = SemState;
    type Action = SemAction;

    fn initial_states(&self) -> Vec<SemState> {
        let mut home = NetworkCache::new(HOME);
        home.define_region(REGION, 64).expect("region fits");
        let n = self.clients as usize;
        vec![SemState {
            home,
            clients: (0..self.clients)
                .map(|i| SemaphoreClient::new(i + 1, Self::addr(), BackoffPolicy::default()))
                .collect(),
            rounds_done: vec![0; n],
            req: vec![FifoChannel::new(); n],
            resp: vec![FifoChannel::new(); n],
            pending_home: vec![None; n],
            drops_left: self.drop_budget,
            tick: 0,
        }]
    }

    fn actions(&self, s: &SemState, out: &mut Vec<SemAction>) {
        for i in 0..self.clients {
            let iu = i as usize;
            match s.clients[iu].state() {
                LockState::Idle if s.rounds_done[iu] < self.rounds => {
                    out.push(SemAction::Acquire(i))
                }
                LockState::Held => out.push(SemAction::Release(i)),
                LockState::Backoff(_) => out.push(SemAction::Poll(i)),
                _ => {}
            }
            if !s.req[iu].is_empty() {
                match self.variant {
                    SemVariant::AtomicTas => out.push(SemAction::HomeStep(i)),
                    SemVariant::SplitTestThenSet => {
                        if s.pending_home[iu].is_none() {
                            out.push(SemAction::HomeTest(i));
                        }
                    }
                }
            }
            if s.pending_home[iu].is_some() {
                out.push(SemAction::HomeSet(i));
            }
            if !s.resp[iu].is_empty() {
                out.push(SemAction::Deliver(i));
            }
            // Retransmission: bounded to keep ≤ 2 copies in flight.
            if s.clients[iu].resend().is_some()
                && s.req[iu].len() + s.resp[iu].len() + s.pending_home[iu].iter().count() < 2
            {
                out.push(SemAction::Resend(i));
            }
            if s.drops_left > 0 {
                if !s.req[iu].is_empty() {
                    out.push(SemAction::DropReq(i));
                }
                if !s.resp[iu].is_empty() {
                    out.push(SemAction::DropResp(i));
                }
            }
        }
    }

    fn next_state(&self, s: &SemState, a: &SemAction) -> SemState {
        let mut n = s.clone();
        n.tick += 1;
        let now = SimTime(n.tick);
        match *a {
            SemAction::Acquire(i) => {
                let iu = i as usize;
                if let SemaphoreAction::Send(pkt) = n.clients[iu].acquire(now) {
                    n.req[iu].send(pkt);
                }
            }
            SemAction::Release(i) => {
                let iu = i as usize;
                if let SemaphoreAction::Send(pkt) = n.clients[iu].release() {
                    n.req[iu].send(pkt);
                }
            }
            SemAction::HomeStep(i) => {
                let iu = i as usize;
                let pkt = n.req[iu].deliver().expect("enabled only when queued");
                let req = build::parse_atomic_request(&pkt).expect("atomic request");
                let effect = execute(&mut n.home, pkt.ctrl.src, req).expect("region defined");
                n.resp[iu].send(effect.response);
            }
            SemAction::HomeTest(i) => {
                let iu = i as usize;
                let pkt = n.req[iu].deliver().expect("enabled only when queued");
                let previous = Self::word(&n);
                n.pending_home[iu] = Some((pkt, previous));
            }
            SemAction::HomeSet(i) => {
                let iu = i as usize;
                let (pkt, previous) = n.pending_home[iu].take().expect("enabled when pending");
                let req = build::parse_atomic_request(&pkt).expect("atomic request");
                // The bug under test: decide from the *stale* read.
                let new = match req.op {
                    AtomicOp::TestAndSet if previous == 0 => req.operand as u64,
                    AtomicOp::Clear if req.operand == 0 || previous == req.operand as u64 => 0,
                    _ => Self::word(&n),
                };
                n.home
                    .write_u64_local(req.region, req.offset, new)
                    .expect("region defined");
                n.resp[iu].send(build::atomic_response(HOME, pkt.ctrl.src, req.op, previous));
            }
            SemAction::Deliver(i) => {
                let iu = i as usize;
                let pkt = n.resp[iu].deliver().expect("enabled only when queued");
                let before = n.clients[iu].state();
                n.clients[iu].on_response(now, &pkt);
                if before == LockState::Releasing && n.clients[iu].state() == LockState::Idle {
                    n.rounds_done[iu] += 1;
                }
            }
            SemAction::Poll(i) => {
                let iu = i as usize;
                let LockState::Backoff(until) = n.clients[iu].state() else {
                    unreachable!("enabled only in backoff");
                };
                if let SemaphoreAction::Send(pkt) = n.clients[iu].poll(until.max(now)) {
                    n.req[iu].send(pkt);
                }
            }
            SemAction::Resend(i) => {
                let iu = i as usize;
                let pkt = n.clients[iu].resend().expect("enabled when in flight");
                n.req[iu].send(pkt);
            }
            SemAction::DropReq(i) => {
                n.req[i as usize].drop_front();
                n.drops_left -= 1;
            }
            SemAction::DropResp(i) => {
                n.resp[i as usize].drop_front();
                n.drops_left -= 1;
            }
        }
        n
    }

    fn fingerprint(&self, s: &SemState) -> u64 {
        // Shared part: lock word as a held/free bit (which client holds
        // it lives in that client's block), remaining drop budget.
        let mut shared = FnvHasher::new();
        shared.write_u8(u8::from(Self::word(s) != 0));
        shared.write_u8(s.drops_left);
        // Per-client blocks, id-free: state discriminant, rounds,
        // channel contents as op/role streams, pending mutant phase.
        // Absolute times (Backoff deadline), attempt and stats counters
        // are deliberately excluded — time abstraction.
        let blocks = (0..self.clients as usize)
            .map(|i| {
                let mut b = FnvHasher::new();
                b.write_u8(match s.clients[i].state() {
                    LockState::Idle => 0,
                    LockState::Requesting => 1,
                    LockState::Backoff(_) => 2,
                    LockState::Held => 3,
                    LockState::Releasing => 4,
                });
                b.write_u8(s.rounds_done[i]);
                b.write_u8(u8::from(Self::word(s) == Self::tag(i as u8)));
                for pkt in s.req[i].iter() {
                    let req = build::parse_atomic_request(pkt).expect("atomic request");
                    b.write_u8(req.op as u8);
                }
                b.write_u8(0xFE);
                for pkt in s.resp[i].iter() {
                    let (op, prev) = build::parse_atomic_response(pkt).expect("atomic response");
                    b.write_u8(op as u8);
                    b.write_u8(Self::role(i as u8, prev));
                }
                b.write_u8(0xFD);
                match &s.pending_home[i] {
                    None => b.write_u8(0),
                    Some((pkt, prev)) => {
                        let req = build::parse_atomic_request(pkt).expect("atomic request");
                        b.write_u8(1 + req.op as u8);
                        b.write_u8(Self::role(i as u8, *prev));
                    }
                }
                b.finish()
            })
            .collect();
        symmetric_fingerprint(shared.digest(), blocks)
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            Property {
                name: "mutual-exclusion",
                kind: PropertyKind::Always,
                check: |_m, s| {
                    s.clients
                        .iter()
                        .filter(|c| c.state() == LockState::Held)
                        .count()
                        <= 1
                },
            },
            Property {
                name: "lock-word-integrity",
                kind: PropertyKind::Always,
                check: |m, s| {
                    let w = SemaphoreModel::word(s);
                    w == 0 || (0..m.clients).any(|i| w == SemaphoreModel::tag(i))
                },
            },
            Property {
                name: "termination-is-completion",
                kind: PropertyKind::AlwaysTerminal,
                check: |m, s| {
                    SemaphoreModel::word(s) == 0
                        && s.clients.iter().all(|c| c.state() == LockState::Idle)
                        && s.rounds_done.iter().all(|&r| r == m.rounds)
                },
            },
            Property {
                name: "all-rounds-completable",
                kind: PropertyKind::Eventually,
                check: |m, s| s.rounds_done.iter().all(|&r| r == m.rounds),
            },
        ]
    }

    fn format_action(&self, a: &SemAction) -> String {
        match *a {
            SemAction::Acquire(i) => format!("acquire(c{i})"),
            SemAction::Release(i) => format!("release(c{i})"),
            SemAction::HomeStep(i) => format!("home-exec(c{i})"),
            SemAction::HomeTest(i) => format!("home-test(c{i})"),
            SemAction::HomeSet(i) => format!("home-set(c{i})"),
            SemAction::Deliver(i) => format!("deliver-resp(c{i})"),
            SemAction::Poll(i) => format!("backoff-retry(c{i})"),
            SemAction::Resend(i) => format!("resend(c{i})"),
            SemAction::DropReq(i) => format!("DROP-req(c{i})"),
            SemAction::DropResp(i) => format!("DROP-resp(c{i})"),
        }
    }

    fn format_state(&self, s: &SemState) -> String {
        let states: Vec<String> = s
            .clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "c{i}:{:?}/r{}",
                    c.state(),
                    s.rounds_done[i]
                )
            })
            .collect();
        format!(
            "word={} {} in-flight={} drops-left={}",
            Self::word(s),
            states.join(" "),
            s.req.iter().map(|c| c.len()).sum::<usize>()
                + s.resp.iter().map(|c| c.len()).sum::<usize>(),
            s.drops_left
        )
    }
}

/// Check the healthy atomic-TAS protocol exhaustively.
pub fn check_semaphore(max_states: usize) -> CheckReport {
    crate::check(
        &SemaphoreModel {
            clients: 2,
            rounds: 2,
            drop_budget: 1,
            variant: SemVariant::AtomicTas,
        },
        CheckOptions { max_states },
    )
}

/// Check the split test-then-set mutant (must yield a counterexample).
pub fn check_semaphore_split_tas(max_states: usize) -> CheckReport {
    crate::check(
        &SemaphoreModel {
            clients: 2,
            rounds: 1,
            drop_budget: 0,
            variant: SemVariant::SplitTestThenSet,
        },
        CheckOptions { max_states },
    )
}
