//! Model 3: detect → roster → recover, under dropped Rostering tokens.
//!
//! Each scenario kills one component of a healthy quad plant (a node,
//! a switch, a ring link), computes the hardware detection with the
//! real [`ampnet_roster::detect`], and then explores every
//! interleaving of the detectors' flooded ROSTER tokens:
//!
//! * every detector may launch a token around the survivor cycle;
//! * an adversary may drop an in-flight token (bounded budget) — the
//!   origin relaunches;
//! * concurrent tokens **merge in favour of the lowest origin id**: a
//!   token dies when it reaches a node that already carried a
//!   lower-origin token, or when it reaches a *detector* with a lower
//!   id (hardware detection is simultaneous — slide 16's "algorithm
//!   starts automatically whenever a failure is detected" — so a
//!   lower detector has seen the failure even if its own token has
//!   not launched yet; without that clause a high token could finish
//!   a full tour before the lowest ever launches, electing two
//!   masters).
//!
//! The surviving token's origin becomes roster master; the model then
//! runs the real [`ampnet_roster::run_rostering`] and — for node
//! failures, where the dead node led a control group — drives the real
//! [`ampnet_dk::FailoverEngine`] to completion, checking the reported
//! new leader against the group's best-qualified survivor.
//!
//! Properties: exactly one roster master, and it is
//! [`ampnet_roster::elect_master`]'s lowest-id detector; rostering
//! commits a valid ring excluding the failed component; failover hands
//! control to the best-qualified survivor; and every terminal state is
//! a *fully recovered* state.

use crate::model::{FnvHasher, Model, Property, PropertyKind};
use crate::{CheckOptions, CheckReport};
use ampnet_dk::{ControlGroup, FailoverEngine, FailoverPolicy, GroupId};
use ampnet_roster::{detect, elect_flooding_master, run_rostering, Detection, RosterParams};
use ampnet_sim::SimTime;
use ampnet_topo::montecarlo::Component;
use ampnet_topo::{NodeId, Plant, PlantRing};
use std::hash::{Hash, Hasher};

/// Instant the component fails (arbitrary; times are reported, not
/// branched on).
const FAILED_AT: SimTime = SimTime(1_000_000);
/// Failover polling cadence: half the engine's 1 ms detection window.
const POLL_STEP_NS: u64 = 500_000;
/// Poll budget: default policy completes on the 5th poll.
const MAX_POLLS: u8 = 8;

/// One precomputed failure scenario.
#[derive(Debug, Clone)]
struct Scenario {
    name: String,
    comp: Component,
    /// Plant with the failure applied.
    topo: Plant,
    /// The ring that was live before the failure.
    pre_ring: PlantRing,
    /// Loss-of-light detectors that can still flood (connectable),
    /// ascending id. A detector whose every attachment died notices
    /// the dark fiber but never launches a token.
    detectors: Vec<NodeId>,
    /// The master `elect_master` predicts (lowest detector).
    expected_master: NodeId,
    /// Per-detector token path: `paths[d][0]` is the detector, then
    /// the survivor cycle in committed-ring order.
    paths: Vec<Vec<NodeId>>,
    /// Control group led by the failed node (node scenarios only).
    group: Option<ControlGroup>,
    /// The dead application leader (node scenarios only).
    failed_node: Option<u8>,
    /// Best-qualified survivor the failover must elect.
    expected_new_leader: Option<u8>,
}

/// Where one detector's token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TokenPhase {
    /// Not launched (or dropped; the origin will relaunch).
    Idle,
    /// Held by `paths[d][pos]`.
    InFlight {
        /// Index of the current holder on the token's path.
        pos: u8,
    },
    /// Merged away by a lower-origin token.
    Killed,
    /// Completed a full tour: its origin is roster master.
    Done,
}

/// One global state.
#[derive(Debug, Clone)]
pub struct RosterState {
    scenario: usize,
    tokens: Vec<TokenPhase>,
    /// Lowest token origin each node has carried (`u8::MAX` = none).
    min_seen: Vec<u8>,
    drops_left: u8,
    master: Option<NodeId>,
    /// `Some(ok)` once `run_rostering` ran; `ok` = all checks passed.
    roster_ok: Option<bool>,
    engine: Option<FailoverEngine>,
    polls: u8,
    /// `Some(ok)` once the failover produced its report.
    report_ok: Option<bool>,
}

/// One atomic step. The `u8` is a detector index into the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RosterAction {
    /// Detector launches (or relaunches) its token.
    Launch(u8),
    /// A token advances one hop along the survivor cycle.
    Advance(u8),
    /// The wire drops an in-flight token (budgeted).
    Drop(u8),
    /// The elected master runs the two-tour rostering algorithm.
    RunRoster,
    /// Survivors evaluate the failover engine once.
    PollFailover,
}

/// The roster/failover model over a set of single-failure scenarios.
#[derive(Debug, Clone)]
pub struct RosterModel {
    scenarios: Vec<Scenario>,
    /// Token-drop budget per scenario.
    pub drop_budget: u8,
}

fn qualification(node: u8) -> u32 {
    (node as u32 * 7 + 3) % 50
}

fn rotate_path(order: &[NodeId], start: NodeId) -> Vec<NodeId> {
    match order.iter().position(|&n| n == start) {
        Some(pos) => {
            let mut p = order.to_vec();
            p.rotate_left(pos);
            p
        }
        None => {
            // The detector survives but the maximal ring excludes it
            // (possible off-crossbar, e.g. a torus minus one vertex):
            // its token enters the cycle at the first member and still
            // wraps home to the detector.
            let mut p = Vec::with_capacity(order.len() + 1);
            p.push(start);
            p.extend_from_slice(order);
            p
        }
    }
}

impl RosterModel {
    /// All single-component failures of an `n`-node quad crossbar
    /// plant: every node, the ring's switch, and one ring link.
    pub fn quad_plant(n: usize) -> Self {
        Self::on_plant(Plant::crossbar(n, 4, 100.0))
    }

    /// Single-component failures of an arbitrary plant: every node
    /// dies; the busiest switching element on the ring dies (skipped
    /// for families whose rings cross none, e.g. a torus); and the
    /// first ring hop's first physical segment is cut (a node–switch
    /// fiber, or the direct trunk on switchless families).
    pub fn on_plant(healthy: Plant) -> Self {
        let params = RosterParams::default();
        let pre_ring = healthy.largest_ring();
        let mut scenarios = vec![];

        let mut push = |name: String, comp: Component| {
            let mut topo = healthy.clone();
            topo.apply(comp);
            let detection = detect(&topo, &pre_ring, comp, &params);
            let Detection::LossOfLight { detectors, .. } = detection.clone() else {
                panic!("{name}: expected loss-of-light, got {detection:?}");
            };
            let detectors: Vec<NodeId> = detectors
                .into_iter()
                .filter(|&d| topo.connectable(d))
                .collect();
            let expected_master =
                elect_flooding_master(&topo, &detection).expect("a connectable detector exists");
            let survivors = topo.largest_ring();
            let paths = detectors
                .iter()
                .map(|&d| rotate_path(&survivors.order, d))
                .collect();
            let (group, failed_node, expected_new_leader) = match comp {
                Component::Node(dead) => {
                    let mut g = ControlGroup::new(GroupId(1));
                    for id in healthy.node_ids() {
                        g.join(id.0, qualification(id.0)).expect("unique nodes");
                    }
                    g.mark_offline(dead.0);
                    let heir = g.leader().expect("survivors remain").node;
                    (Some(g), Some(dead.0), Some(heir))
                }
                _ => (None, None, None),
            };
            scenarios.push(Scenario {
                name,
                comp,
                topo,
                pre_ring: pre_ring.clone(),
                detectors,
                expected_master,
                paths,
                group,
                failed_node,
                expected_new_leader,
            });
        };

        for k in healthy.node_ids() {
            push(format!("node{}-dies", k.0), Component::Node(k));
        }
        // Kill the middle of the route crossing the most switching
        // elements: the one crossbar switch, or the spine of a Clos
        // leaf–spine–leaf route.
        if let Some(h) = pre_ring.hops.iter().max_by_key(|h| h.via.len()) {
            if !h.via.is_empty() {
                let sw = h.via[h.via.len() / 2];
                push(format!("switch{}-dies", sw.0), Component::Switch(sw));
            }
        }
        let u = pre_ring.order[0];
        let v = pre_ring.order[1 % pre_ring.order.len()];
        let cut = match pre_ring.hops[0].via.first() {
            Some(&sw) => Component::Link(u, sw),
            None if u <= v => Component::Trunk(u, v),
            None => Component::Trunk(v, u),
        };
        push(format!("hop0-{cut:?}-cut"), cut);
        RosterModel {
            scenarios,
            drop_budget: 1,
        }
    }

    fn sc<'a>(&'a self, s: &RosterState) -> &'a Scenario {
        &self.scenarios[s.scenario]
    }

    fn tokens_settled(s: &RosterState) -> bool {
        s.tokens
            .iter()
            .all(|t| matches!(t, TokenPhase::Done | TokenPhase::Killed))
    }

    /// Run the real rostering episode and verify its outcome.
    fn roster_checks(&self, s: &RosterState) -> bool {
        let sc = self.sc(s);
        let Ok(out) = run_rostering(&sc.topo, &sc.pre_ring, sc.comp, FAILED_AT, 1, &RosterParams::default())
        else {
            return false;
        };
        let excludes_failed = match sc.comp {
            Component::Node(dead) => !out.ring.order.contains(&dead),
            Component::Switch(dead) => out.ring.hops.iter().all(|h| !h.via.contains(&dead)),
            // A node–switch fiber is on a hop route iff it is the
            // first segment out of the transmitter or the last into
            // the receiver.
            Component::Link(u, sw) => (0..out.ring.len()).all(|i| {
                let a = out.ring.order[i];
                let b = out.ring.order[(i + 1) % out.ring.len()];
                let h = &out.ring.hops[i];
                !((a == u && h.via.first() == Some(&sw))
                    || (b == u && h.via.last() == Some(&sw)))
            }),
            Component::Trunk(x, y) => (0..out.ring.len()).all(|i| {
                let a = out.ring.order[i];
                let b = out.ring.order[(i + 1) % out.ring.len()];
                !(out.ring.hops[i].via.is_empty()
                    && ((a == x && b == y) || (a == y && b == x)))
            }),
            Component::Stage(x, y) => out.ring.hops.iter().all(|h| {
                !h.via
                    .windows(2)
                    .any(|w| (w[0] == x && w[1] == y) || (w[0] == y && w[1] == x))
            }),
        };
        Some(out.master) == s.master
            && out.master == sc.expected_master
            && out.epoch == 2
            && out.ring.validate(&sc.topo).is_ok()
            && excludes_failed
    }
}

impl Model for RosterModel {
    type State = RosterState;
    type Action = RosterAction;

    fn initial_states(&self) -> Vec<RosterState> {
        let n = self.scenarios.first().map_or(0, |s| s.topo.n_nodes());
        self.scenarios
            .iter()
            .enumerate()
            .map(|(i, sc)| RosterState {
                scenario: i,
                tokens: vec![TokenPhase::Idle; sc.detectors.len()],
                min_seen: vec![u8::MAX; n],
                drops_left: self.drop_budget,
                master: None,
                roster_ok: None,
                engine: None,
                polls: 0,
                report_ok: None,
            })
            .collect()
    }

    fn actions(&self, s: &RosterState, out: &mut Vec<RosterAction>) {
        for (d, t) in s.tokens.iter().enumerate() {
            match t {
                TokenPhase::Idle => out.push(RosterAction::Launch(d as u8)),
                TokenPhase::InFlight { .. } => {
                    out.push(RosterAction::Advance(d as u8));
                    if s.drops_left > 0 {
                        out.push(RosterAction::Drop(d as u8));
                    }
                }
                _ => {}
            }
        }
        if s.master.is_some() && s.roster_ok.is_none() {
            out.push(RosterAction::RunRoster);
        }
        if s.roster_ok.is_some()
            && s.engine.is_some()
            && s.report_ok.is_none()
            && s.polls < MAX_POLLS
        {
            out.push(RosterAction::PollFailover);
        }
    }

    fn next_state(&self, s: &RosterState, a: &RosterAction) -> RosterState {
        let mut n = s.clone();
        let sc = self.sc(s);
        match *a {
            RosterAction::Launch(d) => {
                let o = sc.paths[d as usize][0];
                let oi = o.0 as usize;
                n.min_seen[oi] = n.min_seen[oi].min(o.0);
                n.tokens[d as usize] = TokenPhase::InFlight { pos: 0 };
            }
            RosterAction::Advance(d) => {
                let path = &sc.paths[d as usize];
                let o = path[0];
                let TokenPhase::InFlight { pos } = s.tokens[d as usize] else {
                    unreachable!("enabled only in flight");
                };
                let next = pos as usize + 1;
                n.tokens[d as usize] = if next == path.len() {
                    // Wrapped home. If a lower token crossed the origin
                    // meanwhile, this tour is stale.
                    if n.min_seen[o.0 as usize] < o.0 {
                        TokenPhase::Killed
                    } else {
                        n.master = Some(o);
                        TokenPhase::Done
                    }
                } else {
                    let v = path[next];
                    let vi = v.0 as usize;
                    let lower_detector = sc.detectors.contains(&v) && v.0 < o.0;
                    if n.min_seen[vi] < o.0 || lower_detector {
                        TokenPhase::Killed
                    } else {
                        n.min_seen[vi] = n.min_seen[vi].min(o.0);
                        TokenPhase::InFlight { pos: next as u8 }
                    }
                };
            }
            RosterAction::Drop(d) => {
                n.tokens[d as usize] = TokenPhase::Idle;
                n.drops_left -= 1;
            }
            RosterAction::RunRoster => {
                n.roster_ok = Some(self.roster_checks(s));
                if let Some(dead) = sc.failed_node {
                    let mut engine =
                        FailoverEngine::new(FailoverPolicy::default(), Some(dead), SimTime::ZERO);
                    engine.leader_died(SimTime::ZERO);
                    n.engine = Some(engine);
                }
            }
            RosterAction::PollFailover => {
                n.polls += 1;
                let now = SimTime(n.polls as u64 * POLL_STEP_NS);
                let engine = n.engine.as_mut().expect("enabled only with engine");
                let group = sc.group.as_ref().expect("engine implies group");
                if let Some(report) = engine.poll(now, group) {
                    n.report_ok = Some(
                        Some(report.new_leader) == sc.expected_new_leader
                            && Some(report.old_leader) == sc.failed_node
                            && report.detected_at <= report.takeover_at
                            && report.takeover_at <= report.recovered_at,
                    );
                }
            }
        }
        n
    }

    fn fingerprint(&self, s: &RosterState) -> u64 {
        let mut h = FnvHasher::new();
        h.write_usize(s.scenario);
        s.tokens.hash(&mut h);
        h.write(&s.min_seen);
        h.write_u8(s.drops_left);
        h.write_u8(s.master.map_or(u8::MAX, |m| m.0));
        h.write_u8(s.roster_ok.map_or(2, u8::from));
        // The engine is a deterministic function of (scenario, polls):
        // the poll count pins its phase, so times stay out of the hash.
        h.write_u8(s.polls);
        h.write_u8(s.report_ok.map_or(2, u8::from));
        h.finish()
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            Property {
                name: "single-roster-master",
                kind: PropertyKind::Always,
                check: |_m, s| {
                    s.tokens
                        .iter()
                        .filter(|t| matches!(t, TokenPhase::Done))
                        .count()
                        <= 1
                },
            },
            Property {
                name: "master-is-lowest-detector",
                kind: PropertyKind::Always,
                check: |m, s| s.master.is_none_or(|w| w == m.sc(s).expected_master),
            },
            Property {
                name: "rostering-commits-valid-ring",
                kind: PropertyKind::Always,
                check: |_m, s| s.roster_ok != Some(false),
            },
            Property {
                name: "failover-elects-best-survivor",
                kind: PropertyKind::Always,
                check: |_m, s| s.report_ok != Some(false),
            },
            Property {
                name: "termination-is-full-recovery",
                kind: PropertyKind::AlwaysTerminal,
                check: |m, s| {
                    RosterModel::tokens_settled(s)
                        && s.tokens
                            .iter()
                            .filter(|t| matches!(t, TokenPhase::Done))
                            .count()
                            == 1
                        && s.roster_ok == Some(true)
                        && (m.sc(s).failed_node.is_none() || s.report_ok == Some(true))
                },
            },
            Property {
                name: "recovery-reachable",
                kind: PropertyKind::Eventually,
                check: |m, s| {
                    s.roster_ok == Some(true)
                        && (m.sc(s).failed_node.is_none() || s.report_ok == Some(true))
                },
            },
        ]
    }

    fn format_action(&self, a: &RosterAction) -> String {
        match *a {
            RosterAction::Launch(d) => format!("launch-token(d{d})"),
            RosterAction::Advance(d) => format!("token-hop(d{d})"),
            RosterAction::Drop(d) => format!("DROP-token(d{d})"),
            RosterAction::RunRoster => "run-rostering".into(),
            RosterAction::PollFailover => "poll-failover".into(),
        }
    }

    fn format_state(&self, s: &RosterState) -> String {
        let sc = self.sc(s);
        let tokens: Vec<String> = s
            .tokens
            .iter()
            .enumerate()
            .map(|(d, t)| {
                let origin = sc.paths[d][0].0;
                match t {
                    TokenPhase::Idle => format!("n{origin}:idle"),
                    TokenPhase::InFlight { pos } => {
                        format!("n{origin}:@n{}", sc.paths[d][*pos as usize].0)
                    }
                    TokenPhase::Killed => format!("n{origin}:killed"),
                    TokenPhase::Done => format!("n{origin}:DONE"),
                }
            })
            .collect();
        format!(
            "[{}] tokens({}) master={:?} roster={:?} polls={} failover={:?}",
            sc.name,
            tokens.join(" "),
            s.master.map(|m| m.0),
            s.roster_ok,
            s.polls,
            s.report_ok
        )
    }
}

/// Check every single-failure scenario of a 4-node quad plant.
pub fn check_roster(max_states: usize) -> CheckReport {
    crate::check(&RosterModel::quad_plant(4), CheckOptions { max_states })
}

/// The same model over a 2×2×2 torus: direct node–node trunks, no
/// switching elements, and maximal rings that may exclude a survivor.
pub fn check_roster_torus(max_states: usize) -> CheckReport {
    crate::check(
        &RosterModel::on_plant(Plant::torus3d([2, 2, 2], 100.0)),
        CheckOptions { max_states },
    )
}

/// The same model over a 4-node folded Clos (2 leaves × 2 spines):
/// multi-element leaf–spine–leaf hop routes.
pub fn check_roster_clos(max_states: usize) -> CheckReport {
    crate::check(
        &RosterModel::on_plant(Plant::folded_clos(4, 2, 2, 100.0)),
        CheckOptions { max_states },
    )
}
