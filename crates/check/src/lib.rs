//! # ampnet-check — explicit-state model checking for AmpNet protocols
//!
//! Seeded simulation and the chaos sweeps *sample* the schedule space;
//! this crate *enumerates* it. Every protocol state machine in the
//! workspace is sans-IO (no wall clock, no ambient randomness — the
//! determinism lint in `tests/determinism_lint.rs` enforces that), so
//! each can be driven as an explicit transition system: initial
//! states, enabled actions, a deterministic successor function. The
//! checker walks the bounded state graph breadth-first, dedups on
//! FNV-64 fingerprints (the same [`ampnet_sim::Fnv64`] the trace
//! digests use), and — because BFS — reconstructs a *shortest*
//! counterexample trace when a property fails, printed in the chaos
//! engine's flight-recorder style.
//!
//! Five shipped models exercise the paper's headline guarantees
//! against the **real crate code** (not re-implementations):
//!
//! * [`models::seqlock`] — the slide-9 two-counter message seqlock
//!   ([`ampnet_cache::seqlock_msg`]): no torn read is ever exposed.
//! * [`models::semaphore`] — slide-10 D64 network semaphores
//!   ([`ampnet_cache::SemaphoreClient`] + [`ampnet_cache::atomics`]):
//!   mutual exclusion and completion under message loss and
//!   retransmission.
//! * [`models::roster`] — detect → roster → recover
//!   ([`ampnet_roster`] + [`ampnet_dk`]): exactly one surviving
//!   roster master and one new application leader, under dropped
//!   Rostering tokens.
//! * [`models::arena`] — the `Deliver`/`Strip`/loan frame-ownership
//!   protocol ([`ampnet_packet::FrameArena`] + [`ampnet_ring::classify`]):
//!   no use-after-release, no slot leak.
//! * [`models::planner`] — the adaptive slice-planner decision
//!   ([`ampnet_core::plan_boundary`] via [`ampnet_core::SlicePlanner`]):
//!   no crossing delivered past its maturity, no shard starves, and
//!   the dead-air-skip / quiescent-wake paths are genuinely reachable.
//!
//! Each model also ships deliberately-broken mutation variants
//! (single-counter seqlock, split test-then-set, release without a
//! generation bump, a planner that forgets the crossing clamp). The checker finding those — with a printed
//! shortest trace — is its own self-test: it proves the green runs are
//! green because the protocols are right, not because the checker is
//! blind.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod channel;
mod explore;
mod model;
pub mod models;

pub use channel::FifoChannel;
pub use explore::{check, CheckOptions, CheckReport, Counterexample, TraceStep};
pub use model::{symmetric_fingerprint, FnvHasher, Model, Property, PropertyKind};
