//! Breadth-first explicit-state exploration with FNV-64 dedup and
//! shortest-path counterexample reconstruction.
//!
//! BFS visits states in depth order, so the first violation found is a
//! shortest one; its trace is rebuilt from parent pointers and printed
//! in the same `[ … ] label detail` style as the chaos engine's
//! flight-recorder dump, one line per action.

use crate::model::{Model, Property, PropertyKind};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Stop (incomplete) after this many distinct states.
    pub max_states: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states: 1_000_000,
        }
    }
}

/// One step of a counterexample: the action taken (empty for the
/// initial state) and the resulting state, both pre-formatted.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Action label, empty for step 0.
    pub action: String,
    /// State summary after the action.
    pub state: String,
}

/// A property violation with its shortest witnessing path.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated property.
    pub property: &'static str,
    /// Why the final state is a violation ("predicate false", or the
    /// panic message when real crate code asserted).
    pub reason: String,
    /// Initial state plus one entry per action.
    pub steps: Vec<TraceStep>,
}

impl Counterexample {
    /// Render in the flight-recorder dump style: a header line, then
    /// one `[ step ]` line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== counterexample: {} ({} steps) ===",
            self.property,
            self.steps.len().saturating_sub(1)
        );
        for (i, s) in self.steps.iter().enumerate() {
            let label = if i == 0 { "(init)" } else { s.action.as_str() };
            let _ = writeln!(out, "[{:>8}] {:<28} {}", format!("step {i}"), label, s.state);
        }
        let _ = writeln!(out, "violation: {}", self.reason);
        out
    }
}

/// Outcome of one exploration run.
#[derive(Debug)]
pub struct CheckReport {
    /// Distinct states visited (post symmetry/time quotient).
    pub visited: usize,
    /// Transitions taken (including ones into already-seen states).
    pub transitions: usize,
    /// Depth of the deepest visited state.
    pub max_depth: usize,
    /// Terminal (action-less) states seen.
    pub terminals: usize,
    /// `true` when the full bounded state space fit under
    /// [`CheckOptions::max_states`].
    pub complete: bool,
    /// First violation found, if any (shortest by BFS order).
    pub violation: Option<Counterexample>,
}

impl CheckReport {
    /// No violation and the space was fully explored.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && self.complete
    }

    /// One-line summary for harness output.
    pub fn summary(&self, name: &str) -> String {
        format!(
            "{name}: {} states, {} transitions, depth {}, {} terminal — {}",
            self.visited,
            self.transitions,
            self.max_depth,
            self.terminals,
            if self.violation.is_some() {
                "VIOLATION"
            } else if self.complete {
                "ok (exhaustive)"
            } else {
                "ok (budget hit, incomplete)"
            }
        )
    }
}

struct Node<M: Model> {
    state: M::State,
    parent: Option<(usize, M::Action)>,
    depth: usize,
}

/// Explore `model`'s bounded state space breadth-first.
pub fn check<M: Model>(model: &M, opts: CheckOptions) -> CheckReport {
    let props = model.properties();
    let safety: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::Always)
        .collect();
    let terminal_props: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::AlwaysTerminal)
        .collect();
    let eventually: Vec<&Property<M>> = props
        .iter()
        .filter(|p| p.kind == PropertyKind::Eventually)
        .collect();
    let mut eventually_met = vec![false; eventually.len()];

    let mut nodes: Vec<Node<M>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut report = CheckReport {
        visited: 0,
        transitions: 0,
        max_depth: 0,
        terminals: 0,
        complete: true,
        violation: None,
    };

    let admit = |state: M::State,
                     parent: Option<(usize, M::Action)>,
                     nodes: &mut Vec<Node<M>>,
                     queue: &mut VecDeque<usize>,
                     seen: &mut std::collections::HashSet<u64>|
     -> Option<usize> {
        let fp = model.fingerprint(&state);
        if !seen.insert(fp) {
            return None;
        }
        let depth = parent.as_ref().map(|&(p, _)| nodes[p].depth + 1).unwrap_or(0);
        nodes.push(Node {
            state,
            parent,
            depth,
        });
        queue.push_back(nodes.len() - 1);
        Some(nodes.len() - 1)
    };

    for s in model.initial_states() {
        admit(s, None, &mut nodes, &mut queue, &mut seen);
    }
    // Check the initial states before exploring.
    for i in 0..nodes.len() {
        if let Some(v) = check_state(model, &nodes, i, &safety, &eventually, &mut eventually_met) {
            report.visited = nodes.len();
            report.violation = Some(v);
            return report;
        }
    }

    let mut actions = Vec::new();
    while let Some(i) = queue.pop_front() {
        report.max_depth = report.max_depth.max(nodes[i].depth);
        actions.clear();
        model.actions(&nodes[i].state, &mut actions);
        if actions.is_empty() {
            report.terminals += 1;
            for p in &terminal_props {
                if !(p.check)(model, &nodes[i].state) {
                    report.visited = nodes.len();
                    report.violation = Some(build_trace(
                        model,
                        &nodes,
                        i,
                        p.name,
                        "terminal state fails the property".into(),
                    ));
                    return report;
                }
            }
            continue;
        }
        for a in actions.drain(..) {
            report.transitions += 1;
            let next = catch_unwind(AssertUnwindSafe(|| model.next_state(&nodes[i].state, &a)));
            let next = match next {
                Ok(s) => s,
                Err(payload) => {
                    // Real crate code fired an assertion (e.g. the
                    // arena's "stale FrameRef"): that *is* the
                    // counterexample.
                    let msg = panic_message(payload.as_ref());
                    let mut cx =
                        build_trace(model, &nodes, i, "no-panic", format!("panic: {msg}"));
                    cx.steps.push(TraceStep {
                        action: model.format_action(&a),
                        state: "⟂ (panicked)".into(),
                    });
                    report.visited = nodes.len();
                    report.violation = Some(cx);
                    return report;
                }
            };
            if let Some(j) = admit(next, Some((i, a)), &mut nodes, &mut queue, &mut seen) {
                if let Some(v) =
                    check_state(model, &nodes, j, &safety, &eventually, &mut eventually_met)
                {
                    report.visited = nodes.len();
                    report.violation = Some(v);
                    return report;
                }
                if nodes.len() >= opts.max_states {
                    report.complete = false;
                    report.visited = nodes.len();
                    return report;
                }
            }
        }
    }

    report.visited = nodes.len();
    for (k, p) in eventually.iter().enumerate() {
        if !eventually_met[k] {
            report.violation = Some(Counterexample {
                property: p.name,
                reason: "no reachable state satisfies the property".into(),
                steps: nodes
                    .first()
                    .map(|n| {
                        vec![TraceStep {
                            action: String::new(),
                            state: model.format_state(&n.state),
                        }]
                    })
                    .unwrap_or_default(),
            });
            return report;
        }
    }
    report
}

fn check_state<M: Model>(
    model: &M,
    nodes: &[Node<M>],
    i: usize,
    safety: &[&Property<M>],
    eventually: &[&Property<M>],
    eventually_met: &mut [bool],
) -> Option<Counterexample> {
    let state = &nodes[i].state;
    for (k, p) in eventually.iter().enumerate() {
        if !eventually_met[k] && (p.check)(model, state) {
            eventually_met[k] = true;
        }
    }
    for p in safety {
        let holds = catch_unwind(AssertUnwindSafe(|| (p.check)(model, state)));
        match holds {
            Ok(true) => {}
            Ok(false) => {
                return Some(build_trace(
                    model,
                    nodes,
                    i,
                    p.name,
                    "property predicate is false".into(),
                ))
            }
            Err(payload) => {
                return Some(build_trace(
                    model,
                    nodes,
                    i,
                    p.name,
                    format!("panic while checking: {}", panic_message(payload.as_ref())),
                ))
            }
        }
    }
    None
}

fn build_trace<M: Model>(
    model: &M,
    nodes: &[Node<M>],
    end: usize,
    property: &'static str,
    reason: String,
) -> Counterexample {
    let mut chain = Vec::new();
    let mut cur = end;
    loop {
        chain.push(cur);
        match nodes[cur].parent {
            Some((p, _)) => cur = p,
            None => break,
        }
    }
    chain.reverse();
    let steps = chain
        .iter()
        .map(|&i| TraceStep {
            action: nodes[i]
                .parent
                .as_ref()
                .map(|(_, a)| model.format_action(a))
                .unwrap_or_default(),
            state: model.format_state(&nodes[i].state),
        })
        .collect();
    Counterexample {
        property,
        reason,
        steps,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FnvHasher, PropertyKind};
    use std::hash::{Hash, Hasher};

    /// A counter that increments mod `n`; violation when it reaches a
    /// forbidden value.
    struct Wrap {
        n: u8,
        forbidden: Option<u8>,
        panic_at: Option<u8>,
    }

    impl Model for Wrap {
        type State = u8;
        type Action = ();

        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }

        fn actions(&self, s: &u8, out: &mut Vec<()>) {
            if *s + 1 < self.n {
                out.push(());
            }
        }

        fn next_state(&self, s: &u8, _a: &()) -> u8 {
            if Some(*s + 1) == self.panic_at {
                panic!("hit the tripwire");
            }
            *s + 1
        }

        fn fingerprint(&self, s: &u8) -> u64 {
            let mut h = FnvHasher::new();
            s.hash(&mut h);
            h.finish()
        }

        fn properties(&self) -> Vec<Property<Self>> {
            let mut ps = vec![
                Property {
                    name: "below-forbidden",
                    kind: PropertyKind::Always,
                    check: |m: &Wrap, s: &u8| Some(*s) != m.forbidden,
                },
                Property {
                    name: "terminal-is-max",
                    kind: PropertyKind::AlwaysTerminal,
                    check: |m: &Wrap, s: &u8| *s + 1 == m.n,
                },
            ];
            ps.push(Property {
                name: "reaches-two",
                kind: PropertyKind::Eventually,
                check: |_m: &Wrap, s: &u8| *s == 2,
            });
            ps
        }

        fn format_action(&self, _a: &()) -> String {
            "tick".into()
        }

        fn format_state(&self, s: &u8) -> String {
            format!("count={s}")
        }
    }

    #[test]
    fn explores_chain_exhaustively() {
        let m = Wrap {
            n: 5,
            forbidden: None,
            panic_at: None,
        };
        let r = check(&m, CheckOptions::default());
        assert!(r.passed(), "{:?}", r.violation.map(|v| v.render()));
        assert_eq!(r.visited, 5);
        assert_eq!(r.terminals, 1);
        assert_eq!(r.max_depth, 4);
    }

    #[test]
    fn safety_violation_yields_shortest_trace() {
        let m = Wrap {
            n: 10,
            forbidden: Some(3),
            panic_at: None,
        };
        let r = check(&m, CheckOptions::default());
        let v = r.violation.expect("must violate");
        assert_eq!(v.property, "below-forbidden");
        // init + 3 ticks.
        assert_eq!(v.steps.len(), 4);
        let rendered = v.render();
        assert!(rendered.contains("counterexample: below-forbidden"));
        assert!(rendered.contains("count=3"));
        assert!(rendered.contains("step 3"));
    }

    #[test]
    fn panic_becomes_counterexample() {
        let m = Wrap {
            n: 10,
            forbidden: None,
            panic_at: Some(4),
        };
        let r = check(&m, CheckOptions::default());
        let v = r.violation.expect("panic must be caught");
        assert_eq!(v.property, "no-panic");
        assert!(v.reason.contains("tripwire"));
        assert!(v.render().contains("⟂"));
    }

    #[test]
    fn eventually_unmet_is_reported() {
        let m = Wrap {
            n: 2, // never reaches 2: states are 0, 1
            forbidden: None,
            panic_at: None,
        };
        let r = check(&m, CheckOptions::default());
        let v = r.violation.expect("liveness must fail");
        assert_eq!(v.property, "reaches-two");
    }

    #[test]
    fn budget_stops_incomplete() {
        let m = Wrap {
            n: 100,
            forbidden: None,
            panic_at: None,
        };
        let r = check(&m, CheckOptions { max_states: 10 });
        assert!(!r.complete);
        assert!(!r.passed());
        assert!(r.violation.is_none());
        assert!(r.summary("wrap").contains("incomplete"));
    }
}
