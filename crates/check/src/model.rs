//! The [`Model`] trait: a protocol as an explicit transition system.
//!
//! A model wraps *real* crate code — `SemaphoreClient`, `FrameArena`,
//! `try_read`'s step sequence — behind a small interface the breadth-
//! first explorer can drive: initial states, enabled actions, a
//! deterministic successor function, and the properties that must hold
//! over every reachable state.

use ampnet_sim::Fnv64;
use std::hash::Hasher;

/// When a property is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyKind {
    /// Must hold in every reachable state (safety).
    Always,
    /// Must hold in every *terminal* state — a state with no enabled
    /// action. This is how deadlock-freedom and "all rounds complete"
    /// are phrased: the only way to stop is to stop finished.
    AlwaysTerminal,
    /// Some reachable state must satisfy it (bounded liveness /
    /// reachability within the explored space).
    Eventually,
}

/// A named property over a model's states.
pub struct Property<M: Model + ?Sized> {
    /// Short name printed in reports and counterexample headers.
    pub name: &'static str,
    /// Evaluation mode.
    pub kind: PropertyKind,
    /// The predicate. For `Always`/`AlwaysTerminal` a `false` result is
    /// a violation; for `Eventually` it marks the state as satisfying.
    pub check: fn(&M, &M::State) -> bool,
}

/// An explicit-state transition system over real protocol code.
///
/// `next_state` must be **deterministic**: the counterexample printer
/// replays the parent chain of a violating state and the replayed
/// states must match the explored ones. All AmpNet protocol machines
/// are sans-IO and seed-free, so this falls out naturally.
pub trait Model {
    /// One global state of the system under check.
    type State: Clone;
    /// One atomic transition (a protocol step, a message delivery, a
    /// fault injection).
    type Action: Clone;

    /// The root(s) of the state graph.
    fn initial_states(&self) -> Vec<Self::State>;

    /// Enabled actions in `state`, appended to `out` in a fixed order.
    /// An empty set makes the state terminal.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// The unique successor of `state` under `action`.
    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// 64-bit fingerprint used for visited-set dedup.
    ///
    /// Two states with equal fingerprints are treated as the same
    /// vertex, so the fingerprint defines the quotient actually
    /// explored. Models exploit this deliberately:
    ///
    /// * **Time abstraction.** Absolute `SimTime`s and attempt
    ///   counters are excluded, collapsing states that differ only in
    ///   how long they took to reach. Sound for safety properties
    ///   (every quotient state is reachable; its properties are
    ///   checked on a representative).
    /// * **Node-id symmetry.** Per-node fingerprint blocks are sorted
    ///   before folding (see [`symmetric_fingerprint`]), collapsing
    ///   states that differ only by a permutation of interchangeable
    ///   node ids.
    fn fingerprint(&self, state: &Self::State) -> u64;

    /// The properties checked during exploration.
    fn properties(&self) -> Vec<Property<Self>>;

    /// Human-readable action label for counterexample traces.
    fn format_action(&self, action: &Self::Action) -> String;

    /// Human-readable state summary for counterexample traces.
    fn format_state(&self, state: &Self::State) -> String;
}

/// FNV-64 [`Hasher`] adapter so models can fingerprint any `Hash`
/// component (e.g. `FrameRef`, whose fields are private) with the same
/// digest function the rest of the workspace uses.
#[derive(Debug, Default)]
pub struct FnvHasher(Fnv64);

impl FnvHasher {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        FnvHasher(Fnv64::new())
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.0.finish()
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0.finish()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0.fold(bytes);
    }
}

/// Node-id symmetry reduction: fold `shared` state, then every
/// per-node block *in sorted order*, so any permutation of
/// interchangeable nodes lands on the same fingerprint.
///
/// Only valid when the per-node blocks really are interchangeable —
/// each block must itself be id-free (use role tags like "holder" /
/// "waiter", not raw node ids) and the shared state must not name
/// individual nodes except through the blocks.
pub fn symmetric_fingerprint(shared: u64, mut blocks: Vec<u64>) -> u64 {
    blocks.sort_unstable();
    let mut h = Fnv64::from_state(shared);
    for b in blocks {
        h.fold_u64(b);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_hasher_matches_fnv64() {
        let mut h = FnvHasher::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), ampnet_sim::fnv64(b"foobar"));
    }

    #[test]
    fn symmetric_fingerprint_permutation_invariant() {
        let a = symmetric_fingerprint(7, vec![10, 20, 30]);
        let b = symmetric_fingerprint(7, vec![30, 10, 20]);
        assert_eq!(a, b);
        let c = symmetric_fingerprint(8, vec![10, 20, 30]);
        assert_ne!(a, c, "shared state still distinguishes");
    }
}
