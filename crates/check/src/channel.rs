//! Bounded adversarial message channels, modeled as explicit actions.
//!
//! The AmpNet ring preserves **per-source FIFO** order: a node's
//! MicroPackets arrive at any given destination in the order they were
//! inserted (register insertion never reorders a source's stream, it
//! only interleaves sources). The channel model mirrors that exactly:
//!
//! * each source gets its own FIFO queue — reordering exists only as
//!   the interleaving of *different* sources' deliveries, never within
//!   one source's stream;
//! * **loss** is an explicit `drop front` action spending a bounded
//!   per-run budget (an unbounded adversary would trivially defeat
//!   every liveness property);
//! * **duplication** is driven by the sender's retransmission path
//!   (e.g. [`ampnet_cache::SemaphoreClient::resend`]) rather than by
//!   the wire duplicating packets on its own — that is the failure
//!   mode the paper's idempotent tagged atomics are designed for.
//!
//! Modeling a fully-unordered channel instead would produce a *real*
//! counterexample against the semaphore protocol (a stale duplicated
//! `Clear` crossing acquire rounds can release another client's lock),
//! which is exactly why the channel model must match the fabric's
//! actual ordering guarantee. See DESIGN.md §11.

use std::collections::VecDeque;

/// One source's FIFO message queue with a shared loss budget hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoChannel<M> {
    queue: VecDeque<M>,
}

impl<M> Default for FifoChannel<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> FifoChannel<M> {
    /// An empty channel.
    pub fn new() -> Self {
        FifoChannel {
            queue: VecDeque::new(),
        }
    }

    /// Queue a message at the tail.
    pub fn send(&mut self, m: M) {
        self.queue.push_back(m);
    }

    /// Deliver (pop) the head message.
    pub fn deliver(&mut self) -> Option<M> {
        self.queue.pop_front()
    }

    /// Drop the head message (loss). The caller owns the budget.
    pub fn drop_front(&mut self) -> Option<M> {
        self.queue.pop_front()
    }

    /// Messages in flight.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Peek at the head without delivering.
    pub fn front(&self) -> Option<&M> {
        self.queue.front()
    }

    /// In-flight messages, head first (for fingerprinting).
    pub fn iter(&self) -> impl Iterator<Item = &M> {
        self.queue.iter()
    }
}

impl<'a, M> IntoIterator for &'a FifoChannel<M> {
    type Item = &'a M;
    type IntoIter = std::collections::vec_deque::Iter<'a, M>;

    fn into_iter(self) -> Self::IntoIter {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut c = FifoChannel::new();
        c.send(1);
        c.send(2);
        c.send(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.deliver(), Some(1));
        assert_eq!(c.front(), Some(&2));
        assert_eq!(c.drop_front(), Some(2));
        assert_eq!(c.deliver(), Some(3));
        assert!(c.is_empty());
        assert_eq!(c.deliver(), None::<i32>);
    }

    #[test]
    fn iteration_is_head_first() {
        let mut c = FifoChannel::new();
        c.send("a");
        c.send("b");
        let v: Vec<_> = c.iter().copied().collect();
        assert_eq!(v, ["a", "b"]);
    }
}
