//! # ampnet-chaos — scripted fault storms with machine-checked guarantees
//!
//! AmpNet's headline claims are availability claims: a simultaneous
//! all-to-all broadcast never drops packets (slides 7–8), failures are
//! detected in milliseconds and the ring self-heals in about two ring
//! tours (slides 16–18), and applications fail over with "no down time
//! and no loss of data" (slide 19). This crate turns those claims into
//! executable invariants checked from *outside* the stack.
//!
//! A [`Scenario`] is a timed fault schedule — node crashes, switch
//! failures, fiber cuts, repairs, rejoins, phy-level bit-error bursts —
//! interleaved with traffic generators (all-to-all messaging,
//! ping-pong, cache write storms, semaphore contention, seqlock
//! probes, a replicated-counter failover app). The engine runs the
//! schedule against a deterministic [`ampnet_core::Cluster`], keeps an
//! external delivery [`Ledger`] of uniquely tagged payloads, and after
//! every step runs a pluggable set of [`Invariant`] checkers.
//!
//! ```
//! use ampnet_chaos::{Scenario, FaultOp, Traffic};
//! use ampnet_core::{ClusterConfig, SimDuration};
//!
//! let scenario = Scenario::builder(ClusterConfig::small(6).with_seed(7))
//!     .traffic(Traffic::all_to_all())
//!     .fault_in(SimDuration::from_millis(10), FaultOp::CrashNode(3))
//!     .standard_invariants()
//!     .build();
//! let report = scenario.run();
//! assert!(report.ok(), "{}", report.summary());
//! ```
//!
//! [`Scenario::sweep`] replays the same schedule under many seeds;
//! a failing seed is shrunk to a minimal fault schedule and returned
//! with the full [`ampnet_sim::Trace`] dump and the deterministic
//! trace digest for replay.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod invariant;
mod ledger;
pub mod multiseg;
mod scenario;
mod sweep;

pub use engine::{apply_fault_schedule, RunReport, Violation};
pub use invariant::{
    CheckCtx, FailoverWithinPolicy, Invariant, LosslessDelivery, MutualExclusion, NoDuplicates,
    Phase, ReconvergenceBound, RingDrops, SeqlockCoherence, StateConservation,
};
pub use ledger::Ledger;
pub use scenario::{FaultEvent, FaultOp, Scenario, ScenarioBuilder, Traffic};
pub use sweep::{FailureCase, SweepOutcome};
