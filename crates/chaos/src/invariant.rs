//! The invariant catalogue: pluggable checkers for the paper's
//! guarantees, evaluated from outside the stack.
//!
//! Each [`Invariant`] sees a read-only [`CheckCtx`] — the cluster, the
//! external delivery [`Ledger`] and the current phase — and returns
//! `Err(detail)` on violation. Checkers for traffic that is not
//! running in the scenario pass vacuously, so the standard catalogue
//! can always be attached wholesale.

use crate::ledger::Ledger;
use ampnet_core::{Cluster, FailoverPolicy, SimDuration, SimTime};

/// When a check runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// After a traffic/fault step (cluster may be mid-recovery).
    Step,
    /// After the settle period: everything replayable has replayed.
    End,
}

/// Read-only view handed to every invariant check.
pub struct CheckCtx<'a> {
    /// Step or end-of-run.
    pub phase: Phase,
    /// Zero-based step index (equals the step count at [`Phase::End`]).
    pub step: u32,
    /// Simulated now.
    pub now: SimTime,
    /// The cluster under test.
    pub cluster: &'a Cluster,
    /// The external delivery ledger.
    pub ledger: &'a Ledger,
    /// Failover policy of the counter app, when one is running.
    pub policy: Option<FailoverPolicy>,
}

/// A cluster-wide invariant, checked after every step and at the end.
pub trait Invariant {
    /// Stable name used for violation reporting and deduplication.
    fn name(&self) -> &'static str;
    /// Return `Err(detail)` if the invariant is violated.
    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String>;
}

/// The register-insertion MAC never drops a packet, under any fault
/// schedule (paper slide 8: flow control by insertion, not discard).
pub struct RingDrops;

impl Invariant for RingDrops {
    fn name(&self) -> &'static str {
        "ring-drops"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String> {
        let drops = ctx.cluster.total_drops();
        if drops == 0 {
            Ok(())
        } else {
            Err(format!("MAC would have dropped {drops} packet(s)"))
        }
    }
}

/// Every tagged message between endpoints that stayed alive is
/// delivered by the end of the run — smart data recovery replays
/// everything outstanding across roster episodes (slides 16–18).
pub struct LosslessDelivery;

impl Invariant for LosslessDelivery {
    fn name(&self) -> &'static str {
        "lossless-delivery"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String> {
        // Mid-run, messages are legitimately in flight (or parked
        // behind a roster episode awaiting replay); only the end of
        // the run is binding.
        if ctx.phase != Phase::End {
            return Ok(());
        }
        let missing = ctx.ledger.outstanding();
        if missing == 0 {
            return Ok(());
        }
        let sample: Vec<String> = ctx
            .ledger
            .outstanding_sample(4)
            .into_iter()
            .map(|(id, src, dst, at)| format!("#{id} {src}->{dst} sent@{}ns", at.0))
            .collect();
        Err(format!(
            "{missing} live-endpoint message(s) never delivered (e.g. {})",
            sample.join(", ")
        ))
    }
}

/// No tagged message is ever delivered twice or at the wrong node —
/// failover replay must be deduplicated by the receiver.
pub struct NoDuplicates;

impl Invariant for NoDuplicates {
    fn name(&self) -> &'static str {
        "no-duplicates"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String> {
        let l = ctx.ledger;
        if !l.duplicates.is_empty() {
            return Err(format!(
                "{} duplicate delivery(ies), first tag #{}",
                l.duplicates.len(),
                l.duplicates[0]
            ));
        }
        if !l.wrong_node.is_empty() {
            return Err(format!(
                "{} misdelivered message(s), first tag #{}",
                l.wrong_node.len(),
                l.wrong_node[0]
            ));
        }
        Ok(())
    }
}

/// Guarded seqlock readers never observe a torn record (slide 9).
/// Vacuous when no seqlock probe is running.
pub struct SeqlockCoherence;

impl Invariant for SeqlockCoherence {
    fn name(&self) -> &'static str {
        "seqlock-coherence"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String> {
        match ctx.cluster.seq_report() {
            Some(r) if r.torn > 0 => Err(format!(
                "{} torn snapshot(s) escaped the guard ({} writes, {} clean reads)",
                r.torn, r.writes, r.reads_ok
            )),
            _ => Ok(()),
        }
    }
}

/// Every completed roster episode reconverges within the paper's
/// bound: detection plus two protocol tours, expressed in ring-tour
/// units of the *new* ring.
pub struct ReconvergenceBound {
    /// Maximum allowed recovery, in ring tours (detection included).
    pub max_tours: f64,
}

impl Default for ReconvergenceBound {
    /// ~2 protocol tours plus detection and scheduling margin.
    fn default() -> Self {
        ReconvergenceBound { max_tours: 3.5 }
    }
}

impl Invariant for ReconvergenceBound {
    fn name(&self) -> &'static str {
        "reconvergence-bound"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String> {
        for (i, ev) in ctx.cluster.roster_history().iter().enumerate() {
            let tours = ev.outcome.recovery_in_tours();
            if tours.is_finite() && tours > self.max_tours {
                return Err(format!(
                    "roster episode {i} ({:?}) took {tours:.2} tours (bound {})",
                    ev.reason, self.max_tours
                ));
            }
        }
        Ok(())
    }
}

/// Application failover happens within the bounds of its
/// [`FailoverPolicy`]: no premature declaration or takeover, and
/// detection/takeover/recovery each complete within the policy's
/// latency plus polling granularity. Vacuous without a counter app.
pub struct FailoverWithinPolicy {
    /// Extra scheduling slack allowed on each upper bound.
    pub slack: SimDuration,
}

impl Default for FailoverWithinPolicy {
    /// One millisecond of slack — generous next to the policy's own
    /// quarter-millisecond heartbeat default.
    fn default() -> Self {
        FailoverWithinPolicy { slack: SimDuration::from_millis(1) }
    }
}

impl Invariant for FailoverWithinPolicy {
    fn name(&self) -> &'static str {
        "failover-within-policy"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String> {
        let Some(report) = ctx.cluster.counter_report() else {
            return Ok(());
        };
        let Some(policy) = ctx.policy else {
            return Ok(());
        };
        let hb = policy.heartbeat_interval;
        for (i, resume) in report.resumes.iter().enumerate() {
            let r = &resume.report;
            if r.detected_at < r.failed_at {
                return Err(format!("failover {i}: detected before the leader died"));
            }
            // Silence accrues from the last heartbeat (≤ failed_at)
            // and is sampled at heartbeat granularity, so the true
            // detection latency may straddle the policy figure by up
            // to one interval either way.
            let det = r.detection_latency();
            let det_min = policy.detection_latency().saturating_sub(hb);
            let det_max = policy.detection_latency() + hb + hb + self.slack;
            if det < det_min {
                return Err(format!(
                    "failover {i}: declared after {}ns silence, policy requires {}ns",
                    det.0,
                    policy.detection_latency().0
                ));
            }
            if det > det_max {
                return Err(format!(
                    "failover {i}: detection took {}ns, bound {}ns",
                    det.0, det_max.0
                ));
            }
            // The failover period is a hard grace both ways: takeover
            // never before it elapses, and not much after.
            let grace = r.takeover_at.saturating_since(r.detected_at);
            if grace < policy.failover_period {
                return Err(format!(
                    "failover {i}: takeover after {}ns grace, policy requires {}ns",
                    grace.0, policy.failover_period.0
                ));
            }
            if grace > policy.failover_period + hb + self.slack {
                return Err(format!(
                    "failover {i}: takeover took {}ns past detection, bound {}ns",
                    grace.0,
                    (policy.failover_period + hb + self.slack).0
                ));
            }
            let recov = r.recovered_at.saturating_since(r.takeover_at);
            if r.recovered_at < r.takeover_at
                || recov > policy.recovery_time() + hb + self.slack
            {
                return Err(format!(
                    "failover {i}: recovery took {}ns, rule allows {}ns",
                    recov.0,
                    policy.recovery_time().0
                ));
            }
        }
        Ok(())
    }
}

/// The D64 network semaphore never admits two holders (slide 10).
/// Vacuous when no semaphore stress is running.
pub struct MutualExclusion;

impl Invariant for MutualExclusion {
    fn name(&self) -> &'static str {
        "mutual-exclusion"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String> {
        match ctx.cluster.sem_report() {
            Some(r) if r.violations > 0 => Err(format!(
                "{} mutual-exclusion violation(s) across {} acquisitions",
                r.violations, r.acquisitions
            )),
            _ => Ok(()),
        }
    }
}

/// End-of-run conservation: all online cache replicas converged, and
/// the counter app lost no committed increment across any failover
/// ("no loss of data", slide 19).
pub struct StateConservation;

impl Invariant for StateConservation {
    fn name(&self) -> &'static str {
        "state-conservation"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Result<(), String> {
        if ctx.phase != Phase::End {
            return Ok(());
        }
        if !ctx.cluster.caches_converged() {
            return Err("online cache replicas diverge after settle".into());
        }
        if let Some(report) = ctx.cluster.counter_report() {
            for (i, resume) in report.resumes.iter().enumerate() {
                if resume.lost_committed > 0 {
                    return Err(format!(
                        "failover {i}: {} committed increment(s) lost (resumed at {})",
                        resume.lost_committed, resume.resume_value
                    ));
                }
            }
            for &(node, value) in &report.final_values {
                if value < report.committed {
                    return Err(format!(
                        "node {node} ended at counter {value}, but {} was committed",
                        report.committed
                    ));
                }
            }
        }
        Ok(())
    }
}
