//! External delivery ledger.
//!
//! The loss/duplication invariants are checked from outside the stack:
//! every message the engine injects carries a unique tag, and the
//! ledger tracks each tag from send to drain. A tag is *doomed* when a
//! scheduled crash takes out one of its endpoints before delivery —
//! the paper's guarantee does not cover traffic to or from a dead node
//! — and doomed tags are allowed (but not required) to go missing.
//! Everything else must arrive exactly once, at the right node.

use ampnet_core::SimTime;
use std::collections::{BTreeMap, BTreeSet};

const MAGIC: [u8; 4] = *b"CHS!";

/// Encode a tagged chaos payload.
pub(crate) fn encode_payload(id: u64, src: u8, dst: u8) -> Vec<u8> {
    let mut p = Vec::with_capacity(14);
    p.extend_from_slice(&MAGIC);
    p.extend_from_slice(&id.to_le_bytes());
    p.push(src);
    p.push(dst);
    p
}

/// Decode a tagged chaos payload, if it is one.
pub(crate) fn decode_payload(p: &[u8]) -> Option<(u64, u8, u8)> {
    if p.len() != 14 || p[..4] != MAGIC {
        return None;
    }
    let id = u64::from_le_bytes(p[4..12].try_into().expect("8 bytes")); // lint: allow(panic-freedom): ledger records are fixed-layout; bytes 4..12 always present
    Some((id, p[12], p[13]))
}

#[derive(Debug, Clone, Copy)]
struct SentMsg {
    src: u8,
    dst: u8,
    sent_at: SimTime,
}

/// Ledger of injected messages and their fates.
#[derive(Debug, Default)]
pub struct Ledger {
    next_id: u64,
    pending: BTreeMap<u64, SentMsg>,
    doomed: BTreeSet<u64>,
    seen: BTreeSet<u64>,
    /// Tags delivered exactly once to the right node.
    pub delivered: u64,
    /// Tags excused by an endpoint crash (delivery optional).
    pub doomed_total: u64,
    /// Tags delivered more than once (replay dedup failure).
    pub duplicates: Vec<u64>,
    /// Tags that surfaced at a node other than their destination.
    pub wrong_node: Vec<u64>,
}

impl Ledger {
    /// Record a send; returns the tagged payload to inject. Public so
    /// external drivers (the `ampnet-load` workload engine) can put
    /// their own traffic under the same exactly-once accounting the
    /// chaos invariants check.
    pub fn send(&mut self, src: u8, dst: u8, now: SimTime) -> Vec<u8> {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(id, SentMsg { src, dst, sent_at: now });
        encode_payload(id, src, dst)
    }

    /// Record a drained message observed at `node`. Payloads that are
    /// not chaos-tagged (no magic prefix, or trailing application
    /// bytes) are ignored, so callers may feed every drained datagram.
    pub fn drained(&mut self, node: u8, payload: &[u8]) {
        let Some((id, _src, dst)) = decode_payload(payload) else {
            return; // not chaos traffic (collectives, raw cells, apps)
        };
        if self.seen.contains(&id) {
            self.duplicates.push(id);
            return;
        }
        self.seen.insert(id);
        if dst != node {
            self.wrong_node.push(id);
            return;
        }
        if self.pending.remove(&id).is_some() || self.doomed.remove(&id) {
            self.delivered += 1;
        } else {
            // A tag we never sent: count as wrong-node class.
            self.wrong_node.push(id);
        }
    }

    /// Excuse all pending messages touching `node` (it crashed).
    pub fn doom_endpoint(&mut self, node: u8) {
        let ids: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, m)| m.src == node || m.dst == node)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            self.pending.remove(&id);
            self.doomed.insert(id);
            self.doomed_total += 1;
        }
    }

    /// Tags sent so far.
    pub fn sent(&self) -> u64 {
        self.next_id
    }

    /// Tags still awaiting mandatory delivery.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Oldest outstanding tags, for diagnostics.
    pub fn outstanding_sample(&self, n: usize) -> Vec<(u64, u8, u8, SimTime)> {
        self.pending
            .iter()
            .take(n)
            .map(|(&id, m)| (id, m.src, m.dst, m.sent_at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_payload() {
        let p = encode_payload(42, 3, 5);
        assert_eq!(decode_payload(&p), Some((42, 3, 5)));
        assert_eq!(decode_payload(b"hello, not chaos"), None);
        assert_eq!(decode_payload(&p[..10]), None);
    }

    #[test]
    fn exactly_once_accounting() {
        let mut l = Ledger::default();
        let p = l.send(0, 2, SimTime::ZERO);
        assert_eq!(l.outstanding(), 1);
        l.drained(2, &p);
        assert_eq!(l.delivered, 1);
        assert_eq!(l.outstanding(), 0);
        l.drained(2, &p);
        assert_eq!(l.duplicates, vec![0]);
    }

    #[test]
    fn wrong_node_flagged() {
        let mut l = Ledger::default();
        let p = l.send(0, 2, SimTime::ZERO);
        l.drained(3, &p);
        assert_eq!(l.wrong_node, vec![0]);
        assert_eq!(l.delivered, 0);
    }

    #[test]
    fn doomed_messages_are_excused_but_may_arrive() {
        let mut l = Ledger::default();
        let p1 = l.send(0, 7, SimTime::ZERO);
        let _p2 = l.send(7, 1, SimTime::ZERO);
        l.doom_endpoint(7);
        assert_eq!(l.outstanding(), 0);
        assert_eq!(l.doomed_total, 2);
        // The in-flight one arrives anyway: fine, counted delivered.
        l.drained(7, &p1);
        assert_eq!(l.delivered, 1);
        assert!(l.duplicates.is_empty());
    }
}
