//! The run engine: boots the cluster, schedules the fault storm,
//! drives traffic step by step, drains the delivery ledger and
//! evaluates every invariant after every step.

use crate::invariant::{CheckCtx, Phase};
use crate::ledger::Ledger;
use crate::scenario::{FaultEvent, FaultOp, Scenario, Traffic};
use ampnet_core::{
    BackoffPolicy, Cluster, Component, CounterAppConfig, FailoverPolicy, Features, JoinRequest,
    NodeId, RecordLayout, RosterReason, SemStressConfig, SeqProbeConfig, SimDuration, SimTime,
    SwitchId, Version,
};
use std::collections::BTreeSet;

/// Cache offsets used by the engine's generators, chosen to coexist
/// in region 0: seqlock probe at 1024, semaphore at 2048, counter app
/// records at 4096/4160, write-storm slots from 8192.
const COUNTER_OFFSET: u32 = 4096;
const HEARTBEAT_OFFSET: u32 = 4160;
const STORM_BASE: u32 = 8192;
const STORM_STRIDE: u32 = 64;

/// Flight-recorder ring depth for chaos runs: enough to hold the
/// plane events surrounding the last few fault reactions.
const FLIGHT_CAPACITY: usize = 1024;

/// One invariant violation. Only the first violation of each
/// invariant is recorded per run.
#[derive(Debug, Clone)]
pub struct Violation {
    /// [`crate::Invariant::name`] of the tripped checker.
    pub invariant: &'static str,
    /// Simulated instant of the check that tripped.
    pub at: SimTime,
    /// Step index (equals the step count for end-of-run checks).
    pub step: u32,
    /// Human-readable detail.
    pub detail: String,
}

/// Result of one scenario run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Seed the cluster ran under.
    pub seed: u64,
    /// Invariant violations, in trip order (empty = pass).
    pub violations: Vec<Violation>,
    /// Tagged messages injected.
    pub sent: u64,
    /// Tagged messages delivered exactly once to the right node.
    pub delivered: u64,
    /// Tagged messages excused by an endpoint crash.
    pub doomed: u64,
    /// Roster episodes (boot included) over the run.
    pub roster_episodes: usize,
    /// Simulated time the ring spent reconverging, summed over every
    /// post-boot roster episode (failure instant → ring live), ns.
    pub reconvergence_ns: u64,
    /// Worst single post-boot roster episode (ns) — the failover
    /// latency an application rides through.
    pub failover_ns: u64,
    /// Final roster epoch.
    pub final_epoch: u64,
    /// Simulated end of run.
    pub final_time: SimTime,
    /// Deterministic FNV digest of the full milestone trace — equal
    /// digests mean bit-identical runs.
    pub trace_digest: u64,
    /// Rendered milestone trace; populated only for failing runs.
    pub trace_dump: String,
    /// Flight-recorder timeline (the last plane events before the
    /// first violation); populated only for failing runs.
    pub flight_dump: String,
}

impl RunReport {
    /// `true` when no invariant tripped.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line accounting plus one line per violation.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "chaos run seed={}: {} sent, {} delivered, {} doomed, {} roster episode(s), \
             epoch {}, digest {:#018x}",
            self.seed,
            self.sent,
            self.delivered,
            self.doomed,
            self.roster_episodes,
            self.final_epoch,
            self.trace_digest,
        );
        for v in &self.violations {
            s.push_str(&format!(
                "\nVIOLATION [step {} @ {}ns] {}: {}",
                v.step, v.at.0, v.invariant, v.detail
            ));
        }
        s
    }
}

impl Scenario {
    /// Execute the scenario once. Deterministic: the same scenario and
    /// config seed always produce the same [`RunReport`] (and the same
    /// trace digest).
    pub fn run(&self) -> RunReport {
        let mut cluster = Cluster::new(self.cfg.clone());
        cluster.enable_trace(self.trace_capacity);
        cluster.enable_telemetry(FLIGHT_CAPACITY);
        cluster.run_for(self.warmup);

        let active = self.step.saturating_mul(self.steps as u64);
        let deadline = cluster.now() + active;
        let policy = start_apps(&mut cluster, self, deadline);
        let crashes = schedule_faults(&mut cluster, self);

        let n = self.cfg.n_nodes as u8;
        let mut ledger = Ledger::default();
        let mut next_crash = 0usize;
        let mut violations: Vec<Violation> = vec![];
        let mut tripped: BTreeSet<&'static str> = BTreeSet::new();

        for step in 0..self.steps {
            emit_traffic(&mut cluster, &mut ledger, self, step);
            cluster.run_for(self.step);
            drain(&mut cluster, &mut ledger, n);
            doom_elapsed(&mut ledger, &crashes, &mut next_crash, cluster.now());
            check(
                &cluster, &ledger, policy, Phase::Step, step, &self.invariants, &mut tripped,
                &mut violations,
            );
        }

        cluster.run_for(self.settle);
        drain(&mut cluster, &mut ledger, n);
        doom_elapsed(&mut ledger, &crashes, &mut next_crash, cluster.now());
        check(
            &cluster, &ledger, policy, Phase::End, self.steps, &self.invariants, &mut tripped,
            &mut violations,
        );

        let (trace_dump, flight_dump) = if violations.is_empty() {
            (String::new(), String::new())
        } else {
            (cluster.trace().dump(), cluster.flight_dump())
        };
        let (reconvergence_ns, failover_ns) = roster_latencies(&cluster);
        RunReport {
            seed: self.cfg.seed,
            violations,
            sent: ledger.sent(),
            delivered: ledger.delivered,
            doomed: ledger.doomed_total,
            roster_episodes: cluster.roster_history().len(),
            reconvergence_ns,
            failover_ns,
            final_epoch: cluster.epoch(),
            final_time: cluster.now(),
            trace_digest: cluster.trace().digest(),
            trace_dump,
            flight_dump,
        }
    }
}

/// Start the stateful traffic applications; returns the failover
/// policy when a counter app is among them (for the invariants).
fn start_apps(cluster: &mut Cluster, sc: &Scenario, deadline: SimTime) -> Option<FailoverPolicy> {
    let mut policy = None;
    for t in &sc.traffic {
        match t {
            Traffic::SemContention { addr, contenders, rounds } => {
                cluster.start_sem_stress(SemStressConfig {
                    addr: *addr,
                    contenders: contenders.clone(),
                    rounds: *rounds,
                    crit: SimDuration::from_micros(30),
                    backoff: BackoffPolicy::default(),
                });
            }
            Traffic::SeqlockProbe { writer, readers, layout } => {
                cluster.start_seqlock_probe(SeqProbeConfig {
                    writer: *writer,
                    readers: readers.clone(),
                    layout: *layout,
                    write_interval: SimDuration::from_micros(20),
                    read_interval: SimDuration::from_micros(7),
                    guarded: true,
                    deadline,
                });
            }
            Traffic::CounterFailover { members, policy: p, region } => {
                policy = Some(*p);
                cluster.start_counter_app(CounterAppConfig {
                    members: members.clone(),
                    policy: *p,
                    counter_layout: RecordLayout {
                        region: *region,
                        offset: COUNTER_OFFSET,
                        data_len: 8,
                    },
                    heartbeat_layout: RecordLayout {
                        region: *region,
                        offset: HEARTBEAT_OFFSET,
                        data_len: 8,
                    },
                    deadline,
                });
            }
            Traffic::AllToAll { .. } | Traffic::PingPong { .. } | Traffic::CacheStorm { .. } => {}
        }
    }
    policy
}

/// Schedule every fault; returns node-crash instants in time order
/// (the ledger dooms a crashed endpoint's pending traffic).
fn schedule_faults(cluster: &mut Cluster, sc: &Scenario) -> Vec<(SimTime, u8)> {
    apply_fault_schedule(cluster, sc.faults())
}

/// Schedule a fault list against a cluster, offsets relative to *now*;
/// returns node-crash instants in time order so the caller can doom a
/// crashed endpoint's pending traffic in its [`Ledger`].
///
/// This is the scenario engine's own scheduling path, exposed so other
/// drivers (the `ampnet-load` workload engine) compose the same
/// declarative fault schedules with their own traffic loops.
pub fn apply_fault_schedule(cluster: &mut Cluster, faults: &[FaultEvent]) -> Vec<(SimTime, u8)> {
    let t0 = cluster.now();
    let mut crashes = vec![];
    for f in faults {
        let at = t0 + f.at;
        match f.op {
            FaultOp::CrashNode(n) => {
                crashes.push((at, n));
                cluster.schedule_failure(at, Component::Node(NodeId(n)));
            }
            FaultOp::FailSwitch(s) => {
                cluster.schedule_failure(at, Component::Switch(SwitchId(s)));
            }
            FaultOp::CutFiber(n, s) => {
                cluster.schedule_failure(at, Component::Link(NodeId(n), SwitchId(s)));
            }
            FaultOp::SpliceFiber(n, s) => {
                cluster.schedule_repair(at, Component::Link(NodeId(n), SwitchId(s)));
            }
            FaultOp::RepairSwitch(s) => {
                cluster.schedule_repair(at, Component::Switch(SwitchId(s)));
            }
            FaultOp::Rejoin(n) => {
                cluster.schedule_join(
                    at,
                    n,
                    JoinRequest {
                        node: n,
                        version: Version::new(1, 0, 0),
                        features: Features::NONE,
                        diagnostics_pass: true,
                    },
                );
            }
            FaultOp::ErrorBurst { node, seed, errors } => {
                // Addressed at the victim's PHY plane: the NodeStack's
                // 8b/10b checker decides whether this escalates.
                cluster.schedule_error_burst(at, node, seed, errors);
            }
            FaultOp::CutLinkIndex(k) => {
                if let Some(c) = resolve_link(cluster, k) {
                    cluster.schedule_failure(at, c);
                }
            }
            FaultOp::SpliceLinkIndex(k) => {
                if let Some(c) = resolve_link(cluster, k) {
                    cluster.schedule_repair(at, c);
                }
            }
            FaultOp::FailElement(k) => {
                if let Some(s) = resolve_element(cluster, k) {
                    cluster.schedule_failure(at, Component::Switch(s));
                }
            }
            FaultOp::RepairElement(k) => {
                if let Some(s) = resolve_element(cluster, k) {
                    cluster.schedule_repair(at, Component::Switch(s));
                }
            }
        }
    }
    crashes
}

/// (total, worst) post-boot recovery time in nanoseconds over the
/// run's roster episodes. Boot is excluded — it is bring-up, not
/// reconvergence around damage.
fn roster_latencies(cluster: &Cluster) -> (u64, u64) {
    let mut total = 0u64;
    let mut worst = 0u64;
    for ev in cluster.roster_history() {
        if matches!(ev.reason, RosterReason::Boot) {
            continue;
        }
        let ns = ev.outcome.recovery_time().as_nanos();
        total += ns;
        worst = worst.max(ns);
    }
    (total, worst)
}

/// The `k mod L`-th fiber of the plant's deterministic link
/// enumeration (port fibers on switched families, trunks on a torus);
/// `None` only for a degenerate plant with no fibers at all.
fn resolve_link(cluster: &Cluster, k: u32) -> Option<Component> {
    let links = cluster.topology().link_components();
    if links.is_empty() {
        return None;
    }
    Some(links[k as usize % links.len()])
}

/// The `k mod S`-th switching element; `None` on element-free
/// families (a torus has only trunks), making element faults a no-op
/// there by design.
fn resolve_element(cluster: &Cluster, k: u32) -> Option<SwitchId> {
    let s = cluster.topology().n_switches();
    if s == 0 {
        return None;
    }
    Some(SwitchId((k as usize % s) as u8))
}

/// Inject one step of stateless traffic. Endpoints that are offline
/// at emit time are skipped — their guarantees died with them.
fn emit_traffic(cluster: &mut Cluster, ledger: &mut Ledger, sc: &Scenario, step: u32) {
    let n = sc.cfg.n_nodes as u8;
    for t in &sc.traffic {
        match t {
            Traffic::AllToAll { stream } => {
                for src in 0..n {
                    if !cluster.node_online(src) {
                        continue;
                    }
                    for dst in 0..n {
                        if dst == src || !cluster.node_online(dst) {
                            continue;
                        }
                        let payload = ledger.send(src, dst, cluster.now());
                        cluster.send_message(src, dst, *stream, &payload);
                    }
                }
            }
            Traffic::PingPong { a, b, stream } => {
                let (src, dst) = if step.is_multiple_of(2) { (*a, *b) } else { (*b, *a) };
                if cluster.node_online(src) && cluster.node_online(dst) {
                    let payload = ledger.send(src, dst, cluster.now());
                    cluster.send_message(src, dst, *stream, &payload);
                }
            }
            Traffic::CacheStorm { region, bytes } => {
                for node in 0..n {
                    if !cluster.node_online(node) {
                        continue;
                    }
                    let mut data = vec![0u8; *bytes as usize];
                    for (i, b) in data.iter_mut().enumerate() {
                        *b = (step as u8)
                            .wrapping_mul(31)
                            .wrapping_add(node)
                            .wrapping_add(i as u8);
                    }
                    let offset = STORM_BASE + node as u32 * STORM_STRIDE;
                    cluster.cache_write(node, *region, offset, &data);
                }
            }
            Traffic::SemContention { .. }
            | Traffic::SeqlockProbe { .. }
            | Traffic::CounterFailover { .. } => {} // self-driving apps
        }
    }
}

/// Drain every inbox into the ledger (non-chaos datagrams are
/// ignored by the ledger's decoder).
fn drain(cluster: &mut Cluster, ledger: &mut Ledger, n: u8) {
    for node in 0..n {
        while let Some(d) = cluster.pop_message(node) {
            ledger.drained(node, &d.payload);
        }
    }
}

/// Doom the pending traffic of every node whose crash instant has
/// passed (after the drain, so deliveries that beat the crash count).
fn doom_elapsed(
    ledger: &mut Ledger,
    crashes: &[(SimTime, u8)],
    next: &mut usize,
    now: SimTime,
) {
    while *next < crashes.len() && crashes[*next].0 <= now {
        ledger.doom_endpoint(crashes[*next].1);
        *next += 1;
    }
}

/// Run every invariant, recording only the first trip of each.
#[allow(clippy::too_many_arguments)]
fn check(
    cluster: &Cluster,
    ledger: &Ledger,
    policy: Option<FailoverPolicy>,
    phase: Phase,
    step: u32,
    invariants: &[std::rc::Rc<dyn crate::invariant::Invariant>],
    tripped: &mut BTreeSet<&'static str>,
    violations: &mut Vec<Violation>,
) {
    let ctx = CheckCtx { phase, step, now: cluster.now(), cluster, ledger, policy };
    for inv in invariants {
        if tripped.contains(inv.name()) {
            continue;
        }
        if let Err(detail) = inv.check(&ctx) {
            tripped.insert(inv.name());
            violations.push(Violation { invariant: inv.name(), at: ctx.now, step, detail });
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{FaultOp, Scenario, Traffic};
    use ampnet_core::{ClusterConfig, SimDuration};

    #[test]
    fn quiet_scenario_passes_standard_invariants() {
        let report = Scenario::builder(ClusterConfig::small(4).with_seed(11))
            .traffic(Traffic::ping_pong(0, 2))
            .steps(6)
            .standard_invariants()
            .build()
            .run();
        assert!(report.ok(), "{}", report.summary());
        assert_eq!(report.sent, 6);
        assert_eq!(report.delivered, 6);
        assert_eq!(report.doomed, 0);
        assert!(report.trace_dump.is_empty(), "dump only on failure");
        assert!(report.flight_dump.is_empty(), "flight dump only on failure");
    }

    #[test]
    fn identical_scenarios_produce_identical_digests() {
        let build = || {
            Scenario::builder(ClusterConfig::small(6).with_seed(99))
                .traffic(Traffic::all_to_all())
                .fault_in(SimDuration::from_millis(12), FaultOp::CrashNode(2))
                .standard_invariants()
                .build()
        };
        let a = build().run();
        let b = build().run();
        assert!(a.ok(), "{}", a.summary());
        assert_eq!(a.trace_digest, b.trace_digest);
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.final_time, b.final_time);
    }

    #[test]
    fn crash_dooms_only_victim_traffic() {
        // The crash lands one microsecond after a step-emission
        // boundary (offset 10 ms = step 2 with 5 ms steps), so the
        // messages injected at that instant are still in flight —
        // mid-serialization on the ring — when the node dies.
        let report = Scenario::builder(ClusterConfig::small(5).with_seed(3))
            .traffic(Traffic::all_to_all())
            .fault_in(SimDuration::from_micros(10_001), FaultOp::CrashNode(4))
            .standard_invariants()
            .build()
            .run();
        assert!(report.ok(), "{}", report.summary());
        // Everything not touching node 4 was delivered.
        assert_eq!(report.sent, report.delivered + report.doomed);
        assert!(report.doomed > 0, "the victim had traffic in flight");
    }

    #[test]
    fn violation_report_carries_trace_dump() {
        struct AlwaysFails;
        impl crate::invariant::Invariant for AlwaysFails {
            fn name(&self) -> &'static str {
                "always-fails"
            }
            fn check(&self, _: &crate::invariant::CheckCtx<'_>) -> Result<(), String> {
                Err("synthetic".into())
            }
        }
        let report = Scenario::builder(ClusterConfig::small(4).with_seed(1))
            .steps(2)
            .invariant(AlwaysFails)
            .build()
            .run();
        assert!(!report.ok());
        // Tripped once at step 0, then deduplicated.
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, "always-fails");
        assert!(!report.trace_dump.is_empty(), "failing runs dump the trace");
        assert!(
            report.flight_dump.starts_with("flight recorder:"),
            "failing runs attach the flight-recorder timeline: {:?}",
            report.flight_dump
        );
        assert!(report.summary().contains("VIOLATION"));
    }
}
