//! Scenario scripting: fault schedules, traffic generators, builder.

use crate::invariant::Invariant;
use ampnet_core::{ClusterConfig, FailoverPolicy, RecordLayout, SemaphoreAddr, SimDuration};
use std::rc::Rc;

/// One fault operation the engine can inject.
///
/// Faults address the layer where the real failure would occur:
/// `CrashNode`/`FailSwitch`/`CutFiber` hit the physical plant (the
/// topology loses a component and rostering heals around it), while
/// `ErrorBurst` is injected at the victim node's **PHY plane** — the
/// `ampnet-ring` `NodeStack` assesses it with the 8b/10b checker and
/// only a detected burst escalates into a topology-level link failure.
///
/// The `CutLinkIndex`/`SpliceLinkIndex`/`FailElement`/`RepairElement`
/// variants address the plant *generically* — by position in its
/// deterministic component enumeration rather than by concrete
/// node/switch id — so the same schedule replays on a crossbar, a 3D
/// torus or a folded Clos without editing the scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOp {
    /// Power off a node (its traffic is doomed until it rejoins).
    CrashNode(u8),
    /// Fail a switch (partition-style event: every ring member routed
    /// through it loses that hop).
    FailSwitch(u8),
    /// Cut the fiber between a node and a switch.
    CutFiber(u8, u8),
    /// Splice a previously cut fiber.
    SpliceFiber(u8, u8),
    /// Power a failed switch back on.
    RepairSwitch(u8),
    /// Re-assimilate a crashed node (DK join, cache refresh, roster).
    Rejoin(u8),
    /// Bit-error burst delivered to the victim's PHY plane (`errors`
    /// single-bit corruptions replayable from `seed`); escalation is
    /// the plane's own 8b/10b verdict, not the scenario's decision.
    ErrorBurst {
        /// Victim node.
        node: u8,
        /// Replay seed for the corruption positions.
        seed: u64,
        /// Number of single-bit errors.
        errors: u32,
    },
    /// Cut the `k mod L`-th fiber of the plant's link enumeration,
    /// where `L` is the number of fibers. Topology-agnostic: on a
    /// crossbar or folded Clos this lands on a node–switch port fiber,
    /// on a torus it lands on a node–node trunk, so one scenario
    /// replays unchanged across families.
    CutLinkIndex(u32),
    /// Splice the `k mod L`-th fiber of the link enumeration.
    SpliceLinkIndex(u32),
    /// Fail the `k mod S`-th switching element, where `S` is the
    /// plant's element count. A no-op on families without switching
    /// elements (e.g. a direct-trunk torus).
    FailElement(u32),
    /// Repair the `k mod S`-th switching element; no-op when the
    /// family has none.
    RepairElement(u32),
}

/// A fault op at an offset from the start of the (post-warmup) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Offset from the end of warmup.
    pub at: SimDuration,
    /// The operation.
    pub op: FaultOp,
}

/// A background traffic generator.
#[derive(Debug, Clone, PartialEq)]
pub enum Traffic {
    /// Every online node messages every other online node each step
    /// (the paper's simultaneous all-to-all, slide 7).
    AllToAll {
        /// Message stream.
        stream: u8,
    },
    /// Two nodes exchange a message per step, alternating direction.
    PingPong {
        /// One endpoint.
        a: u8,
        /// The other endpoint.
        b: u8,
        /// Message stream.
        stream: u8,
    },
    /// Every online node writes a fresh generation into a shared cache
    /// region each step; replicas must converge by the end of the run.
    CacheStorm {
        /// Cache region written.
        region: u8,
        /// Bytes per write.
        bytes: u32,
    },
    /// Network-semaphore contention via the D64 atomic protocol.
    SemContention {
        /// Semaphore location.
        addr: SemaphoreAddr,
        /// Contending nodes.
        contenders: Vec<u8>,
        /// Acquire/release rounds per contender.
        rounds: u32,
    },
    /// Guarded seqlock writer/readers on a replicated record.
    SeqlockProbe {
        /// Writing node.
        writer: u8,
        /// Reading nodes.
        readers: Vec<u8>,
        /// Record under test.
        layout: RecordLayout,
    },
    /// The replicated-counter failover application (slide 19).
    CounterFailover {
        /// (node, qualification) control-group members.
        members: Vec<(u8, u32)>,
        /// Failover policy.
        policy: FailoverPolicy,
        /// Cache region holding counter + heartbeat records.
        region: u8,
    },
}

impl Traffic {
    /// All-to-all messaging on the default chaos stream.
    pub fn all_to_all() -> Traffic {
        Traffic::AllToAll { stream: 1 }
    }

    /// Ping-pong between `a` and `b` on the default chaos stream.
    pub fn ping_pong(a: u8, b: u8) -> Traffic {
        Traffic::PingPong { a, b, stream: 1 }
    }

    /// A cache write storm on region 0.
    pub fn cache_storm() -> Traffic {
        Traffic::CacheStorm { region: 0, bytes: 8 }
    }

    /// Semaphore contention among `contenders` (semaphore homed on the
    /// first contender, region 0).
    pub fn semaphores(contenders: Vec<u8>, rounds: u32) -> Traffic {
        let home = *contenders.first().expect("contenders required"); // lint: allow(panic-freedom): the builder rejects empty contender sets at construction
        Traffic::SemContention {
            addr: SemaphoreAddr { home, region: 0, offset: 2048 },
            contenders,
            rounds,
        }
    }

    /// A guarded seqlock probe (writer node 0 unless overridden).
    pub fn seqlock(writer: u8, readers: Vec<u8>) -> Traffic {
        Traffic::SeqlockProbe {
            writer,
            readers,
            layout: RecordLayout { region: 0, offset: 1024, data_len: 64 },
        }
    }

    /// The replicated-counter failover app with the default policy.
    pub fn counter_failover(members: Vec<(u8, u32)>) -> Traffic {
        Traffic::CounterFailover { members, policy: FailoverPolicy::default(), region: 0 }
    }
}

/// A fully specified chaos scenario. Build with [`Scenario::builder`];
/// run with [`Scenario::run`] (deterministic for a given config seed)
/// or sweep seeds with [`Scenario::sweep`].
#[derive(Clone)]
pub struct Scenario {
    pub(crate) cfg: ClusterConfig,
    pub(crate) warmup: SimDuration,
    pub(crate) step: SimDuration,
    pub(crate) steps: u32,
    pub(crate) settle: SimDuration,
    pub(crate) faults: Vec<FaultEvent>,
    pub(crate) traffic: Vec<Traffic>,
    pub(crate) invariants: Vec<Rc<dyn Invariant>>,
    pub(crate) trace_capacity: usize,
}

impl Scenario {
    /// Start building a scenario against `cfg`.
    pub fn builder(cfg: ClusterConfig) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                cfg,
                warmup: SimDuration::from_millis(5),
                step: SimDuration::from_millis(5),
                steps: 12,
                settle: SimDuration::from_millis(20),
                faults: vec![],
                traffic: vec![],
                invariants: vec![],
                trace_capacity: 512,
            },
        }
    }

    /// The scheduled faults, in schedule order.
    pub fn faults(&self) -> &[FaultEvent] {
        &self.faults
    }

    /// Total simulated span of one run (warmup + steps + settle).
    pub fn span(&self) -> SimDuration {
        self.warmup + self.step.saturating_mul(self.steps as u64) + self.settle
    }
}

/// Builder for [`Scenario`].
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Boot time before faults and traffic start (default 5 ms).
    pub fn warmup(mut self, d: SimDuration) -> Self {
        self.scenario.warmup = d;
        self
    }

    /// Step length: traffic is emitted and invariants are checked once
    /// per step (default 5 ms).
    pub fn step_len(mut self, d: SimDuration) -> Self {
        self.scenario.step = d;
        self
    }

    /// Number of steps (default 12).
    pub fn steps(mut self, n: u32) -> Self {
        self.scenario.steps = n;
        self
    }

    /// Quiesce time after the last step, before end-of-run invariants
    /// (default 20 ms — enough for outstanding replay to drain).
    pub fn settle(mut self, d: SimDuration) -> Self {
        self.scenario.settle = d;
        self
    }

    /// Trace ring-buffer capacity for the run (default 512).
    pub fn trace_capacity(mut self, n: usize) -> Self {
        self.scenario.trace_capacity = n;
        self
    }

    /// Schedule `op` at `offset` after warmup.
    pub fn fault_in(mut self, offset: SimDuration, op: FaultOp) -> Self {
        self.scenario.faults.push(FaultEvent { at: offset, op });
        self
    }

    /// Add a traffic generator.
    pub fn traffic(mut self, t: Traffic) -> Self {
        self.scenario.traffic.push(t);
        self
    }

    /// Add an invariant checker.
    pub fn invariant(mut self, inv: impl Invariant + 'static) -> Self {
        self.scenario.invariants.push(Rc::new(inv));
        self
    }

    /// Add the standard catalogue: ring-drop freedom, lossless
    /// delivery, no duplicates, seqlock coherence, roster
    /// reconvergence bound, failover-within-policy, mutual exclusion
    /// and end-of-run state conservation. Checkers for traffic that is
    /// not running pass vacuously.
    pub fn standard_invariants(self) -> Self {
        use crate::invariant::*;
        self.invariant(RingDrops)
            .invariant(LosslessDelivery)
            .invariant(NoDuplicates)
            .invariant(SeqlockCoherence)
            .invariant(ReconvergenceBound::default())
            .invariant(FailoverWithinPolicy::default())
            .invariant(MutualExclusion)
            .invariant(StateConservation)
    }

    /// Finish. Faults are sorted by schedule time (stable, so equal
    /// times keep insertion order).
    pub fn build(mut self) -> Scenario {
        self.scenario
            .faults
            .sort_by_key(|f| f.at.as_nanos());
        self.scenario
    }
}
